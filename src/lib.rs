//! Umbrella crate for the SwitchV2P reproduction.
//!
//! Re-exports every workspace crate under one roof so examples and
//! integration tests (and downstream users who want the whole system) can
//! depend on a single package:
//!
//! * [`core`] — the SwitchV2P protocol (the paper's contribution);
//! * [`baselines`] — NoCache, LocalLearning, GwCache, Bluebird, OnDemand,
//!   Direct, Controller;
//! * [`netsim`] — the packet-level data-center simulator;
//! * [`topology`] — FatTree topologies and ECMP routing;
//! * [`vnet`] — the virtual-network substrate (mappings, gateways,
//!   migration, strategy traits);
//! * [`transport`] — TCP/UDP models;
//! * [`traces`] — the §5 workload generators;
//! * [`metrics`] — measurement and summaries;
//! * [`packet`] — packet model and wire format;
//! * [`simcore`] — the discrete-event engine;
//! * [`telemetry`] — event tracing, sampling, run manifests, `sv2p-trace`;
//! * [`ilp`] — cache-placement optimization (Controller baseline);
//! * [`p4model`] — the Tofino resource model (Table 6).
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the experiment map.

#![forbid(unsafe_code)]

pub use sv2p_baselines as baselines;
pub use sv2p_ilp as ilp;
pub use sv2p_metrics as metrics;
pub use sv2p_netsim as netsim;
pub use sv2p_p4model as p4model;
pub use sv2p_packet as packet;
pub use sv2p_simcore as simcore;
pub use sv2p_telemetry as telemetry;
pub use sv2p_topology as topology;
pub use sv2p_traces as traces;
pub use sv2p_transport as transport;
pub use sv2p_vnet as vnet;
pub use switchv2p as core;
