#!/bin/sh
# Re-runs the subset of experiments that are sensitive to tuning changes.
#
# Extra arguments are forwarded verbatim to every binary through the
# shared bench CLI (crates/bench/src/cli.rs) — the same `--seed N`,
# `--full` and `--telemetry DIR` flags run_all.sh takes:
#
#   ./rerun_tuned.sh --seed 7 --telemetry results/telemetry
set -x
cd "$(dirname "$0")"
B=./target/release
$B/fig5 microbursts "$@" > results/fig5b_microbursts.txt 2>&1
$B/table4 "$@" > results/table4.txt 2>&1
$B/table5 "$@" > results/table5.txt 2>&1
$B/fig7 "$@" > results/fig7_fig8.txt 2>&1
$B/fig9 "$@" > results/fig9.txt 2>&1
$B/fig10 "$@" > results/fig10.txt 2>&1
$B/ablations "$@" > results/ablations.txt 2>&1
$B/tracegen all "$@" > results/trace_characteristics.txt 2>&1
echo RERUN_DONE
