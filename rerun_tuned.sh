#!/bin/sh
set -x
cd "$(dirname "$0")"
B=./target/release
$B/fig5 microbursts > results/fig5b_microbursts.txt 2>&1
$B/table4 > results/table4.txt 2>&1
$B/table5 > results/table5.txt 2>&1
$B/fig7 > results/fig7_fig8.txt 2>&1
$B/fig9 > results/fig9.txt 2>&1
$B/fig10 > results/fig10.txt 2>&1
$B/ablations > results/ablations.txt 2>&1
$B/tracegen all > results/trace_characteristics.txt 2>&1
echo RERUN_DONE
