#!/bin/sh
# Regenerates every table and figure (quick scale) into results/.
# Each binary also leaves a run manifest at results/<bin>.manifest.jsonl.
#
# Extra arguments are forwarded verbatim to every binary through the
# shared bench CLI (crates/bench/src/cli.rs), so the common flags compose:
#
#   ./run_all.sh --seed 7
#   ./run_all.sh --full
#   ./run_all.sh --telemetry results/telemetry
set -e
set -x
cd "$(dirname "$0")"
# --workspace is load-bearing: a bare `cargo build` at the root skips the
# workspace members' binaries, leaving stale (or missing) bins under $B.
cargo build --release --workspace
B=./target/release
$B/table3 "$@" > results/table3.txt 2>&1
$B/table6 "$@" > results/table6.txt 2>&1
$B/table4 "$@" > results/table4.txt 2>&1
$B/fig5 hadoop "$@" > results/fig5a_hadoop.txt 2>&1
$B/fig5 microbursts "$@" > results/fig5b_microbursts.txt 2>&1
$B/fig5 websearch "$@" > results/fig5c_websearch.txt 2>&1
$B/fig5 video "$@" > results/fig5d_video.txt 2>&1
$B/table5 "$@" > results/table5.txt 2>&1
$B/fig7 "$@" > results/fig7_fig8.txt 2>&1
$B/fig9 "$@" > results/fig9.txt 2>&1
$B/fig10 "$@" > results/fig10.txt 2>&1
$B/fig6 "$@" > results/fig6_alibaba.txt 2>&1
$B/controller "$@" > results/controller_a2.txt 2>&1
$B/ablations "$@" > results/ablations.txt 2>&1
$B/tracegen all "$@" > results/trace_characteristics.txt 2>&1
$B/failures "$@" > results/failures.txt 2>&1
$B/churn "$@" > results/churn.txt 2>&1
$B/sv2p-perfbench "$@" > results/perfbench.txt 2>&1
# The million-VM FT32 tier only runs on an explicit --full sweep: the
# scale smoke builds the complete 1 048 576-VM placement twice (shards 1
# and 4), which is deliberate memory pressure a quick run should skip.
for arg in "$@"; do
  if [ "$arg" = "--full" ] || [ "$arg" = "--huge" ]; then
    $B/sv2p-scale-smoke "$@" > results/scale_smoke.txt 2>&1
    break
  fi
done
echo ALL_RESULTS_DONE
