//! Topology explorer: build the paper's FatTrees, inspect switch roles,
//! ECMP paths, and the gateway detour that motivates the whole system.
//!
//! ```sh
//! cargo run --release --example topology_explorer
//! ```

use switchv2p_repro::topology::{FatTreeConfig, NodeKind, RoleMap, Routing, SwitchRole};
use switchv2p_repro::vnet::GatewayDirectory;

fn main() {
    for (name, cfg) in [
        ("FT8-10K", FatTreeConfig::ft8_10k()),
        ("FT16-400K", FatTreeConfig::ft16_400k()),
    ] {
        let c = cfg.characteristics();
        println!("== {name} ==");
        println!(
            "  pods {}  racks/pod {}  ToRs {}  spines {}  cores {}  switches {}",
            c.pods, c.racks_per_pod, c.tor_switches, c.spine_switches, c.core_switches,
            c.total_switches
        );
        println!(
            "  servers {}  gateways {}",
            c.physical_servers, c.gateways
        );

        let topo = cfg.build();
        let roles = RoleMap::classify(&topo);
        let counts = roles.counts();
        print!("  roles:");
        for role in [
            SwitchRole::GatewayTor,
            SwitchRole::GatewaySpine,
            SwitchRole::Tor,
            SwitchRole::Spine,
            SwitchRole::Core,
        ] {
            print!(" {}={}", role.name(), counts.get(&role).copied().unwrap_or(0));
        }
        println!();

        // The gateway detour: an inter-pod packet's direct path vs the path
        // through its flow's gateway.
        let routing = Routing::new(&cfg, &topo);
        let dir = GatewayDirectory::from_topology(&topo);
        let src = topo.servers().next().unwrap().id;
        let dst = topo
            .nodes
            .iter()
            .find(|n| matches!(n.kind, NodeKind::Server { pod, .. } if pod == c.pods - 1))
            .unwrap()
            .id;
        let gw = topo.node_by_pip(dir.pick(7)).unwrap();
        let direct_hops = routing.switch_hops(&topo, src, dst, 7);
        let detour_hops =
            routing.switch_hops(&topo, src, gw, 7) + routing.switch_hops(&topo, gw, dst, 7);
        println!(
            "  sample inter-pod path: direct {} switches, via gateway {} switches",
            direct_hops, detour_hops
        );
        println!();
    }
    println!("The detour roughly doubles the switches a first packet crosses —");
    println!("that, plus 40 us of gateway processing, is what SwitchV2P removes.");
}
