//! VM migration under incast (paper §5.2, Table 4).
//!
//! 64 UDP senders on distinct servers blast one destination VM; at t=500 µs
//! the VM migrates to another rack. Compares how NoCache (follow-me rules),
//! OnDemand (stale host rules + follow-me) and three SwitchV2P variants
//! (no invalidations / no timestamp vector / full) repair the network.
//!
//! ```sh
//! cargo run --release --example vm_migration
//! ```

use switchv2p_repro::baselines::{NoCache, OnDemand};
use switchv2p_repro::core::{SwitchV2P, SwitchV2PConfig};
use switchv2p_repro::netsim::{FlowKind, FlowSpec, SimConfig, Simulation};
use switchv2p_repro::simcore::SimTime;
use switchv2p_repro::topology::FatTreeConfig;
use switchv2p_repro::traces::{incast, IncastConfig};
use switchv2p_repro::transport::UdpSchedule;
use switchv2p_repro::vnet::{Migration, Strategy};

fn run_variant(strategy: &dyn Strategy, cache: usize) -> switchv2p_repro::metrics::RunSummary {
    let ft = FatTreeConfig::ft8_10k();
    let mut sim = Simulation::new(SimConfig::default(), &ft, strategy, cache, 80);

    // 64 senders on distinct servers (VM i*80 lives on server i), one victim.
    let dst_vm = 0usize;
    let senders: Vec<usize> = (1..=64).map(|i| i * 80).collect();
    let cfg = IncastConfig::default();
    let trace = incast(&cfg, &senders, dst_vm);
    let flows: Vec<FlowSpec> = trace
        .iter()
        .map(|f| {
            let (rate_bps, duration_ns, payload) = match f.profile {
                switchv2p_repro::traces::FlowProfile::UdpCbr {
                    rate_bps,
                    duration_ns,
                    payload,
                } => (rate_bps, duration_ns, payload),
                _ => unreachable!(),
            };
            FlowSpec {
                src_vm: f.src_vm,
                dst_vm: f.dst_vm,
                start: SimTime::from_nanos(f.start_ns),
                kind: FlowKind::Udp {
                    schedule: UdpSchedule::cbr(
                        SimTime::ZERO,
                        switchv2p_repro::simcore::SimDuration::from_nanos(duration_ns),
                        rate_bps,
                        payload,
                    ),
                },
            }
        })
        .collect();
    sim.add_flows(flows);

    // Migrate the victim to the last server at t = 500 µs.
    let vip = sim.placement.vips[dst_vm];
    let target = sim.topology().servers().last().map(|n| (n.id, n.pip)).unwrap();
    sim.add_migration(Migration::new(
        SimTime::from_micros(500),
        vip,
        target.0,
        target.1,
    ));
    sim.run();
    sim.summary()
}

fn main() {
    println!("VM migration under 64-sender incast (paper Table 4)\n");
    println!(
        "{:<32} {:>9} {:>12} {:>12} {:>12} {:>8}",
        "variant", "gw pkts", "avg latency", "last misdel", "misdelivered", "invals"
    );
    let variants: Vec<(&str, Box<dyn Strategy>, usize)> = vec![
        ("NoCache", Box::new(NoCache), 0),
        ("OnDemand", Box::new(OnDemand), 0),
        (
            "SwitchV2P w/o invalidations",
            Box::new(SwitchV2P::new(SwitchV2PConfig::without_invalidations())),
            5120,
        ),
        (
            "SwitchV2P w/o timestamp vector",
            Box::new(SwitchV2P::new(SwitchV2PConfig::without_timestamp_vector())),
            5120,
        ),
        (
            "SwitchV2P w/ timestamp vector",
            Box::new(SwitchV2P::default()),
            5120,
        ),
    ];
    let mut base_latency = None;
    for (name, strategy, cache) in &variants {
        let s = run_variant(strategy.as_ref(), *cache);
        let base = *base_latency.get_or_insert(s.avg_packet_latency_us);
        println!(
            "{:<32} {:>8.1}% {:>11.2}x {:>9.0} us {:>12} {:>8}",
            name,
            (1.0 - s.hit_rate) * 100.0,
            s.avg_packet_latency_us / base,
            s.last_misdelivery_us.unwrap_or(0.0),
            s.misdelivered_packets,
            s.invalidation_packets
        );
    }
    println!("\nThe timestamp vector keeps invalidation traffic tiny while");
    println!("matching the repair speed of per-misdelivery invalidation.");
}
