//! Quickstart: run SwitchV2P against the plain gateway design on a small
//! FatTree and print the headline metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use switchv2p_repro::baselines::NoCache;
use switchv2p_repro::core::SwitchV2P;
use switchv2p_repro::netsim::{FlowKind, FlowSpec, SimConfig, Simulation};
use switchv2p_repro::simcore::SimTime;
use switchv2p_repro::topology::FatTreeConfig;
use switchv2p_repro::traces::{hadoop, HadoopConfig};
use switchv2p_repro::vnet::Strategy;

fn main() {
    // A 2-pod FatTree: 128 servers, 512 VMs, one gateway pod.
    let ft = FatTreeConfig::scaled_ft8(2);
    let vms_per_server = 4;

    // A Hadoop-like workload: short TCP flows with destination reuse.
    let trace = hadoop(&HadoopConfig {
        vms: 512,
        flows: 2_000,
        hosts: 128,
        ..HadoopConfig::default()
    });
    let flows: Vec<FlowSpec> = trace
        .iter()
        .map(|f| FlowSpec {
            src_vm: f.src_vm,
            dst_vm: f.dst_vm,
            start: SimTime::from_nanos(f.start_ns),
            kind: FlowKind::Tcp { bytes: f.bytes() },
        })
        .collect();

    // Aggregate cache budget: 50% of the address space, split over all
    // switches.
    let cache_entries = 256;

    println!("SwitchV2P quickstart — {} flows over {} VMs\n", flows.len(), 512);
    println!(
        "{:<12} {:>9} {:>12} {:>14} {:>12} {:>10}",
        "scheme", "hit rate", "avg FCT", "first packet", "gw packets", "stretch"
    );
    for strategy in [&NoCache as &dyn Strategy, &SwitchV2P::default()] {
        let mut sim = Simulation::new(
            SimConfig::default(),
            &ft,
            strategy,
            if strategy.caches_at(switchv2p_repro::topology::SwitchRole::Tor) {
                cache_entries
            } else {
                0
            },
            vms_per_server,
        );
        sim.add_flows(flows.clone());
        sim.run();
        let s = sim.summary();
        println!(
            "{:<12} {:>8.1}% {:>9.1} us {:>11.1} us {:>12} {:>10.2}",
            s.name,
            s.hit_rate * 100.0,
            s.avg_fct_us,
            s.avg_first_packet_latency_us,
            s.gateway_packets,
            s.avg_stretch
        );
    }
    println!("\nSwitchV2P resolves most packets inside the network: fewer");
    println!("gateway detours, shorter paths, faster flows (paper §5.1).");
}
