//! Microservice RPC workload (Alibaba-style, paper §5.1 / Figure 6).
//!
//! Zipf-skewed RPC callees ("over 95% of requests are processed by 5% of the
//! microservices") give heavy cross-flow destination reuse — the regime
//! where in-network caching shines. Prints the per-layer hit distribution
//! (paper Table 5) alongside the headline metrics.
//!
//! ```sh
//! cargo run --release --example microservice_rpc
//! ```

use switchv2p_repro::baselines::{GwCache, NoCache};
use switchv2p_repro::core::SwitchV2P;
use switchv2p_repro::netsim::{FlowKind, FlowSpec, SimConfig, Simulation};
use switchv2p_repro::simcore::SimTime;
use switchv2p_repro::topology::FatTreeConfig;
use switchv2p_repro::traces::{alibaba, AlibabaConfig};
use switchv2p_repro::vnet::Strategy;

fn main() {
    let ft = FatTreeConfig::scaled_ft8(4); // 4 pods, 128 servers
    let vms_per_server = 8;
    let vms = 128 * vms_per_server as usize;

    let trace = alibaba(&AlibabaConfig {
        vms,
        rpcs: 4_000,
        duration_ns: 1_000_000,
        ..AlibabaConfig::default()
    });
    let flows: Vec<FlowSpec> = trace
        .iter()
        .map(|f| FlowSpec {
            src_vm: f.src_vm,
            dst_vm: f.dst_vm,
            start: SimTime::from_nanos(f.start_ns),
            kind: FlowKind::Tcp { bytes: f.bytes() },
        })
        .collect();
    let cache = vms / 2; // 50% of the address space

    println!(
        "Microservice RPCs: {} calls over {} containers, cache 50%\n",
        flows.len(),
        vms
    );
    println!(
        "{:<12} {:>9} {:>12} {:>14}   {:<24}",
        "scheme", "hit rate", "avg FCT", "first packet", "hits by layer (C/S/T)"
    );
    for strategy in [&NoCache as &dyn Strategy, &GwCache, &SwitchV2P::default()] {
        let budget = if strategy.caches_at(switchv2p_repro::topology::SwitchRole::Tor)
            || strategy.caches_at(switchv2p_repro::topology::SwitchRole::GatewayTor)
        {
            cache
        } else {
            0
        };
        let mut sim = Simulation::new(SimConfig::default(), &ft, strategy, budget, vms_per_server);
        sim.add_flows(flows.clone());
        sim.run();
        let s = sim.summary();
        println!(
            "{:<12} {:>8.1}% {:>9.1} us {:>11.1} us   {:>4.1}% / {:>4.1}% / {:>4.1}%",
            s.name,
            s.hit_rate * 100.0,
            s.avg_fct_us,
            s.avg_first_packet_latency_us,
            s.hit_share_core * 100.0,
            s.hit_share_spine * 100.0,
            s.hit_share_tor * 100.0
        );
    }
    println!("\nSource learning at ToRs lets callees answer without a gateway");
    println!("detour, and popular services get promoted toward the core.");
}
