//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly the trait surface the workspace uses: [`RngCore`],
//! [`SeedableRng`], the [`Rng`] extension with `gen_range`, and the
//! `distributions::uniform` sampling traits. The actual generator lives in
//! `sv2p-simcore` (`SimRng`); nothing here draws randomness of its own.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Error type for fallible RNG operations (never produced here).
#[derive(Debug)]
pub struct Error;

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core randomness source interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible fill (infallible for every generator in this workspace).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// Construction from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;
    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;
    /// Builds the generator from a `u64` convenience seed.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for (i, b) in seed.as_mut().iter_mut().enumerate() {
            *b = state.to_le_bytes()[i % 8];
        }
        Self::from_seed(seed)
    }
}

pub mod distributions {
    //! Minimal uniform-sampling machinery backing `Rng::gen_range`.

    pub mod uniform {
        use crate::RngCore;

        /// Types that can be sampled uniformly from a range.
        pub trait SampleUniform: Copy + PartialOrd {
            /// Uniform draw in `[low, high)` (`[low, high]` when `inclusive`).
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self;
        }

        macro_rules! impl_sample_int {
            ($($t:ty),* $(,)?) => {$(
                impl SampleUniform for $t {
                    fn sample_between<R: RngCore + ?Sized>(
                        rng: &mut R,
                        low: Self,
                        high: Self,
                        inclusive: bool,
                    ) -> Self {
                        let lo = low as i128;
                        let hi = high as i128 + if inclusive { 1 } else { 0 };
                        let span = hi - lo;
                        assert!(span > 0, "cannot sample from empty range");
                        (lo + (rng.next_u64() as i128).rem_euclid(span)) as $t
                    }
                }
            )*};
        }
        impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        impl SampleUniform for f64 {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(high > low, "cannot sample from empty range");
                let frac = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                low + frac * (high - low)
            }
        }

        impl SampleUniform for f32 {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                f64::sample_between(rng, low as f64, high as f64, inclusive) as f32
            }
        }

        /// Range types accepted by `Rng::gen_range`.
        pub trait SampleRange<T> {
            /// Draws one uniform sample from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_between(rng, self.start, self.end, false)
            }
        }

        impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_between(rng, *self.start(), *self.end(), true)
            }
        }
    }
}

/// Convenience extension over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let frac = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        frac < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

// Unused-but-referenced helper so `use core::ops::{Range, RangeInclusive}`
// above is exercised even when downstream only uses inclusive ranges.
#[allow(dead_code)]
fn _range_types_exist(_: Range<u8>, _: RangeInclusive<u8>) {}

#[cfg(test)]
mod tests {
    use super::distributions::uniform::SampleUniform;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest.iter_mut() {
                *b = self.next_u64() as u8;
            }
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = rng.gen_range(0..=5);
            assert!(w <= 5);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Counter(1);
        let _ = u32::sample_between(&mut rng, 5, 5, false);
    }
}
