//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on result structs so that
//! a real serde can be dropped in when the build environment has network
//! access, but nothing in-tree actually serializes through a serde backend
//! (summaries are printed via `Display`/hand-rolled JSON). The traits are
//! therefore markers, and the derive macros emit empty impls.

#![forbid(unsafe_code)]

/// Marker for types that can be serialized.
pub trait Serialize {}

/// Marker for types that can be deserialized.
pub trait Deserialize<'de>: Sized {}

/// Marker for types deserializable with any lifetime.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
