//! Offline stand-in for `serde_derive`.
//!
//! The real crate generates full (de)serialization impls via syn/quote.
//! Here `serde::Serialize`/`Deserialize` are marker traits (see the vendored
//! `serde`), so the derives only need to name the type: they scan the item's
//! token stream for the `struct`/`enum` keyword and emit an empty impl.
//! Generic types are not supported (nothing in the workspace derives serde
//! on a generic type).

use proc_macro::{TokenStream, TokenTree};

fn type_name(input: &TokenStream) -> String {
    let mut saw_kw = false;
    for tt in input.clone() {
        // Attribute groups, doc comments, visibility parens: skip.
        if let TokenTree::Ident(id) = tt {
            let s = id.to_string();
            if saw_kw {
                return s;
            }
            if s == "struct" || s == "enum" {
                saw_kw = true;
            }
        }
    }
    panic!("serde derive stub: could not find struct/enum name in input");
}

/// Emits `impl ::serde::Serialize for <T> {}`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl must parse")
}

/// Emits `impl<'de> ::serde::Deserialize<'de> for <T> {}`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl must parse")
}
