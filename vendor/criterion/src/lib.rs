//! Offline stand-in for `criterion`.
//!
//! Provides the macro/struct surface the workspace benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`black_box`], `criterion_group!`, `criterion_main!` —
//! backed by a simple fixed-iteration wall-clock timer instead of the real
//! statistical engine. Good enough to run `cargo bench` offline and catch
//! gross regressions by eye.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Runs the closure repeatedly and reports mean wall-clock time.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup.
        for _ in 0..3 {
            black_box(f());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level bench driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = if b.iters > 0 {
            b.elapsed / b.iters as u32
        } else {
            Duration::ZERO
        };
        println!("bench {name:50} {per_iter:>12?}/iter ({} iters)", b.iters);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    fn run_all(configure: &[fn(&mut Criterion)]) {
        let mut c = Criterion::default();
        for f in configure {
            f(&mut c);
        }
    }
}

/// A group sharing a name prefix and an optional sample-size override.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the iteration count for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        let saved = self.parent.sample_size;
        if let Some(n) = self.sample_size {
            self.parent.sample_size = n;
        }
        self.parent.bench_function(&full, f);
        self.parent.sample_size = saved;
        self
    }

    /// Ends the group (no-op; exists for API parity).
    pub fn finish(&mut self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            $crate::__run_benches(&[$($target),+]);
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Macro support: runs each registered bench function. Not public API.
#[doc(hidden)]
pub fn __run_benches(targets: &[fn(&mut Criterion)]) {
    Criterion::run_all(targets);
}
