//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property tests
//! use: the [`proptest!`] macro, [`Strategy`] with `prop_map`, ranges /
//! [`Just`] / [`any`] / tuples as strategies, `prop_oneof!`,
//! `proptest::collection::vec`, `proptest::option::of`, and the
//! `prop_assert*` macros. Cases are generated from a deterministic
//! per-test RNG. There is **no shrinking**: a failing case reports its
//! seed and generated inputs via `Debug`-less message only, which is
//! sufficient for CI-style pass/fail in an offline environment.

#![forbid(unsafe_code)]

use std::marker::PhantomData;

/// Deterministic generator feeding strategies (xorshift64*).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator; zero is remapped to a fixed odd constant.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed },
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Error carried out of a failing property body.
#[derive(Debug)]
pub struct TestCaseError {
    /// Human-readable failure description.
    pub message: String,
}

impl TestCaseError {
    /// Builds a failure from a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

/// Result of one property-test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// How a value is produced for each test case.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe generation, backing [`BoxedStrategy`].
trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(hi > lo, "empty range strategy");
                (lo + (rng.next_u64() as i128).rem_euclid(hi - lo)) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128 + 1;
                assert!(hi > lo, "empty range strategy");
                (lo + (rng.next_u64() as i128).rem_euclid(hi - lo)) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.end > self.start, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_tuple {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}
impl_arbitrary_tuple!(A, B);
impl_arbitrary_tuple!(A, B, C);
impl_arbitrary_tuple!(A, B, C, D);
impl_arbitrary_tuple!(A, B, C, D, E);

/// Strategy for an unconstrained value of `T` (see [`any`]).
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($($name:ident / $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(S0 / 0, S1 / 1);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5, S6 / 6);

/// Uniform choice among type-erased alternatives (see `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union over the given alternatives.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::{Strategy, TestRng};

    /// Inclusive-lo / exclusive-hi element-count range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy for a `Vec` with element strategy `S`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vector of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    //! Option strategies (`of`).

    use super::{Strategy, TestRng};

    /// Strategy producing `None` or `Some` of the inner strategy.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 1 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }

    /// `Option` strategy: roughly half the cases are `Some`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default (256) is tuned for shrinking-assisted debugging;
        // without shrinking, fewer deterministic cases keep the offline test
        // suite fast while still exercising the properties.
        ProptestConfig { cases: 48 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Macro support: drives one property over `config.cases` seeds. Not public
/// API.
#[doc(hidden)]
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    // Stable per-test seed: FNV-1a over the test name.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    for case in 0..config.cases {
        let mut rng = TestRng::new(h ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1)));
        if let Err(e) = body(&mut rng) {
            panic!(
                "proptest {name}: case {case}/{} failed: {}",
                config.cases, e.message
            );
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a test running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $(
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            $crate::run_proptest(&__cfg, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)*
                $body
                Ok(())
            });
        }
    )*};
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} != {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Any, Arbitrary, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn arb_small() -> impl Strategy<Value = u32> {
        prop_oneof![Just(7u32), (0u32..3).prop_map(|v| v * 10)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u32..9, y in 0.0f64..1.0, z in 1usize..=4) {
            prop_assert!((5..9).contains(&x));
            prop_assert!((0.0..1.0).contains(&y), "y out of range: {}", y);
            prop_assert!((1..=4).contains(&z));
        }

        #[test]
        fn oneof_and_collections(v in crate::collection::vec(arb_small(), 0..10),
                                 o in crate::option::of(0u8..4)) {
            for x in &v {
                prop_assert!(*x == 7 || *x % 10 == 0);
            }
            if let Some(b) = o {
                prop_assert!(b < 4);
            }
        }

        #[test]
        fn tuples_generate(t in (0u8..4, any::<bool>(), 1u64..100)) {
            prop_assert!(t.0 < 4);
            prop_assert_eq!(t.2 >= 1, true);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::new(42);
        let mut b = crate::TestRng::new(42);
        let s = (0u32..1000, any::<u64>());
        for _ in 0..100 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
