//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the workspace's wire codec uses: [`Bytes`] (a
//! cheaply-cloneable shared byte view), [`BytesMut`] (a growable builder),
//! and the [`Buf`]/[`BufMut`] accessor traits for big-endian reads/writes.
//! Sharing is an `Arc<Vec<u8>>` with a start/end window — no unsafe code,
//! no vtables.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// Cursor-style big-endian reader over a byte container.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// True while any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Reads a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Reads a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let c = self.chunk();
        let mut b = [0u8; 8];
        b.copy_from_slice(&c[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }
}

/// Big-endian writer onto a growable byte container.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        for _ in 0..cnt {
            self.put_u8(val);
        }
    }
}

/// Immutable, cheaply-cloneable shared view of a byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a static slice (no actual borrow of `'static` data is kept).
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view sharing the same backing storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Splits off and returns the first `at` bytes, advancing self past them.
    pub fn split_to(&mut self, at: usize) -> Self {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Copies the view into a fresh Vec.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

/// Growable byte builder, frozen into [`Bytes`] when complete.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Ensures room for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    /// Converts into an immutable shared buffer.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> Self {
        BytesMut { buf: s.to_vec() }
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({} bytes)", self.buf.len())
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_big_endian() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(0xAB);
        b.put_u16(0x1234);
        b.put_u32(0xDEAD_BEEF);
        b.put_bytes(0, 3);
        assert_eq!(b.len(), 10);
        b[8..10].copy_from_slice(&[7, 9]);
        let mut frozen = b.freeze();
        assert_eq!(frozen.get_u8(), 0xAB);
        assert_eq!(frozen.get_u16(), 0x1234);
        assert_eq!(frozen.get_u32(), 0xDEAD_BEEF);
        assert_eq!(frozen.remaining(), 3);
        assert_eq!(&frozen[..], &[0, 7, 9]);
    }

    #[test]
    fn slice_and_split_share_storage() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let mut rest = b.clone();
        let head = rest.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&rest[..], &[3, 4, 5]);
        assert_eq!(b.slice(..2).to_vec(), vec![1, 2]);
    }
}
