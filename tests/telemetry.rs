//! Telemetry integration tests: same-seed runs render byte-identical
//! JSONL (manifests are the only place wall-clock may appear), and the
//! inspector reconstructs a packet's full journey — gateway detour,
//! in-network cache hit, delivery — from the rendered trace alone.

use switchv2p_repro::core::SwitchV2P;
use switchv2p_repro::netsim::{FlowKind, FlowSpec, SimConfig, Simulation};
use switchv2p_repro::simcore::SimTime;
use switchv2p_repro::telemetry::inspect::{kind_counts, parse_events, reconstruct_path};
use switchv2p_repro::telemetry::{EventKind, TelemetryConfig};
use switchv2p_repro::topology::FatTreeConfig;
use switchv2p_repro::traces::{hadoop, HadoopConfig};

/// A traced SwitchV2P run over a small Hadoop-like workload (repeating
/// destinations, so first sightings detour via gateways and later packets
/// hit in-network caches). Returns the rendered (events, samples) JSONL.
fn traced_run(seed: u64) -> (String, String) {
    let ft = FatTreeConfig::scaled_ft8(2);
    let cfg = SimConfig {
        seed,
        telemetry: TelemetryConfig::enabled(),
        ..SimConfig::default()
    };
    let strategy = SwitchV2P::default();
    let mut sim = Simulation::new(cfg, &ft, &strategy, 256, 4);
    let vms = sim.placement.len();
    let flows: Vec<FlowSpec> = hadoop(&HadoopConfig {
        vms,
        flows: 600,
        hosts: 128,
        ..HadoopConfig::default()
    })
    .into_iter()
    .map(|f| FlowSpec {
        src_vm: f.src_vm,
        dst_vm: f.dst_vm,
        start: SimTime::from_nanos(f.start_ns),
        kind: FlowKind::Tcp { bytes: f.bytes() },
    })
    .collect();
    sim.add_flows(flows);
    sim.run();
    (
        sim.tracer().render_events_jsonl(),
        sim.tracer().render_samples_jsonl(),
    )
}

#[test]
fn same_seed_runs_render_identical_jsonl() {
    let (ea, sa) = traced_run(7);
    let (eb, sb) = traced_run(7);
    assert!(!ea.is_empty(), "traced run must record events");
    assert_eq!(ea, eb, "same seed, same trace bytes");
    assert_eq!(sa, sb, "same seed, same sample bytes");
    // A different seed perturbs the trace (ECMP hashing, start jitter).
    let (ec, _) = traced_run(8);
    assert_ne!(ea, ec, "different seed must change the trace");
}

#[test]
fn inspector_reconstructs_detour_and_cache_hit_paths() {
    // Go through the rendered JSONL, exactly as `sv2p-trace` would.
    let (text, _) = traced_run(1);
    let events = parse_events(&text);
    assert!(!events.is_empty());
    assert!(!kind_counts(&events).is_empty());

    // A first-sighting packet that detoured through a translation gateway.
    let gw_flow = events
        .iter()
        .find(|e| e.kind == EventKind::GatewayIngress)
        .and_then(|e| e.flow)
        .expect("some first sighting detours via a gateway");
    let detour = reconstruct_path(&events, gw_flow, None).expect("detour path");
    assert!(detour.visited_gateway, "{detour:?}");
    assert!(detour.delivered, "{detour:?}");
    assert!(detour.total_latency_ns.unwrap_or(0) > 0);
    // Hops replay in virtual-time order with consistent per-hop latency.
    assert!(detour.hops.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
    let span = detour.hops.last().unwrap().t_ns - detour.hops[0].t_ns;
    let dt_sum: u64 = detour.hops.iter().map(|h| h.dt_ns).sum();
    assert_eq!(span, dt_sum, "per-hop latencies must sum to the span");

    // A later packet whose destination an in-network cache resolved.
    let hit = events
        .iter()
        .find(|e| e.kind == EventKind::CacheLookup && e.hit == Some(true))
        .expect("a later packet hits an in-network cache");
    let served = reconstruct_path(&events, hit.flow.unwrap(), hit.pkt).expect("hit path");
    assert_eq!(
        served.hit_node, hit.node,
        "the report names the switch that served the hit"
    );
    assert!(
        !served.visited_gateway,
        "a cache-resolved packet skips the gateway detour"
    );
    assert!(served.delivered, "{served:?}");
}
