//! Gateway migration (§4): "changing the location of the gateway in the
//! network would require modifying the roles of the ToR switches... the
//! former gateway ToR can transition to a standard ToR behavior, while the
//! new ToR can take on the role of a gateway ToR. The cache state does not
//! require migration; instead, it is rebuilt at the destination."
//!
//! These tests exercise the control-plane role reassignment through the
//! simulator and check the behavioral switch-over.

use switchv2p_repro::core::{SwitchV2P, SwitchV2PConfig};
use switchv2p_repro::netsim::{FlowKind, FlowSpec, SimConfig, Simulation};
use switchv2p_repro::simcore::SimTime;
use switchv2p_repro::topology::{FatTreeConfig, SwitchRole};
use switchv2p_repro::traces::{hadoop, HadoopConfig};
use switchv2p_repro::vnet::Strategy;

fn workload(vms: usize, flows: usize) -> Vec<FlowSpec> {
    hadoop(&HadoopConfig {
        vms,
        flows,
        hosts: 128,
        ..HadoopConfig::default()
    })
    .into_iter()
    .map(|f| FlowSpec {
        src_vm: f.src_vm,
        dst_vm: f.dst_vm,
        start: SimTime::from_nanos(f.start_ns),
        kind: FlowKind::Tcp { bytes: f.bytes() },
    })
    .collect()
}

#[test]
fn role_swap_mid_run_keeps_the_network_correct() {
    let ft = FatTreeConfig::scaled_ft8(2);
    let strategy = SwitchV2P::default();
    let mut sim = Simulation::new(SimConfig::default(), &ft, &strategy, 256, 4);
    let vms = sim.placement.len();
    sim.add_flows(workload(vms, 500));

    // Identify the gateway ToR and a plain ToR.
    let (mut gw_tor, mut plain_tor) = (None, None);
    for sw in sim.topology().switches() {
        match sim.roles().role(sw.id) {
            Some(SwitchRole::GatewayTor) if gw_tor.is_none() => gw_tor = Some(sw.id),
            Some(SwitchRole::Tor) if plain_tor.is_none() => plain_tor = Some(sw.id),
            _ => {}
        }
    }
    let (gw_tor, plain_tor) = (gw_tor.unwrap(), plain_tor.unwrap());

    // Mid-run, the operator migrates the gateway: swap the two ToRs' roles
    // and rebuild the new gateway ToR's cache cold.
    sim.run_until(SimTime::from_micros(400));
    sim.reassign_switch_role(gw_tor, SwitchRole::Tor);
    sim.reassign_switch_role(plain_tor, SwitchRole::GatewayTor);
    let tag = switchv2p_repro::packet::SwitchTag(0); // tags only label emissions
    sim.replace_switch_agent(
        plain_tor,
        strategy.make_switch_agent(plain_tor, SwitchRole::GatewayTor, tag, 8),
    );
    sim.run();
    let s = sim.summary();
    assert_eq!(s.flows, s.flows_completed, "{s:?}");
    assert!(s.hit_rate > 0.0);
}

#[test]
fn reassigned_gateway_tor_changes_learning_behavior() {
    // Behavioral check at the protocol level: after the role change, the
    // same switch stops source learning and starts destination learning —
    // Table 1's defining difference between ToR and gateway ToR.
    use switchv2p_repro::core::SwitchV2PAgent;
    use switchv2p_repro::packet::packet::Protocol;
    use switchv2p_repro::packet::{
        FlowId, InnerHeader, OuterHeader, Packet, PacketId, PacketKind, Pip, SwitchTag,
        TcpFlags, TunnelOptions, Vip,
    };
    use switchv2p_repro::simcore::{SimDuration, SimRng};
    use switchv2p_repro::vnet::{MappingDb, SwitchAgent, SwitchCtx};

    let db = MappingDb::new();
    let pod_of = |_: Pip| None;
    let pip_of_tag = |_: SwitchTag| Pip(0);
    fn make_ctx<'a>(
        role: SwitchRole,
        db: &'a MappingDb,
        rng: &'a mut SimRng,
        pod_of: &'a dyn Fn(Pip) -> Option<u16>,
        pip_of_tag: &'a dyn Fn(SwitchTag) -> Pip,
    ) -> SwitchCtx<'a> {
        SwitchCtx {
            now: SimTime::ZERO,
            node: switchv2p_repro::topology::NodeId(0),
            tag: SwitchTag(1),
            switch_pip: Pip(9000),
            role,
            my_pod: Some(0),
            ingress_host: None,
            dst_attached: false,
            db,
            rng,
            base_rtt: SimDuration::from_micros(12),
            pod_of,
            pip_of_tag,
            trace_cache_ops: false,
        }
    }
    let resolved_pkt = || Packet {
        id: PacketId(0),
        flow: FlowId(0),
        kind: PacketKind::Data,
        outer: OuterHeader {
            src_pip: Pip(11),
            dst_pip: Pip(22),
            resolved: true,
        },
        inner: InnerHeader {
            src_vip: Vip(1),
            dst_vip: Vip(2),
            src_port: 5,
            dst_port: 80,
            protocol: Protocol::Tcp,
            seq: 0,
            ack: 0,
            flags: TcpFlags::default(),
        },
        opts: TunnelOptions::default(),
        payload: 100,
        switch_hops: 0,
        sent_ns: 0,
        first_of_flow: false,
        visited_gateway: true,
    };

    // As a plain ToR: learns the SOURCE mapping.
    let mut rng = SimRng::new(1);
    let mut tor = SwitchV2PAgent::new(SwitchRole::Tor, 16, SwitchV2PConfig::default());
    let mut c = make_ctx(SwitchRole::Tor, &db, &mut rng, &pod_of, &pip_of_tag);
    tor.on_packet(&mut c, &mut resolved_pkt());
    let _ = c;
    assert_eq!(tor.cache.peek(Vip(1)), Some(Pip(11)));
    assert_eq!(tor.cache.peek(Vip(2)), None);

    // The migrated-in gateway ToR (fresh agent, §4: rebuilt cold): learns
    // the DESTINATION mapping.
    let mut gw = SwitchV2PAgent::new(SwitchRole::GatewayTor, 16, SwitchV2PConfig::default());
    assert_eq!(gw.occupancy(), 0, "cache starts cold at the destination");
    let mut c = make_ctx(SwitchRole::GatewayTor, &db, &mut rng, &pod_of, &pip_of_tag);
    gw.on_packet(&mut c, &mut resolved_pkt());
    assert_eq!(gw.cache.peek(Vip(2)), Some(Pip(22)));
    assert_eq!(gw.cache.peek(Vip(1)), None);
}
