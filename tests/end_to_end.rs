//! Cross-crate integration tests: the full stack (traces → netsim →
//! strategies → metrics) on a small FatTree, checking the paper's
//! qualitative claims hold end-to-end.

use switchv2p_repro::baselines::{Direct, GwCache, LocalLearning, NoCache, OnDemand};
use switchv2p_repro::core::{SwitchV2P, SwitchV2PConfig};
use switchv2p_repro::metrics::RunSummary;
use switchv2p_repro::netsim::{FlowKind, FlowSpec, SimConfig, Simulation};
use switchv2p_repro::simcore::SimTime;
use switchv2p_repro::topology::FatTreeConfig;
use switchv2p_repro::traces::{hadoop, HadoopConfig};
use switchv2p_repro::vnet::Strategy;

/// A small Hadoop-like workload on the 2-pod FatTree (512 VMs).
fn mini_hadoop(vms: usize, flows: usize) -> Vec<FlowSpec> {
    let cfg = HadoopConfig {
        vms,
        flows,
        hosts: 128,
        ..HadoopConfig::default()
    };
    hadoop(&cfg)
        .into_iter()
        .map(|f| FlowSpec {
            src_vm: f.src_vm,
            dst_vm: f.dst_vm,
            start: SimTime::from_nanos(f.start_ns),
            kind: FlowKind::Tcp { bytes: f.bytes() },
        })
        .collect()
}

/// Runs `strategy` over the mini workload and returns the summary.
fn run(strategy: &dyn Strategy, total_cache: usize) -> RunSummary {
    let ft = FatTreeConfig::scaled_ft8(2);
    let mut sim = Simulation::new(SimConfig::default(), &ft, strategy, total_cache, 4);
    let vms = sim.placement.len();
    sim.add_flows(mini_hadoop(vms, 1200));
    sim.run();
    sim.summary()
}

#[test]
fn all_strategies_complete_the_workload() {
    let cache = 256; // 50% of the 512-VM address space
    for strategy in [
        &NoCache as &dyn Strategy,
        &LocalLearning,
        &GwCache,
        &OnDemand,
        &Direct,
        &SwitchV2P::default(),
    ] {
        let s = run(strategy, cache);
        assert_eq!(
            s.flows, s.flows_completed,
            "{}: {}/{} flows completed ({s:?})",
            strategy.name(),
            s.flows_completed,
            s.flows
        );
    }
}

#[test]
fn switchv2p_beats_nocache_on_fct_and_first_packet() {
    let nocache = run(&NoCache, 0);
    let sv2p = run(&SwitchV2P::default(), 256);
    assert!(sv2p.hit_rate > 0.3, "hit rate {}", sv2p.hit_rate);
    assert!(
        sv2p.avg_fct_us < nocache.avg_fct_us,
        "FCT {} !< {}",
        sv2p.avg_fct_us,
        nocache.avg_fct_us
    );
    assert!(
        sv2p.avg_first_packet_latency_us < nocache.avg_first_packet_latency_us,
        "first-packet {} !< {}",
        sv2p.avg_first_packet_latency_us,
        nocache.avg_first_packet_latency_us
    );
    // No negative effects: stretch must not exceed NoCache's (§5.1: "packet
    // routes are at most as long as in the NoCache system").
    assert!(sv2p.avg_stretch <= nocache.avg_stretch + 1e-9);
}

#[test]
fn switchv2p_reduces_gateway_load_and_network_bytes() {
    let nocache = run(&NoCache, 0);
    let sv2p = run(&SwitchV2P::default(), 256);
    assert!(
        (sv2p.gateway_packets as f64) < 0.7 * nocache.gateway_packets as f64,
        "gateway packets {} vs {}",
        sv2p.gateway_packets,
        nocache.gateway_packets
    );
    assert!(
        sv2p.total_switch_bytes < nocache.total_switch_bytes,
        "bytes {} !< {}",
        sv2p.total_switch_bytes,
        nocache.total_switch_bytes
    );
}

#[test]
fn direct_is_the_latency_floor() {
    let direct = run(&Direct, 0);
    let sv2p = run(&SwitchV2P::default(), 256);
    assert_eq!(direct.hit_rate, 1.0, "Direct never touches gateways");
    assert!(
        direct.avg_first_packet_latency_us <= sv2p.avg_first_packet_latency_us,
        "Direct {} vs SwitchV2P {}",
        direct.avg_first_packet_latency_us,
        sv2p.avg_first_packet_latency_us
    );
}

#[test]
fn switchv2p_beats_local_learning() {
    // The paper's central ablation (§3.1): topology-aware caching must beat
    // the local greedy strawman at equal aggregate cache size.
    let local = run(&LocalLearning, 64);
    let sv2p = run(&SwitchV2P::default(), 64);
    assert!(
        sv2p.hit_rate > local.hit_rate,
        "SwitchV2P {} !> LocalLearning {}",
        sv2p.hit_rate,
        local.hit_rate
    );
}

#[test]
fn larger_caches_do_not_hurt() {
    let small = run(&SwitchV2P::default(), 8);
    let large = run(&SwitchV2P::default(), 512);
    assert!(
        large.hit_rate >= small.hit_rate,
        "hit rate {} < {}",
        large.hit_rate,
        small.hit_rate
    );
}

#[test]
fn runs_are_reproducible() {
    let a = run(&SwitchV2P::default(), 128);
    let b = run(&SwitchV2P::default(), 128);
    assert_eq!(a.avg_fct_us, b.avg_fct_us);
    assert_eq!(a.gateway_packets, b.gateway_packets);
    assert_eq!(a.total_switch_bytes, b.total_switch_bytes);
    assert_eq!(a.learning_packets, b.learning_packets);
}

#[test]
fn tor_only_ablation_still_helps_fct() {
    // §4: "using a ToR-only cache for Hadoop reduces the FCT".
    let nocache = run(&NoCache, 0);
    let tor_only = run(&SwitchV2P::new(SwitchV2PConfig::tor_only()), 256);
    assert!(tor_only.hit_rate > 0.0);
    assert!(tor_only.avg_fct_us < nocache.avg_fct_us);
}
