//! Failure injection and robustness: the paper claims SwitchV2P's caches
//! are purely opportunistic — "switch failures do not affect the
//! correctness of packet forwarding" (§1/§2.1). These tests reboot switches
//! mid-run and check that nothing but performance can change.

use switchv2p_repro::baselines::NoCache;
use switchv2p_repro::core::SwitchV2P;
use switchv2p_repro::netsim::{FlowKind, FlowSpec, SimConfig, Simulation};
use switchv2p_repro::simcore::{SimDuration, SimTime};
use switchv2p_repro::topology::FatTreeConfig;
use switchv2p_repro::traces::{hadoop, HadoopConfig};
use switchv2p_repro::vnet::{Migration, Strategy};

fn workload(vms: usize, flows: usize) -> Vec<FlowSpec> {
    hadoop(&HadoopConfig {
        vms,
        flows,
        hosts: 128,
        ..HadoopConfig::default()
    })
    .into_iter()
    .map(|f| FlowSpec {
        src_vm: f.src_vm,
        dst_vm: f.dst_vm,
        start: SimTime::from_nanos(f.start_ns),
        kind: FlowKind::Tcp { bytes: f.bytes() },
    })
    .collect()
}

#[test]
fn reboot_storm_does_not_affect_correctness() {
    // Run the same workload twice: once undisturbed, once with every switch
    // cache wiped repeatedly mid-run. All flows must still complete and
    // deliver the same bytes; only latency may differ.
    let ft = FatTreeConfig::scaled_ft8(2);
    let strategy = SwitchV2P::default();

    let run = |reboots: bool| {
        let mut sim = Simulation::new(SimConfig::default(), &ft, &strategy, 256, 4);
        let vms = sim.placement.len();
        sim.add_flows(workload(vms, 600));
        if reboots {
            let mut t = SimTime::from_micros(200);
            for _ in 0..5 {
                sim.run_until(t);
                sim.fail_all_switches();
                t += SimDuration::from_micros(200);
            }
        }
        sim.run();
        sim.summary()
    };

    let clean = run(false);
    let stormy = run(true);
    assert_eq!(clean.flows, clean.flows_completed);
    assert_eq!(stormy.flows, stormy.flows_completed, "{stormy:?}");
    // Every tenant byte still arrives (completion implies full delivery);
    // exact packet counts may differ because timing and retransmissions do.
    assert_eq!(clean.flows, stormy.flows);
    // Reboots may shift performance either way (cold caches vs. retries
    // re-hitting warmed ones) but the system keeps functioning.
    assert!(stormy.hit_rate > 0.0 && clean.hit_rate > 0.0);
}

#[test]
fn single_switch_failure_is_invisible_to_tenants() {
    let ft = FatTreeConfig::scaled_ft8(2);
    let strategy = SwitchV2P::default();
    let mut sim = Simulation::new(SimConfig::default(), &ft, &strategy, 256, 4);
    let vms = sim.placement.len();
    sim.add_flows(workload(vms, 300));
    sim.run_until(SimTime::from_micros(300));
    let victims: Vec<_> = sim.topology().switches().map(|n| n.id).take(4).collect();
    for v in victims {
        sim.fail_switch(v);
    }
    sim.run();
    let s = sim.summary();
    assert_eq!(s.flows, s.flows_completed);
    assert_eq!(s.packets_dropped, 0);
}

#[test]
fn migration_under_switchv2p_loses_no_packets_with_tcp() {
    // A TCP flow spanning a migration: misdeliveries are re-forwarded, TCP
    // fills any gaps, and every byte lands exactly once.
    let ft = FatTreeConfig::scaled_ft8(2);
    let strategy = SwitchV2P::default();
    let mut sim = Simulation::new(SimConfig::default(), &ft, &strategy, 256, 4);
    let dst_vm = 3usize;
    let vip = sim.placement.vips[dst_vm];
    let target = sim
        .topology()
        .servers()
        .last()
        .map(|n| (n.id, n.pip))
        .unwrap();
    sim.add_flows([FlowSpec {
        src_vm: sim.placement.len() - 1,
        dst_vm,
        start: SimTime::ZERO,
        kind: FlowKind::Tcp { bytes: 2_000_000 },
    }]);
    sim.add_migration(Migration::new(
        SimTime::from_micros(120),
        vip,
        target.0,
        target.1,
    ));
    sim.run();
    let s = sim.summary();
    assert_eq!(s.flows_completed, 1, "{s:?}");
    assert!(s.misdelivered_packets > 0, "migration mid-flow must misdeliver");
}

#[test]
fn smaller_caches_mean_more_reordering() {
    // §4: "we observed increased packet reordering in configurations with
    // smaller cache sizes, but it is rare with larger caches."
    let ft = FatTreeConfig::scaled_ft8(2);
    let run = |cache: usize| {
        let strategy = SwitchV2P::default();
        let mut sim = Simulation::new(SimConfig::default(), &ft, &strategy, cache, 4);
        let vms = sim.placement.len();
        sim.add_flows(workload(vms, 800));
        sim.run();
        let s = sim.summary();
        assert_eq!(s.flows, s.flows_completed);
        (s.reordered_segments, s.retransmissions)
    };
    let (reorder_small, rtx_small) = run(8);
    let (reorder_large, _) = run(2048);
    assert!(
        reorder_small >= reorder_large,
        "small-cache reordering {reorder_small} < large-cache {reorder_large}"
    );
    // The reorder-tolerant TCP profile must absorb it without (significant)
    // spurious retransmissions.
    assert!(
        rtx_small < 50,
        "reordering caused {rtx_small} retransmissions despite RACK-style tolerance"
    );
}

#[test]
fn nocache_and_switchv2p_deliver_identical_byte_counts() {
    // Translation schemes must be invisible at the transport layer.
    let ft = FatTreeConfig::scaled_ft8(2);
    let deliver = |strategy: &dyn Strategy, cache: usize| {
        let mut sim = Simulation::new(SimConfig::default(), &ft, strategy, cache, 4);
        let vms = sim.placement.len();
        sim.add_flows(workload(vms, 400));
        sim.run();
        let s = sim.summary();
        assert_eq!(s.flows, s.flows_completed);
        s.flows
    };
    assert_eq!(deliver(&NoCache, 0), deliver(&SwitchV2P::default(), 256));
}
