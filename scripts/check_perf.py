#!/usr/bin/env python3
"""Perf-regression gate for the CI perf-smoke and ctl-smoke jobs.

Usage: check_perf.py COMMITTED.json FRESH.json [MIN_RATIO]
       check_perf.py --ctl REPORT.json [MIN_LOOKUPS_PER_SEC]

The `--ctl` form validates a `sv2p-ctlbench/v1` report (see EXPERIMENTS.md):
schema, internal counter consistency (the client's tallies must equal the
server's own counters — a codec or accounting bug shows up here), steady
table size, and a lookups/sec floor (default 500000).

Both files are `sv2p-perfbench/v2` through `/v5` baselines (see
EXPERIMENTS.md for the schema; v3 added the profiler columns, v4 retires
`oracle_frac` for the conservative-PDES engine and adds `cut_exchange_frac`
/ `window_count` / `cut_events`, with `peak_rss_bytes` measured per cell;
v5 adds the memory columns `placed_vms` / `bytes_per_vm` / `mapping_bytes`
and the million-VM `ft32-1m` tier).
For every (workload, strategy, shards) cell present in both, the fresh run
must reach at least MIN_RATIO (default 0.5) of the committed events/sec;
otherwise the script prints the offending cells and exits 1. Committed
cells absent from the fresh run are skipped (a `--shards 1` CI leg measures
only the single-threaded rows of a baseline that also carries sharded
rows), but at least one cell must be comparable.

The 0.5 floor is deliberately loose: CI runners are noisy and shared, so
the gate only catches order-of-magnitude regressions (an accidental debug
build, a hot-path data structure going quadratic), not few-percent drift.

For v3/v4 fresh baselines the script additionally sanity-checks the engine
self-profiler columns: every cell must carry the schema's fraction columns
plus imbalance_cv / peak_rss_bytes, each fraction must lie in [0, 1], and
the sharding-overhead fractions must sum to at most 1.05 (a little slack
for clock skew between the outer run timer and the phase timers). v4
baselines face two further gates: `peak_rss_bytes` must not be the same
duplicated watermark across 3+ cells (the bug the per-cell watermark reset
fixed — a monotone process-lifetime VmHWM masquerading as a per-cell
measurement), and every sharded cell must reach speedup >= 1.0 over its
single-threaded baseline row whenever the host has at least as many cores
as the cell has shards. A host with fewer cores than the widest sharded
cell gets a WARNING instead — speedup numbers from an oversubscribed host
measure OS scheduling, not the engine — and the speedup gate is skipped.

v5 baselines additionally gate memory: every cell must carry sane
`placed_vms` / `bytes_per_vm` / `mapping_bytes` columns (positive,
internally consistent with `peak_rss_bytes`), any `ft32-1m` cell must stay
at or below the hard 2048 bytes-per-VM ceiling from ROADMAP item 2, and —
when both baselines are v5 — a fresh cell whose `bytes_per_vm` exceeds its
committed counterpart by more than 25% fails the gate. Committed huge
cells the fresh host lacked the RAM to run arrive simply as missing fresh
cells and take the existing skip-WARNING path.
"""

import json
import sys

SCHEMAS = (
    "sv2p-perfbench/v2",
    "sv2p-perfbench/v3",
    "sv2p-perfbench/v4",
    "sv2p-perfbench/v5",
)
# imbalance_cv is a coefficient of variation, not a fraction of the run:
# it is >= 0 but not bounded by 1 and never enters the phase-sum check.
V3_FRAC_KEYS = ("oracle_frac", "barrier_frac", "merge_frac", "imbalance_cv")
V3_SUM_KEYS = ("oracle_frac", "barrier_frac", "merge_frac")
V4_FRAC_KEYS = ("barrier_frac", "merge_frac", "cut_exchange_frac", "imbalance_cv")
V4_SUM_KEYS = ("barrier_frac", "merge_frac", "cut_exchange_frac")
FRAC_SUM_CEILING = 1.05
# v5 memory gates: the million-VM tier must hold the whole-process peak
# RSS at or below 2 KB per placed VM (ROADMAP item 2), and no cell may
# regress its bytes-per-VM footprint by more than 25% against the
# committed baseline.
HUGE_TOPOLOGY = "ft32-1m"
BYTES_PER_VM_CEILING = 2048.0
BYTES_PER_VM_MAX_GROWTH = 1.25
V5_MEM_KEYS = ("placed_vms", "bytes_per_vm", "mapping_bytes")


def is_v4_plus(doc):
    return doc.get("schema") in ("sv2p-perfbench/v4", "sv2p-perfbench/v5")


def is_v5(doc):
    return doc.get("schema") == "sv2p-perfbench/v5"


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") not in SCHEMAS:
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    return doc


def cells(doc):
    return {(c["workload"], c["strategy"], c.get("shards", 1)): c for c in doc["cells"]}


def check_profile_columns(doc, path):
    """v3/v4 sanity assertions on the fresh baseline's profiler columns."""
    v4 = is_v4_plus(doc)
    frac_keys = V4_FRAC_KEYS if v4 else V3_FRAC_KEYS
    sum_keys = V4_SUM_KEYS if v4 else V3_SUM_KEYS
    count_keys = ("window_count", "cut_events") if v4 else ()
    failures = []
    for key, c in sorted(cells(doc).items()):
        required = frac_keys + count_keys + ("peak_rss_bytes",)
        missing = [k for k in required if k not in c]
        if missing:
            failures.append(f"{key}: missing profiler column(s) {missing}")
            continue
        for k in frac_keys:
            lo, hi = (0.0, 1.0) if k != "imbalance_cv" else (0.0, float("inf"))
            if not (lo <= c[k] <= hi):
                failures.append(f"{key}: {k}={c[k]} outside [{lo}, {hi}]")
        total = sum(c[k] for k in sum_keys)
        if total > FRAC_SUM_CEILING:
            failures.append(
                f"{key}: phase fractions sum to {total:.3f} "
                f"(> {FRAC_SUM_CEILING}) — phase timers overlap the run"
            )
    if failures:
        print(f"\nprofiler-column check failed for {path}:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)
    n = len(doc["cells"])
    print(f"profiler columns ok: {n} cell(s) carry sane phase fractions")


def check_rss_watermarks(doc, path):
    """v4: peak_rss_bytes must be per-cell, not a duplicated process-lifetime
    watermark. Three or more cells sharing one exact nonzero value is the
    signature of an unreset monotone VmHWM (distinct cells allocate distinct
    working sets; an exact byte-for-byte tie across 3+ is not plausible)."""
    counts = {}
    for c in doc["cells"]:
        rss = c.get("peak_rss_bytes", 0)
        if rss:
            counts[rss] = counts.get(rss, 0) + 1
    dups = {rss: n for rss, n in counts.items() if n >= 3}
    if dups:
        print(f"\nrss-watermark check failed for {path}:", file=sys.stderr)
        for rss, n in sorted(dups.items()):
            print(
                f"  peak_rss_bytes={rss} duplicated across {n} cells — "
                "watermark not reset between cells",
                file=sys.stderr,
            )
        sys.exit(1)
    print(f"rss watermarks ok: {len(doc['cells'])} cell(s), no duplicated VmHWM")


def check_speedups(doc, path):
    """v4: on a host with enough cores, the conservative-PDES engine must
    beat its own single-threaded baseline (speedup >= 1.0). Oversubscribed
    hosts (cores < shards) are skipped with a WARNING — there the number
    measures OS scheduling, not the engine."""
    host_cores = doc.get("host_cores", 0)
    failures = []
    checked = skipped = 0
    for key, c in sorted(cells(doc).items()):
        shards = key[2]
        if shards <= 1:
            continue
        if not host_cores or host_cores < shards:
            skipped += 1
            continue
        checked += 1
        if c["speedup"] < 1.0:
            failures.append(
                f"{key}: speedup {c['speedup']:.2f}x < 1.0x over the "
                f"single-threaded row on a {host_cores}-core host"
            )
    if skipped:
        print(
            f"WARNING: speedup gate skipped for {skipped} sharded cell(s): "
            f"host has {host_cores} core(s), fewer than the cell's shards"
        )
    if failures:
        print(f"\nspeedup check failed for {path}:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)
    if checked:
        print(f"speedups ok: {checked} sharded cell(s) at >= 1.0x")


def check_memory_columns(doc, path):
    """v5: every cell must carry sane memory columns, and any cell on the
    million-VM topology must hold whole-process peak RSS at or below the
    hard 2048 bytes-per-VM ceiling. `bytes_per_vm` is recomputed from
    `peak_rss_bytes / placed_vms` and must agree with the recorded value —
    a mismatch means the columns were measured at different instants and
    the regression surface is not trustworthy."""
    failures = []
    huge_cells = 0
    for key, c in sorted(cells(doc).items()):
        missing = [k for k in V5_MEM_KEYS if k not in c]
        if missing:
            failures.append(f"{key}: missing memory column(s) {missing}")
            continue
        if c["placed_vms"] <= 0:
            failures.append(f"{key}: placed_vms={c['placed_vms']} is not positive")
            continue
        if c["bytes_per_vm"] <= 0 or c["mapping_bytes"] <= 0:
            failures.append(
                f"{key}: bytes_per_vm={c['bytes_per_vm']} "
                f"mapping_bytes={c['mapping_bytes']} must be positive"
            )
            continue
        derived = c.get("peak_rss_bytes", 0) / c["placed_vms"]
        if derived and abs(derived - c["bytes_per_vm"]) > max(1.0, 0.01 * derived):
            failures.append(
                f"{key}: bytes_per_vm={c['bytes_per_vm']:.1f} disagrees with "
                f"peak_rss_bytes/placed_vms={derived:.1f}"
            )
        if c["mapping_bytes"] > c.get("peak_rss_bytes", float("inf")):
            failures.append(
                f"{key}: mapping_bytes={c['mapping_bytes']} exceeds the "
                f"whole-process peak_rss_bytes={c.get('peak_rss_bytes')}"
            )
        if c.get("topology") == HUGE_TOPOLOGY:
            huge_cells += 1
            if c["bytes_per_vm"] > BYTES_PER_VM_CEILING:
                failures.append(
                    f"{key}: {c['bytes_per_vm']:.1f} bytes/VM on {HUGE_TOPOLOGY} "
                    f"exceeds the hard {BYTES_PER_VM_CEILING:.0f} B/VM ceiling"
                )
    if failures:
        print(f"\nmemory-column check failed for {path}:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)
    n = len(doc["cells"])
    huge = (
        f", {huge_cells} {HUGE_TOPOLOGY} cell(s) under {BYTES_PER_VM_CEILING:.0f} B/VM"
        if huge_cells
        else ""
    )
    print(f"memory columns ok: {n} cell(s) carry sane bytes-per-VM{huge}")


def check_bytes_per_vm_regression(committed, fresh):
    """v5 vs v5: a fresh cell may not exceed its committed bytes-per-VM by
    more than BYTES_PER_VM_MAX_GROWTH. Returns a list of failure strings;
    cells missing from either side are simply not compared (the
    events/sec loop already reports skips)."""
    failures = []
    for key, base in sorted(committed.items()):
        now = fresh.get(key)
        if now is None or "bytes_per_vm" not in base or "bytes_per_vm" not in now:
            continue
        ratio = now["bytes_per_vm"] / max(base["bytes_per_vm"], 1e-9)
        status = "ok" if ratio <= BYTES_PER_VM_MAX_GROWTH else "FAIL"
        print(
            f"{status:4} {key[0]:<14} {key[1]:<10} x{key[2]:<2} "
            f"{base['bytes_per_vm']:>10.1f} -> {now['bytes_per_vm']:>10.1f} B/VM "
            f"({ratio:.2f}x, ceiling {BYTES_PER_VM_MAX_GROWTH:.2f}x)"
        )
        if ratio > BYTES_PER_VM_MAX_GROWTH:
            failures.append(
                f"{key}: {now['bytes_per_vm']:.1f} B/VM is more than "
                f"{BYTES_PER_VM_MAX_GROWTH:.2f}x the committed "
                f"{base['bytes_per_vm']:.1f} B/VM"
            )
    return failures


CTL_SCHEMA = "sv2p-ctlbench/v1"
CTL_MIN_LOOKUPS_PER_SEC = 500_000.0


def check_ctl(path, min_lookups_per_sec):
    """Validates one sv2p-ctlbench report: schema, counters, throughput."""
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != CTL_SCHEMA:
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    srv = doc.get("server")
    if not isinstance(srv, dict):
        sys.exit(f"{path}: missing server stats object")

    failures = []

    def expect(cond, msg):
        if not cond:
            failures.append(msg)

    # Client tallies and the server's own counters must agree exactly.
    for k in ("lookups", "invalidates", "installs"):
        expect(
            srv[k] == doc[k],
            f"server {k}={srv[k]} != client {k}={doc[k]}",
        )
    expect(srv["hits"] <= srv["lookups"], "server hits exceed lookups")
    expect(
        doc["ops"] == doc["lookups"] + doc["invalidates"] + doc["installs"],
        "client op kinds do not sum to total ops",
    )
    # The server additionally served stats/preload batches, never fewer ops.
    expect(srv["ops"] >= doc["ops"], "server executed fewer ops than the client sent")
    expect(srv["rejected"] == 0, f"{srv['rejected']} writes rejected")
    # Every invalidate is paired with a reinstall, so the table holds steady.
    expect(
        srv["mappings"] == doc["mappings"],
        f"table drifted: {srv['mappings']} mappings, expected {doc['mappings']}",
    )
    expect(
        srv["epoch"] >= doc["invalidates"] + doc["installs"],
        "epoch below the number of accepted writes",
    )
    expect(
        doc["hit_rate"] >= 0.98,
        f"hit rate {doc['hit_rate']:.4f} below 0.98 on a steady table",
    )
    expect(
        doc["lookups_per_sec"] >= min_lookups_per_sec,
        f"{doc['lookups_per_sec']:.0f} lookups/sec below the "
        f"{min_lookups_per_sec:.0f} floor",
    )

    print(
        f"ctl report: {doc['mappings']} mappings, {doc['ops']} ops, "
        f"{doc['lookups_per_sec']:.0f} lookups/s, hit rate {doc['hit_rate']:.4f}, "
        f"rtt p99 {doc['rtt_p99_ns']} ns, server exec p99 {srv['exec_p99_ns']} ns"
    )
    if failures:
        print(f"\nctl-smoke failed for {path}:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)
    print("ctl-smoke ok: counters consistent, throughput above floor")


def main():
    if len(sys.argv) >= 2 and sys.argv[1] == "--ctl":
        if len(sys.argv) not in (3, 4):
            sys.exit(__doc__)
        floor = float(sys.argv[3]) if len(sys.argv) == 4 else CTL_MIN_LOOKUPS_PER_SEC
        check_ctl(sys.argv[2], floor)
        return
    if len(sys.argv) not in (3, 4):
        sys.exit(__doc__)
    committed_doc = load(sys.argv[1])
    committed = cells(committed_doc)
    fresh_doc = load(sys.argv[2])
    fresh = cells(fresh_doc)
    min_ratio = float(sys.argv[3]) if len(sys.argv) == 4 else 0.5

    host_cores = fresh_doc.get("host_cores", 0)
    widest = max((shards for _, _, shards in fresh), default=1)
    if host_cores and widest > host_cores:
        print(
            f"WARNING: fresh run used up to {widest} shards on a "
            f"{host_cores}-core host; sharded speedup numbers measure OS "
            "scheduling, not the engine, and the committed baseline should "
            "not be refreshed from this machine.\n"
        )

    if fresh_doc.get("schema") != "sv2p-perfbench/v2":
        check_profile_columns(fresh_doc, sys.argv[2])
        if is_v4_plus(fresh_doc):
            check_rss_watermarks(fresh_doc, sys.argv[2])
            check_speedups(fresh_doc, sys.argv[2])
        if is_v5(fresh_doc):
            check_memory_columns(fresh_doc, sys.argv[2])
        print()

    compared = 0
    skipped = []
    failures = []
    for key, base in sorted(committed.items()):
        now = fresh.get(key)
        if now is None:
            skipped.append(key)
            continue
        compared += 1
        ratio = now["events_per_sec"] / max(base["events_per_sec"], 1e-9)
        status = "ok" if ratio >= min_ratio else "FAIL"
        print(
            f"{status:4} {key[0]:<14} {key[1]:<10} x{key[2]:<2} "
            f"{base['events_per_sec']:>12.0f} -> {now['events_per_sec']:>12.0f} ev/s "
            f"({ratio:.2f}x, floor {min_ratio:.2f}x)"
        )
        if ratio < min_ratio:
            failures.append(
                f"{key}: {now['events_per_sec']:.0f} ev/s is below "
                f"{min_ratio:.2f}x of committed {base['events_per_sec']:.0f} ev/s"
            )

    if is_v5(committed_doc) and is_v5(fresh_doc):
        print()
        failures.extend(check_bytes_per_vm_regression(committed, fresh))

    if skipped:
        # An explicit block so baseline drift is visible in CI logs: every
        # committed cell the fresh run no longer measures is listed here.
        print(
            f"\nWARNING: {len(skipped)} committed baseline cell(s) were not "
            "measured by the fresh run and were skipped:"
        )
        for workload, strategy, shards in skipped:
            print(f"  skipped {workload:<14} {strategy:<10} x{shards}")
        print(
            "  If these cells were removed on purpose, refresh the committed "
            "baseline; otherwise the gate is silently narrowing."
        )
    if compared == 0:
        failures.append("no comparable cells between the two baselines")
    if failures:
        print("\nperf-smoke failed:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)
    print(f"\nperf-smoke ok: {compared} cell(s) within budget")


if __name__ == "__main__":
    main()
