#!/usr/bin/env python3
"""Perf-regression gate for the CI perf-smoke job.

Usage: check_perf.py COMMITTED.json FRESH.json [MIN_RATIO]

Both files are `sv2p-perfbench/v2` baselines (see EXPERIMENTS.md for the
schema). For every (workload, strategy, shards) cell present in both, the
fresh run must reach at least MIN_RATIO (default 0.5) of the committed
events/sec; otherwise the script prints the offending cells and exits 1.
Committed cells absent from the fresh run are skipped (a `--shards 1` CI
leg measures only the single-threaded rows of a baseline that also carries
sharded rows), but at least one cell must be comparable.

The 0.5 floor is deliberately loose: CI runners are noisy and shared, so
the gate only catches order-of-magnitude regressions (an accidental debug
build, a hot-path data structure going quadratic), not few-percent drift.
"""

import json
import sys


def cells(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "sv2p-perfbench/v2":
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    return {(c["workload"], c["strategy"], c.get("shards", 1)): c for c in doc["cells"]}


def main():
    if len(sys.argv) not in (3, 4):
        sys.exit(__doc__)
    committed = cells(sys.argv[1])
    fresh = cells(sys.argv[2])
    min_ratio = float(sys.argv[3]) if len(sys.argv) == 4 else 0.5

    compared = 0
    skipped = []
    failures = []
    for key, base in sorted(committed.items()):
        now = fresh.get(key)
        if now is None:
            skipped.append(key)
            continue
        compared += 1
        ratio = now["events_per_sec"] / max(base["events_per_sec"], 1e-9)
        status = "ok" if ratio >= min_ratio else "FAIL"
        print(
            f"{status:4} {key[0]:<14} {key[1]:<10} x{key[2]:<2} "
            f"{base['events_per_sec']:>12.0f} -> {now['events_per_sec']:>12.0f} ev/s "
            f"({ratio:.2f}x, floor {min_ratio:.2f}x)"
        )
        if ratio < min_ratio:
            failures.append(
                f"{key}: {now['events_per_sec']:.0f} ev/s is below "
                f"{min_ratio:.2f}x of committed {base['events_per_sec']:.0f} ev/s"
            )

    if skipped:
        # An explicit block so baseline drift is visible in CI logs: every
        # committed cell the fresh run no longer measures is listed here.
        print(
            f"\nWARNING: {len(skipped)} committed baseline cell(s) were not "
            "measured by the fresh run and were skipped:"
        )
        for workload, strategy, shards in skipped:
            print(f"  skipped {workload:<14} {strategy:<10} x{shards}")
        print(
            "  If these cells were removed on purpose, refresh the committed "
            "baseline; otherwise the gate is silently narrowing."
        )
    if compared == 0:
        failures.append("no comparable cells between the two baselines")
    if failures:
        print("\nperf-smoke failed:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)
    print(f"\nperf-smoke ok: {compared} cell(s) within budget")


if __name__ == "__main__":
    main()
