//! Criterion micro-benchmarks of the hot-path primitives, plus a small
//! end-to-end simulation per scheme (the figure binaries under `src/bin/`
//! regenerate the paper's actual tables and figures; these benches track
//! the performance of the reproduction itself).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use sv2p_bench::harness::{run_spec, ExperimentSpec, StrategyKind};
use sv2p_ilp::{Demand, PlacementProblem};
use sv2p_packet::packet::Protocol;
use sv2p_packet::wire::{decode, encode};
use sv2p_packet::{
    FlowId, InnerHeader, OuterHeader, Packet, PacketId, PacketKind, Pip, TcpFlags,
    TunnelOptions, Vip,
};
use sv2p_simcore::{EventQueue, SimTime};
use sv2p_topology::{FatTreeConfig, NodeId, Routing};
use sv2p_traces::{hadoop, HadoopConfig};
use switchv2p::cache::{Admission, DirectMappedCache};

fn sample_packet() -> Packet {
    Packet {
        id: PacketId(0),
        flow: FlowId(1),
        kind: PacketKind::Data,
        outer: OuterHeader {
            src_pip: Pip(0x0a000101),
            dst_pip: Pip(0x0a030201),
            resolved: false,
        },
        inner: InnerHeader {
            src_vip: Vip(0x14000001),
            dst_vip: Vip(0x14000100),
            src_port: 3333,
            dst_port: 80,
            protocol: Protocol::Tcp,
            seq: 0,
            ack: 0,
            flags: TcpFlags::default(),
        },
        opts: TunnelOptions::default(),
        payload: 1000,
        switch_hops: 0,
        sent_ns: 0,
        first_of_flow: false,
        visited_gateway: false,
    }
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache/lookup_hit", |b| {
        let mut cache = DirectMappedCache::new(1024);
        for i in 0..1024u32 {
            cache.insert(Vip(i), Pip(i), Admission::All);
        }
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) & 1023;
            black_box(cache.lookup(Vip(i)))
        });
    });
    c.bench_function("cache/insert_evict", |b| {
        let mut cache = DirectMappedCache::new(64);
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(cache.insert(Vip(i), Pip(i), Admission::All))
        });
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("simcore/event_queue_push_pop", |b| {
        let mut q: EventQueue<u64> = EventQueue::with_capacity(4096);
        // Keep a standing population of 1024 events.
        for i in 0..1024 {
            q.schedule_at(SimTime::from_nanos(i), i);
        }
        b.iter(|| {
            let ev = q.pop().unwrap();
            q.schedule_at(q.now() + sv2p_simcore::SimDuration::from_nanos(1000), ev.payload);
        });
    });
}

fn bench_routing(c: &mut Criterion) {
    let cfg = FatTreeConfig::ft8_10k();
    let topo = cfg.build();
    let routing = Routing::new(&cfg, &topo);
    let servers: Vec<NodeId> = topo.servers().map(|n| n.id).collect();
    c.bench_function("topology/ecmp_next_link", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_add(0x9E3779B97F4A7C15);
            let a = servers[(k % servers.len() as u64) as usize];
            let z = servers[((k >> 32) % servers.len() as u64) as usize];
            black_box(routing.next_link(&topo, a, z, k))
        });
    });
}

fn bench_wire(c: &mut Criterion) {
    let pkt = sample_packet();
    c.bench_function("packet/wire_encode", |b| b.iter(|| black_box(encode(&pkt))));
    let buf = encode(&pkt);
    c.bench_function("packet/wire_decode", |b| {
        b.iter(|| black_box(decode(buf.clone()).unwrap()))
    });
    c.bench_function("packet/ecmp_key", |b| b.iter(|| black_box(pkt.ecmp_key())));
}

fn bench_ilp(c: &mut Criterion) {
    let demands: Vec<Demand> = (0..200)
        .map(|i| Demand {
            weight: 1 + (i % 7) as u64,
            mapping: (i % 50) as u32,
            options: vec![((i % 20) as usize, 3.0), (((i + 7) % 20) as usize, 5.0)],
            miss_cost: 25.0,
        })
        .collect();
    let p = PlacementProblem {
        num_switches: 20,
        capacity: 8,
        demands,
    };
    c.bench_function("ilp/greedy_200_demands", |b| {
        b.iter(|| black_box(p.solve_greedy()))
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let flows = hadoop(&HadoopConfig {
        vms: 256,
        flows: 150,
        hosts: 128,
        ..Default::default()
    });
    let mut group = c.benchmark_group("end_to_end_150_flows");
    group.sample_size(10);
    for strategy in [
        StrategyKind::NoCache,
        StrategyKind::SwitchV2P,
        StrategyKind::LocalLearning,
    ] {
        group.bench_function(strategy.name(), |b| {
            b.iter(|| {
                let spec = ExperimentSpec::builder(FatTreeConfig::scaled_ft8(2), strategy)
                    .vms_per_server(2)
                    .flows(flows.clone())
                    .cache_entries(128)
                    .build();
                black_box(run_spec(&spec))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cache,
    bench_event_queue,
    bench_routing,
    bench_wire,
    bench_ilp,
    bench_end_to_end
);
criterion_main!(benches);
