//! Quick vs. paper-scale experiment parameters.
//!
//! The paper's simulations replay up to 99 297 flows on an 80-switch
//! FatTree — hours of single-core CPU per sweep point. The `Quick` profile
//! shrinks the *flow count* while preserving the properties results depend
//! on (destination-reuse ratio via `active_vms`, load, topology, cache
//! fraction semantics); `Full` is the paper's configuration.

use sv2p_topology::FatTreeConfig;
use sv2p_traces::{
    AlibabaConfig, HadoopConfig, IncastConfig, MicroburstsConfig, VideoConfig, WebSearchConfig,
};

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Single-core-friendly (minutes per figure).
    Quick,
    /// The paper's §5 parameters (hours).
    Full,
    /// The million-VM FT32 tier (1 048 576 VMs, streamed workload).
    /// Figure bins treat it as quick-sized traffic; `perfbench` adds the
    /// dedicated FT32 memory cell.
    Huge,
}

impl Scale {
    /// Parses `--full` / `--huge` from CLI args (`--huge` wins).
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--huge") {
            Scale::Huge
        } else if std::env::args().any(|a| a == "--full") {
            Scale::Full
        } else {
            Scale::Quick
        }
    }

    /// The FT32-1M topology of the huge tier.
    pub fn ft32(self) -> FatTreeConfig {
        FatTreeConfig::ft32_1m()
    }

    /// The huge tier's streamed Hadoop-style workload: the full
    /// million-VM pool with a 4096-VM active subset (preserving the
    /// flows-per-destination reuse ratio) and load matched to the active
    /// servers. Pair with [`Self::ft32`] at 32 VMs per server.
    pub fn huge_hadoop(self) -> HadoopConfig {
        HadoopConfig {
            vms: 1_048_576,
            active_vms: Some(4_096),
            flows: 20_000,
            hosts: 4_096,
            ..Default::default()
        }
    }

    /// The FT8-10K topology (both scales use the real switch fabric; quick
    /// mode shrinks traffic, not the network).
    pub fn ft8(self) -> FatTreeConfig {
        FatTreeConfig::ft8_10k()
    }

    /// Hadoop trace parameters.
    pub fn hadoop(self) -> HadoopConfig {
        match self {
            Scale::Quick => HadoopConfig {
                active_vms: Some(512),
                flows: 5_000,
                ..Default::default()
            },
            Scale::Full => HadoopConfig::default(),
            Scale::Huge => Scale::Quick.hadoop(),
        }
    }

    /// WebSearch trace parameters.
    pub fn websearch(self) -> WebSearchConfig {
        match self {
            Scale::Quick => WebSearchConfig {
                active_vms: Some(512),
                flows: 400,
                ..Default::default()
            },
            Scale::Full => WebSearchConfig::default(),
            Scale::Huge => Scale::Quick.websearch(),
        }
    }

    /// Microbursts trace parameters.
    pub fn microbursts(self) -> MicroburstsConfig {
        match self {
            Scale::Quick => MicroburstsConfig {
                // Shrink the pool with the burst count so the paper's
                // cross-burst destination reuse survives the scale-down.
                vms: 1_024,
                bursts: 1_500,
                mean_burst_ns: 12_000,
                ..Default::default()
            },
            Scale::Full => MicroburstsConfig::default(),
            Scale::Huge => Scale::Quick.microbursts(),
        }
    }

    /// Video trace parameters.
    pub fn video(self) -> VideoConfig {
        match self {
            Scale::Quick => VideoConfig {
                duration_ns: 20_000_000,
                ..Default::default()
            },
            Scale::Full => VideoConfig::default(),
            Scale::Huge => Scale::Quick.video(),
        }
    }

    /// Alibaba trace parameters (and its topology).
    pub fn alibaba(self) -> (FatTreeConfig, AlibabaConfig, u32) {
        match self {
            Scale::Quick => (
                // The full 50-pod fabric with a reduced container census.
                FatTreeConfig::ft16_400k(),
                AlibabaConfig {
                    vms: 409_600,
                    rpcs: 10_000,
                    duration_ns: 1_000_000,
                    ..Default::default()
                },
                32,
            ),
            Scale::Full => (
                FatTreeConfig::ft16_400k(),
                AlibabaConfig {
                    vms: 409_600,
                    ..Default::default()
                },
                32,
            ),
            Scale::Huge => Scale::Quick.alibaba(),
        }
    }

    /// Incast parameters for the migration study.
    pub fn incast(self) -> IncastConfig {
        IncastConfig::default()
    }

    /// The active address count the cache fraction is measured against.
    pub fn active_addresses(self, dataset: &str) -> usize {
        match (self, dataset) {
            (Scale::Quick | Scale::Huge, "hadoop") => 512,
            (Scale::Quick | Scale::Huge, "websearch") => 512,
            (Scale::Quick | Scale::Huge, "microbursts") => 1_024,
            (_, "alibaba") => 409_600,
            (Scale::Full, _) => 10_240,
            (Scale::Quick | Scale::Huge, _) => 10_240,
        }
    }

    /// The aggregate cache budget for the fixed-cache analyses (Figures
    /// 7-10, Tables 4-5, ablations), which the paper runs "with a cache
    /// size of 50%".
    ///
    /// At full scale that is 0.5 x 10 240 = 5 120 entries = 64 lines per
    /// switch on the 80-switch FT8-10K. Quick mode shrinks the *address
    /// space*, so matching the 50% *fraction* would leave 3-line caches
    /// whose direct-mapped conflicts dominate; instead quick mode matches
    /// the paper's **per-switch capacity** (64 lines x 80 switches), the
    /// quantity these analyses actually depend on.
    pub fn analysis_cache_entries(self, _dataset: &str) -> usize {
        match self {
            Scale::Quick | Scale::Huge => 64 * 80,
            Scale::Full => 10_240 / 2,
        }
    }

    /// The cache-size axis (fractions of the active address space).
    pub fn cache_fracs(self) -> Vec<f64> {
        match self {
            Scale::Quick | Scale::Huge => vec![0.01, 0.1, 0.5, 1.0, 4.0, 15.0],
            Scale::Full => vec![0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 4.0, 100.0, 1500.0],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_smaller_than_full() {
        assert!(Scale::Quick.hadoop().flows < Scale::Full.hadoop().flows);
        assert!(Scale::Quick.websearch().flows < Scale::Full.websearch().flows);
        assert!(Scale::Quick.cache_fracs().len() < Scale::Full.cache_fracs().len());
    }

    #[test]
    fn quick_preserves_reuse_ratio() {
        let q = Scale::Quick.hadoop();
        let f = Scale::Full.hadoop();
        let q_ratio = q.flows as f64 / q.active_vms.unwrap() as f64;
        let f_ratio = f.flows as f64 / f.vms as f64;
        assert!(
            (q_ratio / f_ratio - 1.0).abs() < 0.2,
            "quick reuse {q_ratio:.1} vs full {f_ratio:.1}"
        );
    }
}
