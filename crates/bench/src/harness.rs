//! Shared experiment machinery.

use sv2p_metrics::RunSummary;
use sv2p_netsim::{FlowKind, FlowSpec, SimConfig, Simulation};
use sv2p_simcore::{SimDuration, SimTime};
use sv2p_topology::FatTreeConfig;
use sv2p_traces::{FlowProfile, TraceFlow};
use sv2p_transport::UdpSchedule;
use sv2p_vnet::{Migration, Strategy};
use switchv2p::{SwitchV2P, SwitchV2PConfig};

use sv2p_baselines::{Bluebird, Controller, Direct, GwCache, LocalLearning, NoCache, OnDemand};

/// Which translation scheme to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StrategyKind {
    /// Pure gateway (baseline of every improvement factor).
    NoCache,
    /// §3.1 strawman.
    LocalLearning,
    /// Sailfish-style gateway-ToR caches.
    GwCache,
    /// Bluebird route caches.
    Bluebird,
    /// VL2/Hoverboard immediate host offload.
    OnDemand,
    /// Preprogrammed host-driven.
    Direct,
    /// Centralized ILP allocation (driven externally).
    Controller,
    /// The paper's system.
    SwitchV2P,
    /// SwitchV2P with a custom protocol configuration (ablations).
    SwitchV2PWith(SwitchV2PConfig),
}

impl StrategyKind {
    /// Instantiates the strategy.
    pub fn build(self) -> Box<dyn Strategy> {
        match self {
            StrategyKind::NoCache => Box::new(NoCache),
            StrategyKind::LocalLearning => Box::new(LocalLearning),
            StrategyKind::GwCache => Box::new(GwCache),
            StrategyKind::Bluebird => Box::new(Bluebird::default()),
            StrategyKind::OnDemand => Box::new(OnDemand),
            StrategyKind::Direct => Box::new(Direct),
            StrategyKind::Controller => Box::new(Controller),
            StrategyKind::SwitchV2P => Box::new(SwitchV2P::default()),
            StrategyKind::SwitchV2PWith(cfg) => Box::new(SwitchV2P::new(cfg)),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::NoCache => "NoCache",
            StrategyKind::LocalLearning => "LocalLearning",
            StrategyKind::GwCache => "GwCache",
            StrategyKind::Bluebird => "Bluebird",
            StrategyKind::OnDemand => "OnDemand",
            StrategyKind::Direct => "Direct",
            StrategyKind::Controller => "Controller",
            StrategyKind::SwitchV2P | StrategyKind::SwitchV2PWith(_) => "SwitchV2P",
        }
    }

    /// True if the scheme's behavior depends on the cache-size axis
    /// (cache-free baselines are run once per sweep).
    pub fn cache_sensitive(self) -> bool {
        !matches!(
            self,
            StrategyKind::NoCache | StrategyKind::OnDemand | StrategyKind::Direct
        )
    }

    /// The §5.1 comparison set (Figures 5–6).
    pub fn figure5_set() -> Vec<StrategyKind> {
        vec![
            StrategyKind::NoCache,
            StrategyKind::LocalLearning,
            StrategyKind::GwCache,
            StrategyKind::Bluebird,
            StrategyKind::OnDemand,
            StrategyKind::Direct,
            StrategyKind::SwitchV2P,
        ]
    }
}

/// One experiment to run.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Topology.
    pub topology: FatTreeConfig,
    /// VMs per server.
    pub vms_per_server: u32,
    /// The workload.
    pub flows: Vec<TraceFlow>,
    /// Scheme under test.
    pub strategy: StrategyKind,
    /// Aggregate cache entries across all caching switches.
    pub cache_entries: usize,
    /// Migrations to apply (VM index, time µs, "move to last server").
    pub migrations: Vec<(usize, u64)>,
    /// Hard simulation-time stop in µs (guards overload configurations
    /// where TCP would retry for a very long simulated time).
    pub end_of_time_us: Option<u64>,
    /// RNG seed.
    pub seed: u64,
    /// Short run label (dataset, variant, sweep point); names the run in
    /// manifests and trace files. May be empty.
    pub label: String,
}

impl ExperimentSpec {
    /// Builds the simulator and loads the workload. Tracing is enabled when
    /// the process was started with `--telemetry DIR` (see [`crate::cli`]).
    pub fn build(&self) -> Simulation {
        let strategy = self.strategy.build();
        let telemetry = if crate::cli::telemetry_dir().is_some() {
            sv2p_telemetry::TelemetryConfig::enabled()
        } else {
            sv2p_telemetry::TelemetryConfig::disabled()
        };
        let cfg = SimConfig {
            seed: self.seed,
            end_of_time: self.end_of_time_us.map(SimTime::from_micros),
            telemetry,
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(
            cfg,
            &self.topology,
            strategy.as_ref(),
            self.cache_entries,
            self.vms_per_server,
        );
        let n_vms = sim.placement.len();
        sim.add_flows(to_flow_specs(&self.flows, n_vms));
        for &(vm, at_us) in &self.migrations {
            let vip = sim.placement.vips[vm];
            let target = sim
                .topology()
                .servers()
                .last()
                .map(|n| (n.id, n.pip))
                .expect("servers exist");
            sim.add_migration(Migration::new(
                SimTime::from_micros(at_us),
                vip,
                target.0,
                target.1,
            ));
        }
        sim
    }
}

/// Converts trace flows to simulator flow specs, wrapping VM indices into
/// the placement size (traces generated for a larger pool replay fine on a
/// smaller instance).
pub fn to_flow_specs(flows: &[TraceFlow], n_vms: usize) -> Vec<FlowSpec> {
    flows
        .iter()
        .filter_map(|f| {
            let src = f.src_vm % n_vms;
            let dst = f.dst_vm % n_vms;
            if src == dst {
                return None;
            }
            let start = SimTime::from_nanos(f.start_ns);
            let kind = match f.profile {
                FlowProfile::Tcp { bytes } => FlowKind::Tcp { bytes },
                FlowProfile::UdpCbr {
                    rate_bps,
                    duration_ns,
                    payload,
                } => FlowKind::Udp {
                    schedule: UdpSchedule::cbr(
                        start,
                        SimDuration::from_nanos(duration_ns),
                        rate_bps,
                        payload,
                    ),
                },
                FlowProfile::UdpBurst { count, payload } => FlowKind::Udp {
                    schedule: UdpSchedule::burst(start, count, payload, 100_000_000_000),
                },
            };
            Some(FlowSpec {
                src_vm: src,
                dst_vm: dst,
                start,
                kind,
            })
        })
        .collect()
}

/// Runs one experiment to completion, recording a run manifest (and trace
/// files when `--telemetry` is on) via [`crate::cli::record_run`].
pub fn run_spec(spec: &ExperimentSpec) -> RunSummary {
    let mut sim = spec.build();
    let start = std::time::Instant::now();
    sim.run();
    let wall = start.elapsed().as_secs_f64();
    let summary = sim.summary();
    crate::cli::record_run(spec, &sim, &summary, wall);
    summary
}

/// One output row of a figure: scheme × cache size with the three panels
/// (hit rate, FCT improvement, first-packet improvement vs NoCache).
#[derive(Debug, Clone)]
pub struct Row {
    /// Scheme name.
    pub scheme: &'static str,
    /// Cache size as a fraction of the active address space.
    pub cache_frac: f64,
    /// The run's summary.
    pub summary: RunSummary,
}

/// Runs the Figure-5-style sweep: `strategies × cache_fracs`, reusing a
/// single run for cache-insensitive baselines. `active_addresses` converts
/// fractions to entry counts. Runs fan out over threads (bounded by
/// available parallelism).
pub fn sweep(
    base: &ExperimentSpec,
    strategies: &[StrategyKind],
    cache_fracs: &[f64],
    active_addresses: usize,
) -> Vec<Row> {
    // Materialize the distinct (strategy, frac, entries) jobs.
    let mut jobs: Vec<(StrategyKind, f64, usize)> = Vec::new();
    for &s in strategies {
        if s.cache_sensitive() {
            for &f in cache_fracs {
                let entries = ((f * active_addresses as f64).round() as usize).max(1);
                jobs.push((s, f, entries));
            }
        } else {
            jobs.push((s, 0.0, 0));
        }
    }

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(jobs.len().max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<std::sync::Mutex<Option<Row>>> =
        (0..jobs.len()).map(|_| std::sync::Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let (strategy, frac, entries) = jobs[i];
                let spec = ExperimentSpec {
                    strategy,
                    cache_entries: entries,
                    ..base.clone()
                };
                let summary = run_spec(&spec);
                *results[i].lock().expect("sweep lock") = Some(Row {
                    scheme: strategy.name(),
                    cache_frac: frac,
                    summary,
                });
            });
        }
    });

    let rows: Vec<Row> = results
        .into_iter()
        .map(|r| r.into_inner().expect("sweep lock").expect("job ran"))
        .collect();

    // Expand cache-insensitive runs to every requested fraction so tables
    // are rectangular.
    let mut expanded = Vec::new();
    for row in rows {
        let kind = strategies
            .iter()
            .copied()
            .find(|s| s.name() == row.scheme)
            .expect("known scheme");
        if kind.cache_sensitive() {
            expanded.push(row);
        } else {
            for &f in cache_fracs {
                expanded.push(Row {
                    cache_frac: f,
                    ..row.clone()
                });
            }
        }
    }
    expanded
}

/// Prints the three Figure-5 panels (hit rate, FCT improvement ×,
/// first-packet improvement ×) normalized by NoCache.
pub fn print_figure5_panels(title: &str, rows: &[Row], cache_fracs: &[f64]) {
    let nocache = rows
        .iter()
        .find(|r| r.scheme == "NoCache")
        .expect("NoCache row present");
    let base_fct = nocache.summary.avg_fct_us;
    let base_first = nocache.summary.avg_first_packet_latency_us;

    let mut schemes: Vec<&'static str> = Vec::new();
    for r in rows {
        if !schemes.contains(&r.scheme) {
            schemes.push(r.scheme);
        }
    }

    let cell = |scheme: &str, frac: f64| -> Option<&Row> {
        rows.iter()
            .find(|r| r.scheme == scheme && (r.cache_frac - frac).abs() < 1e-12)
    };

    for (panel, f) in [
        (
            "hit rate (fraction of packets not reaching gateways)",
            Box::new(|r: &Row| format!("{:.3}", r.summary.hit_rate))
                as Box<dyn Fn(&Row) -> String>,
        ),
        (
            "avg FCT improvement over NoCache (x)",
            Box::new(move |r: &Row| format!("{:.2}", base_fct / r.summary.avg_fct_us.max(1e-9))),
        ),
        (
            "first-packet latency improvement over NoCache (x)",
            Box::new(move |r: &Row| {
                format!(
                    "{:.2}",
                    base_first / r.summary.avg_first_packet_latency_us.max(1e-9)
                )
            }),
        ),
    ] {
        println!("\n{title} — {panel}");
        print!("{:<14}", "cache size");
        for &frac in cache_fracs {
            print!("{:>10}", format!("{}%", (frac * 100.0).round()));
        }
        println!();
        for scheme in &schemes {
            print!("{scheme:<14}");
            for &frac in cache_fracs {
                match cell(scheme, frac) {
                    Some(r) => print!("{:>10}", f(r)),
                    None => print!("{:>10}", "-"),
                }
            }
            println!();
        }
    }

    // Per-cause drop accounting, so congestion losses are never confused
    // with injected faults when a figure is run under a fault plan.
    let any_drops = rows.iter().any(|r| r.summary.packets_dropped > 0);
    if any_drops {
        println!("\n{title} — data-packet drops by cause");
        for r in rows {
            println!(
                "{:<14} {:>6}% cache  {}",
                r.scheme,
                (r.cache_frac * 100.0).round(),
                drop_breakdown(&r.summary)
            );
        }
    }
}

/// Formats a summary's per-cause drop counters on one line.
pub fn drop_breakdown(s: &RunSummary) -> String {
    format!(
        "drops total {} (queue {}, unroutable {}, blackout {}, loss {})",
        s.packets_dropped, s.drops_queue, s.drops_unroutable, s.drops_blackout, s.drops_loss
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv2p_traces::{hadoop, HadoopConfig};

    fn tiny_spec(strategy: StrategyKind, cache: usize) -> ExperimentSpec {
        ExperimentSpec {
            topology: FatTreeConfig::scaled_ft8(2),
            vms_per_server: 2,
            flows: hadoop(&HadoopConfig {
                vms: 256,
                flows: 200,
                hosts: 128,
                ..Default::default()
            }),
            strategy,
            cache_entries: cache,
            migrations: vec![],
            end_of_time_us: None,
            seed: 1,
            label: "unit".into(),
        }
    }

    #[test]
    fn run_spec_completes_flows() {
        let s = run_spec(&tiny_spec(StrategyKind::SwitchV2P, 128));
        assert_eq!(s.flows, s.flows_completed);
        assert!(s.hit_rate > 0.0);
    }

    #[test]
    fn sweep_is_rectangular_and_reuses_baselines() {
        let base = tiny_spec(StrategyKind::NoCache, 0);
        let fracs = [0.1, 0.5];
        let rows = sweep(
            &base,
            &[
                StrategyKind::NoCache,
                StrategyKind::SwitchV2P,
                StrategyKind::Direct,
            ],
            &fracs,
            256,
        );
        assert_eq!(rows.len(), 3 * fracs.len());
        // NoCache rows are the same run duplicated across fractions.
        let nc: Vec<&Row> = rows.iter().filter(|r| r.scheme == "NoCache").collect();
        assert_eq!(nc.len(), 2);
        assert_eq!(nc[0].summary.avg_fct_us, nc[1].summary.avg_fct_us);
        // SwitchV2P rows differ by cache size.
        let sv: Vec<&Row> = rows.iter().filter(|r| r.scheme == "SwitchV2P").collect();
        assert_eq!(sv.len(), 2);
    }

    #[test]
    fn to_flow_specs_wraps_and_drops_self_flows() {
        let flows = vec![
            TraceFlow {
                src_vm: 300,
                dst_vm: 5,
                start_ns: 10,
                profile: FlowProfile::Tcp { bytes: 100 },
            },
            TraceFlow {
                src_vm: 7,
                dst_vm: 263, // 263 % 256 == 7 → self flow, dropped
                start_ns: 20,
                profile: FlowProfile::Tcp { bytes: 100 },
            },
        ];
        let specs = to_flow_specs(&flows, 256);
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].src_vm, 44);
        assert_eq!(specs[0].dst_vm, 5);
    }
}
