//! Shared experiment machinery.

use sv2p_metrics::RunSummary;
use sv2p_netsim::{ChurnPlan, ChurnSpec, Engine, FlowKind, FlowSpec, SimConfig};
use sv2p_simcore::{FxHashMap, SimDuration, SimTime};
use sv2p_topology::FatTreeConfig;
use sv2p_traces::{FlowProfile, FlowSource, TraceFlow};
use sv2p_transport::UdpSchedule;
use sv2p_vnet::{Migration, Strategy};
use switchv2p::{InvalidationMode, SwitchV2P, SwitchV2PConfig};

use sv2p_baselines::{Bluebird, Controller, Direct, GwCache, LocalLearning, NoCache, OnDemand};

/// Which translation scheme to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StrategyKind {
    /// Pure gateway (baseline of every improvement factor).
    NoCache,
    /// §3.1 strawman.
    LocalLearning,
    /// Sailfish-style gateway-ToR caches.
    GwCache,
    /// Bluebird route caches.
    Bluebird,
    /// VL2/Hoverboard immediate host offload.
    OnDemand,
    /// Preprogrammed host-driven.
    Direct,
    /// Centralized ILP allocation (driven externally).
    Controller,
    /// The paper's system.
    SwitchV2P,
    /// SwitchV2P with a custom protocol configuration (ablations).
    SwitchV2PWith(SwitchV2PConfig),
}

impl StrategyKind {
    /// Instantiates the strategy.
    pub fn build(self) -> Box<dyn Strategy> {
        match self {
            StrategyKind::NoCache => Box::new(NoCache),
            StrategyKind::LocalLearning => Box::new(LocalLearning),
            StrategyKind::GwCache => Box::new(GwCache),
            StrategyKind::Bluebird => Box::new(Bluebird::default()),
            StrategyKind::OnDemand => Box::new(OnDemand),
            StrategyKind::Direct => Box::new(Direct),
            StrategyKind::Controller => Box::new(Controller),
            StrategyKind::SwitchV2P => Box::new(SwitchV2P::default()),
            StrategyKind::SwitchV2PWith(cfg) => Box::new(SwitchV2P::new(cfg)),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::NoCache => "NoCache",
            StrategyKind::LocalLearning => "LocalLearning",
            StrategyKind::GwCache => "GwCache",
            StrategyKind::Bluebird => "Bluebird",
            StrategyKind::OnDemand => "OnDemand",
            StrategyKind::Direct => "Direct",
            StrategyKind::Controller => "Controller",
            StrategyKind::SwitchV2P | StrategyKind::SwitchV2PWith(_) => "SwitchV2P",
        }
    }

    /// True if the scheme's behavior depends on the cache-size axis
    /// (cache-free baselines are run once per sweep).
    pub fn cache_sensitive(self) -> bool {
        !matches!(
            self,
            StrategyKind::NoCache | StrategyKind::OnDemand | StrategyKind::Direct
        )
    }

    /// The §5.1 comparison set (Figures 5–6).
    pub fn figure5_set() -> Vec<StrategyKind> {
        vec![
            StrategyKind::NoCache,
            StrategyKind::LocalLearning,
            StrategyKind::GwCache,
            StrategyKind::Bluebird,
            StrategyKind::OnDemand,
            StrategyKind::Direct,
            StrategyKind::SwitchV2P,
        ]
    }

    /// The scheme's unique identity in sweep outputs. Unlike [`Self::name`]
    /// (which every `SwitchV2PWith` variant shares, by design — manifests
    /// and trace labels group by display name), the id carries a variant
    /// discriminator so two differently-configured SwitchV2P jobs in one
    /// sweep never collide.
    pub fn id(&self) -> StrategyId {
        let variant = match self {
            StrategyKind::SwitchV2PWith(cfg) => switchv2p_variant(cfg),
            _ => String::new(),
        };
        StrategyId {
            name: self.name(),
            variant,
        }
    }
}

/// The knobs of `cfg` that differ from the paper's default configuration,
/// as a compact comma-joined label ("" for the default itself).
fn switchv2p_variant(cfg: &SwitchV2PConfig) -> String {
    let d = SwitchV2PConfig::default();
    let mut parts: Vec<String> = Vec::new();
    if cfg.p_learn != d.p_learn {
        parts.push(format!("p-learn={}", cfg.p_learn));
    }
    if cfg.learning_packets != d.learning_packets {
        parts.push("no-learning".into());
    }
    if cfg.spillover != d.spillover {
        parts.push("no-spillover".into());
    }
    if cfg.spill_only_active != d.spill_only_active {
        parts.push("spill-active-only".into());
    }
    if cfg.promotion != d.promotion {
        parts.push("no-promotion".into());
    }
    if cfg.invalidation != d.invalidation {
        parts.push(
            match cfg.invalidation {
                InvalidationMode::None => "no-invalidations",
                InvalidationMode::NoTimestampVector => "no-ts-vector",
                InvalidationMode::TimestampVector => "ts-vector",
            }
            .into(),
        );
    }
    if cfg.tor_only != d.tor_only {
        parts.push("tor-only".into());
    }
    if cfg.layer_weights != d.layer_weights {
        let (t, s, c) = cfg.layer_weights;
        parts.push(format!("weights={t}-{s}-{c}"));
    }
    parts.join(",")
}

/// Unique identity of a scheme within a sweep: display name plus a variant
/// discriminator for non-default `SwitchV2PWith` configurations. This is
/// the key [`FigureTable`] joins rows on — name-based joins aliased every
/// SwitchV2P variant onto one row.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StrategyId {
    /// Display name shared by all variants of a scheme.
    pub name: &'static str,
    /// Non-default knobs, or "" for a default configuration.
    pub variant: String,
}

impl std::fmt::Display for StrategyId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.variant.is_empty() {
            write!(f, "{}", self.name)
        } else {
            write!(f, "{}[{}]", self.name, self.variant)
        }
    }
}

/// One experiment to run.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Topology.
    pub topology: FatTreeConfig,
    /// VMs per server.
    pub vms_per_server: u32,
    /// The workload (materialized; empty when `flow_source` is set).
    pub flows: Vec<TraceFlow>,
    /// Streaming workload: pulled flow-by-flow at build time so trace
    /// memory stays O(in-flight) (million-VM tiers). Yields are converted
    /// with the same wrap/drop rules as `flows`; both may be set — the
    /// materialized flows register first.
    pub flow_source: Option<FlowSource>,
    /// Scheme under test.
    pub strategy: StrategyKind,
    /// Aggregate cache entries across all caching switches.
    pub cache_entries: usize,
    /// Migrations to apply (VM index, time µs, "move to last server").
    pub migrations: Vec<(usize, u64)>,
    /// Continuous-churn scenario: expanded against the placement at build
    /// time into tenant traffic, migration waves and timeline marks.
    pub churn: Option<ChurnSpec>,
    /// Gateway bounded-queue capacity (0 = the legacy infinitely parallel
    /// gateway; >0 turns on the single-server overload model that sheds).
    pub gateway_queue_cap: u32,
    /// Hard simulation-time stop in µs (guards overload configurations
    /// where TCP would retry for a very long simulated time).
    pub end_of_time_us: Option<u64>,
    /// RNG seed.
    pub seed: u64,
    /// Shards for the multi-core engine (1 = single-threaded; results are
    /// byte-identical either way).
    pub shards: u16,
    /// Engine self-profiling (wall-clock phase timers + occupancy
    /// histograms; simulation output stays byte-identical). Defaults to
    /// whether the process was started with `--profile DIR`.
    pub profile: bool,
    /// Short run label (dataset, variant, sweep point); names the run in
    /// manifests and trace files. May be empty.
    pub label: String,
}

impl ExperimentSpec {
    /// Starts a spec from its two mandatory inputs; everything else has the
    /// historical defaults (80 VMs/server, no flows, no cache, no
    /// migrations, no time limit, seed 1, empty label, and the process-wide
    /// `--shards` setting). This is the only way bench bins construct specs
    /// — field-struct updates on a cloned base silently kept stale labels
    /// and seeds when new fields grew in.
    pub fn builder(topology: FatTreeConfig, strategy: StrategyKind) -> ExperimentSpecBuilder {
        ExperimentSpecBuilder {
            spec: ExperimentSpec {
                topology,
                vms_per_server: 80,
                flows: Vec::new(),
                flow_source: None,
                strategy,
                cache_entries: 0,
                migrations: Vec::new(),
                churn: None,
                gateway_queue_cap: 0,
                end_of_time_us: None,
                seed: 1,
                shards: crate::cli::args().shards(),
                profile: crate::cli::profile_dir().is_some(),
                label: String::new(),
            },
        }
    }

    /// Builds the engine (single-threaded or sharded, per the spec) and
    /// loads the workload. Tracing is enabled when the process was started
    /// with `--telemetry DIR` (see [`crate::cli`]).
    pub fn build(&self) -> Engine {
        let strategy = self.strategy.build();
        let telemetry = if crate::cli::telemetry_dir().is_some() {
            sv2p_telemetry::TelemetryConfig::enabled()
        } else {
            sv2p_telemetry::TelemetryConfig::disabled()
        };
        let mut cfg = SimConfig {
            seed: self.seed,
            end_of_time: self.end_of_time_us.map(SimTime::from_micros),
            telemetry,
            profile: self.profile,
            ..SimConfig::default()
        };
        cfg.gateway.queue_cap = self.gateway_queue_cap;
        let mut sim = Engine::new(
            cfg,
            &self.topology,
            strategy.as_ref(),
            self.cache_entries,
            self.vms_per_server,
            self.shards,
        );
        let n_vms = sim.placement().len();
        sim.add_flows(to_flow_specs(&self.flows, n_vms));
        if let Some(src) = &self.flow_source {
            // Clone the source (sweeps build the same spec repeatedly) and
            // stream it straight into the engine.
            sim.add_flows(to_flow_spec_iter(src.clone(), n_vms));
        }
        for &(vm, at_us) in &self.migrations {
            let vip = sim.placement().vips[vm];
            let target = sim
                .topology()
                .servers()
                .last()
                .map(|n| (n.id, n.pip))
                .expect("servers exist");
            sim.add_migration(Migration::new(
                SimTime::from_micros(at_us),
                vip,
                target.0,
                target.1,
            ));
        }
        if let Some(churn) = &self.churn {
            let servers: Vec<_> = sim.topology().servers().map(|n| (n.id, n.pip)).collect();
            let plan = ChurnPlan::generate(churn, sim.placement(), &servers);
            sim.apply_churn_plan(&plan);
        }
        sim
    }
}

/// Builder returned by [`ExperimentSpec::builder`]; finish with
/// [`Self::build`].
#[derive(Debug, Clone)]
pub struct ExperimentSpecBuilder {
    spec: ExperimentSpec,
}

impl ExperimentSpecBuilder {
    /// VMs per server (default 80, the paper's FT8-10K density).
    pub fn vms_per_server(mut self, n: u32) -> Self {
        self.spec.vms_per_server = n;
        self
    }

    /// The workload.
    pub fn flows(mut self, flows: Vec<TraceFlow>) -> Self {
        self.spec.flows = flows;
        self
    }

    /// A streaming workload source (see [`ExperimentSpec::flow_source`]).
    pub fn flow_source(mut self, src: FlowSource) -> Self {
        self.spec.flow_source = Some(src);
        self
    }

    /// Scheme under test (overrides the one given to `builder`; sweeps use
    /// this to stamp per-job strategies onto a shared base).
    pub fn strategy(mut self, s: StrategyKind) -> Self {
        self.spec.strategy = s;
        self
    }

    /// Aggregate cache entries across all caching switches.
    pub fn cache_entries(mut self, n: usize) -> Self {
        self.spec.cache_entries = n;
        self
    }

    /// Migrations to apply (VM index, time µs, "move to last server").
    pub fn migrations(mut self, m: Vec<(usize, u64)>) -> Self {
        self.spec.migrations = m;
        self
    }

    /// Continuous-churn scenario to expand and register at build time.
    pub fn churn(mut self, spec: ChurnSpec) -> Self {
        self.spec.churn = Some(spec);
        self
    }

    /// Gateway bounded-queue capacity (default 0 = legacy unbounded model).
    pub fn gateway_queue_cap(mut self, cap: u32) -> Self {
        self.spec.gateway_queue_cap = cap;
        self
    }

    /// Hard simulation-time stop in µs.
    pub fn end_of_time_us(mut self, us: u64) -> Self {
        self.spec.end_of_time_us = Some(us);
        self
    }

    /// RNG seed (default 1).
    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.seed = seed;
        self
    }

    /// Shard count for the multi-core engine (default: the process-wide
    /// `--shards` flag, which itself defaults to 1).
    pub fn shards(mut self, shards: u16) -> Self {
        self.spec.shards = shards;
        self
    }

    /// Engine self-profiling override (default: whether the process ran
    /// with `--profile DIR`).
    pub fn profile(mut self, on: bool) -> Self {
        self.spec.profile = on;
        self
    }

    /// Short run label for manifests and trace files.
    pub fn label(mut self, l: impl Into<String>) -> Self {
        self.spec.label = l.into();
        self
    }

    /// Finishes the spec.
    pub fn build(self) -> ExperimentSpec {
        self.spec
    }
}

/// Converts trace flows to simulator flow specs, wrapping VM indices into
/// the placement size (traces generated for a larger pool replay fine on a
/// smaller instance).
pub fn to_flow_specs(flows: &[TraceFlow], n_vms: usize) -> Vec<FlowSpec> {
    flows
        .iter()
        .filter_map(|f| trace_flow_to_spec(f, n_vms))
        .collect()
}

/// Streaming variant of [`to_flow_specs`]: converts lazily so a
/// [`FlowSource`] can feed the engine without a materialized `Vec`.
pub fn to_flow_spec_iter(
    flows: impl IntoIterator<Item = TraceFlow>,
    n_vms: usize,
) -> impl Iterator<Item = FlowSpec> {
    flows
        .into_iter()
        .filter_map(move |f| trace_flow_to_spec(&f, n_vms))
}

/// Converts one trace flow, wrapping endpoints and dropping self flows.
fn trace_flow_to_spec(f: &TraceFlow, n_vms: usize) -> Option<FlowSpec> {
    let src = f.src_vm % n_vms;
    let dst = f.dst_vm % n_vms;
    if src == dst {
        return None;
    }
    let start = SimTime::from_nanos(f.start_ns);
    let kind = match f.profile {
        FlowProfile::Tcp { bytes } => FlowKind::Tcp { bytes },
        FlowProfile::UdpCbr {
            rate_bps,
            duration_ns,
            payload,
        } => FlowKind::Udp {
            schedule: UdpSchedule::cbr(
                start,
                SimDuration::from_nanos(duration_ns),
                rate_bps,
                payload,
            ),
        },
        FlowProfile::UdpBurst { count, payload } => FlowKind::Udp {
            schedule: UdpSchedule::burst(start, count, payload, 100_000_000_000),
        },
    };
    Some(FlowSpec {
        src_vm: src,
        dst_vm: dst,
        start,
        kind,
    })
}

/// Runs one experiment to completion, recording a run manifest (and trace
/// files when `--telemetry` is on) via [`crate::cli::record_run`].
pub fn run_spec(spec: &ExperimentSpec) -> RunSummary {
    let mut sim = spec.build();
    let start = std::time::Instant::now();
    sim.run();
    let wall = start.elapsed().as_secs_f64();
    let summary = sim.summary();
    crate::cli::record_run(spec, &sim, &summary, wall);
    summary
}

/// One output row of a figure: scheme × cache size with the three panels
/// (hit rate, FCT improvement, first-packet improvement vs NoCache).
#[derive(Debug, Clone)]
pub struct Row {
    /// Unique scheme identity (variant-aware; see [`StrategyId`]).
    pub strategy: StrategyId,
    /// Cache size as a fraction of the active address space.
    pub cache_frac: f64,
    /// The run's summary.
    pub summary: RunSummary,
}

/// The result of a [`sweep`]: rows in job order, plus an O(1) join index
/// keyed by `(StrategyId, cache_frac)` — by identity, never by display
/// name, so `SwitchV2P` and `SwitchV2PWith(..)` variants stay distinct.
#[derive(Debug, Clone)]
pub struct FigureTable {
    rows: Vec<Row>,
    index: FxHashMap<(StrategyId, u64), usize>,
}

impl FigureTable {
    /// Indexes `rows`. Later duplicates of a `(strategy, frac)` key win,
    /// but sweeps never produce duplicates.
    pub fn from_rows(rows: Vec<Row>) -> Self {
        let mut index = FxHashMap::default();
        for (i, r) in rows.iter().enumerate() {
            index.insert((r.strategy.clone(), r.cache_frac.to_bits()), i);
        }
        FigureTable { rows, index }
    }

    /// The row for `strategy` at cache fraction `frac`, if that cell ran.
    pub fn cell(&self, strategy: &StrategyId, frac: f64) -> Option<&Row> {
        self.index
            .get(&(strategy.clone(), frac.to_bits()))
            .map(|&i| &self.rows[i])
    }

    /// All rows, in job order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Distinct strategies in first-appearance order.
    pub fn strategies(&self) -> Vec<StrategyId> {
        let mut out: Vec<StrategyId> = Vec::new();
        for r in &self.rows {
            if !out.contains(&r.strategy) {
                out.push(r.strategy.clone());
            }
        }
        out
    }
}

/// Runs the Figure-5-style sweep: `strategies × cache_fracs`, reusing a
/// single run for cache-insensitive baselines. `active_addresses` converts
/// fractions to entry counts. Runs fan out over threads (bounded by
/// available parallelism).
pub fn sweep(
    base: &ExperimentSpec,
    strategies: &[StrategyKind],
    cache_fracs: &[f64],
    active_addresses: usize,
) -> FigureTable {
    // Materialize the distinct (strategy, frac, entries) jobs.
    let mut jobs: Vec<(StrategyKind, f64, usize)> = Vec::new();
    for &s in strategies {
        if s.cache_sensitive() {
            for &f in cache_fracs {
                let entries = ((f * active_addresses as f64).round() as usize).max(1);
                jobs.push((s, f, entries));
            }
        } else {
            jobs.push((s, 0.0, 0));
        }
    }

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(jobs.len().max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<std::sync::Mutex<Option<Row>>> =
        (0..jobs.len()).map(|_| std::sync::Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let (strategy, frac, entries) = jobs[i];
                let mut spec = base.clone();
                spec.strategy = strategy;
                spec.cache_entries = entries;
                let summary = run_spec(&spec);
                *results[i].lock().expect("sweep lock") = Some(Row {
                    strategy: strategy.id(),
                    cache_frac: frac,
                    summary,
                });
            });
        }
    });

    let rows: Vec<Row> = results
        .into_iter()
        .map(|r| r.into_inner().expect("sweep lock").expect("job ran"))
        .collect();

    // Expand cache-insensitive runs to every requested fraction so tables
    // are rectangular. Each row is paired with the job that produced it —
    // re-finding the kind by display name aliased SwitchV2P variants.
    let mut expanded = Vec::new();
    for (row, &(kind, _, _)) in rows.into_iter().zip(jobs.iter()) {
        if kind.cache_sensitive() {
            expanded.push(row);
        } else {
            for &f in cache_fracs {
                expanded.push(Row {
                    cache_frac: f,
                    ..row.clone()
                });
            }
        }
    }
    FigureTable::from_rows(expanded)
}

/// Prints the three Figure-5 panels (hit rate, FCT improvement ×,
/// first-packet improvement ×) normalized by NoCache.
pub fn print_figure5_panels(title: &str, table: &FigureTable, cache_fracs: &[f64]) {
    let nocache = table
        .rows()
        .iter()
        .find(|r| r.strategy.name == "NoCache")
        .expect("NoCache row present");
    let base_fct = nocache.summary.avg_fct_us;
    let base_first = nocache.summary.avg_first_packet_latency_us;

    let schemes = table.strategies();

    for (panel, f) in [
        (
            "hit rate (fraction of packets not reaching gateways)",
            Box::new(|r: &Row| format!("{:.3}", r.summary.hit_rate))
                as Box<dyn Fn(&Row) -> String>,
        ),
        (
            "avg FCT improvement over NoCache (x)",
            Box::new(move |r: &Row| format!("{:.2}", base_fct / r.summary.avg_fct_us.max(1e-9))),
        ),
        (
            "first-packet latency improvement over NoCache (x)",
            Box::new(move |r: &Row| {
                format!(
                    "{:.2}",
                    base_first / r.summary.avg_first_packet_latency_us.max(1e-9)
                )
            }),
        ),
    ] {
        println!("\n{title} — {panel}");
        print!("{:<14}", "cache size");
        for &frac in cache_fracs {
            print!("{:>10}", format!("{}%", (frac * 100.0).round()));
        }
        println!();
        for scheme in &schemes {
            print!("{:<14}", scheme.to_string());
            for &frac in cache_fracs {
                match table.cell(scheme, frac) {
                    Some(r) => print!("{:>10}", f(r)),
                    None => print!("{:>10}", "-"),
                }
            }
            println!();
        }
    }

    // Per-cause drop accounting, so congestion losses are never confused
    // with injected faults when a figure is run under a fault plan.
    let any_drops = table.rows().iter().any(|r| r.summary.packets_dropped > 0);
    if any_drops {
        println!("\n{title} — data-packet drops by cause");
        for r in table.rows() {
            println!(
                "{:<14} {:>6}% cache  {}",
                r.strategy.to_string(),
                (r.cache_frac * 100.0).round(),
                drop_breakdown(&r.summary)
            );
        }
    }
}

/// Formats a summary's per-cause drop counters on one line.
pub fn drop_breakdown(s: &RunSummary) -> String {
    format!(
        "drops total {} (queue {}, unroutable {}, blackout {}, loss {}, shed {})",
        s.packets_dropped,
        s.drops_queue,
        s.drops_unroutable,
        s.drops_blackout,
        s.drops_loss,
        s.drops_shed
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv2p_traces::{hadoop, HadoopConfig};

    fn tiny_spec(strategy: StrategyKind, cache: usize) -> ExperimentSpec {
        ExperimentSpec::builder(FatTreeConfig::scaled_ft8(2), strategy)
            .vms_per_server(2)
            .flows(hadoop(&HadoopConfig {
                vms: 256,
                flows: 200,
                hosts: 128,
                ..Default::default()
            }))
            .cache_entries(cache)
            .label("unit")
            .build()
    }

    #[test]
    fn builder_defaults_match_historical_spec() {
        let s = ExperimentSpec::builder(FatTreeConfig::scaled_ft8(2), StrategyKind::NoCache)
            .build();
        assert_eq!(s.vms_per_server, 80);
        assert!(s.flows.is_empty() && s.migrations.is_empty());
        assert!(s.flow_source.is_none());
        assert_eq!(s.cache_entries, 0);
        assert!(s.churn.is_none());
        assert_eq!(s.gateway_queue_cap, 0, "legacy gateway model by default");
        assert_eq!(s.end_of_time_us, None);
        assert_eq!(s.seed, 1);
        assert_eq!(s.shards, 1, "no --shards flag means single-threaded");
        assert!(!s.profile, "no --profile flag means profiling off");
        assert!(s.label.is_empty());
    }

    #[test]
    fn streamed_source_runs_byte_identical_to_materialized() {
        use sv2p_traces::FlowSource;
        let cfg = HadoopConfig {
            vms: 256,
            flows: 200,
            hosts: 128,
            ..Default::default()
        };
        let mat = run_spec(&tiny_spec(StrategyKind::SwitchV2P, 128));
        let streamed_spec = ExperimentSpec::builder(
            FatTreeConfig::scaled_ft8(2),
            StrategyKind::SwitchV2P,
        )
        .vms_per_server(2)
        .flow_source(FlowSource::hadoop(&cfg))
        .cache_entries(128)
        .label("unit")
        .build();
        let streamed = run_spec(&streamed_spec);
        assert_eq!(format!("{mat:?}"), format!("{streamed:?}"));
    }

    #[test]
    fn run_spec_completes_flows() {
        let s = run_spec(&tiny_spec(StrategyKind::SwitchV2P, 128));
        assert_eq!(s.flows, s.flows_completed);
        assert!(s.hit_rate > 0.0);
    }

    #[test]
    fn sweep_is_rectangular_and_reuses_baselines() {
        let base = tiny_spec(StrategyKind::NoCache, 0);
        let fracs = [0.1, 0.5];
        let table = sweep(
            &base,
            &[
                StrategyKind::NoCache,
                StrategyKind::SwitchV2P,
                StrategyKind::Direct,
            ],
            &fracs,
            256,
        );
        assert_eq!(table.rows().len(), 3 * fracs.len());
        // NoCache rows are the same run duplicated across fractions.
        let nc: Vec<&Row> = table
            .rows()
            .iter()
            .filter(|r| r.strategy.name == "NoCache")
            .collect();
        assert_eq!(nc.len(), 2);
        assert_eq!(nc[0].summary.avg_fct_us, nc[1].summary.avg_fct_us);
        // SwitchV2P rows differ by cache size.
        let sv: Vec<&Row> = table
            .rows()
            .iter()
            .filter(|r| r.strategy.name == "SwitchV2P")
            .collect();
        assert_eq!(sv.len(), 2);
        // The join index agrees with the rows.
        let id = StrategyKind::SwitchV2P.id();
        for &f in &fracs {
            assert!(table.cell(&id, f).is_some());
        }
    }

    #[test]
    fn sweep_keeps_switchv2p_variants_distinct() {
        // The regression this table exists for: a default SwitchV2P and a
        // configured variant share the display name, so a name-keyed join
        // collapsed them onto one row.
        let base = tiny_spec(StrategyKind::NoCache, 0);
        let variant = StrategyKind::SwitchV2PWith(SwitchV2PConfig::without_spillover());
        let fracs = [0.25];
        let table = sweep(
            &base,
            &[StrategyKind::SwitchV2P, variant],
            &fracs,
            256,
        );
        assert_eq!(table.rows().len(), 2);
        let ids = table.strategies();
        assert_eq!(ids.len(), 2, "variants must not alias: {ids:?}");
        assert_eq!(ids[0].to_string(), "SwitchV2P");
        assert_eq!(ids[1].to_string(), "SwitchV2P[no-spillover]");
        let a = table.cell(&StrategyKind::SwitchV2P.id(), 0.25).expect("default cell");
        let b = table.cell(&variant.id(), 0.25).expect("variant cell");
        assert_eq!(a.strategy.variant, "");
        assert_eq!(b.strategy.variant, "no-spillover");
    }

    #[test]
    fn strategy_ids_describe_ablations() {
        assert_eq!(StrategyKind::NoCache.id().to_string(), "NoCache");
        assert_eq!(
            StrategyKind::SwitchV2PWith(SwitchV2PConfig::default()).id(),
            StrategyKind::SwitchV2P.id(),
            "a default config is the same identity as the plain scheme"
        );
        assert_eq!(
            StrategyKind::SwitchV2PWith(SwitchV2PConfig::without_invalidations())
                .id()
                .to_string(),
            "SwitchV2P[no-invalidations]"
        );
        assert_eq!(
            StrategyKind::SwitchV2PWith(SwitchV2PConfig::tor_heavy())
                .id()
                .to_string(),
            "SwitchV2P[weights=4-1-1]"
        );
    }

    #[test]
    fn to_flow_specs_wraps_and_drops_self_flows() {
        let flows = vec![
            TraceFlow {
                src_vm: 300,
                dst_vm: 5,
                start_ns: 10,
                profile: FlowProfile::Tcp { bytes: 100 },
            },
            TraceFlow {
                src_vm: 7,
                dst_vm: 263, // 263 % 256 == 7 → self flow, dropped
                start_ns: 20,
                profile: FlowProfile::Tcp { bytes: 100 },
            },
        ];
        let specs = to_flow_specs(&flows, 256);
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].src_vm, 44);
        assert_eq!(specs[0].dst_vm, 5);
    }
}
