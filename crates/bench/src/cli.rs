//! Shared CLI arguments and run recording for the bench binaries.
//!
//! Every binary under `src/bin/` begins with [`init`] (its own name) and
//! ends with [`finish`]. In between, [`run_spec`](crate::harness::run_spec)
//! records one [`RunManifest`] per simulation into a process-wide sink;
//! `finish` writes the sink — sorted by [`RunManifest::sort_key`], so the
//! file never depends on sweep-thread scheduling — to
//! `results/<bin>[.<dataset>].manifest.jsonl`.
//!
//! Common flags (accepted anywhere on the command line):
//!
//! * `--full` — paper-scale parameters (default: quick);
//! * `--huge` — the million-VM FT32 tier (perfbench memory cell; figure
//!   bins fall back to quick-sized traffic);
//! * `--seed N` — RNG seed override (default: 1);
//! * `--shards N` — run every simulation on the pod-sharded multi-core
//!   engine with N shards (default: 1, the single-threaded engine; results
//!   are byte-identical either way);
//! * `--telemetry DIR` — enable structured tracing and write
//!   `<label>.events.jsonl` / `<label>.samples.jsonl` per run into DIR;
//! * `--profile DIR` — enable engine self-profiling and write
//!   `<label>.profile.json` per run into DIR (phase wall-clock breakdown,
//!   shard-imbalance accounting, occupancy histograms; inspect with
//!   `sv2p-profile`). Simulation output stays byte-identical.
//!
//! The `churn` bin additionally honours:
//!
//! * `--churn-horizon-us N` — churn timeline length (default scale-based);
//! * `--churn-waves N` — migration-wave count override for every intensity;
//! * `--churn-wave-fraction F` — fraction of live VMs each wave migrates;
//! * `--churn-queue-cap N` — gateway bounded-queue capacity (0 = legacy
//!   unbounded gateway, no shedding).
//!
//! The first argument that is not one of these flags is the dataset /
//! sub-command selector (`fig5 -- hadoop`, `fig6 -- all`, …).

use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};

use sv2p_metrics::RunSummary;
use sv2p_netsim::Engine;
use sv2p_telemetry::manifest::write_manifests;
use sv2p_telemetry::RunManifest;
use sv2p_topology::FatTreeConfig;

use crate::harness::ExperimentSpec;
use crate::Scale;

/// Engine-selection arguments (`--shards`).
#[derive(Debug, Clone, Default)]
pub struct ShardArgs {
    /// `--shards N`: run simulations on the sharded engine.
    pub shards: Option<u16>,
}

/// Churn-experiment overrides (`--churn-*`; honoured by the `churn` bin).
#[derive(Debug, Clone, Default)]
pub struct ChurnArgs {
    /// `--churn-horizon-us N`: churn timeline length override.
    pub horizon_us: Option<u64>,
    /// `--churn-waves N`: migration-wave count override.
    pub waves: Option<u32>,
    /// `--churn-wave-fraction F`: per-wave migrated fraction override.
    pub wave_fraction: Option<f64>,
    /// `--churn-queue-cap N`: gateway bounded-queue capacity override.
    pub queue_cap: Option<u32>,
}

/// Side-output arguments (`--telemetry`, `--profile`).
#[derive(Debug, Clone, Default)]
pub struct OutputArgs {
    /// `--telemetry DIR`: trace every run into DIR.
    pub telemetry: Option<PathBuf>,
    /// `--profile DIR`: write an engine self-profile per run into DIR.
    pub profile: Option<PathBuf>,
}

/// Arguments shared by every bench binary, grouped by concern.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Quick or paper-scale parameters (`--full`).
    pub scale: Scale,
    /// First positional argument (dataset or sub-command), if any.
    pub dataset: Option<String>,
    /// `--seed N` override.
    pub seed: Option<u64>,
    /// Engine selection.
    pub shard: ShardArgs,
    /// Churn-experiment overrides.
    pub churn: ChurnArgs,
    /// Side outputs (telemetry traces, self-profiles).
    pub output: OutputArgs,
}

impl BenchArgs {
    /// Parses the process's command line. The one public entry point —
    /// every bin reaches it through [`init`]/[`args`], which parse once
    /// and cache.
    pub fn parse() -> BenchArgs {
        Self::parse_from(std::env::args().skip(1))
    }

    fn parse_from(argv: impl Iterator<Item = String>) -> BenchArgs {
        let mut out = BenchArgs {
            scale: Scale::Quick,
            dataset: None,
            seed: None,
            shard: ShardArgs::default(),
            churn: ChurnArgs::default(),
            output: OutputArgs::default(),
        };
        let mut it = argv.peekable();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                // --huge wins regardless of flag order, so a forwarded
                // "--full --huge" sweep stays at the million-VM tier.
                "--full" if out.scale != Scale::Huge => out.scale = Scale::Full,
                "--full" => {}
                "--huge" => out.scale = Scale::Huge,
                "--seed" => {
                    let v = it.next().unwrap_or_else(|| die("--seed needs a value"));
                    out.seed =
                        Some(v.parse().unwrap_or_else(|_| die("--seed needs an integer")));
                }
                "--shards" => {
                    let v = it.next().unwrap_or_else(|| die("--shards needs a value"));
                    out.shard.shards =
                        Some(v.parse().unwrap_or_else(|_| die("--shards needs an integer")));
                }
                "--telemetry" => {
                    let v = it
                        .next()
                        .unwrap_or_else(|| die("--telemetry needs a directory"));
                    out.output.telemetry = Some(PathBuf::from(v));
                }
                "--profile" => {
                    let v = it
                        .next()
                        .unwrap_or_else(|| die("--profile needs a directory"));
                    out.output.profile = Some(PathBuf::from(v));
                }
                "--churn-horizon-us" => {
                    let v = it
                        .next()
                        .unwrap_or_else(|| die("--churn-horizon-us needs a value"));
                    out.churn.horizon_us = Some(
                        v.parse()
                            .unwrap_or_else(|_| die("--churn-horizon-us needs an integer")),
                    );
                }
                "--churn-waves" => {
                    let v = it.next().unwrap_or_else(|| die("--churn-waves needs a value"));
                    out.churn.waves = Some(
                        v.parse()
                            .unwrap_or_else(|_| die("--churn-waves needs an integer")),
                    );
                }
                "--churn-wave-fraction" => {
                    let v = it
                        .next()
                        .unwrap_or_else(|| die("--churn-wave-fraction needs a value"));
                    out.churn.wave_fraction = Some(
                        v.parse()
                            .unwrap_or_else(|_| die("--churn-wave-fraction needs a number")),
                    );
                }
                "--churn-queue-cap" => {
                    let v = it
                        .next()
                        .unwrap_or_else(|| die("--churn-queue-cap needs a value"));
                    out.churn.queue_cap = Some(
                        v.parse()
                            .unwrap_or_else(|_| die("--churn-queue-cap needs an integer")),
                    );
                }
                other if !other.starts_with("--") && out.dataset.is_none() => {
                    out.dataset = Some(other.to_string());
                }
                _ => {}
            }
        }
        out
    }

    /// The effective seed: `--seed N` if given, else 1 (the historical
    /// default every bin hard-coded).
    pub fn seed(&self) -> u64 {
        self.seed.unwrap_or(1)
    }

    /// The requested shard count: `--shards N` if given, else 1 (the
    /// single-threaded engine).
    pub fn shards(&self) -> u16 {
        self.shard.shards.unwrap_or(1)
    }

    /// The dataset selector, defaulting to `fallback`.
    pub fn dataset_or<'a>(&'a self, fallback: &'a str) -> &'a str {
        self.dataset.as_deref().unwrap_or(fallback)
    }
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

static ARGS: OnceLock<BenchArgs> = OnceLock::new();
static BIN: OnceLock<String> = OnceLock::new();
static SINK: Mutex<Vec<RunManifest>> = Mutex::new(Vec::new());

/// Parses (once) and returns the process's bench arguments.
pub fn args() -> &'static BenchArgs {
    ARGS.get_or_init(BenchArgs::parse)
}

/// Registers the binary's name (used for the manifest path and trace-file
/// labels) and returns the parsed arguments. Call first in every `main`.
pub fn init(bin: &str) -> &'static BenchArgs {
    let _ = BIN.set(bin.to_string());
    args()
}

/// The `--telemetry` output directory, if tracing was requested.
pub fn telemetry_dir() -> Option<&'static Path> {
    args().output.telemetry.as_deref()
}

/// The `--profile` output directory, if self-profiling was requested.
pub fn profile_dir() -> Option<&'static Path> {
    args().output.profile.as_deref()
}

/// The telemetry configuration implied by the CLI (for bins that build
/// their own [`sv2p_netsim::SimConfig`]).
pub fn telemetry_cfg() -> sv2p_telemetry::TelemetryConfig {
    if telemetry_dir().is_some() {
        sv2p_telemetry::TelemetryConfig::enabled()
    } else {
        sv2p_telemetry::TelemetryConfig::disabled()
    }
}

/// "quick", "full" or "huge", for manifest rows.
pub fn scale_str() -> &'static str {
    match args().scale {
        Scale::Quick => "quick",
        Scale::Full => "full",
        Scale::Huge => "huge",
    }
}

/// Appends one manifest to the process sink (written by [`finish`]).
pub fn record_manifest(m: RunManifest) {
    SINK.lock().expect("manifest sink").push(m);
}

/// A short machine-readable topology label ("ft8p4r4s" = 8 pods × 4 racks
/// × 4 servers).
pub fn topology_label(ft: &FatTreeConfig) -> String {
    format!("ft{}p{}r{}s", ft.pods, ft.racks_per_pod, ft.servers_per_rack)
}

/// Logical cores on this host (manifest context for sharded runs).
pub fn host_cores() -> u64 {
    std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(0)
}

/// Resets the kernel's peak-RSS watermark (`VmHWM`) to the current RSS by
/// writing `5` to `/proc/self/clear_refs`, so a measurement that follows
/// reports the peak of that span alone instead of the process-lifetime
/// maximum. Best-effort no-op where unsupported.
pub fn reset_peak_rss() {
    #[cfg(target_os = "linux")]
    {
        let _ = std::fs::write("/proc/self/clear_refs", "5");
    }
}

/// Process peak resident set size in bytes: `VmHWM` from
/// `/proc/self/status` on Linux, 0 where unavailable. Monotonic since the
/// last [`reset_peak_rss`] (or process start), so a bin's later runs report
/// the running maximum unless they reset the watermark per span.
pub fn peak_rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    let kb: u64 = rest
                        .trim()
                        .trim_end_matches("kB")
                        .trim()
                        .parse()
                        .unwrap_or(0);
                    return kb * 1024;
                }
            }
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

/// Builds a manifest row for a hand-driven simulation.
#[allow(clippy::too_many_arguments)]
pub fn manifest_for_sim(
    strategy: &str,
    topology: &FatTreeConfig,
    config: &str,
    seed: u64,
    cache_entries: u64,
    sim: &Engine,
    summary: &RunSummary,
    wall_clock_s: f64,
) -> RunManifest {
    let events = sim.events_executed();
    RunManifest {
        experiment: BIN.get().cloned().unwrap_or_else(|| "adhoc".into()),
        strategy: strategy.to_string(),
        topology: topology_label(topology),
        config: config.to_string(),
        scale: scale_str().into(),
        seed,
        cache_entries,
        flows: summary.flows,
        flows_completed: summary.flows_completed,
        hit_rate: summary.hit_rate,
        wall_clock_s,
        events_processed: events,
        events_per_sec: events as f64 / wall_clock_s.max(1e-9),
        peak_queue: sim.peak_queue() as u64,
        peak_arena: sim.peak_arena() as u64,
        telemetry_enabled: sim.tracer().enabled(),
        host_cores: host_cores(),
        shards: sim.shards() as u64,
        peak_rss_bytes: peak_rss_bytes(),
    }
}

/// Writes the sim's trace/sample files into the `--telemetry` directory
/// under `label` (no-op when tracing is off or no directory was given).
pub fn write_traces(sim: &Engine, label: &str) {
    let Some(dir) = telemetry_dir() else { return };
    if !sim.tracer().enabled() {
        return;
    }
    match sim.tracer().write_to_dir(dir, label) {
        Ok((ev, _)) => eprintln!(
            "[telemetry] {} events ({} dropped), {} samples -> {}",
            sim.tracer().total_recorded(),
            sim.tracer().dropped(),
            sim.tracer().samples.len(),
            ev.display()
        ),
        Err(e) => eprintln!("[telemetry] write failed: {e}"),
    }
}

/// Records a completed simulation: one manifest line, plus trace files when
/// `--telemetry DIR` was given. Called by `run_spec`; call it directly for
/// bins that drive a [`Simulation`] by hand.
pub fn record_run(
    spec: &ExperimentSpec,
    sim: &Engine,
    summary: &RunSummary,
    wall_clock_s: f64,
) {
    record_manifest(manifest_for_sim(
        spec.strategy.name(),
        &spec.topology,
        &spec.label,
        spec.seed,
        spec.cache_entries as u64,
        sim,
        summary,
        wall_clock_s,
    ));
    write_traces(sim, &trace_label(spec));
    write_profile(sim, &trace_label(spec), spec.seed);
}

/// Writes the engine's self-profile report into the `--profile` directory
/// under `label` (no-op when profiling is off or no directory was given).
pub fn write_profile(sim: &Engine, label: &str, seed: u64) {
    let Some(dir) = profile_dir() else { return };
    if !sim.profiler().enabled() {
        return;
    }
    let meta = sv2p_telemetry::ProfileMeta {
        bin: BIN.get().cloned().unwrap_or_else(|| "adhoc".into()),
        label: label.to_string(),
        engine: if sim.shards() > 1 { "sharded" } else { "single" }.into(),
        shards: sim.shards() as u64,
        seed,
        events_executed: sim.events_executed(),
        host_cores: host_cores(),
        peak_rss_bytes: peak_rss_bytes(),
    };
    let report = sim.profiler().render_report(&meta);
    let path = dir.join(format!("{label}.profile.json"));
    let res = std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, report));
    match res {
        Ok(()) => eprintln!("[profile] {}", path.display()),
        Err(e) => eprintln!("[profile] write failed for {}: {e}", path.display()),
    }
}

/// Trace-file label, derived from the spec alone (never from thread or
/// completion order) so a rerun names its files identically.
fn trace_label(spec: &ExperimentSpec) -> String {
    let bin = BIN.get().map(String::as_str).unwrap_or("adhoc");
    let mut label = format!("{bin}.{}", spec.strategy.name());
    if !spec.label.is_empty() {
        label.push('.');
        label.push_str(&sanitize(&spec.label));
    }
    label.push_str(&format!(".c{}.s{}", spec.cache_entries, spec.seed));
    label
}

fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect()
}

/// Writes the manifest sink to `results/<bin>[.<dataset>].manifest.jsonl`
/// (the dataset suffix keeps `fig5 hadoop` from clobbering `fig5 video`).
/// Call last in every `main` — including analytic bins, which record a
/// strategy-"-" line so every experiment leaves a manifest.
pub fn finish() {
    let Some(bin) = BIN.get() else {
        return;
    };
    let mut ms = std::mem::take(&mut *SINK.lock().expect("manifest sink"));
    let name = match &args().dataset {
        Some(d) => format!("{bin}.{}.manifest.jsonl", sanitize(d)),
        None => format!("{bin}.manifest.jsonl"),
    };
    let path = Path::new("results").join(name);
    match write_manifests(&path, &mut ms) {
        Ok(()) => eprintln!("[manifest] {} run(s) -> {}", ms.len(), path.display()),
        Err(e) => eprintln!("[manifest] write failed for {}: {e}", path.display()),
    }
}

/// A manifest line for an analytic (no-simulation) step.
pub fn analytic_manifest(config: &str, wall_clock_s: f64) -> RunManifest {
    RunManifest {
        experiment: BIN.get().cloned().unwrap_or_else(|| "adhoc".into()),
        strategy: "-".into(),
        topology: "-".into(),
        config: config.into(),
        scale: scale_str().into(),
        seed: args().seed(),
        cache_entries: 0,
        flows: 0,
        flows_completed: 0,
        hit_rate: 0.0,
        wall_clock_s,
        events_processed: 0,
        events_per_sec: 0.0,
        peak_queue: 0,
        peak_arena: 0,
        telemetry_enabled: false,
        host_cores: host_cores(),
        shards: 1,
        peak_rss_bytes: peak_rss_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> BenchArgs {
        BenchArgs::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_flags_in_any_order() {
        let a = parse(&[
            "--telemetry",
            "out",
            "hadoop",
            "--seed",
            "7",
            "--full",
            "--shards",
            "4",
            "--profile",
            "prof",
        ]);
        assert_eq!(a.scale, Scale::Full);
        assert_eq!(a.dataset.as_deref(), Some("hadoop"));
        assert_eq!(a.seed(), 7);
        assert_eq!(a.shards(), 4);
        assert_eq!(a.output.telemetry.as_deref(), Some(Path::new("out")));
        assert_eq!(a.output.profile.as_deref(), Some(Path::new("prof")));
    }

    #[test]
    fn huge_scale_wins_over_full_in_any_order() {
        assert_eq!(parse(&["--huge"]).scale, Scale::Huge);
        assert_eq!(parse(&["--huge", "--full"]).scale, Scale::Huge);
        assert_eq!(parse(&["--full", "--huge"]).scale, Scale::Huge);
        assert_eq!(parse(&["--full"]).scale, Scale::Full);
    }

    #[test]
    fn parses_churn_knobs() {
        let a = parse(&[
            "--churn-horizon-us",
            "30000",
            "--churn-waves",
            "5",
            "--churn-wave-fraction",
            "0.4",
            "--churn-queue-cap",
            "32",
        ]);
        assert_eq!(a.churn.horizon_us, Some(30_000));
        assert_eq!(a.churn.waves, Some(5));
        assert_eq!(a.churn.wave_fraction, Some(0.4));
        assert_eq!(a.churn.queue_cap, Some(32));
    }

    #[test]
    fn defaults_are_quick_seed1_no_telemetry() {
        let a = parse(&[]);
        assert_eq!(a.scale, Scale::Quick);
        assert_eq!(a.seed(), 1);
        assert_eq!(a.shards(), 1);
        assert!(a.dataset.is_none());
        assert!(a.output.telemetry.is_none());
        assert!(a.output.profile.is_none());
        assert_eq!(a.dataset_or("all"), "all");
    }

    #[test]
    fn topology_label_is_compact() {
        assert_eq!(
            topology_label(&FatTreeConfig::ft8_10k()),
            "ft8p4r4s".to_string()
        );
    }
}
