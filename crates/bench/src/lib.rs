//! Experiment harness: regenerates every table and figure of the SwitchV2P
//! evaluation (§5).
//!
//! Each figure/table has a binary under `src/bin/` (see DESIGN.md's
//! experiment index); the shared machinery lives here:
//!
//! * [`harness`] — experiment specs, trace → simulator conversion, strategy
//!   registry, parallel sweeps, improvement-factor normalization;
//! * [`scale`] — "quick" (single-core-friendly) and "full" (paper-scale)
//!   parameter sets; every binary takes `--full` and per-knob overrides;
//! * [`cli`] — shared argument parsing (`--full`, `--seed`, `--telemetry`),
//!   the run-manifest sink, and per-run trace writing.
//!
//! Criterion micro-benchmarks of the primitives are under `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod harness;
pub mod scale;

pub use cli::BenchArgs;
pub use harness::{run_spec, sweep, ExperimentSpec, Row, StrategyKind};
pub use scale::Scale;
