//! Tracked performance baseline: a small sweep of end-to-end simulator
//! throughput across {FT8 seed-scale, FT16 seed-scale} topologies and
//! {NoCache, SwitchV2P, Bluebird} translation schemes.
//!
//! Each cell runs the full simulation once per shard count — always on the
//! single-threaded engine (`shards=1`), and additionally on the pod-sharded
//! multi-core engine when `--shards N` (N > 1) is given — and reports
//! events/sec, wall-clock, speedup over the single-threaded run of the same
//! cell, peak calendar-queue length and peak packet-arena occupancy (summed
//! across shard arenas), all lifted from the same run-manifest plumbing
//! every other bench binary uses. The sweep is written to
//! `BENCH_netsim.json` — committed at the repo root so the perf trajectory
//! of the reproduction is diffable across commits, and consumed by the CI
//! perf-smoke job which fails the build if throughput regresses below 50%
//! of the committed baseline.
//!
//! ```sh
//! cargo run --release -p sv2p-bench --bin sv2p-perfbench [-- --seed N] [-- --full] [-- --shards N]
//! ```
//!
//! Quick (seed) scale finishes in seconds and is what CI runs; `--full`
//! sweeps the paper-scale workloads.

use sv2p_bench::cli;
use sv2p_bench::harness::{ExperimentSpec, StrategyKind};
use sv2p_bench::Scale;
use sv2p_telemetry::json::JsonObj;
use sv2p_telemetry::Phase;
use sv2p_traces::{alibaba, hadoop, FlowSource};

struct Cell {
    workload: &'static str,
    topology: String,
    strategy: &'static str,
    shards: u64,
    events: u64,
    wall_clock_s: f64,
    events_per_sec: f64,
    speedup: f64,
    peak_queue: u64,
    peak_arena: u64,
    hit_rate: f64,
    /// Synchronization-overhead fractions from the engine self-profiler:
    /// wall-clock shares of barrier idling, journal merge, and cut-link
    /// exchange (seq grants + cross-shard delivery). 0.0 for
    /// single-threaded rows — there is no sharding overhead to measure.
    barrier_frac: f64,
    merge_frac: f64,
    cut_exchange_frac: f64,
    /// Coefficient of variation of per-shard replay time (0 = balanced).
    imbalance_cv: f64,
    /// Barrier windows the sharded engine dispatched (0 single-threaded).
    window_count: u64,
    /// Cut-link events exchanged between shards (0 single-threaded).
    cut_events: u64,
    /// Peak RSS over this cell alone: the kernel watermark is reset before
    /// each cell (`cli::reset_peak_rss`), so cells don't inherit an earlier
    /// cell's high-water mark.
    peak_rss_bytes: u64,
    /// VMs placed in this cell's topology.
    placed_vms: u64,
    /// Peak RSS divided by placed VMs: the memory-scaling figure of merit
    /// the million-VM tier is gated on (schema v5).
    bytes_per_vm: f64,
    /// Resident bytes of the compact V2P state (mapping table + placement
    /// columns) — the structures the compaction work targets, separated
    /// from whole-process RSS so regressions are attributable.
    mapping_bytes: u64,
}

fn run_cell(
    spec: &ExperimentSpec,
    workload: &'static str,
    topology: &'static str,
    baseline_eps: Option<f64>,
) -> Cell {
    cli::reset_peak_rss();
    let mut sim = spec.build();
    let start = std::time::Instant::now();
    sim.run();
    let wall = start.elapsed().as_secs_f64();
    let s = sim.summary();
    cli::record_run(spec, &sim, &s, wall);
    let events = sim.events_executed();
    let eps = events as f64 / wall.max(1e-9);
    let shards = sim.shards() as u64;
    let placed_vms = sim.placement().len() as u64;
    let mapping_bytes =
        (sim.db().resident_bytes() + sim.placement().resident_bytes()) as u64;
    let speedup = baseline_eps.map_or(1.0, |base| eps / base.max(1e-9));
    let prof = sim.profiler();
    let (barrier_frac, merge_frac, cut_exchange_frac, imbalance_cv) = if prof.enabled() {
        (
            prof.frac(Phase::BarrierWait),
            prof.frac(Phase::JournalMerge),
            prof.frac(Phase::CutExchange),
            prof.imbalance_cv(),
        )
    } else {
        (0.0, 0.0, 0.0, 0.0)
    };
    println!(
        "  {:<12} {:<14} x{:<2} {:>12} events {:>12.0} ev/s  speedup {:>5.2}x  wall {:>7.3}s  peak-q {:>7}  peak-arena {:>6}  windows {:>7}  cuts {:>8}  barrier {:>4.1}%  merge {:>4.1}%  cut-xchg {:>4.1}%  cv {:.2}",
        workload,
        spec.strategy.name(),
        shards,
        events,
        eps,
        speedup,
        wall,
        sim.peak_queue(),
        sim.peak_arena(),
        sim.window_count(),
        sim.cut_events(),
        barrier_frac * 100.0,
        merge_frac * 100.0,
        cut_exchange_frac * 100.0,
        imbalance_cv,
    );
    let peak_rss = cli::peak_rss_bytes();
    let bytes_per_vm = peak_rss as f64 / placed_vms.max(1) as f64;
    println!(
        "  {:<12}   memory: rss {:>11} B  {:>8.1} B/VM  v2p-state {:>10} B  ({} VMs)",
        "", peak_rss, bytes_per_vm, mapping_bytes, placed_vms,
    );
    Cell {
        workload,
        topology: topology.to_string(),
        strategy: spec.strategy.name(),
        shards,
        events,
        wall_clock_s: wall,
        events_per_sec: eps,
        speedup,
        peak_queue: sim.peak_queue() as u64,
        peak_arena: sim.peak_arena() as u64,
        hit_rate: s.hit_rate,
        barrier_frac,
        merge_frac,
        cut_exchange_frac,
        imbalance_cv,
        window_count: sim.window_count(),
        cut_events: sim.cut_events(),
        peak_rss_bytes: peak_rss,
        placed_vms,
        bytes_per_vm,
        mapping_bytes,
    }
}

/// Runs one (workload, strategy) cell across every shard count and appends
/// the rows: shards=1 first (the speedup baseline), then the sharded run.
/// Sharded rows always profile (window-granularity timing is cheap and the
/// phase fractions are the point of the exercise); the shards=1 baseline
/// never does — the single-threaded profiler times every event and would
/// taint the events/sec the speedup column is measured against.
fn run_shard_rows(
    cells: &mut Vec<Cell>,
    spec: &ExperimentSpec,
    workload: &'static str,
    topology: &'static str,
    shard_counts: &[u16],
) {
    let mut baseline_eps = None;
    for &n in shard_counts {
        let spec = {
            let mut s = spec.clone();
            s.shards = n;
            s.profile = n > 1;
            s
        };
        let cell = run_cell(&spec, workload, topology, baseline_eps);
        if n == 1 {
            baseline_eps = Some(cell.events_per_sec);
        }
        cells.push(cell);
    }
}

/// `MemAvailable` from /proc/meminfo, `None` where unsupported (the huge
/// tier is then attempted unconditionally).
fn mem_available_bytes() -> Option<u64> {
    let meminfo = std::fs::read_to_string("/proc/meminfo").ok()?;
    for line in meminfo.lines() {
        if let Some(rest) = line.strip_prefix("MemAvailable:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

fn main() {
    let args = cli::init("perfbench");
    let scale = args.scale;
    let strategies = [
        StrategyKind::NoCache,
        StrategyKind::SwitchV2P,
        StrategyKind::Bluebird,
    ];
    // Always measure the single-threaded baseline; add the sharded engine
    // when --shards N > 1 was given (speedups are relative to shards=1 on
    // the same host in the same process).
    let shard_counts: Vec<u16> = if args.shards() > 1 {
        vec![1, args.shards()]
    } else {
        vec![1]
    };

    println!(
        "Perf baseline sweep ({} scale, seed {}, shard counts {:?}, {} host cores)\n",
        cli::scale_str(),
        args.seed(),
        shard_counts,
        cli::host_cores(),
    );

    let mut cells: Vec<Cell> = Vec::new();

    // FT8 seed-scale: the Hadoop workload on the 8-ary fat-tree.
    let ft8 = scale.ft8();
    let ft8_flows = hadoop(&scale.hadoop());
    for &strategy in &strategies {
        let cache = if strategy.cache_sensitive() {
            scale.analysis_cache_entries("")
        } else {
            0
        };
        let spec = ExperimentSpec::builder(ft8.clone(), strategy)
            .flows(ft8_flows.clone())
            .cache_entries(cache)
            .seed(args.seed())
            .label(format!("ft8-hadoop.{}", strategy.name()))
            .build();
        run_shard_rows(&mut cells, &spec, "ft8-hadoop", "ft8-10k", &shard_counts);
    }

    // FT16 seed-scale: the Alibaba trace on the 16-ary fat-tree.
    let (ft16, ali_cfg, vms_per_server) = scale.alibaba();
    let ft16_flows = alibaba(&ali_cfg);
    let active = scale.active_addresses("alibaba");
    for &strategy in &strategies {
        let cache = if strategy.cache_sensitive() {
            ((0.5 * active as f64) as usize).max(1)
        } else {
            0
        };
        let spec = ExperimentSpec::builder(ft16.clone(), strategy)
            .vms_per_server(vms_per_server)
            .flows(ft16_flows.clone())
            .cache_entries(cache)
            .seed(args.seed())
            .label(format!("ft16-alibaba.{}", strategy.name()))
            .build();
        run_shard_rows(&mut cells, &spec, "ft16-alibaba", "ft16-400k", &shard_counts);
    }

    // FT32 million-VM tier (--huge): one streamed SwitchV2P run on the
    // 32-ary fat-tree, single-threaded (replicating 1M-VM state per shard
    // would multiply exactly the memory this cell exists to measure). The
    // workload never materializes — the engine pulls flows from the
    // source — so the cell's RSS is dominated by per-VM state, which is
    // the regression surface `bytes_per_vm` gates.
    if scale == Scale::Huge {
        const HUGE_NEEDED_BYTES: u64 = 4 << 30;
        match mem_available_bytes() {
            Some(avail) if avail < HUGE_NEEDED_BYTES => {
                eprintln!(
                    "WARNING: skipping ft32-1m cell: {avail} bytes available < {HUGE_NEEDED_BYTES} needed"
                );
            }
            _ => {
                let spec = ExperimentSpec::builder(scale.ft32(), StrategyKind::SwitchV2P)
                    .vms_per_server(32)
                    .flow_source(FlowSource::hadoop(&scale.huge_hadoop()))
                    .cache_entries(scale.analysis_cache_entries(""))
                    .seed(args.seed())
                    .shards(1)
                    .label("ft32-hadoop.SwitchV2P")
                    .build();
                run_shard_rows(&mut cells, &spec, "ft32-hadoop", "ft32-1m", &[1]);
            }
        }
    }

    // Compose the baseline file by hand: a header object plus one flat
    // JSON object per cell (the vendored serde is a stub; JsonObj is the
    // workspace-wide serializer).
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"sv2p-perfbench/v5\",\n");
    out.push_str(&format!("  \"scale\": \"{}\",\n", cli::scale_str()));
    out.push_str(&format!("  \"seed\": {},\n", args.seed()));
    out.push_str(&format!("  \"host_cores\": {},\n", cli::host_cores()));
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let mut obj = JsonObj::new();
        obj.str("workload", c.workload)
            .str("topology", &c.topology)
            .str("strategy", c.strategy)
            .u64("shards", c.shards)
            .u64("events_processed", c.events)
            .f64("wall_clock_s", c.wall_clock_s)
            .f64("events_per_sec", c.events_per_sec)
            .f64("speedup", c.speedup)
            .u64("peak_queue", c.peak_queue)
            .u64("peak_arena", c.peak_arena)
            .f64("hit_rate", c.hit_rate)
            .f64("barrier_frac", c.barrier_frac)
            .f64("merge_frac", c.merge_frac)
            .f64("cut_exchange_frac", c.cut_exchange_frac)
            .f64("imbalance_cv", c.imbalance_cv)
            .u64("window_count", c.window_count)
            .u64("cut_events", c.cut_events)
            .u64("peak_rss_bytes", c.peak_rss_bytes)
            .u64("placed_vms", c.placed_vms)
            .f64("bytes_per_vm", c.bytes_per_vm)
            .u64("mapping_bytes", c.mapping_bytes);
        out.push_str("    ");
        out.push_str(&obj.finish());
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");

    let path = "BENCH_netsim.json";
    std::fs::write(path, &out).expect("write BENCH_netsim.json");
    println!("\n[perfbench] wrote {} cell(s) -> {path}", cells.len());
    cli::finish();
}
