//! Tracked performance baseline: a small sweep of end-to-end simulator
//! throughput across {FT8 seed-scale, FT16 seed-scale} topologies and
//! {NoCache, SwitchV2P, Bluebird} translation schemes.
//!
//! Each cell runs the full simulation once and reports events/sec,
//! wall-clock, peak calendar-queue length and peak packet-arena occupancy
//! (the allocations proxy), all lifted from the same run-manifest plumbing
//! every other bench binary uses. The sweep is written to
//! `BENCH_netsim.json` — committed at the repo root so the perf trajectory
//! of the reproduction is diffable across commits, and consumed by the CI
//! perf-smoke job which fails the build if throughput regresses below 50%
//! of the committed baseline.
//!
//! ```sh
//! cargo run --release -p sv2p-bench --bin sv2p-perfbench [-- --seed N] [-- --full]
//! ```
//!
//! Quick (seed) scale finishes in seconds and is what CI runs; `--full`
//! sweeps the paper-scale workloads.

use sv2p_bench::cli;
use sv2p_bench::harness::{ExperimentSpec, StrategyKind};
use sv2p_telemetry::json::JsonObj;
use sv2p_traces::{alibaba, hadoop};

struct Cell {
    workload: &'static str,
    topology: String,
    strategy: &'static str,
    events: u64,
    wall_clock_s: f64,
    events_per_sec: f64,
    peak_queue: u64,
    peak_arena: u64,
    hit_rate: f64,
}

fn run_cell(spec: &ExperimentSpec, workload: &'static str, topology: &'static str) -> Cell {
    let mut sim = spec.build();
    let start = std::time::Instant::now();
    sim.run();
    let wall = start.elapsed().as_secs_f64();
    let s = sim.summary();
    cli::record_run(spec, &sim, &s, wall);
    let events = sim.events_executed();
    let eps = events as f64 / wall.max(1e-9);
    println!(
        "  {:<12} {:<14} {:>12} events {:>12.0} ev/s  wall {:>7.3}s  peak-q {:>7}  peak-arena {:>6}",
        workload,
        spec.strategy.name(),
        events,
        eps,
        wall,
        sim.peak_queue(),
        sim.peak_arena(),
    );
    Cell {
        workload,
        topology: topology.to_string(),
        strategy: spec.strategy.name(),
        events,
        wall_clock_s: wall,
        events_per_sec: eps,
        peak_queue: sim.peak_queue() as u64,
        peak_arena: sim.peak_arena() as u64,
        hit_rate: s.hit_rate,
    }
}

fn main() {
    let args = cli::init("perfbench");
    let scale = args.scale;
    let strategies = [
        StrategyKind::NoCache,
        StrategyKind::SwitchV2P,
        StrategyKind::Bluebird,
    ];

    println!(
        "Perf baseline sweep ({} scale, seed {})\n",
        cli::scale_str(),
        args.seed()
    );

    let mut cells: Vec<Cell> = Vec::new();

    // FT8 seed-scale: the Hadoop workload on the 8-ary fat-tree.
    let ft8 = scale.ft8();
    let ft8_flows = hadoop(&scale.hadoop());
    for &strategy in &strategies {
        let cache = if strategy.cache_sensitive() {
            scale.analysis_cache_entries("")
        } else {
            0
        };
        let spec = ExperimentSpec::builder(ft8.clone(), strategy)
            .flows(ft8_flows.clone())
            .cache_entries(cache)
            .seed(args.seed())
            .label(format!("ft8-hadoop.{}", strategy.name()))
            .build();
        cells.push(run_cell(&spec, "ft8-hadoop", "ft8-10k"));
    }

    // FT16 seed-scale: the Alibaba trace on the 16-ary fat-tree.
    let (ft16, ali_cfg, vms_per_server) = scale.alibaba();
    let ft16_flows = alibaba(&ali_cfg);
    let active = scale.active_addresses("alibaba");
    for &strategy in &strategies {
        let cache = if strategy.cache_sensitive() {
            ((0.5 * active as f64) as usize).max(1)
        } else {
            0
        };
        let spec = ExperimentSpec::builder(ft16.clone(), strategy)
            .vms_per_server(vms_per_server)
            .flows(ft16_flows.clone())
            .cache_entries(cache)
            .seed(args.seed())
            .label(format!("ft16-alibaba.{}", strategy.name()))
            .build();
        cells.push(run_cell(&spec, "ft16-alibaba", "ft16-400k"));
    }

    // Compose the baseline file by hand: a header object plus one flat
    // JSON object per cell (the vendored serde is a stub; JsonObj is the
    // workspace-wide serializer).
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"sv2p-perfbench/v1\",\n");
    out.push_str(&format!("  \"scale\": \"{}\",\n", cli::scale_str()));
    out.push_str(&format!("  \"seed\": {},\n", args.seed()));
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let mut obj = JsonObj::new();
        obj.str("workload", c.workload)
            .str("topology", &c.topology)
            .str("strategy", c.strategy)
            .u64("events_processed", c.events)
            .f64("wall_clock_s", c.wall_clock_s)
            .f64("events_per_sec", c.events_per_sec)
            .u64("peak_queue", c.peak_queue)
            .u64("peak_arena", c.peak_arena)
            .f64("hit_rate", c.hit_rate);
        out.push_str("    ");
        out.push_str(&obj.finish());
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");

    let path = "BENCH_netsim.json";
    std::fs::write(path, &out).expect("write BENCH_netsim.json");
    println!("\n[perfbench] wrote {} cell(s) -> {path}", cells.len());
    cli::finish();
}
