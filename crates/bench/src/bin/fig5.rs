//! Figure 5: hit rate, average FCT improvement, and first-packet latency
//! improvement (normalized by NoCache) on FT8-10K, as a function of the
//! aggregate cache size — one panel triple per dataset.
//!
//! ```sh
//! cargo run --release -p sv2p-bench --bin fig5 -- hadoop        # 5a
//! cargo run --release -p sv2p-bench --bin fig5 -- microbursts   # 5b
//! cargo run --release -p sv2p-bench --bin fig5 -- websearch    # 5c
//! cargo run --release -p sv2p-bench --bin fig5 -- video        # 5d
//! cargo run --release -p sv2p-bench --bin fig5 -- all [--full]
//! ```

use sv2p_bench::harness::{print_figure5_panels, sweep, ExperimentSpec, StrategyKind};
use sv2p_bench::{cli, Scale};
use sv2p_traces::{hadoop, microbursts, video, websearch};

fn run_dataset(name: &str, scale: Scale, seed: u64) {
    let flows = match name {
        "hadoop" => hadoop(&scale.hadoop()),
        "websearch" => websearch(&scale.websearch()),
        "microbursts" => microbursts(&scale.microbursts()),
        "video" => video(&scale.video()),
        other => {
            eprintln!("unknown dataset {other}");
            std::process::exit(2);
        }
    };
    let figure = match name {
        "hadoop" => "Figure 5a (Hadoop)",
        "microbursts" => "Figure 5b (Microbursts)",
        "websearch" => "Figure 5c (WebSearch)",
        _ => "Figure 5d (Video)",
    };
    let base = ExperimentSpec::builder(scale.ft8(), StrategyKind::NoCache)
        .flows(flows)
        .seed(seed)
        .label(name)
        .build();
    let fracs = scale.cache_fracs();
    let table = sweep(
        &base,
        &StrategyKind::figure5_set(),
        &fracs,
        scale.active_addresses(name),
    );
    print_figure5_panels(figure, &table, &fracs);
}

fn main() {
    let args = cli::init("fig5");
    let (scale, seed) = (args.scale, args.seed());
    match args.dataset_or("all") {
        "all" => {
            for d in ["hadoop", "microbursts", "websearch", "video"] {
                run_dataset(d, scale, seed);
                println!();
            }
        }
        d => run_dataset(d, scale, seed),
    }
    cli::finish();
}
