//! Figure 10: topology scaling — vary the pod count (1 to 32) while holding
//! 128 servers, Hadoop at a 50% cache.
//!
//! ```sh
//! cargo run --release -p sv2p-bench --bin fig10 [-- --full]
//! ```

use sv2p_bench::harness::{run_spec, ExperimentSpec, StrategyKind};
use sv2p_bench::cli;
use sv2p_topology::FatTreeConfig;
use sv2p_traces::hadoop;

fn main() {
    let args = cli::init("fig10");
    let scale = args.scale;
    let flows = hadoop(&scale.hadoop());
    let systems = [
        StrategyKind::LocalLearning,
        StrategyKind::GwCache,
        StrategyKind::SwitchV2P,
    ];
    let cache = scale.analysis_cache_entries("hadoop");

    println!("Figure 10: topology scaling (128 servers, Hadoop, cache 50%)\n");
    println!(
        "{:<14} {:>5} {:>10} {:>12} {:>14} {:>10}",
        "system", "pods", "switches", "avg FCT us", "first pkt us", "hit rate"
    );
    for s in systems {
        for pods in [1u16, 2, 4, 8, 16, 32] {
            let topology = FatTreeConfig::scaled_ft8(pods);
            let switches = topology.characteristics().total_switches;
            let spec = ExperimentSpec::builder(topology, s)
                .flows(flows.clone())
                .cache_entries(cache)
                .seed(args.seed())
                .label(format!("pods{pods}"))
                .build();
            let r = run_spec(&spec);
            println!(
                "{:<14} {:>5} {:>10} {:>12.1} {:>14.1} {:>9.1}%",
                s.name(),
                pods,
                switches,
                r.avg_fct_us,
                r.avg_first_packet_latency_us,
                r.hit_rate * 100.0
            );
        }
        println!();
    }
    cli::finish();
}
