//! Continuous-churn experiment: tenant arrival/departure, autoscaling and
//! rolling migration waves interleaved with live traffic.
//!
//! Three churn intensities (light / medium / heavy) run against every §5.1
//! strategy. Each run layers a deterministic [`ChurnSpec`] timeline — tenant
//! flows, migration waves, timeline marks — on top of a steady background
//! workload, with the gateway overload model enabled (bounded queue that
//! sheds). Rows report misdelivery exposure (stale-cache hits and their age
//! distribution), gateway shed counts, and per-migration recovery time (time
//! from a migration to its last stale-cache correction).
//!
//! ```sh
//! cargo run --release -p sv2p-bench --bin churn
//! cargo run --release -p sv2p-bench --bin churn -- --churn-queue-cap 16
//! ```
//!
//! Stdout carries no wall-clock times, so a rerun — at any `--shards` count —
//! is byte-identical for the same seed.

use sv2p_bench::cli;
use sv2p_bench::harness::{drop_breakdown, ExperimentSpec, StrategyKind};
use sv2p_bench::Scale;
use sv2p_netsim::ChurnSpec;
use sv2p_topology::FatTreeConfig;
use sv2p_traces::{FlowProfile, TraceFlow};

/// Default gateway bounded-queue capacity (`--churn-queue-cap` overrides;
/// 0 restores the legacy unbounded gateway).
const DEFAULT_QUEUE_CAP: u32 = 32;

/// A steady background workload so caches carry state between churn events.
fn background_flows(n: usize, horizon_us: u64, bytes: u64) -> Vec<TraceFlow> {
    (0..n)
        .map(|i| TraceFlow {
            src_vm: i * 11 + 3,
            dst_vm: i * 17 + 41,
            start_ns: (i as u64 * horizon_us * 1_000) / n as u64,
            profile: FlowProfile::Tcp { bytes },
        })
        .collect()
}

/// The scenario's churn timeline, CLI overrides applied.
fn churn_spec(intensity: &str, seed: u64, horizon_us: u64) -> ChurnSpec {
    let mut spec = match intensity {
        "light" => ChurnSpec::light(seed, horizon_us),
        "medium" => ChurnSpec::medium(seed, horizon_us),
        "heavy" => ChurnSpec::heavy(seed, horizon_us),
        other => panic!("unknown intensity {other}"),
    };
    let a = cli::args();
    if let Some(w) = a.churn.waves {
        spec.waves = w;
    }
    if let Some(f) = a.churn.wave_fraction {
        spec.wave_fraction = f;
    }
    spec
}

fn run_scenario(intensity: &str, strategy: StrategyKind, horizon_us: u64, queue_cap: u32) {
    let seed = cli::args().seed();
    let spec = ExperimentSpec::builder(FatTreeConfig::scaled_ft8(2), strategy)
        .vms_per_server(8)
        .flows(background_flows(120, horizon_us, 20_000))
        .cache_entries(match cli::args().scale {
            Scale::Quick | Scale::Huge => 128,
            Scale::Full => 2_048,
        })
        .churn(churn_spec(intensity, seed, horizon_us))
        .gateway_queue_cap(queue_cap)
        .end_of_time_us(horizon_us * 5)
        .seed(seed)
        .label(intensity)
        .build();
    let mut sim = spec.build();
    let start = std::time::Instant::now();
    sim.run();
    let wall = start.elapsed().as_secs_f64();
    let s = sim.summary();
    cli::record_run(&spec, &sim, &s, wall);
    println!(
        "  {:14} flows {:>5}  hit {:.3}  misdeliv {:>6}  stale-hits {:>6}  \
         stale-age p50/p99 {:.1}/{:.1} us  shed {:>5}  recovery avg/max {:.1}/{:.1} us",
        strategy.name(),
        s.flows_completed,
        s.hit_rate,
        s.misdelivered_packets,
        s.stale_cache_hits,
        s.stale_age_p50_us,
        s.stale_age_p99_us,
        s.drops_shed,
        s.recovery_avg_us,
        s.recovery_max_us,
    );
    println!(
        "  {:14} arrivals {} departures {} waves {} migrations {}  {}",
        "",
        s.churn_arrivals,
        s.churn_departures,
        s.migration_waves,
        s.migrations,
        drop_breakdown(&s),
    );
}

fn main() {
    let a = cli::init("churn");
    let horizon_us = a.churn.horizon_us.unwrap_or(match a.scale {
        Scale::Quick | Scale::Huge => 20_000,
        Scale::Full => 80_000,
    });
    let queue_cap = a.churn.queue_cap.unwrap_or(DEFAULT_QUEUE_CAP);
    for intensity in ["light", "medium", "heavy"] {
        println!(
            "\nContinuous churn — {intensity} (horizon {horizon_us} us, \
             gateway queue cap {queue_cap}, seed {})",
            a.seed()
        );
        for &strategy in &StrategyKind::figure5_set() {
            run_scenario(intensity, strategy, horizon_us, queue_cap);
        }
    }
    cli::finish();
}
