//! CI guard for the million-VM tier: a trimmed FT32-1M slice that must
//! (a) complete under a hard peak-RSS ceiling, and (b) produce
//! byte-identical results on the single-threaded and 4-shard engines.
//!
//! The full 32-pod fat-tree and the full 1 048 576-VM placement are built
//! — memory scaling is exactly what this smoke test guards — but the
//! streamed workload is cut to a few thousand flows so the run finishes
//! in CI time. A regression that reintroduces O(VMs) HashMap state or
//! materializes the trace blows through the ceiling and fails the job.
//!
//! ```sh
//! cargo run --release -p sv2p-bench --bin sv2p-scale-smoke
//! ```

use sv2p_bench::cli;
use sv2p_bench::harness::{run_spec, ExperimentSpec, StrategyKind};
use sv2p_bench::Scale;
use sv2p_traces::{FlowSource, HadoopConfig};

/// Hard per-run peak-RSS ceiling. The compact-state engine holds the
/// 1M-VM FT32 slice well under 1 GB even at 4 shards (driver + replica
/// fleet); 2 GiB leaves headroom for allocator noise without letting a
/// per-VM HashMap regression (~50 KB/VM ≈ 50 GB) anywhere near passing.
const RSS_CEILING_BYTES: u64 = 2 << 30;

/// Trimmed flow count (the huge perfbench cell runs the full 20 000).
const SMOKE_FLOWS: usize = 2_000;

fn run(shards: u16, seed: u64) -> (String, u64) {
    cli::reset_peak_rss();
    let cfg = HadoopConfig {
        flows: SMOKE_FLOWS,
        ..Scale::Huge.huge_hadoop()
    };
    let spec = ExperimentSpec::builder(Scale::Huge.ft32(), StrategyKind::SwitchV2P)
        .vms_per_server(32)
        .flow_source(FlowSource::hadoop(&cfg))
        .cache_entries(Scale::Huge.analysis_cache_entries(""))
        .seed(seed)
        .shards(shards)
        .label(format!("scale-smoke-x{shards}"))
        .build();
    let summary = run_spec(&spec);
    (format!("{summary:?}"), cli::peak_rss_bytes())
}

fn main() {
    let args = cli::init("scale_smoke");
    println!(
        "FT32-1M scale smoke: {} VMs placed, {} streamed flows, seed {}",
        1_048_576, SMOKE_FLOWS, args.seed(),
    );

    let mut failed = false;
    let (digest1, rss1) = run(1, args.seed());
    println!("  shards 1: peak RSS {rss1} bytes ({:.1} B/VM)", rss1 as f64 / 1_048_576.0);
    let (digest4, rss4) = run(4, args.seed());
    println!("  shards 4: peak RSS {rss4} bytes ({:.1} B/VM)", rss4 as f64 / 1_048_576.0);

    for (label, rss) in [("shards 1", rss1), ("shards 4", rss4)] {
        if rss > RSS_CEILING_BYTES {
            eprintln!("FAIL: {label} peak RSS {rss} exceeds ceiling {RSS_CEILING_BYTES}");
            failed = true;
        }
    }
    if digest1 == digest4 {
        println!("  shards 1 vs 4: summaries byte-identical");
    } else {
        eprintln!("FAIL: sharded run diverged from single-threaded run");
        eprintln!("  shards 1: {digest1}");
        eprintln!("  shards 4: {digest4}");
        failed = true;
    }

    cli::finish();
    if failed {
        std::process::exit(1);
    }
    println!("scale smoke OK");
}
