//! Figure 9: performance with fewer gateways (Hadoop, cache 50%).
//!
//! ```sh
//! cargo run --release -p sv2p-bench --bin fig9 [-- --full]
//! ```

use sv2p_bench::harness::{run_spec, ExperimentSpec, StrategyKind};
use sv2p_bench::cli;
use sv2p_traces::hadoop;

fn main() {
    let args = cli::init("fig9");
    let scale = args.scale;
    let flows = hadoop(&scale.hadoop());
    let gateway_counts = [40u16, 20, 10, 8, 4];
    let systems = [
        StrategyKind::NoCache,
        StrategyKind::LocalLearning,
        StrategyKind::GwCache,
        StrategyKind::SwitchV2P,
    ];
    let cache = scale.analysis_cache_entries("hadoop");

    println!("Figure 9: FCT and first-packet latency vs gateway count");
    println!("(Hadoop, cache 50%; 'drops' flags gateway-link packet loss)\n");
    println!(
        "{:<14} {:>5} {:>12} {:>14} {:>10} {:>8}",
        "system", "gws", "avg FCT us", "first pkt us", "hit rate", "drops"
    );
    for s in systems {
        for &gws in &gateway_counts {
            let spec = ExperimentSpec::builder(scale.ft8().with_total_gateways(gws), s)
                .flows(flows.clone())
                .cache_entries(if s.cache_sensitive() { cache } else { 0 })
                // Under-provisioned gateway fleets melt down; cap the run.
                .end_of_time_us(100_000)
                .seed(args.seed())
                .label(format!("gw{gws}"))
                .build();
            let r = run_spec(&spec);
            println!(
                "{:<14} {:>5} {:>12.1} {:>14.1} {:>9.1}% {:>8}",
                s.name(),
                gws,
                r.avg_fct_us,
                r.avg_first_packet_latency_us,
                r.hit_rate * 100.0,
                r.packets_dropped
            );
        }
        println!();
    }
    cli::finish();
}
