//! Trace inspection utility: generates any of the §5 workloads and prints
//! its "address reuse characteristics" (the paper's trace-analysis
//! paragraph), optionally dumping the flows as CSV.
//!
//! ```sh
//! cargo run --release -p sv2p-bench --bin tracegen -- hadoop [--full] [--dump]
//! ```

use sv2p_bench::cli;
use sv2p_traces::datasets::stats;
use sv2p_traces::{alibaba, hadoop, microbursts, video, websearch, TraceFlow};

fn describe(name: &str, flows: &[TraceFlow], dump: bool) {
    let s = stats(flows);
    println!("== {name} ==");
    println!("  flows:                {}", s.flows);
    println!("  total payload:        {:.1} MB", s.total_bytes as f64 / 1e6);
    println!("  duration:             {:.3} ms", s.duration_ns as f64 / 1e6);
    println!(
        "  offered load:         {:.1} Gb/s",
        s.total_bytes as f64 * 8.0 / (s.duration_ns.max(1) as f64 / 1e9) / 1e9
    );
    println!("  distinct destinations: {}", s.distinct_dsts);
    println!("  dsts in >=2 flows:     {}", s.dsts_with_2plus);
    println!("  dsts in >=10 flows:    {}", s.dsts_with_10plus);
    println!(
        "  mean flow size:        {:.1} kB",
        s.total_bytes as f64 / s.flows.max(1) as f64 / 1e3
    );
    if dump {
        println!("start_ns,src_vm,dst_vm,bytes");
        for f in flows {
            println!("{},{},{},{}", f.start_ns, f.src_vm, f.dst_vm, f.bytes());
        }
    }
    println!();
}

fn main() {
    let args = cli::init("tracegen");
    let scale = args.scale;
    let dump = std::env::args().any(|a| a == "--dump");
    let which = args.dataset_or("all").to_string();

    let run = |name: &str, dump: bool| match name {
        "hadoop" => describe("Hadoop", &hadoop(&scale.hadoop()), dump),
        "websearch" => describe("WebSearch", &websearch(&scale.websearch()), dump),
        "alibaba" => {
            let (_, cfg, _) = scale.alibaba();
            describe("Alibaba", &alibaba(&cfg), dump)
        }
        "microbursts" => describe("Microbursts", &microbursts(&scale.microbursts()), dump),
        "video" => describe("Video", &video(&scale.video()), dump),
        other => {
            eprintln!("unknown dataset {other}");
            std::process::exit(2);
        }
    };
    let start = std::time::Instant::now();
    if which == "all" {
        for d in ["hadoop", "websearch", "alibaba", "microbursts", "video"] {
            run(d, dump);
        }
    } else {
        run(&which, dump);
    }
    cli::record_manifest(cli::analytic_manifest(
        &which,
        start.elapsed().as_secs_f64(),
    ));
    cli::finish();
}
