//! Table 6: the average per-stage resource utilization of the SwitchV2P P4
//! program at a 50% cache size, from the analytical Tofino model
//! (see `sv2p-p4model` and DESIGN.md §4 for the substitution).
//!
//! ```sh
//! cargo run --release -p sv2p-bench --bin table6
//! ```

use sv2p_bench::cli;
use sv2p_p4model::SwitchV2PProgram;

fn main() {
    cli::init("table6");
    let start = std::time::Instant::now();
    // 50% of FT8-10K's 10 240 addresses over 80 switches = 64 lines/switch.
    let lines = 10_240 / 2 / 80;
    let program = SwitchV2PProgram::new(lines as u64);
    println!("Table 6: average per-stage resource utilization (cache 50%)\n");
    println!("{:<18} {:>11}", "Resource", "Utilization");
    for (name, pct) in program.table() {
        println!("{name:<18} {pct:>10.1}%");
    }
    println!(
        "\nPHV usage (whole pipeline): {:.1}%",
        program.utilization().phv
    );
    println!("fits Tofino: {}", program.fits());

    println!("\nScaling check — only SRAM and hash bits grow with cache size:");
    println!(
        "{:>12} {:>8} {:>8} {:>8} {:>8}",
        "lines/switch", "SRAM", "hash", "meter", "VLIW"
    );
    for lines in [64u64, 1024, 16 * 1024, 192 * 1024] {
        let u = SwitchV2PProgram::new(lines).utilization();
        println!(
            "{:>12} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
            lines, u.sram, u.hash_bits, u.meter_alu, u.vliw
        );
    }
    cli::record_manifest(cli::analytic_manifest(
        "p4-resource-model",
        start.elapsed().as_secs_f64(),
    ));
    cli::finish();
}
