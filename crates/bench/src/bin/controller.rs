//! Appendix A.2: centralized cache allocation via the ILP controller on the
//! WebSearch trace, at 150 µs and 300 µs invocation periods, against the
//! data-plane schemes.
//!
//! The controller periodically collects the traffic matrix, solves the
//! placement problem (greedy marginal-gain, substituting the paper's Z3 ILP
//! — DESIGN.md §4) and installs the chosen entries in the switches.
//!
//! ```sh
//! cargo run --release -p sv2p-bench --bin controller [-- --full]
//! ```

use sv2p_baselines::{Controller, ControllerDriver};
use sv2p_bench::cli;
use sv2p_bench::harness::{run_spec, to_flow_specs, ExperimentSpec, StrategyKind};
use sv2p_bench::Scale;
use sv2p_netsim::{Engine, SimConfig};
use sv2p_simcore::{SimDuration, SimTime};
use sv2p_topology::NodeId;
use sv2p_traces::websearch;
use sv2p_vnet::GatewayDirectory;

fn run_controller(
    scale: Scale,
    period: SimDuration,
    cache_frac: f64,
    label: &str,
) -> sv2p_metrics::RunSummary {
    let ft = scale.ft8();
    let strategy = Controller;
    let active = scale.active_addresses("websearch");
    let total_entries = ((cache_frac * active as f64) as usize).max(1);
    let n_switches = ft.characteristics().total_switches as usize;
    let per_switch = (total_entries / n_switches).max(1);

    let cfg = SimConfig {
        record_traffic_matrix: true,
        telemetry: cli::telemetry_cfg(),
        ..SimConfig::default()
    };
    let mut sim = Engine::new(cfg, &ft, &strategy, total_entries, 80, cli::args().shards());
    let n_vms = sim.placement().len();
    let specs = to_flow_specs(&websearch(&scale.websearch()), n_vms);
    let expected_flows = specs.len();
    sim.add_flows(specs);

    let driver = ControllerDriver {
        capacity_per_switch: per_switch,
        gateway_cost_hops: 20.0,
    };
    let switch_nodes: Vec<NodeId> = sim.topology().switches().map(|n| n.id).collect();
    let dir: GatewayDirectory = sim.gateway_directory().clone();

    // Epoch loop: run a period, replan from the observed matrix, install.
    let start = std::time::Instant::now();
    let mut t = SimTime::ZERO;
    loop {
        t += period;
        sim.run_until(t);
        if sim.metrics().flows_completed() >= expected_flows {
            break;
        }
        let plan = {
            let tm = sim.traffic_matrix();
            driver.plan(
                sim.topology(),
                sim.routing(),
                &dir,
                sim.placement(),
                &tm,
                &switch_nodes,
            )
        };
        sim.clear_traffic_matrix();
        // Install the epoch's allocation (clearing the previous one).
        for &node in &switch_nodes {
            sim.install_cache_entries(node, true, &[]);
        }
        for (node, entries) in plan {
            sim.install_cache_entries(node, false, &entries);
        }
        if t > SimTime::from_millis(200) {
            break; // runaway guard
        }
    }
    sim.run();
    let wall = start.elapsed().as_secs_f64();
    let s = sim.summary();
    cli::record_manifest(cli::manifest_for_sim(
        "Controller",
        &ft,
        label,
        cli::args().seed(),
        total_entries as u64,
        &sim,
        &s,
        wall,
    ));
    cli::write_traces(&sim, &format!("controller.Controller.{label}"));
    s
}

fn main() {
    let args = cli::init("controller");
    let scale = args.scale;
    let fracs = [0.1, 0.25, 0.5, 1.0];
    println!("Appendix A.2: Controller (greedy ILP) on WebSearch\n");
    println!(
        "{:<22} {:>7} {:>10} {:>12} {:>14}",
        "system", "cache", "hit rate", "avg FCT us", "first pkt us"
    );
    for &frac in &fracs {
        for (label, period) in [
            ("Controller @150us", SimDuration::from_micros(150)),
            ("Controller @300us", SimDuration::from_micros(300)),
        ] {
            let run_label = format!(
                "p{}us-c{}",
                period.as_nanos() / 1_000,
                (frac * 100.0) as u32
            );
            let s = run_controller(scale, period, frac, &run_label);
            println!(
                "{:<22} {:>6}% {:>9.1}% {:>12.1} {:>14.1}",
                label,
                (frac * 100.0) as u32,
                s.hit_rate * 100.0,
                s.avg_fct_us,
                s.avg_first_packet_latency_us
            );
        }
        // Data-plane comparison point.
        let spec = ExperimentSpec::builder(scale.ft8(), StrategyKind::SwitchV2P)
            .flows(websearch(&scale.websearch()))
            .cache_entries(
                ((frac * scale.active_addresses("websearch") as f64) as usize).max(1),
            )
            .seed(args.seed())
            .label(format!("c{}", (frac * 100.0) as u32))
            .build();
        let s = run_spec(&spec);
        println!(
            "{:<22} {:>6}% {:>9.1}% {:>12.1} {:>14.1}",
            "SwitchV2P",
            (frac * 100.0) as u32,
            s.hit_rate * 100.0,
            s.avg_fct_us,
            s.avg_first_packet_latency_us
        );
        println!();
    }
    println!("The controller wins at small caches (global placement, no");
    println!("duplication) and fades as its information staleness dominates —");
    println!("the Appendix A.2 observation.");
    cli::finish();
}
