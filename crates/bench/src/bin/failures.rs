//! Failure-recovery experiment: how each translation scheme rides out a ToR
//! reboot storm, a spine link failure and fabric-wide random loss.
//!
//! For every (scenario × scheme) pair, a steady TCP workload runs while the
//! fault window opens mid-experiment; the run reports per-window recovery
//! metrics (hit-rate before/during/after, FCT degradation, time to recover
//! to 95% of the pre-fault hit rate) plus the per-cause drop breakdown.
//!
//! ```sh
//! cargo run --release -p sv2p-bench --bin failures
//! ```

use sv2p_bench::cli;
use sv2p_bench::harness::{drop_breakdown, ExperimentSpec, StrategyKind};
use sv2p_netsim::faults::{FaultEvent, FaultPlan};
use sv2p_netsim::Engine;
use sv2p_simcore::{SimDuration, SimTime};
use sv2p_topology::{FatTreeConfig, LinkId, SwitchRole};
use sv2p_traces::{FlowProfile, TraceFlow};

/// Fault window: opens at 1.5 ms, closes at 1.7 ms into the run.
const FAULT_AT_US: u64 = 1_500;
const FAULT_END_US: u64 = 1_700;

/// A steady stream of TCP flows so every recovery window carries traffic.
fn steady_flows(n: usize, horizon_us: u64, bytes: u64) -> Vec<TraceFlow> {
    (0..n)
        .map(|i| TraceFlow {
            src_vm: i * 7 + 1,
            dst_vm: i * 13 + 29,
            start_ns: (i as u64 * horizon_us * 1_000) / n as u64,
            profile: FlowProfile::Tcp { bytes },
        })
        .collect()
}

fn base_spec(strategy: StrategyKind, scenario: &str) -> ExperimentSpec {
    ExperimentSpec::builder(FatTreeConfig::scaled_ft8(2), strategy)
        .vms_per_server(16)
        .flows(steady_flows(300, 3_000, 30_000))
        .cache_entries(96)
        .seed(cli::args().seed())
        .label(scenario)
        .build()
}

/// Builds the scenario's fault plan against a concrete simulation instance
/// (node/link ids are topology-dependent).
fn plan_for(scenario: &str, sim: &Engine) -> FaultPlan {
    let at = SimTime::from_micros(FAULT_AT_US);
    let end = SimTime::from_micros(FAULT_END_US);
    match scenario {
        "tor-reboot-storm" => {
            // Every ToR reboots at once and blacks out for the window.
            FaultPlan::from_events(
                sim.topology()
                    .switches()
                    .filter(|n| {
                        matches!(
                            sim.roles().role(n.id),
                            Some(SwitchRole::Tor) | Some(SwitchRole::GatewayTor)
                        )
                    })
                    .map(|n| FaultEvent::SwitchReboot {
                        node: n.id,
                        at,
                        blackout: SimDuration::from_micros(FAULT_END_US - FAULT_AT_US),
                    })
                    .collect::<Vec<_>>(),
            )
            .expect("valid storm plan")
        }
        "spine-link-failure" => {
            // One ToR loses an uplink in both directions; ECMP must rehash.
            let tor = sim
                .topology()
                .switches()
                .find(|n| sim.roles().role(n.id) == Some(SwitchRole::Tor))
                .map(|n| n.id)
                .expect("a ToR exists");
            let up = sim.topology().out_links[tor.0 as usize]
                .iter()
                .copied()
                .find(|&l| {
                    let to = sim.topology().link(l).to;
                    sim.topology().node(to).kind.is_switch()
                })
                .expect("ToR has an uplink");
            let (from, to) = {
                let l = sim.topology().link(up);
                (l.from, l.to)
            };
            let down = sim
                .topology()
                .links
                .iter()
                .enumerate()
                .find(|(_, l)| l.from == to && l.to == from)
                .map(|(i, _)| LinkId(i as u32))
                .expect("links are paired");
            FaultPlan::from_events([
                FaultEvent::LinkDown {
                    link: up,
                    at,
                    up_at: end,
                },
                FaultEvent::LinkDown {
                    link: down,
                    at,
                    up_at: end,
                },
            ])
            .expect("valid link plan")
        }
        "random-loss-0.1pct" => FaultPlan::from_events([FaultEvent::LossRate {
            link: None,
            rate: 0.001,
            from: at,
            until: end,
        }])
        .expect("valid loss plan"),
        other => panic!("unknown scenario {other}"),
    }
}

fn run_scenario(scenario: &str, strategy: StrategyKind) {
    let spec = base_spec(strategy, scenario);
    let total = spec.flows.len();
    let mut sim = spec.build();
    let plan = plan_for(scenario, &sim);
    sim.apply_fault_plan(plan);
    let start = std::time::Instant::now();
    sim.run();
    let wall = start.elapsed().as_secs_f64();
    let s = sim.summary();
    cli::record_run(&spec, &sim, &s, wall);
    let r = sim
        .metrics()
        .recovery_report(
            SimTime::from_micros(FAULT_AT_US),
            SimTime::from_micros(FAULT_END_US),
        );
    let ttr = match r.time_to_recover_us {
        Some(us) => format!("{us:.0} us"),
        None => "not recovered".to_string(),
    };
    println!(
        "  {:14} flows {}/{}  hit pre/during/post {:.3}/{:.3}/{:.3}  \
         fct-degradation {:.2}x  time-to-recover {}",
        strategy.name(),
        s.flows_completed,
        total,
        r.pre_fault_hit_rate,
        r.during_fault_hit_rate,
        r.post_fault_hit_rate,
        r.fct_degradation,
        ttr,
    );
    println!("  {:14} {}", "", drop_breakdown(&s));
}

fn main() {
    cli::init("failures");
    let strategies = [
        StrategyKind::SwitchV2P,
        StrategyKind::GwCache,
        StrategyKind::LocalLearning,
    ];
    for scenario in ["tor-reboot-storm", "spine-link-failure", "random-loss-0.1pct"] {
        println!(
            "\nFailure recovery — {scenario} (fault window {FAULT_AT_US}-{FAULT_END_US} us)"
        );
        for &strategy in &strategies {
            run_scenario(scenario, strategy);
        }
    }
    cli::finish();
}
