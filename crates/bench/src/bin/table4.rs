//! Table 4: the effect of VM migration on network performance, normalized
//! by NoCache (§5.2). 64 UDP senders incast one VM; it migrates at 500 µs.
//!
//! ```sh
//! cargo run --release -p sv2p-bench --bin table4
//! ```

use sv2p_bench::harness::{run_spec, ExperimentSpec, StrategyKind};
use sv2p_bench::cli;
use sv2p_traces::incast;
use switchv2p::SwitchV2PConfig;

fn main() {
    let args = cli::init("table4");
    let scale = args.scale;
    // VM 0 is the victim; senders live on 64 distinct servers (80 VMs per
    // server on FT8-10K).
    let dst_vm = 0usize;
    let senders: Vec<usize> = (1..=64).map(|i| i * 80).collect();
    let flows = incast(&scale.incast(), &senders, dst_vm);
    let cache = scale.analysis_cache_entries("hadoop");

    let variants: Vec<(&str, StrategyKind, usize)> = vec![
        ("NoCache", StrategyKind::NoCache, 0),
        ("OnDemand", StrategyKind::OnDemand, 0),
        (
            "SwitchV2P w/o invalidations",
            StrategyKind::SwitchV2PWith(SwitchV2PConfig::without_invalidations()),
            cache,
        ),
        (
            "SwitchV2P w/o timestamp vector",
            StrategyKind::SwitchV2PWith(SwitchV2PConfig::without_timestamp_vector()),
            cache,
        ),
        (
            "SwitchV2P w/ timestamp vector",
            StrategyKind::SwitchV2P,
            cache,
        ),
    ];

    println!("Table 4: VM migration under incast, normalized by NoCache\n");
    println!(
        "{:<32} {:>9} {:>12} {:>14} {:>13} {:>8}",
        "variant", "gw pkts", "avg latency", "last misdel", "misdelivered", "invals"
    );
    let mut base: Option<(f64, u64)> = None;
    for (name, strategy, cache_entries) in variants {
        let spec = ExperimentSpec::builder(scale.ft8(), strategy)
            .flows(flows.clone())
            .cache_entries(cache_entries)
            .migrations(vec![(dst_vm, 500)])
            .seed(args.seed())
            .label(name)
            .build();
        let s = run_spec(&spec);
        let (base_lat, base_misdel) =
            *base.get_or_insert((s.avg_packet_latency_us, s.misdelivered_packets.max(1)));
        println!(
            "{:<32} {:>8.1}% {:>11.2}x {:>11.0} us {:>12.1}x {:>8}",
            name,
            (1.0 - s.hit_rate) * 100.0,
            s.avg_packet_latency_us / base_lat,
            s.last_misdelivery_us.unwrap_or(0.0),
            s.misdelivered_packets as f64 / base_misdel as f64,
            s.invalidation_packets
        );
    }
    cli::finish();
}
