//! Table 5: the distribution of SwitchV2P cache hits within the network
//! topology for each dataset at a cache size of 50%.
//!
//! ```sh
//! cargo run --release -p sv2p-bench --bin table5 [-- --full]
//! ```

use sv2p_bench::harness::{run_spec, ExperimentSpec, StrategyKind};
use sv2p_bench::cli;
use sv2p_traces::{hadoop, microbursts, video, websearch};

fn main() {
    let args = cli::init("table5");
    let scale = args.scale;
    println!("Table 5: SwitchV2P cache-hit distribution by layer (cache 50%)\n");
    println!(
        "{:<12} | {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7}",
        "dataset", "Core", "Spine", "ToR", "Core", "Spine", "ToR"
    );
    println!("{:<12} | {:^23} | {:^23}", "", "Total", "First packet");
    for (name, flows) in [
        ("Hadoop", hadoop(&scale.hadoop())),
        ("WebSearch", websearch(&scale.websearch())),
        ("Microbursts", microbursts(&scale.microbursts())),
        ("Video", video(&scale.video())),
    ] {
        let _active = scale.active_addresses(match name {
            "Hadoop" => "hadoop",
            "WebSearch" => "websearch",
            "Microbursts" => "microbursts",
            _ => "other",
        });
        let spec = ExperimentSpec::builder(scale.ft8(), StrategyKind::SwitchV2P)
            .flows(flows)
            .cache_entries(scale.analysis_cache_entries(""))
            .seed(args.seed())
            .label(name.to_lowercase())
            .build();
        let s = run_spec(&spec);
        println!(
            "{:<12} | {:>6.1}% {:>6.1}% {:>6.1}% | {:>6.1}% {:>6.1}% {:>6.1}%",
            name,
            s.hit_share_core * 100.0,
            s.hit_share_spine * 100.0,
            s.hit_share_tor * 100.0,
            s.first_hit_share_core * 100.0,
            s.first_hit_share_spine * 100.0,
            s.first_hit_share_tor * 100.0,
        );
    }
    println!("\n(Alibaba's row is produced by the fig6 binary's summary.)");
    cli::finish();
}
