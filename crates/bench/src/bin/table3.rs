//! Table 3: the network topologies' characteristics.

use sv2p_bench::cli;
use sv2p_topology::FatTreeConfig;

fn main() {
    cli::init("table3");
    let start = std::time::Instant::now();
    let ft8 = FatTreeConfig::ft8_10k();
    let ft16 = FatTreeConfig::ft16_400k();
    let (c8, c16) = (ft8.characteristics(), ft16.characteristics());
    println!("Table 3: the network topologies' characteristics\n");
    println!("{:<22} {:>10} {:>12}", "", "FT8-10K", "FT16-400K");
    let row = |name: &str, a: u32, b: u32| println!("{name:<22} {a:>10} {b:>12}");
    row("#Pods", c8.pods as u32, c16.pods as u32);
    row(
        "#Racks per pod",
        c8.racks_per_pod as u32,
        c16.racks_per_pod as u32,
    );
    row("#ToR switches", c8.tor_switches, c16.tor_switches);
    row("#Core switches", c8.core_switches, c16.core_switches);
    row("#Gateways", c8.gateways, c16.gateways);
    row(
        "#VMs",
        c8.physical_servers * 80,
        c16.physical_servers * 32,
    );
    row("#Physical servers", c8.physical_servers, c16.physical_servers);
    println!(
        "\n(total switches: FT8-10K = {}, FT16-400K = {})",
        c8.total_switches, c16.total_switches
    );
    cli::record_manifest(cli::analytic_manifest(
        "topology-characteristics",
        start.elapsed().as_secs_f64(),
    ));
    cli::finish();
}
