//! Figures 7–8 and the §5.3 bandwidth/stretch analysis: per-pod and
//! per-switch byte counts for Hadoop at a 50% cache.
//!
//! Figure 7 is the per-pod heat map (gateways in pods 1, 3, 6, 8);
//! Figure 8 zooms into pod 8's switches. The binary also prints the §5.3
//! headline numbers: total-traffic reduction factors and average packet
//! stretch.
//!
//! ```sh
//! cargo run --release -p sv2p-bench --bin fig7 [-- --full]
//! ```

use sv2p_bench::harness::{ExperimentSpec, StrategyKind};
use sv2p_bench::cli;
use sv2p_topology::NodeKind;
use sv2p_traces::hadoop;

fn main() {
    let args = cli::init("fig7");
    let scale = args.scale;
    let flows = hadoop(&scale.hadoop());
    let systems = [
        StrategyKind::NoCache,
        StrategyKind::LocalLearning,
        StrategyKind::GwCache,
        StrategyKind::SwitchV2P,
        StrategyKind::Direct,
    ];
    let cache = scale.analysis_cache_entries("hadoop");

    let mut per_pod: Vec<(&str, Vec<u64>, u64, f64)> = Vec::new();
    let mut pod8: Vec<(&str, Vec<(String, u64)>)> = Vec::new();

    for s in systems {
        let spec = ExperimentSpec::builder(scale.ft8(), s)
            .flows(flows.clone())
            .cache_entries(if s.cache_sensitive() { cache } else { 0 })
            .seed(args.seed())
            .label("hadoop")
            .build();
        let mut sim = spec.build();
        let start = std::time::Instant::now();
        sim.run();
        let wall = start.elapsed().as_secs_f64();
        // Summarize first: the sharded engine folds shard-local byte
        // counters into the master metrics during finalization.
        let summary = sim.summary();
        let pods: Vec<u64> = (0..8).map(|p| sim.metrics().pod_bytes(p)).collect();
        // Pod 8 (index 7) per switch: spines then ToRs then the gateway ToR,
        // matching Figure 8's switch numbering.
        let mut spines = Vec::new();
        let mut tors = Vec::new();
        let mut gw_tor = Vec::new();
        for (_, kind, bytes) in sim.per_switch_bytes() {
            match kind {
                NodeKind::Spine { pod: 7, idx } => spines.push((format!("spine{}", idx + 1), bytes)),
                NodeKind::Tor { pod: 7, rack } => {
                    if rack == 3 {
                        gw_tor.push(("gw-ToR".to_string(), bytes));
                    } else {
                        tors.push((format!("ToR{}", rack + 1), bytes));
                    }
                }
                _ => {}
            }
        }
        spines.sort();
        tors.sort();
        cli::record_run(&spec, &sim, &summary, wall);
        per_pod.push((
            s.name(),
            pods,
            summary.total_switch_bytes,
            summary.avg_stretch,
        ));
        pod8.push((s.name(), [spines, tors, gw_tor].concat()));
    }

    println!("Figure 7: bytes processed by the switches of each pod (MB)");
    println!("(gateways are in pods 1, 3, 6, 8)\n");
    print!("{:<14}", "system");
    for p in 1..=8 {
        print!("{:>9}", format!("pod{p}"));
    }
    println!();
    for (name, pods, _, _) in &per_pod {
        print!("{name:<14}");
        for &b in pods {
            print!("{:>9.0}", b as f64 / 1e6);
        }
        println!();
    }

    println!("\nFigure 8: bytes processed across pod 8's switches (MB)\n");
    if let Some((_, cols)) = pod8.first() {
        print!("{:<14}", "system");
        for (label, _) in cols {
            print!("{label:>9}");
        }
        println!();
    }
    for (name, cols) in &pod8 {
        print!("{name:<14}");
        for &(_, b) in cols {
            print!("{:>9.0}", b as f64 / 1e6);
        }
        println!();
    }

    println!("\nSection 5.3 headline numbers:");
    let direct = per_pod.iter().find(|r| r.0 == "Direct").unwrap();
    let sv2p = per_pod.iter().find(|r| r.0 == "SwitchV2P").unwrap();
    for (name, _, total, stretch) in &per_pod {
        println!(
            "  {name:<14} total switch bytes {:>8.0} MB ({:>4.2}x of SwitchV2P, {:+.1}% vs Direct), avg stretch {stretch:.2}",
            *total as f64 / 1e6,
            *total as f64 / sv2p.2 as f64,
            (*total as f64 / direct.2 as f64 - 1.0) * 100.0,
        );
    }
    // Gateway-ToR load reduction (the paper: 6.1x vs NoCache, 3.7x vs GwCache).
    let gw_bytes = |name: &str| {
        pod8.iter()
            .find(|r| r.0 == name)
            .and_then(|(_, cols)| cols.iter().find(|(l, _)| l == "gw-ToR"))
            .map(|&(_, b)| b as f64)
            .unwrap_or(0.0)
    };
    println!(
        "  gateway-ToR byte reduction: {:.1}x vs NoCache, {:.1}x vs GwCache",
        gw_bytes("NoCache") / gw_bytes("SwitchV2P"),
        gw_bytes("GwCache") / gw_bytes("SwitchV2P"),
    );
    cli::finish();
}
