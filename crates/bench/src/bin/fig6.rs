//! Figure 6: the Alibaba microservice trace on FT16-400K — hit rate, FCT
//! improvement, and first-packet improvement vs cache size.
//!
//! ```sh
//! cargo run --release -p sv2p-bench --bin fig6 [-- --full]
//! ```

use sv2p_bench::harness::{print_figure5_panels, sweep, ExperimentSpec, StrategyKind};
use sv2p_bench::cli;
use sv2p_traces::alibaba;

fn main() {
    let args = cli::init("fig6");
    let scale = args.scale;
    let (topology, ali_cfg, vms_per_server) = scale.alibaba();
    let flows = alibaba(&ali_cfg);
    let base = ExperimentSpec {
        topology,
        vms_per_server,
        flows,
        strategy: StrategyKind::NoCache,
        cache_entries: 0,
        migrations: vec![],
        end_of_time_us: None,
        seed: args.seed(),
        label: "alibaba".into(),
    };
    let fracs = scale.cache_fracs();
    let rows = sweep(
        &base,
        &StrategyKind::figure5_set(),
        &fracs,
        scale.active_addresses("alibaba"),
    );
    print_figure5_panels("Figure 6 (Alibaba, FT16-400K)", &rows, &fracs);
    cli::finish();
}
