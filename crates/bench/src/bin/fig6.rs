//! Figure 6: the Alibaba microservice trace on FT16-400K — hit rate, FCT
//! improvement, and first-packet improvement vs cache size.
//!
//! ```sh
//! cargo run --release -p sv2p-bench --bin fig6 [-- --full]
//! ```

use sv2p_bench::harness::{print_figure5_panels, sweep, ExperimentSpec, StrategyKind};
use sv2p_bench::cli;
use sv2p_traces::alibaba;

fn main() {
    let args = cli::init("fig6");
    let scale = args.scale;
    let (topology, ali_cfg, vms_per_server) = scale.alibaba();
    let flows = alibaba(&ali_cfg);
    let base = ExperimentSpec::builder(topology, StrategyKind::NoCache)
        .vms_per_server(vms_per_server)
        .flows(flows)
        .seed(args.seed())
        .label("alibaba")
        .build();
    let fracs = scale.cache_fracs();
    let table = sweep(
        &base,
        &StrategyKind::figure5_set(),
        &fracs,
        scale.active_addresses("alibaba"),
    );
    print_figure5_panels("Figure 6 (Alibaba, FT16-400K)", &table, &fracs);
    cli::finish();
}
