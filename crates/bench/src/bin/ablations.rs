//! Ablation study: disable each SwitchV2P mechanism in turn (Hadoop and
//! Video, cache 50%) — the design-choice benches DESIGN.md §6 calls out.
//!
//! ```sh
//! cargo run --release -p sv2p-bench --bin ablations [-- --full]
//! ```

use sv2p_bench::harness::{run_spec, ExperimentSpec, StrategyKind};
use sv2p_bench::cli;
use sv2p_traces::{hadoop, video};
use switchv2p::SwitchV2PConfig;

fn main() {
    let args = cli::init("ablations");
    let scale = args.scale;
    let variants: Vec<(&str, SwitchV2PConfig)> = vec![
        ("full design", SwitchV2PConfig::default()),
        ("w/o learning packets", SwitchV2PConfig::without_learning_packets()),
        ("w/o spillover", SwitchV2PConfig::without_spillover()),
        ("w/o promotion", SwitchV2PConfig::without_promotion()),
        ("ToR-only caching", SwitchV2PConfig::tor_only()),
        (
            "spill active only",
            SwitchV2PConfig {
                spill_only_active: true,
                ..Default::default()
            },
        ),
        ("ToR-heavy memory (4:1:1)", SwitchV2PConfig::tor_heavy()),
        ("core-heavy memory (1:1:4)", SwitchV2PConfig::core_heavy()),
    ];

    for (dataset, flows) in [
        ("Hadoop", hadoop(&scale.hadoop())),
        ("Video", video(&scale.video())),
    ] {
        println!("Ablations on {dataset} (cache 50%)\n");
        println!(
            "{:<22} {:>10} {:>12} {:>14} {:>10} {:>10}",
            "variant", "hit rate", "avg FCT us", "first pkt us", "learn pkts", "spills"
        );
        for (name, cfg) in &variants {
            let spec = ExperimentSpec::builder(scale.ft8(), StrategyKind::SwitchV2PWith(*cfg))
                .flows(flows.clone())
                .cache_entries(scale.analysis_cache_entries(""))
                .seed(args.seed())
                .label(format!("{dataset}:{name}"))
                .build();
            let s = run_spec(&spec);
            println!(
                "{:<22} {:>9.1}% {:>12.1} {:>14.1} {:>10} {:>10}",
                name,
                s.hit_rate * 100.0,
                s.avg_fct_us,
                s.avg_first_packet_latency_us,
                s.learning_packets,
                s.retransmissions
            );
        }
        println!();
    }
    cli::finish();
}
