//! Engine self-profiler guarantees at the bench layer.
//!
//! Two contracts are pinned here. First, **zero observable cost**: a run
//! with `SimConfig::profile` on must produce byte-identical simulation
//! output (event counts, summary, telemetry JSONL) to the same run with
//! profiling off — wall-clock timers may change how long a run takes, never
//! what it computes. Second, **deterministic projection**: the profile
//! report mixes wall-clock nanoseconds (non-deterministic by nature) with
//! deterministic counters (phase call counts, journal block counts,
//! occupancy histograms); the deterministic projection of two same-seed
//! reports must agree byte-for-byte, which catches any accidental leak of
//! timing into what should be replay-stable state.

use sv2p_bench::harness::to_flow_specs;
use sv2p_bench::harness::StrategyKind;
use sv2p_netsim::{Engine, SimConfig};
use sv2p_simcore::SimTime;
use sv2p_telemetry::{deterministic_projection, Phase, ProfileDoc, ProfileMeta, TelemetryConfig};
use sv2p_topology::FatTreeConfig;
use sv2p_traces::{hadoop, HadoopConfig};

/// Same construction path as `tests/sharding.rs`, plus the profile knob.
fn engine(shards: u16, profile: bool) -> Engine {
    let cfg = SimConfig {
        seed: 1,
        end_of_time: Some(SimTime::from_micros(50_000)),
        telemetry: TelemetryConfig::enabled(),
        profile,
        ..SimConfig::default()
    };
    let ft = FatTreeConfig::scaled_ft8(2);
    let strategy = StrategyKind::SwitchV2P.build();
    let mut sim = Engine::new(cfg, &ft, strategy.as_ref(), 256, 16, shards);
    let raw = hadoop(&HadoopConfig {
        flows: 200,
        ..Default::default()
    });
    let n_vms = sim.placement().len();
    sim.add_flows(to_flow_specs(&raw, n_vms));
    sim
}

/// Every byte-comparable simulation surface of a finished run, plus the
/// rendered profile report (empty string when profiling is off).
fn run_bundle(mut sim: Engine) -> (u64, String, String, String) {
    sim.run();
    let events_jsonl = sim.tracer().render_events_jsonl();
    let summary = format!("{:?}", sim.summary());
    let report = if sim.profiler().enabled() {
        let meta = ProfileMeta {
            bin: "profiling-test".into(),
            label: "ft8-hadoop".into(),
            engine: if sim.shards() > 1 { "sharded" } else { "single" }.into(),
            shards: sim.shards() as u64,
            seed: 1,
            events_executed: sim.events_executed(),
            host_cores: 1,
            peak_rss_bytes: 0,
        };
        sim.profiler().render_report(&meta)
    } else {
        String::new()
    };
    (sim.events_executed(), summary, events_jsonl, report)
}

#[test]
fn profiling_does_not_change_simulation_output() {
    for shards in [1u16, 4] {
        let off = run_bundle(engine(shards, false));
        let on = run_bundle(engine(shards, true));
        assert!(off.3.is_empty(), "profile-off run produced a report");
        assert!(!on.3.is_empty(), "profile-on run produced no report");
        assert_eq!(off.0, on.0, "event counts diverged at shards={shards}");
        assert_eq!(off.1, on.1, "summaries diverged at shards={shards}");
        assert_eq!(off.2, on.2, "telemetry JSONL diverged at shards={shards}");
    }
}

#[test]
fn deterministic_projection_is_replay_stable() {
    for shards in [1u16, 4] {
        let a = run_bundle(engine(shards, true));
        let b = run_bundle(engine(shards, true));
        // The raw reports differ (wall-clock nanoseconds), but the
        // deterministic projection must agree byte-for-byte.
        let pa = deterministic_projection(&a.3).expect("report a projects");
        let pb = deterministic_projection(&b.3).expect("report b projects");
        assert_eq!(pa, pb, "deterministic projection diverged at shards={shards}");
        assert!(
            pa.contains(" calls="),
            "projection lost phase call counts at shards={shards}"
        );
    }
}

#[test]
fn sharded_report_parses_with_sane_phase_fractions() {
    let mut sim = engine(4, true);
    sim.run();
    assert!(sim.shards() > 1, "topology did not shard");
    let prof = sim.profiler();
    assert!(prof.enabled());

    // The sharded driver's phase fractions partition (most of) the run:
    // each lies in [0, 1] and together they cannot exceed the run by more
    // than timer-skew slack.
    let phases = [
        Phase::WindowAdvance,
        Phase::CutExchange,
        Phase::WorkerReplay,
        Phase::BarrierWait,
        Phase::JournalMerge,
        Phase::GlobalExec,
    ];
    let mut total = 0.0;
    for p in phases {
        let f = prof.frac(p);
        assert!((0.0..=1.0).contains(&f), "{p:?} frac {f} outside [0,1]");
        total += f;
    }
    assert!(total <= 1.05, "sharded phase fractions sum to {total} > 1.05");
    assert!(total > 0.0, "sharded run recorded no phase time at all");
    assert!(prof.imbalance_cv() >= 0.0);
    assert_eq!(
        prof.shard_accs().len(),
        sim.shards() as usize,
        "one shard accumulator per executing shard"
    );

    let meta = ProfileMeta {
        bin: "profiling-test".into(),
        label: "ft8-hadoop".into(),
        engine: "sharded".into(),
        shards: sim.shards() as u64,
        seed: 1,
        events_executed: sim.events_executed(),
        host_cores: 1,
        peak_rss_bytes: 0,
    };
    let report = prof.render_report(&meta);
    let doc = ProfileDoc::parse(&report).expect("report parses as sv2p-profile/v1");
    assert!(!doc.phases.is_empty(), "report has no phase rows");
    assert_eq!(doc.shards.len(), sim.shards() as usize);
    assert!(!doc.summary.is_empty(), "report has no summary row");
}

#[test]
fn single_loop_report_covers_dispatch_phases() {
    let mut sim = engine(1, true);
    sim.run();
    let prof = sim.profiler();
    assert!(prof.enabled());
    assert!(prof.phase_calls(Phase::Pop) > 0, "no pops timed");
    assert_eq!(
        prof.phase_calls(Phase::Pop),
        sim.events_executed(),
        "every executed event must be timed through Pop"
    );
    // Dispatch time is attributed per event class; the workload above
    // certainly sends UDP/TCP traffic over links.
    assert!(prof.phase_calls(Phase::LinkArrival) > 0, "no arrivals timed");
    let mut total = prof.frac(Phase::Pop);
    for p in [
        Phase::FlowStart,
        Phase::UdpSend,
        Phase::LinkFree,
        Phase::LinkArrival,
        Phase::RtoTimer,
        Phase::Gateway,
        Phase::ReInject,
        Phase::HostForward,
        Phase::Migrate,
        Phase::Fault,
        Phase::ChurnMark,
        Phase::TelemetrySample,
    ] {
        let f = prof.frac(p);
        assert!((0.0..=1.0).contains(&f), "{p:?} frac {f} outside [0,1]");
        total += f;
    }
    assert!(total <= 1.05, "single-loop phase fractions sum to {total} > 1.05");
}
