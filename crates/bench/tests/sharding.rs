//! Sharded-engine equivalence at the bench layer: `--shards 1` and
//! `--shards 4` must produce byte-identical summaries and telemetry JSONL
//! for the real experiment pipeline (trace workloads through
//! `ExperimentSpec`), and the guarantee must survive arbitrary fault
//! plans.
//!
//! The netsim-level contract lives in `crates/netsim/tests/sharded_equiv.rs`;
//! this test pins the harness plumbing on top of it — spec → engine
//! construction, flow conversion, and the JSONL surfaces the bins write.

use proptest::prelude::*;
use sv2p_bench::harness::{to_flow_specs, ExperimentSpec, StrategyKind};
use sv2p_netsim::faults::{FaultEvent, FaultPlan};
use sv2p_netsim::{Engine, SimConfig, Simulation};
use sv2p_simcore::{SimDuration, SimTime};
use sv2p_telemetry::TelemetryConfig;
use sv2p_topology::{FatTreeConfig, LinkId, NodeId};
use sv2p_traces::{hadoop, HadoopConfig};

/// Builds the engine the way `ExperimentSpec::build` does — same config
/// fields, same flow conversion — but with telemetry forced on (the spec
/// path keys tracing off the process-wide `--telemetry` flag, which tests
/// cannot set) and the ft8-hadoop trace as the workload.
fn engine(shards: u16, plan: Option<&FaultPlan>) -> Engine {
    let cfg = SimConfig {
        seed: 1,
        end_of_time: Some(SimTime::from_micros(50_000)),
        telemetry: TelemetryConfig::enabled(),
        ..SimConfig::default()
    };
    let ft = FatTreeConfig::scaled_ft8(2);
    let strategy = StrategyKind::SwitchV2P.build();
    let mut sim = Engine::new(cfg, &ft, strategy.as_ref(), 256, 16, shards);
    if let Some(p) = plan {
        sim.apply_fault_plan(p.clone());
    }
    let raw = hadoop(&HadoopConfig {
        flows: 200,
        ..Default::default()
    });
    let n_vms = sim.placement().len();
    sim.add_flows(to_flow_specs(&raw, n_vms));
    sim
}

/// Every byte-comparable surface of a finished run.
fn run_bundle(mut sim: Engine) -> (u64, String, String, String) {
    sim.run();
    let events_jsonl = sim.tracer().render_events_jsonl();
    let samples_jsonl = sim.tracer().render_samples_jsonl();
    let executed = sim.events_executed();
    let summary = format!("{:?}", sim.summary());
    (executed, summary, events_jsonl, samples_jsonl)
}

#[test]
fn ft8_hadoop_shards_1_and_4_are_byte_identical() {
    let single = run_bundle(engine(1, None));
    let sharded = run_bundle(engine(4, None));
    assert_eq!(single.0, sharded.0, "events executed");
    assert_eq!(single.1, sharded.1, "run summary");
    assert_eq!(single.2, sharded.2, "telemetry events JSONL");
    assert_eq!(single.3, sharded.3, "telemetry samples JSONL");
}

#[test]
fn spec_builder_threads_shards_into_the_engine() {
    let spec = ExperimentSpec::builder(FatTreeConfig::scaled_ft8(2), StrategyKind::NoCache)
        .vms_per_server(2)
        .shards(4)
        .build();
    assert_eq!(spec.shards, 4);
    let sim = spec.build();
    // scaled_ft8(2) has two pods, so the partitioner clamps the requested
    // four shards to pods + 1 (two pod shards plus the core/podless shard).
    assert_eq!(sim.shards(), 3, "spec.build must honor the shard count");
    let single = ExperimentSpec::builder(FatTreeConfig::scaled_ft8(2), StrategyKind::NoCache)
        .vms_per_server(2)
        .build()
        .build();
    assert_eq!(single.shards(), 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random fault plans on the hadoop workload: the sharded pipeline must
    /// match the single-threaded pipeline byte-for-byte through arbitrary
    /// reboot/link/outage/loss schedules.
    #[test]
    fn random_fault_plans_keep_shard_counts_equivalent(
        events in proptest::collection::vec(
            (0u8..4, any::<u32>(), 0u64..400, 1u64..300, 0.0f64..0.2),
            1..5,
        ),
    ) {
        let ft = FatTreeConfig::scaled_ft8(2);
        let probe = Simulation::new(
            SimConfig::default(),
            &ft,
            StrategyKind::NoCache.build().as_ref(),
            0,
            2,
        );
        let switches: Vec<NodeId> = probe.topology().switches().map(|n| n.id).collect();
        let gateways: Vec<NodeId> = probe.topology().gateways().map(|n| n.id).collect();
        let n_links = probe.topology().links.len();
        let mut plan = FaultPlan::new();
        for &(kind, idx, start_us, dur_us, rate) in &events {
            let at = SimTime::from_micros(start_us);
            let end = SimTime::from_micros(start_us + dur_us);
            let ev = match kind {
                0 => FaultEvent::SwitchReboot {
                    node: switches[idx as usize % switches.len()],
                    at,
                    blackout: SimDuration::from_micros(dur_us),
                },
                1 => FaultEvent::LinkDown {
                    link: LinkId((idx as usize % n_links) as u32),
                    at,
                    up_at: end,
                },
                2 => FaultEvent::GatewayOutage {
                    node: gateways[idx as usize % gateways.len()],
                    at,
                    up_at: end,
                },
                _ => FaultEvent::LossRate { link: None, rate, from: at, until: end },
            };
            plan.push(ev).expect("generated events are well-formed");
        }
        let single = run_bundle(engine(1, Some(&plan)));
        let sharded = run_bundle(engine(4, Some(&plan)));
        prop_assert_eq!(single, sharded);
    }
}
