//! Determinism regression: two runs of the same experiment with the same
//! seed must agree byte-for-byte — event counts, the derived summary, and
//! the entire telemetry JSONL stream (events and samples).
//!
//! This pins the guarantee the hot-path overhaul must preserve: the
//! calendar-queue event queue, the packet arena, and the FxHash maps are
//! all allowed to change *how fast* a run executes, never *what* it
//! executes. A tie-break bug in the wheel, a recycled-handle aliasing bug
//! in the arena, or an iteration-order leak from a hash map would each
//! show up here as a diff in the serialized stream.

use sv2p_bench::harness::{to_flow_specs, StrategyKind};
use sv2p_netsim::{ChurnPlan, ChurnSpec, SimConfig, Simulation};
use sv2p_simcore::SimTime;
use sv2p_telemetry::TelemetryConfig;
use sv2p_topology::FatTreeConfig;
use sv2p_traces::{FlowProfile, TraceFlow};

/// A fig9-style steady TCP workload: enough concurrency to exercise ECMP,
/// queueing, cache fills and retransmissions.
fn flows() -> Vec<TraceFlow> {
    (0..120)
        .map(|i| TraceFlow {
            src_vm: i * 7 + 1,
            dst_vm: i * 13 + 29,
            start_ns: (i as u64) * 9_000,
            profile: FlowProfile::Tcp { bytes: 20_000 },
        })
        .collect()
}

/// Runs once with telemetry on and returns every observable surface as a
/// byte-comparable bundle.
fn run_once(seed: u64) -> (u64, String, String) {
    let cfg = SimConfig {
        seed,
        end_of_time: Some(SimTime::from_micros(50_000)),
        telemetry: TelemetryConfig::enabled(),
        ..SimConfig::default()
    };
    let ft = FatTreeConfig::scaled_ft8(2);
    let strategy = StrategyKind::SwitchV2P.build();
    let mut sim = Simulation::new(cfg, &ft, strategy.as_ref(), 128, 16);
    let n_vms = sim.placement.len();
    sim.add_flows(to_flow_specs(&flows(), n_vms));
    sim.run();

    let mut jsonl = String::new();
    for ev in sim.tracer().events() {
        jsonl.push_str(&ev.to_json());
        jsonl.push('\n');
    }
    for s in &sim.tracer().samples {
        jsonl.push_str(&s.to_json());
        jsonl.push('\n');
    }
    let summary = format!("{:?}", sim.summary());
    (sim.events_executed(), summary, jsonl)
}

#[test]
fn same_seed_runs_are_byte_identical() {
    let (events_a, summary_a, jsonl_a) = run_once(7);
    let (events_b, summary_b, jsonl_b) = run_once(7);
    assert!(events_a > 10_000, "workload too small to be a meaningful guard");
    assert!(!jsonl_a.is_empty(), "telemetry stream is empty");
    assert_eq!(events_a, events_b, "event counts diverged");
    assert_eq!(summary_a, summary_b, "summaries diverged");
    assert_eq!(jsonl_a, jsonl_b, "telemetry JSONL diverged");
}

#[test]
fn different_seeds_actually_diverge() {
    // Guards the guard: if seeding were ignored, the test above would pass
    // vacuously for the wrong reason.
    let (_, _, jsonl_a) = run_once(7);
    let (_, _, jsonl_b) = run_once(8);
    assert_ne!(jsonl_a, jsonl_b, "different seeds produced identical streams");
}

/// A churn-bin-style run: background flows plus a full churn timeline
/// (tenant arrivals, departures, migration waves) with the gateway overload
/// model shedding. Every observable surface must reproduce byte-for-byte.
fn run_once_churned(seed: u64) -> (u64, String, String) {
    let mut cfg = SimConfig {
        seed,
        end_of_time: Some(SimTime::from_micros(40_000)),
        telemetry: TelemetryConfig::enabled(),
        ..SimConfig::default()
    };
    cfg.gateway.queue_cap = 32;
    let ft = FatTreeConfig::scaled_ft8(2);
    let strategy = StrategyKind::SwitchV2P.build();
    let mut sim = Simulation::new(cfg, &ft, strategy.as_ref(), 128, 8);
    let n_vms = sim.placement.len();
    sim.add_flows(to_flow_specs(&flows(), n_vms));
    let servers: Vec<_> = sim.topology().servers().map(|n| (n.id, n.pip)).collect();
    let plan = ChurnPlan::generate(&ChurnSpec::medium(seed, 8_000), &sim.placement, &servers);
    sim.apply_churn_plan(&plan);
    sim.run();

    let mut jsonl = String::new();
    for ev in sim.tracer().events() {
        jsonl.push_str(&ev.to_json());
        jsonl.push('\n');
    }
    for s in &sim.tracer().samples {
        jsonl.push_str(&s.to_json());
        jsonl.push('\n');
    }
    let summary = format!("{:?}", sim.summary());
    (sim.events_executed(), summary, jsonl)
}

#[test]
fn same_seed_churn_runs_are_byte_identical() {
    let (events_a, summary_a, jsonl_a) = run_once_churned(7);
    let (events_b, summary_b, jsonl_b) = run_once_churned(7);
    assert!(events_a > 10_000, "churn workload too small to be a meaningful guard");
    assert!(
        !summary_a.contains("churn_arrivals: 0"),
        "churn timeline produced no arrivals"
    );
    assert_eq!(events_a, events_b, "event counts diverged");
    assert_eq!(summary_a, summary_b, "summaries diverged");
    assert_eq!(jsonl_a, jsonl_b, "telemetry JSONL diverged");
}

#[test]
fn different_seed_churn_runs_diverge() {
    // The churn timeline itself must respond to the seed (arrival times,
    // tenant sizes, wave victims), not just the traffic RNG.
    let (_, summary_a, jsonl_a) = run_once_churned(7);
    let (_, summary_b, jsonl_b) = run_once_churned(9);
    assert_ne!(summary_a, summary_b, "different seeds produced identical summaries");
    assert_ne!(jsonl_a, jsonl_b, "different seeds produced identical streams");
}
