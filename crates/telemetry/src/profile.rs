//! Engine self-profiling: phase accounting, log-linear histograms, and the
//! `*.profile.json` report.
//!
//! Parallel-engine overheads — window-boundary bookkeeping, cut-link
//! exchange, worker barriers, journal merge, and global-event execution —
//! are invisible to virtual-time telemetry; this module attributes the
//! wall-clock so coordination cost is a tracked regression surface. The
//! emission points live in `sv2p-netsim` (both engines) and the
//! `--profile DIR` plumbing in `sv2p-bench`.
//!
//! # Determinism segregation rule
//!
//! A profile report mixes two kinds of data and keeps them strictly apart:
//!
//! * **Deterministic artifacts** — call counts, per-shard journal-block
//!   counts, and every histogram over *simulation-state* quantities
//!   (journal block sizes, calendar occupancy, arena occupancy). Two
//!   same-seed runs agree on these byte-for-byte.
//! * **Wall-clock timings** — every `*_ns` total, every fraction, and the
//!   histograms over durations. `Instant`-based values never feed back
//!   into simulation state; they exist only in this side channel, so a
//!   profiled run's telemetry and summaries are byte-identical to an
//!   unprofiled run's.
//!
//! [`deterministic_projection`] extracts the first kind from a rendered
//! report; the profiler determinism regression test pins it.

use std::collections::HashMap;

use crate::json::{parse_flat, JsonObj, JsonValue};

/// Sub-buckets per octave as a power of two: 2^5 = 32 linear sub-buckets,
/// bounding the relative quantization error at ~3%.
const SUB_BITS: u32 = 5;
/// Sub-buckets per octave.
const SUB: u64 = 1 << SUB_BITS;
/// Bucket-array size: group 0 holds values `< 2*SUB` exactly; every later
/// group spans one octave with `SUB` linear sub-buckets, up to `u64::MAX`.
const NBUCKETS: usize = (SUB as usize) * (64 - SUB_BITS as usize + 1);

/// A hand-rolled HDR-style log-linear histogram of `u64` values.
///
/// No dependencies (the vendored-crate discipline of PR 1): values below
/// 32 are recorded exactly, larger values with ~3% relative error. Storage
/// is a fixed flat array, so [`Histogram::merge`] is element-wise and the
/// bucket layout is identical in every instance.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; NBUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index of `v`: exact for `v < 2*SUB`, log-linear above.
    /// For `v >= 2*SUB` the octave `[2^msb, 2^(msb+1))` is split into
    /// `SUB` linear sub-buckets; group `g = msb - SUB_BITS >= 1` starts
    /// at index `SUB * (g + 1)`.
    fn index_of(v: u64) -> usize {
        if v < 2 * SUB {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros() as u64; // >= SUB_BITS + 1
        let g = msb - SUB_BITS as u64; // >= 1
        let sub = (v >> g) - SUB; // in [0, SUB)
        (SUB * (g + 1) + sub) as usize
    }

    /// Smallest value mapping to bucket `i` (the bucket's lower boundary).
    fn lower_bound(i: usize) -> u64 {
        let i = i as u64;
        if i < 2 * SUB {
            return i;
        }
        let g = i / SUB - 1;
        let sub = i % SUB;
        (SUB + sub) << g
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::index_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at percentile `p` in `[0, 100]`: the lower boundary of the
    /// bucket holding the rank-`ceil(p/100·count)` value, clamped to the
    /// exact observed min/max. 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        if rank >= self.count {
            return self.max;
        }
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::lower_bound(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Element-wise merge of another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// One engine phase: where a profiled run's wall-clock went.
///
/// The first block is the single-threaded `Simulation` loop — `Pop` plus
/// one class per event handler, so "telemetry cost" is visible as the
/// `TelemetrySample` class and per-packet work is split by event kind.
/// The second block is the sharded driver: window-boundary computation,
/// the parallel section, and the synchronization overheads around it
/// (cut-link exchange, barrier wait, journal merge, global events).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Calendar pop (single-threaded loop).
    Pop,
    /// `FlowStart` handler dispatch.
    FlowStart,
    /// `UdpSend` handler dispatch.
    UdpSend,
    /// `LinkFree` handler dispatch.
    LinkFree,
    /// `LinkArrival` handler dispatch (the per-hop hot path).
    LinkArrival,
    /// `RtoTimer` handler dispatch.
    RtoTimer,
    /// `GatewayDone` handler dispatch.
    Gateway,
    /// `ReInject` handler dispatch.
    ReInject,
    /// `HostForward` handler dispatch.
    HostForward,
    /// `Migrate` handler dispatch.
    Migrate,
    /// `FaultStart`/`FaultEnd` handler dispatch.
    Fault,
    /// `ChurnMark` handler dispatch.
    ChurnMark,
    /// `TelemetrySample` handler dispatch (the sampler's own cost).
    TelemetrySample,
    /// Sharded driver: computing each window's `(time, seq)` boundary from
    /// the shards' reported next-event bounds and the partition lookahead,
    /// and dispatching the window commands.
    WindowAdvance,
    /// Sharded driver: resolving cut-link events to their granted global
    /// seqs and delivering them (plus parked-event grants) to the target
    /// shards — the coordination cost of the conservative exchange.
    CutExchange,
    /// Sharded driver: mean per-shard busy time inside the parallel
    /// section — the useful work the window bought.
    WorkerReplay,
    /// Sharded driver: the rest of the blocked-at-the-barrier span — time
    /// the average shard sat idle while the slowest shard (or the channel
    /// machinery) finished. This is the imbalance + serialization cost.
    BarrierWait,
    /// Sharded driver: k-way journal merge and master-state replay.
    JournalMerge,
    /// Sharded driver: global events (faults, migrations, churn marks,
    /// telemetry snapshots) executed at their exact global position.
    GlobalExec,
}

impl Phase {
    /// Every phase, in report order.
    pub const ALL: [Phase; 19] = [
        Phase::Pop,
        Phase::FlowStart,
        Phase::UdpSend,
        Phase::LinkFree,
        Phase::LinkArrival,
        Phase::RtoTimer,
        Phase::Gateway,
        Phase::ReInject,
        Phase::HostForward,
        Phase::Migrate,
        Phase::Fault,
        Phase::ChurnMark,
        Phase::TelemetrySample,
        Phase::WindowAdvance,
        Phase::CutExchange,
        Phase::WorkerReplay,
        Phase::BarrierWait,
        Phase::JournalMerge,
        Phase::GlobalExec,
    ];

    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Pop => "pop",
            Phase::FlowStart => "flow_start",
            Phase::UdpSend => "udp_send",
            Phase::LinkFree => "link_free",
            Phase::LinkArrival => "link_arrival",
            Phase::RtoTimer => "rto_timer",
            Phase::Gateway => "gateway",
            Phase::ReInject => "reinject",
            Phase::HostForward => "host_forward",
            Phase::Migrate => "migrate",
            Phase::Fault => "fault",
            Phase::ChurnMark => "churn_mark",
            Phase::TelemetrySample => "telemetry_sample",
            Phase::WindowAdvance => "window_advance",
            Phase::CutExchange => "cut_exchange",
            Phase::WorkerReplay => "worker_replay",
            Phase::BarrierWait => "barrier_wait",
            Phase::JournalMerge => "journal_merge",
            Phase::GlobalExec => "global_exec",
        }
    }
}

/// A named histogram slot in the profiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistKind {
    /// Wall-clock nanoseconds per sharded window (timing).
    WindowNs,
    /// Wall-clock nanoseconds of one shard's replay of one window (timing).
    ShardReplayNs,
    /// Journal ops per replayed block (deterministic).
    JournalBlockOps,
    /// Pending events in the (driver) calendar at each sample point
    /// (deterministic).
    CalendarLen,
    /// Events parked in the calendar's overflow heap — the only `O(log n)`
    /// part of the timing wheel — at each sample point (deterministic).
    CalendarOverflow,
    /// Live packets in the arena at each sample point — the arena
    /// high-water trajectory, not just its peak (deterministic).
    ArenaLive,
}

impl HistKind {
    /// Every histogram, in report order.
    pub const ALL: [HistKind; 6] = [
        HistKind::WindowNs,
        HistKind::ShardReplayNs,
        HistKind::JournalBlockOps,
        HistKind::CalendarLen,
        HistKind::CalendarOverflow,
        HistKind::ArenaLive,
    ];

    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            HistKind::WindowNs => "window_ns",
            HistKind::ShardReplayNs => "shard_replay_ns",
            HistKind::JournalBlockOps => "journal_block_ops",
            HistKind::CalendarLen => "calendar_len",
            HistKind::CalendarOverflow => "calendar_overflow",
            HistKind::ArenaLive => "arena_live",
        }
    }

    /// Whether the recorded values are functions of simulation state alone
    /// (true) or wall-clock durations (false).
    pub fn deterministic(self) -> bool {
        !matches!(self, HistKind::WindowNs | HistKind::ShardReplayNs)
    }
}

/// Per-phase accumulator: wall-clock total plus a deterministic call count.
#[derive(Debug, Clone, Copy, Default)]
struct PhaseAcc {
    calls: u64,
    total_ns: u64,
}

/// Per-shard accumulator for the sharded driver.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardAcc {
    /// Wall-clock this shard spent replaying windows.
    pub replay_ns: u64,
    /// Wall-clock this shard sat idle at window barriers (slowest shard's
    /// replay minus this shard's, summed over windows).
    pub barrier_wait_ns: u64,
    /// Journal blocks this shard contributed to merges. Deterministic.
    pub blocks: u64,
    /// Windows in which this shard had work. Deterministic.
    pub windows: u64,
}

/// The engine-side profile accumulator: one per engine, enabled by
/// `SimConfig::profile`. When disabled every recording method is a
/// single-branch no-op and the engines never read the clock.
#[derive(Debug)]
pub struct Profiler {
    enabled: bool,
    run_ns: u64,
    phases: Vec<PhaseAcc>,
    hists: Vec<Histogram>,
    shards: Vec<ShardAcc>,
    /// Windows the sharded driver dispatched to workers. Deterministic.
    pub windows: u64,
    /// Global events the driver executed itself. Deterministic.
    pub global_events: u64,
    /// Journal blocks replayed onto the master. Deterministic.
    pub journal_blocks: u64,
    /// Journal ops replayed onto the master. Deterministic.
    pub journal_ops: u64,
}

impl Profiler {
    /// A profiler; records nothing unless `enabled`.
    pub fn new(enabled: bool) -> Self {
        Profiler {
            enabled,
            run_ns: 0,
            phases: vec![PhaseAcc::default(); Phase::ALL.len()],
            hists: if enabled {
                HistKind::ALL.iter().map(|_| Histogram::new()).collect()
            } else {
                Vec::new()
            },
            shards: Vec::new(),
            windows: 0,
            global_events: 0,
            journal_blocks: 0,
            journal_ops: 0,
        }
    }

    /// A disabled profiler.
    pub fn off() -> Self {
        Self::new(false)
    }

    /// True when the engine should read the clock and record. `#[inline]`
    /// so the disabled guard is one load+branch per site.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Grows the per-shard table to `n` entries.
    pub fn ensure_shards(&mut self, n: usize) {
        if self.shards.len() < n {
            self.shards.resize(n, ShardAcc::default());
        }
    }

    /// Adds one timed call to `phase`.
    #[inline]
    pub fn phase_add(&mut self, phase: Phase, ns: u64) {
        if !self.enabled {
            return;
        }
        let acc = &mut self.phases[phase as usize];
        acc.calls += 1;
        acc.total_ns += ns;
    }

    /// Adds `calls` untimed-count-only calls plus one aggregate duration to
    /// `phase` (batch loops that time a span covering many events).
    #[inline]
    pub fn phase_add_span(&mut self, phase: Phase, calls: u64, ns: u64) {
        if !self.enabled {
            return;
        }
        let acc = &mut self.phases[phase as usize];
        acc.calls += calls;
        acc.total_ns += ns;
    }

    /// Records one value into histogram `kind`.
    #[inline]
    pub fn record(&mut self, kind: HistKind, v: u64) {
        if !self.enabled {
            return;
        }
        self.hists[kind as usize].record(v);
    }

    /// Read access to histogram `kind` (empty histogram when disabled).
    pub fn hist(&self, kind: HistKind) -> Option<&Histogram> {
        self.hists.get(kind as usize)
    }

    /// One shard's contribution to one window.
    pub fn shard_sample(&mut self, shard: usize, replay_ns: u64, idle_ns: u64, blocks: u64) {
        if !self.enabled {
            return;
        }
        self.ensure_shards(shard + 1);
        let acc = &mut self.shards[shard];
        acc.replay_ns += replay_ns;
        acc.barrier_wait_ns += idle_ns;
        if blocks > 0 {
            acc.blocks += blocks;
            acc.windows += 1;
        }
    }

    /// The per-shard accumulators.
    pub fn shard_accs(&self) -> &[ShardAcc] {
        &self.shards
    }

    /// Accumulates total run wall-clock (the denominator of every
    /// fraction).
    pub fn add_run_ns(&mut self, ns: u64) {
        if self.enabled {
            self.run_ns += ns;
        }
    }

    /// Total profiled run wall-clock, nanoseconds.
    pub fn run_ns(&self) -> u64 {
        self.run_ns
    }

    /// Total wall-clock attributed to `phase`, nanoseconds.
    pub fn phase_ns(&self, phase: Phase) -> u64 {
        self.phases[phase as usize].total_ns
    }

    /// Deterministic call count of `phase`.
    pub fn phase_calls(&self, phase: Phase) -> u64 {
        self.phases[phase as usize].calls
    }

    /// `phase`'s share of the run wall-clock in `[0, 1]` (0 when nothing
    /// was profiled).
    pub fn frac(&self, phase: Phase) -> f64 {
        if self.run_ns == 0 {
            0.0
        } else {
            self.phase_ns(phase) as f64 / self.run_ns as f64
        }
    }

    /// Coefficient of variation (stddev/mean) of per-shard total replay
    /// time — 0 for perfectly balanced shards, 0 when fewer than two
    /// shards were profiled.
    pub fn imbalance_cv(&self) -> f64 {
        if self.shards.len() < 2 {
            return 0.0;
        }
        let n = self.shards.len() as f64;
        let mean = self.shards.iter().map(|s| s.replay_ns as f64).sum::<f64>() / n;
        if mean <= 0.0 {
            return 0.0;
        }
        let var = self
            .shards
            .iter()
            .map(|s| {
                let d = s.replay_ns as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        var.sqrt() / mean
    }

    /// Renders the `*.profile.json` report. Every leaf object sits on its
    /// own line and is flat, so the inspector parses the file line-wise
    /// with the workspace's minimal flat parser; each leaf carries a
    /// `"row"` discriminator.
    pub fn render_report(&self, meta: &ProfileMeta) -> String {
        let mut out = String::new();
        out.push_str("{\n\"schema\": \"sv2p-profile/v1\",\n\"meta\": ");
        let mut m = JsonObj::new();
        m.str("row", "meta")
            .str("bin", &meta.bin)
            .str("label", &meta.label)
            .str("engine", &meta.engine)
            .u64("shards", meta.shards)
            .u64("seed", meta.seed)
            .u64("events_executed", meta.events_executed)
            .u64("host_cores", meta.host_cores)
            .u64("peak_rss_bytes", meta.peak_rss_bytes)
            .u64("run_wall_ns", self.run_ns);
        out.push_str(&m.finish());
        out.push_str(",\n\"phases\": [\n");
        let mut first = true;
        for p in Phase::ALL {
            let acc = self.phases[p as usize];
            if acc.calls == 0 && acc.total_ns == 0 {
                continue;
            }
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let mut o = JsonObj::new();
            o.str("row", "phase")
                .str("name", p.as_str())
                .u64("calls", acc.calls)
                .u64("total_ns", acc.total_ns)
                .f64("frac", self.frac(p));
            out.push_str(&o.finish());
        }
        out.push_str("\n],\n\"shards\": [\n");
        let mut first = true;
        for (s, acc) in self.shards.iter().enumerate() {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let mut o = JsonObj::new();
            o.str("row", "shard")
                .u64("shard", s as u64)
                .u64("blocks", acc.blocks)
                .u64("windows", acc.windows)
                .u64("replay_ns", acc.replay_ns)
                .u64("barrier_wait_ns", acc.barrier_wait_ns);
            out.push_str(&o.finish());
        }
        out.push_str("\n],\n\"histograms\": [\n");
        let mut first = true;
        for k in HistKind::ALL {
            let Some(h) = self.hists.get(k as usize) else {
                continue;
            };
            if h.count() == 0 {
                continue;
            }
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let mut o = JsonObj::new();
            o.str("row", "hist")
                .str("name", k.as_str())
                .bool("deterministic", k.deterministic())
                .u64("count", h.count())
                .u64("sum", h.sum())
                .u64("min", h.min())
                .u64("p50", h.percentile(50.0))
                .u64("p90", h.percentile(90.0))
                .u64("p99", h.percentile(99.0))
                .u64("max", h.max());
            out.push_str(&o.finish());
        }
        out.push_str("\n],\n\"summary\": ");
        let mut o = JsonObj::new();
        o.str("row", "summary")
            .u64("windows", self.windows)
            .u64("global_events", self.global_events)
            .u64("journal_blocks", self.journal_blocks)
            .u64("journal_ops", self.journal_ops)
            .f64("window_advance_frac", self.frac(Phase::WindowAdvance))
            .f64("cut_exchange_frac", self.frac(Phase::CutExchange))
            .f64("barrier_frac", self.frac(Phase::BarrierWait))
            .f64("merge_frac", self.frac(Phase::JournalMerge))
            .f64("global_frac", self.frac(Phase::GlobalExec))
            .f64("imbalance_cv", self.imbalance_cv());
        out.push_str(&o.finish());
        out.push_str("\n}\n");
        out
    }
}

/// Run identity stamped into a report header by the harness.
#[derive(Debug, Clone)]
pub struct ProfileMeta {
    /// Bench binary ("table4", …).
    pub bin: String,
    /// Run label (same derivation as trace-file labels).
    pub label: String,
    /// "single" or "sharded".
    pub engine: String,
    /// Shards that actually executed in parallel.
    pub shards: u64,
    /// RNG seed.
    pub seed: u64,
    /// Calendar events executed.
    pub events_executed: u64,
    /// Logical cores on the host.
    pub host_cores: u64,
    /// Process peak RSS (VmHWM) at report time; 0 when unknown.
    pub peak_rss_bytes: u64,
}

/// One parsed report row: a flat field map.
pub type Row = HashMap<String, JsonValue>;

/// A parsed `*.profile.json` report.
#[derive(Debug, Default)]
pub struct ProfileDoc {
    /// The `meta` header row.
    pub meta: Row,
    /// Phase rows, in file order.
    pub phases: Vec<Row>,
    /// Per-shard rows, in shard order.
    pub shards: Vec<Row>,
    /// Histogram rows, in file order.
    pub hists: Vec<Row>,
    /// The trailing summary row.
    pub summary: Row,
}

impl ProfileDoc {
    /// Parses a rendered report. Line-oriented: every flat object line
    /// carrying a `"row"` discriminator is classified; anything else is
    /// structural. Returns `None` if the schema marker is missing or no
    /// rows parse.
    pub fn parse(text: &str) -> Option<ProfileDoc> {
        if !text.contains("\"schema\": \"sv2p-profile/v1\"") {
            return None;
        }
        let mut doc = ProfileDoc::default();
        for line in text.lines() {
            let mut s = line.trim();
            // Header rows ride on structural lines ("\"meta\": {...},").
            if let Some(i) = s.find('{') {
                s = &s[i..];
            } else {
                continue;
            }
            let s = s.trim_end_matches(',');
            let Some(obj) = parse_flat(s) else { continue };
            match obj.get("row").and_then(|v| v.as_str()) {
                Some("meta") => doc.meta = obj,
                Some("phase") => doc.phases.push(obj),
                Some("shard") => doc.shards.push(obj),
                Some("hist") => doc.hists.push(obj),
                Some("summary") => doc.summary = obj,
                _ => {}
            }
        }
        if doc.meta.is_empty() && doc.phases.is_empty() {
            return None;
        }
        Some(doc)
    }
}

/// Extracts the deterministic projection of a rendered report: run
/// identity, phase call counts, per-shard block/window counts, full stats
/// of deterministic histograms, counts alone for timing histograms, and
/// the deterministic summary counters. Two same-seed profiled runs must
/// produce byte-identical projections; every `*_ns`, fraction, and RSS
/// field is stripped.
pub fn deterministic_projection(text: &str) -> Option<String> {
    let doc = ProfileDoc::parse(text)?;
    let get = |row: &Row, k: &str| -> String {
        match row.get(k) {
            Some(JsonValue::U64(v)) => v.to_string(),
            Some(JsonValue::Str(s)) => s.clone(),
            Some(JsonValue::Bool(b)) => b.to_string(),
            _ => "?".into(),
        }
    };
    let mut out = String::new();
    for k in ["bin", "label", "engine", "shards", "seed", "events_executed"] {
        out.push_str(&format!("meta {k}={}\n", get(&doc.meta, k)));
    }
    for p in &doc.phases {
        out.push_str(&format!("phase {} calls={}\n", get(p, "name"), get(p, "calls")));
    }
    for s in &doc.shards {
        out.push_str(&format!(
            "shard {} blocks={} windows={}\n",
            get(s, "shard"),
            get(s, "blocks"),
            get(s, "windows")
        ));
    }
    for h in &doc.hists {
        let det = h.get("deterministic").and_then(|v| v.as_bool()).unwrap_or(false);
        if det {
            out.push_str(&format!(
                "hist {} count={} sum={} min={} p50={} p90={} p99={} max={}\n",
                get(h, "name"),
                get(h, "count"),
                get(h, "sum"),
                get(h, "min"),
                get(h, "p50"),
                get(h, "p90"),
                get(h, "p99"),
                get(h, "max")
            ));
        } else {
            out.push_str(&format!("hist {} count={}\n", get(h, "name"), get(h, "count")));
        }
    }
    for k in ["windows", "global_events", "journal_blocks", "journal_ops"] {
        out.push_str(&format!("summary {k}={}\n", get(&doc.summary, k)));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..64u64 {
            assert_eq!(Histogram::lower_bound(Histogram::index_of(v)), v, "v={v}");
        }
        h.record(0);
        h.record(63);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 63);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 63);
    }

    #[test]
    fn histogram_bucket_boundaries_are_log_linear() {
        // Within any bucket, lower_bound(index_of(v)) <= v and the relative
        // width of the bucket is <= 1/SUB.
        for shift in 6..63u32 {
            for off in [0u64, 1, (1 << shift) / 3, (1 << shift) - 1] {
                let v = (1u64 << shift) + off;
                let i = Histogram::index_of(v);
                let lo = Histogram::lower_bound(i);
                assert!(lo <= v, "v={v} lo={lo}");
                // Next bucket starts beyond v.
                if i + 1 < NBUCKETS {
                    let hi = Histogram::lower_bound(i + 1);
                    assert!(hi > v, "v={v} hi={hi}");
                    let width = hi - lo;
                    assert!(
                        width <= (lo / SUB).max(1),
                        "bucket too wide at v={v}: [{lo},{hi})"
                    );
                }
            }
        }
        // Monotone bucket boundaries across the whole array.
        let mut prev = 0u64;
        for i in 1..NBUCKETS {
            let b = Histogram::lower_bound(i);
            assert!(b > prev, "non-monotone at {i}: {b} after {prev}");
            prev = b;
        }
        assert_eq!(Histogram::index_of(u64::MAX), NBUCKETS - 1);
    }

    #[test]
    fn histogram_percentiles() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.percentile(50.0);
        let p99 = h.percentile(99.0);
        // ~3% quantization tolerance.
        assert!((470..=530).contains(&p50), "p50={p50}");
        assert!((950..=1000).contains(&p99), "p99={p99}");
        assert_eq!(h.percentile(100.0), 1000);
        assert_eq!(h.percentile(0.0), 1);
    }

    #[test]
    fn histogram_merge_matches_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in [3u64, 17, 999, 5_000_000, 12] {
            a.record(v);
            both.record(v);
        }
        for v in [1u64, 250_000, 7] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.sum(), both.sum());
        assert_eq!(a.min(), both.min());
        assert_eq!(a.max(), both.max());
        for p in [10.0, 50.0, 90.0, 99.0] {
            assert_eq!(a.percentile(p), both.percentile(p));
        }
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let mut p = Profiler::off();
        p.phase_add(Phase::Pop, 100);
        p.record(HistKind::CalendarLen, 5);
        p.shard_sample(0, 10, 5, 1);
        p.add_run_ns(1000);
        assert_eq!(p.run_ns(), 0);
        assert_eq!(p.phase_calls(Phase::Pop), 0);
        assert!(p.shard_accs().is_empty());
    }

    fn sample_profiler() -> Profiler {
        let mut p = Profiler::new(true);
        p.phase_add_span(Phase::WindowAdvance, 10, 4_000);
        p.phase_add_span(Phase::CutExchange, 10, 1_000);
        p.phase_add(Phase::WorkerReplay, 2_000);
        p.phase_add(Phase::BarrierWait, 2_500);
        p.phase_add(Phase::JournalMerge, 500);
        p.record(HistKind::JournalBlockOps, 3);
        p.record(HistKind::WindowNs, 9_000);
        p.shard_sample(0, 3_000, 0, 6);
        p.shard_sample(1, 1_000, 2_000, 4);
        p.windows = 1;
        p.journal_blocks = 10;
        p.journal_ops = 30;
        p.add_run_ns(10_000);
        p
    }

    #[test]
    fn report_round_trips_and_projects() {
        let p = sample_profiler();
        let meta = ProfileMeta {
            bin: "unit".into(),
            label: "unit.SwitchV2P".into(),
            engine: "sharded".into(),
            shards: 2,
            seed: 7,
            events_executed: 10,
            host_cores: 4,
            peak_rss_bytes: 1 << 20,
        };
        let text = p.render_report(&meta);
        let doc = ProfileDoc::parse(&text).expect("parses");
        assert_eq!(doc.meta.get("bin").and_then(|v| v.as_str()), Some("unit"));
        assert_eq!(doc.shards.len(), 2);
        assert!(doc.phases.iter().any(|r| r
            .get("name")
            .and_then(|v| v.as_str())
            == Some("barrier_wait")));
        let cv = doc
            .summary
            .get("imbalance_cv")
            .and_then(|v| v.as_f64())
            .expect("cv");
        assert!(cv > 0.4 && cv < 0.6, "cv={cv}"); // (3000,1000): cv = 0.5
        let proj = deterministic_projection(&text).expect("projects");
        assert!(proj.contains("phase window_advance calls=10"));
        assert!(proj.contains("hist journal_block_ops count=1 sum=3"));
        assert!(proj.contains("hist window_ns count=1\n"), "timing hist keeps count only");
        assert!(!proj.contains("_ns="), "no wall-clock leaks: {proj}");
    }

    #[test]
    fn imbalance_cv_zero_for_balanced_or_single() {
        let mut p = Profiler::new(true);
        p.shard_sample(0, 500, 0, 1);
        assert_eq!(p.imbalance_cv(), 0.0, "one shard has no imbalance");
        p.shard_sample(1, 500, 0, 1);
        assert_eq!(p.imbalance_cv(), 0.0, "equal shards have cv 0");
    }
}
