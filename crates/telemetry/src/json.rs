//! Deterministic hand-rolled JSON: a writer for flat objects and a parser
//! for the subset the writer emits.
//!
//! The vendored `serde` is a marker-only stub, so every JSONL surface in
//! the workspace serializes through [`JsonObj`] and parses back through
//! [`parse_flat`]. Only flat objects of numbers, booleans and
//! escape-free strings are supported — exactly what traces, samples and
//! manifests need.

use std::collections::HashMap;

/// Incremental writer for one flat JSON object.
///
/// Fields render in call order, so a fixed call sequence yields a
/// byte-stable line — the property the determinism regression test pins.
#[derive(Debug)]
pub struct JsonObj {
    buf: String,
    first: bool,
}

impl Default for JsonObj {
    fn default() -> Self {
        Self::new()
    }
}

impl JsonObj {
    /// Starts an object.
    pub fn new() -> Self {
        JsonObj {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        self.buf.push_str(k);
        self.buf.push_str("\":");
    }

    /// Unsigned integer field.
    pub fn u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Float field, rendered with Rust's shortest round-trip formatting
    /// (deterministic for a given value).
    pub fn f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        if v.is_finite() {
            // Always keep a decimal point so readers can tell floats from
            // integers ("3" -> "3.0").
            let s = format!("{v}");
            self.buf.push_str(&s);
            if !s.contains('.') && !s.contains('e') {
                self.buf.push_str(".0");
            }
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Boolean field.
    pub fn bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// String field. The value must not need escaping (asserted in debug
    /// builds); every string this workspace emits is a plain identifier.
    pub fn str(&mut self, k: &str, v: &str) -> &mut Self {
        debug_assert!(
            !v.contains(['"', '\\', '\n', '\r']),
            "string needs escaping: {v:?}"
        );
        self.key(k);
        self.buf.push('"');
        self.buf.push_str(v);
        self.buf.push('"');
        self
    }

    /// Closes the object and returns the line (no trailing newline).
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// A parsed JSON scalar.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// Unsigned integer.
    U64(u64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Escape-free string.
    Str(String),
    /// JSON null.
    Null,
}

impl JsonValue {
    /// The value as u64, if it is an integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as f64 (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::U64(v) => Some(*v as f64),
            JsonValue::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as &str, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as bool, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses one flat JSON object of the subset [`JsonObj`] writes.
/// Returns `None` on any malformed input rather than panicking, so the
/// inspector can skip foreign lines in a mixed file.
pub fn parse_flat(line: &str) -> Option<HashMap<String, JsonValue>> {
    let s = line.trim();
    let s = s.strip_prefix('{')?.strip_suffix('}')?;
    let mut out = HashMap::new();
    let bytes = s.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        // Key.
        while i < bytes.len() && (bytes[i] == b',' || bytes[i].is_ascii_whitespace()) {
            i += 1;
        }
        if i >= bytes.len() {
            break;
        }
        if bytes[i] != b'"' {
            return None;
        }
        i += 1;
        let kstart = i;
        while i < bytes.len() && bytes[i] != b'"' {
            i += 1;
        }
        let key = s.get(kstart..i)?.to_string();
        i += 1; // closing quote
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() || bytes[i] != b':' {
            return None;
        }
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        // Value.
        let val = if i < bytes.len() && bytes[i] == b'"' {
            i += 1;
            let vstart = i;
            while i < bytes.len() && bytes[i] != b'"' {
                if bytes[i] == b'\\' {
                    return None; // escapes are never emitted
                }
                i += 1;
            }
            let v = s.get(vstart..i)?.to_string();
            i += 1;
            JsonValue::Str(v)
        } else {
            let vstart = i;
            while i < bytes.len() && bytes[i] != b',' {
                i += 1;
            }
            let raw = s.get(vstart..i)?.trim();
            match raw {
                "true" => JsonValue::Bool(true),
                "false" => JsonValue::Bool(false),
                "null" => JsonValue::Null,
                _ if raw.contains(['.', 'e', 'E']) => JsonValue::F64(raw.parse().ok()?),
                _ => JsonValue::U64(raw.parse().ok()?),
            }
        };
        out.insert(key, val);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_round_trips_through_parser() {
        let mut o = JsonObj::new();
        o.u64("t_ns", 12345)
            .str("kind", "delivery")
            .bool("hit", true)
            .f64("rate", 0.5)
            .f64("whole", 3.0);
        let line = o.finish();
        assert_eq!(
            line,
            r#"{"t_ns":12345,"kind":"delivery","hit":true,"rate":0.5,"whole":3.0}"#
        );
        let m = parse_flat(&line).expect("parses");
        assert_eq!(m["t_ns"], JsonValue::U64(12345));
        assert_eq!(m["kind"].as_str(), Some("delivery"));
        assert_eq!(m["hit"].as_bool(), Some(true));
        assert_eq!(m["rate"].as_f64(), Some(0.5));
        assert_eq!(m["whole"], JsonValue::F64(3.0));
    }

    #[test]
    fn empty_object() {
        assert_eq!(JsonObj::new().finish(), "{}");
        assert!(parse_flat("{}").expect("parses").is_empty());
    }

    #[test]
    fn non_finite_floats_render_null() {
        let mut o = JsonObj::new();
        o.f64("x", f64::NAN);
        let line = o.finish();
        assert_eq!(line, r#"{"x":null}"#);
        assert_eq!(parse_flat(&line).unwrap()["x"], JsonValue::Null);
    }

    #[test]
    fn malformed_lines_return_none() {
        assert!(parse_flat("not json").is_none());
        assert!(parse_flat(r#"{"k":}"#.trim()).is_none());
        assert!(parse_flat(r#"{"k":"a\"b"}"#).is_none());
    }
}
