//! Run manifests: the machine-readable record of what an experiment bin
//! ran and how fast the simulator chewed through it.
//!
//! One [`RunManifest`] per simulation (or per analytic step for bins that
//! simulate nothing), appended to `results/<bin>.manifest.jsonl` by the
//! bench harness. This is the only telemetry surface allowed to carry
//! wall-clock time: it exists precisely to make the performance trajectory
//! (events/sec across commits) diffable, while traces and samples stay
//! bit-deterministic.

use std::io::Write;
use std::path::Path;

use crate::json::JsonObj;

/// The record of one experiment run.
#[derive(Debug, Clone)]
pub struct RunManifest {
    /// Bench binary that ran it ("fig5", "table4", …).
    pub experiment: String,
    /// Strategy name ("SwitchV2P", "NoCache", …; "-" for analytic steps).
    pub strategy: String,
    /// Topology label ("FT8-10K", "FT16-400K", "scaled-ft8(2)", …).
    pub topology: String,
    /// Free-form configuration label (dataset, variant, sweep point).
    pub config: String,
    /// Experiment scale ("quick"/"full").
    pub scale: String,
    /// RNG seed.
    pub seed: u64,
    /// Aggregate cache entries across caching switches.
    pub cache_entries: u64,
    /// Flows in the workload.
    pub flows: u64,
    /// Flows that completed.
    pub flows_completed: u64,
    /// End-of-run hit rate.
    pub hit_rate: f64,
    /// Host wall-clock spent inside `Simulation::run`, seconds.
    pub wall_clock_s: f64,
    /// Calendar events executed.
    pub events_processed: u64,
    /// `events_processed / wall_clock_s`.
    pub events_per_sec: f64,
    /// Peak calendar-queue length during the run.
    pub peak_queue: u64,
    /// Peak in-flight packets in the arena — the allocations the run
    /// avoided by reusing slots (0 for analytic steps).
    pub peak_arena: u64,
    /// Whether event tracing was on (overhead context for events/sec).
    pub telemetry_enabled: bool,
    /// Logical cores on the host that ran the experiment (context for
    /// sharded events/sec; 0 when unknown).
    pub host_cores: u64,
    /// Shards the engine actually executed in parallel (1 for the
    /// single-threaded engine, including sharded-engine fallback).
    pub shards: u64,
    /// Process peak resident set size at manifest time (`VmHWM` from
    /// `/proc/self/status` on Linux; 0 where unknown). Monotonic per
    /// process, so later runs in one bin report the running maximum.
    pub peak_rss_bytes: u64,
}

impl RunManifest {
    /// Renders the manifest as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.str("experiment", &self.experiment)
            .str("strategy", &self.strategy)
            .str("topology", &self.topology)
            .str("config", &self.config)
            .str("scale", &self.scale)
            .u64("seed", self.seed)
            .u64("cache_entries", self.cache_entries)
            .u64("flows", self.flows)
            .u64("flows_completed", self.flows_completed)
            .f64("hit_rate", self.hit_rate)
            .f64("wall_clock_s", self.wall_clock_s)
            .u64("events_processed", self.events_processed)
            .f64("events_per_sec", self.events_per_sec)
            .u64("peak_queue", self.peak_queue)
            .u64("peak_arena", self.peak_arena)
            .bool("telemetry_enabled", self.telemetry_enabled)
            .u64("host_cores", self.host_cores)
            .u64("shards", self.shards)
            .u64("peak_rss_bytes", self.peak_rss_bytes);
        o.finish()
    }

    /// Stable ordering key so a manifest file's line order never depends
    /// on sweep-thread scheduling.
    pub fn sort_key(&self) -> (String, String, u64, u64) {
        (
            self.strategy.clone(),
            self.config.clone(),
            self.cache_entries,
            self.seed,
        )
    }
}

/// Writes `manifests` (sorted by [`RunManifest::sort_key`]) as JSONL to
/// `path`, creating parent directories as needed.
pub fn write_manifests(path: &Path, manifests: &mut [RunManifest]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    manifests.sort_by_key(|a| a.sort_key());
    let mut f = std::fs::File::create(path)?;
    for m in manifests.iter() {
        writeln!(f, "{}", m.to_json())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_flat;

    fn manifest(strategy: &str, cache: u64) -> RunManifest {
        RunManifest {
            experiment: "test".into(),
            strategy: strategy.into(),
            topology: "scaled-ft8(2)".into(),
            config: "unit".into(),
            scale: "quick".into(),
            seed: 1,
            cache_entries: cache,
            flows: 10,
            flows_completed: 10,
            hit_rate: 0.5,
            wall_clock_s: 0.25,
            events_processed: 1000,
            events_per_sec: 4000.0,
            peak_queue: 42,
            peak_arena: 7,
            telemetry_enabled: false,
            host_cores: 1,
            shards: 1,
            peak_rss_bytes: 2048 * 1024,
        }
    }

    #[test]
    fn manifest_round_trips() {
        let line = manifest("SwitchV2P", 64).to_json();
        let m = parse_flat(&line).expect("parses");
        assert_eq!(m["strategy"].as_str(), Some("SwitchV2P"));
        assert_eq!(m["events_processed"].as_u64(), Some(1000));
        assert_eq!(m["events_per_sec"].as_f64(), Some(4000.0));
        assert_eq!(m["telemetry_enabled"].as_bool(), Some(false));
        assert_eq!(m["host_cores"].as_u64(), Some(1));
        assert_eq!(m["shards"].as_u64(), Some(1));
        assert_eq!(m["peak_rss_bytes"].as_u64(), Some(2048 * 1024));
    }

    #[test]
    fn write_sorts_by_key() {
        let dir = std::env::temp_dir().join("sv2p_manifest_test");
        let path = dir.join("m.manifest.jsonl");
        let mut ms = vec![manifest("SwitchV2P", 64), manifest("NoCache", 0)];
        write_manifests(&path, &mut ms).expect("write");
        let text = std::fs::read_to_string(&path).expect("read");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("NoCache"), "sorted: {}", lines[0]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
