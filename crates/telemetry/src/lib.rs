//! Observability layer for the SwitchV2P reproduction.
//!
//! Three machine-readable surfaces, all JSONL (one JSON object per line,
//! hand-rolled because the vendored `serde` is a marker-only stub):
//!
//! * **Traces** — [`TraceEvent`]s recorded by the simulator at every
//!   packet-lifecycle point (send, switch ingress, cache lookup, gateway
//!   detour, misdelivery, delivery, drop) and at every cache mutation
//!   (insert/evict/invalidate/spillover/promotion), keyed by flow id,
//!   switch id and virtual time. Collected by a [`Tracer`]: a boolean gate
//!   plus a bounded ring buffer, so a disabled tracer costs one branch per
//!   emission point and allocates nothing.
//! * **Samples** — periodic [`Sample`] snapshots of queue depths, per-layer
//!   cache occupancy, windowed hit rate and gateway load, driven by a
//!   virtual-time timer inside the simulator (zero events when disabled).
//! * **Manifests** — one [`RunManifest`] per experiment run, recording what
//!   ran (strategy, topology, seed, config) and how fast (wall-clock,
//!   events processed, events/sec, peak calendar-queue size). Wall-clock
//!   time appears *only* here; traces and samples carry virtual time
//!   exclusively, which is what makes same-seed runs byte-identical.
//!
//! * **Profiles** — engine self-profiling reports ([`profile`]): wall-clock
//!   phase accounting and log-linear histograms for both engines, emitted
//!   as `*.profile.json` by `--profile DIR`. Like manifests, wall-clock
//!   lives only here; the deterministic counter sections are pinned by the
//!   same byte-identity discipline as traces.
//!
//! The `sv2p-trace` binary (this crate's `src/bin/`) filters trace files by
//! flow/switch/kind and reconstructs a packet's hop-by-hop path with
//! per-hop latency; the reusable logic lives in [`inspect`]. The
//! `sv2p-profile` binary renders a profile report as a phase-breakdown
//! table with a shard-imbalance summary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod inspect;
pub mod json;
pub mod manifest;
pub mod profile;

pub use event::{EventKind, LayerName, Sample, TelemetryConfig, TraceEvent, Tracer};
pub use inspect::{parse_events, parse_samples, reconstruct_path, Hop, PathReport};
pub use manifest::RunManifest;
pub use profile::{
    deterministic_projection, HistKind, Histogram, Phase, ProfileDoc, ProfileMeta, Profiler,
};
