//! `sv2p-profile`: render an engine self-profile report produced by
//! `--profile DIR`.
//!
//! ```sh
//! sv2p-profile results/profile/table4.SwitchV2P.ft8.c64.s42.profile.json
//! sv2p-profile report.profile.json --top 3   # top-3 histogram tails only
//! sv2p-profile report.profile.json --check   # validate; exit nonzero on
//!                                            # malformed or insane fracs
//! ```
//!
//! The default view is a phase-breakdown table sorted by wall-clock share,
//! a per-shard imbalance summary (replay vs barrier-idle time), histogram
//! tails, and a one-line verdict naming the dominant sharding overhead.
//! `--check` validates what the CI profile-smoke job needs: the report
//! parses, phase fractions are each in `[0, 1]`, and they sum to at most
//! 1.05.

use std::io::Write;
use std::process::ExitCode;

use sv2p_telemetry::json::JsonValue;
use sv2p_telemetry::profile::{ProfileDoc, Row};

struct Args {
    file: String,
    top: usize,
    check: bool,
}

fn usage() -> ExitCode {
    eprintln!("usage: sv2p-profile <run.profile.json> [--top K] [--check]");
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut args = Args {
        file: String::new(),
        top: usize::MAX,
        check: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => args.check = true,
            "--top" => {
                args.top = it.next().and_then(|v| v.parse().ok()).ok_or_else(|| {
                    eprintln!("--top needs a numeric argument");
                    usage()
                })?;
            }
            "--help" | "-h" => return Err(usage()),
            _ if args.file.is_empty() && !a.starts_with('-') => args.file = a,
            other => {
                eprintln!("unknown argument {other:?}");
                return Err(usage());
            }
        }
    }
    if args.file.is_empty() {
        return Err(usage());
    }
    Ok(args)
}

fn get_u64(row: &Row, k: &str) -> u64 {
    row.get(k).and_then(JsonValue::as_u64).unwrap_or(0)
}

fn get_f64(row: &Row, k: &str) -> f64 {
    row.get(k).and_then(JsonValue::as_f64).unwrap_or(0.0)
}

fn get_str<'a>(row: &'a Row, k: &str) -> &'a str {
    row.get(k).and_then(JsonValue::as_str).unwrap_or("?")
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Validates the invariants the CI smoke job asserts. Returns a list of
/// violations (empty = sane).
fn check(doc: &ProfileDoc) -> Vec<String> {
    let mut bad = Vec::new();
    if doc.meta.is_empty() {
        bad.push("missing meta row".into());
    }
    if doc.summary.is_empty() {
        bad.push("missing summary row".into());
    }
    let mut frac_sum = 0.0;
    for p in &doc.phases {
        let f = get_f64(p, "frac");
        if !(0.0..=1.0).contains(&f) {
            bad.push(format!("phase {} frac {f} outside [0,1]", get_str(p, "name")));
        }
        frac_sum += f;
    }
    if frac_sum > 1.05 {
        bad.push(format!("phase fracs sum to {frac_sum:.3} > 1.05"));
    }
    for k in [
        "window_advance_frac",
        "cut_exchange_frac",
        "barrier_frac",
        "merge_frac",
        "global_frac",
    ] {
        let f = get_f64(&doc.summary, k);
        if !(0.0..=1.0).contains(&f) {
            bad.push(format!("summary {k} {f} outside [0,1]"));
        }
    }
    if doc.phases.is_empty() {
        bad.push("no phase rows".into());
    }
    bad
}

fn render(doc: &ProfileDoc, top: usize, out: &mut impl Write) -> std::io::Result<()> {
    let m = &doc.meta;
    writeln!(
        out,
        "{} [{}] engine={} shards={} seed={} events={} host_cores={} peak_rss={:.1} MiB",
        get_str(m, "bin"),
        get_str(m, "label"),
        get_str(m, "engine"),
        get_u64(m, "shards"),
        get_u64(m, "seed"),
        get_u64(m, "events_executed"),
        get_u64(m, "host_cores"),
        get_u64(m, "peak_rss_bytes") as f64 / (1024.0 * 1024.0),
    )?;
    let run_ns = get_u64(m, "run_wall_ns");
    writeln!(out, "run wall-clock: {} (timings are non-deterministic)", fmt_ns(run_ns))?;

    // Phase table, sorted by wall-clock share descending.
    writeln!(out, "\n  {:<18} {:>12} {:>12} {:>7}", "phase", "calls", "total", "frac")?;
    let mut phases: Vec<&Row> = doc.phases.iter().collect();
    phases.sort_by(|a, b| {
        get_f64(b, "frac")
            .partial_cmp(&get_f64(a, "frac"))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    for p in &phases {
        writeln!(
            out,
            "  {:<18} {:>12} {:>12} {:>6.1}%",
            get_str(p, "name"),
            get_u64(p, "calls"),
            fmt_ns(get_u64(p, "total_ns")),
            get_f64(p, "frac") * 100.0,
        )?;
    }

    // Shard imbalance summary.
    if !doc.shards.is_empty() {
        writeln!(
            out,
            "\n  {:<6} {:>10} {:>10} {:>12} {:>14}",
            "shard", "blocks", "windows", "replay", "barrier_idle"
        )?;
        for s in &doc.shards {
            writeln!(
                out,
                "  {:<6} {:>10} {:>10} {:>12} {:>14}",
                get_u64(s, "shard"),
                get_u64(s, "blocks"),
                get_u64(s, "windows"),
                fmt_ns(get_u64(s, "replay_ns")),
                fmt_ns(get_u64(s, "barrier_wait_ns")),
            )?;
        }
        writeln!(
            out,
            "  imbalance_cv={:.3} (stddev/mean of per-shard replay time)",
            get_f64(&doc.summary, "imbalance_cv")
        )?;
    }

    // Histogram tails.
    if !doc.hists.is_empty() {
        writeln!(
            out,
            "\n  {:<18} {:>10} {:>10} {:>10} {:>10} {:>10}  det",
            "histogram", "count", "p50", "p90", "p99", "max"
        )?;
        for h in doc.hists.iter().take(top) {
            writeln!(
                out,
                "  {:<18} {:>10} {:>10} {:>10} {:>10} {:>10}  {}",
                get_str(h, "name"),
                get_u64(h, "count"),
                get_u64(h, "p50"),
                get_u64(h, "p90"),
                get_u64(h, "p99"),
                get_u64(h, "max"),
                if h.get("deterministic").and_then(JsonValue::as_bool) == Some(true) {
                    "yes"
                } else {
                    "no"
                },
            )?;
        }
    }

    // Verdict: where did the sharding overhead go?
    let s = &doc.summary;
    if get_str(m, "engine") == "sharded" {
        let pairs = [
            ("window advance", get_f64(s, "window_advance_frac")),
            ("cut exchange", get_f64(s, "cut_exchange_frac")),
            ("barrier wait", get_f64(s, "barrier_frac")),
            ("journal merge", get_f64(s, "merge_frac")),
            ("global events", get_f64(s, "global_frac")),
        ];
        let overhead: f64 = pairs.iter().map(|(_, f)| f).sum();
        let dominant = pairs
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .copied()
            .unwrap_or(("none", 0.0));
        writeln!(
            out,
            "\nsharding overhead: {:.1}% of wall-clock (advance {:.1}%, cut-xchg {:.1}%, \
             barrier {:.1}%, merge {:.1}%, global {:.1}%); dominant: {} ({:.1}%)",
            overhead * 100.0,
            pairs[0].1 * 100.0,
            pairs[1].1 * 100.0,
            pairs[2].1 * 100.0,
            pairs[3].1 * 100.0,
            pairs[4].1 * 100.0,
            dominant.0,
            dominant.1 * 100.0,
        )?;
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };
    let text = match std::fs::read_to_string(&args.file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", args.file);
            return ExitCode::FAILURE;
        }
    };
    let Some(doc) = ProfileDoc::parse(&text) else {
        eprintln!("{}: not a sv2p-profile/v1 report", args.file);
        return ExitCode::FAILURE;
    };
    if args.check {
        let bad = check(&doc);
        if bad.is_empty() {
            println!("{}: ok ({} phases, {} shards)", args.file, doc.phases.len(), doc.shards.len());
            return ExitCode::SUCCESS;
        }
        for b in &bad {
            eprintln!("{}: {b}", args.file);
        }
        return ExitCode::FAILURE;
    }
    let mut out = std::io::BufWriter::new(std::io::stdout().lock());
    match render(&doc, args.top, &mut out).and_then(|()| out.flush()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("write failed: {e}");
            ExitCode::FAILURE
        }
    }
}
