//! `sv2p-trace`: inspect a telemetry trace produced by the bench harness.
//!
//! ```sh
//! sv2p-trace run.events.jsonl                      # per-kind summary
//! sv2p-trace run.events.jsonl --flow 12            # all events of flow 12
//! sv2p-trace run.events.jsonl --switch 3           # all events at node 3
//! sv2p-trace run.events.jsonl --kind cache_lookup  # one event kind
//! sv2p-trace run.events.jsonl --path 12            # flow 12's first packet,
//!                                                  # hop by hop with latency
//! sv2p-trace run.events.jsonl --path 12 --pkt 900  # a specific packet
//! ```
//!
//! Filters compose (AND). Filtered events print as JSONL, so output can be
//! piped back into `sv2p-trace` or any JSON tool.

use std::io::Write;
use std::process::ExitCode;

use sv2p_telemetry::inspect::{format_path, kind_counts, parse_events, reconstruct_path};
use sv2p_telemetry::EventKind;

struct Args {
    file: String,
    flow: Option<u64>,
    switch: Option<u32>,
    kind: Option<EventKind>,
    path: Option<u64>,
    pkt: Option<u64>,
    summary: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: sv2p-trace <trace.events.jsonl> \
         [--summary] [--flow N] [--switch N] [--kind K] [--path FLOW] [--pkt N]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut args = Args {
        file: String::new(),
        flow: None,
        switch: None,
        kind: None,
        path: None,
        pkt: None,
        summary: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut num = |name: &str| -> Result<u64, ExitCode> {
            it.next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| {
                    eprintln!("{name} needs a numeric argument");
                    usage()
                })
        };
        match a.as_str() {
            "--summary" => args.summary = true,
            "--flow" => args.flow = Some(num("--flow")?),
            "--switch" => args.switch = Some(num("--switch")? as u32),
            "--path" => args.path = Some(num("--path")?),
            "--pkt" => args.pkt = Some(num("--pkt")?),
            "--kind" => {
                let k = it.next().unwrap_or_default();
                match EventKind::parse(&k) {
                    Some(kind) => args.kind = Some(kind),
                    None => {
                        let names: Vec<&str> =
                            EventKind::ALL.iter().map(|k| k.as_str()).collect();
                        eprintln!("unknown kind {k:?}; one of: {}", names.join(", "));
                        return Err(usage());
                    }
                }
            }
            "--help" | "-h" => return Err(usage()),
            _ if args.file.is_empty() && !a.starts_with('-') => args.file = a,
            other => {
                eprintln!("unknown argument {other:?}");
                return Err(usage());
            }
        }
    }
    if args.file.is_empty() {
        return Err(usage());
    }
    Ok(args)
}

/// Inspects the file and writes the requested view to `out`. An `Err` is
/// an I/O failure on `out` — `main` treats a broken pipe (`… | head`) as
/// a normal early exit.
fn run(args: &Args, out: &mut impl Write) -> std::io::Result<ExitCode> {
    let text = match std::fs::read_to_string(&args.file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", args.file);
            return Ok(ExitCode::FAILURE);
        }
    };
    let events = parse_events(&text);
    if events.is_empty() {
        eprintln!("{}: no parseable trace events", args.file);
        return Ok(ExitCode::FAILURE);
    }

    if let Some(flow) = args.path {
        match reconstruct_path(&events, flow, args.pkt) {
            Some(report) => {
                write!(out, "{}", format_path(&report))?;
                return Ok(ExitCode::SUCCESS);
            }
            None => {
                eprintln!("no events for flow {flow} (pkt {:?})", args.pkt);
                return Ok(ExitCode::FAILURE);
            }
        }
    }

    let filtering = args.flow.is_some() || args.switch.is_some() || args.kind.is_some();
    if filtering && !args.summary {
        for e in &events {
            if args.flow.is_some_and(|f| e.flow != Some(f)) {
                continue;
            }
            if args.switch.is_some_and(|n| e.node != Some(n)) {
                continue;
            }
            if args.kind.is_some_and(|k| e.kind != k) {
                continue;
            }
            writeln!(out, "{}", e.to_json())?;
        }
        return Ok(ExitCode::SUCCESS);
    }

    // Summary (the default).
    writeln!(out, "{}: {} events", args.file, events.len())?;
    for (kind, n) in kind_counts(&events) {
        writeln!(out, "  {kind:<16} {n}")?;
    }
    let t0 = events.iter().map(|e| e.t_ns).min().unwrap_or(0);
    let t1 = events.iter().map(|e| e.t_ns).max().unwrap_or(0);
    writeln!(out, "  span: {t0} .. {t1} ns ({} us)", (t1 - t0) / 1000)?;
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };
    let mut out = std::io::BufWriter::new(std::io::stdout().lock());
    match run(&args, &mut out).and_then(|code| out.flush().map(|()| code)) {
        Ok(code) => code,
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("write failed: {e}");
            ExitCode::FAILURE
        }
    }
}
