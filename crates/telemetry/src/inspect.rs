//! Trace inspection: parsing trace JSONL back into [`TraceEvent`]s,
//! filtering, and hop-by-hop path reconstruction.
//!
//! This is the library behind the `sv2p-trace` binary, kept separate so
//! integration tests can drive reconstruction without spawning a process.

use std::collections::HashMap;

use crate::event::{EventKind, Sample, TraceEvent};
use crate::json::{parse_flat, JsonValue};

fn intern_layer(s: &str) -> Option<&'static str> {
    match s {
        "tor" => Some("tor"),
        "spine" => Some("spine"),
        "core" => Some("core"),
        _ => None,
    }
}

fn intern_op(s: &str) -> Option<&'static str> {
    match s {
        "insert" => Some("insert"),
        "update" => Some("update"),
        "evict" => Some("evict"),
        "invalidate" => Some("invalidate"),
        "spill" => Some("spill"),
        "promote" => Some("promote"),
        "install" => Some("install"),
        _ => None,
    }
}

fn intern_cause(s: &str) -> Option<&'static str> {
    match s {
        "queue" => Some("queue"),
        "unroutable" => Some("unroutable"),
        "blackout" => Some("blackout"),
        "loss" => Some("loss"),
        _ => None,
    }
}

/// Parses one trace line; `None` for malformed or foreign lines.
pub fn parse_event(line: &str) -> Option<TraceEvent> {
    let m = parse_flat(line)?;
    let get_u64 = |k: &str| m.get(k).and_then(JsonValue::as_u64);
    let get_bool = |k: &str| m.get(k).and_then(JsonValue::as_bool);
    let kind = EventKind::parse(m.get("kind")?.as_str()?)?;
    let mut ev = TraceEvent::new(get_u64("t_ns")?, kind);
    ev.flow = get_u64("flow");
    ev.pkt = get_u64("pkt");
    ev.node = get_u64("node").map(|v| v as u32);
    ev.layer = m.get("layer").and_then(|v| v.as_str()).and_then(intern_layer);
    ev.hit = get_bool("hit");
    ev.resolved = get_bool("resolved");
    ev.vip = get_u64("vip").map(|v| v as u32);
    ev.pip = get_u64("pip").map(|v| v as u32);
    ev.op = m.get("op").and_then(|v| v.as_str()).and_then(intern_op);
    ev.cause = m.get("cause").and_then(|v| v.as_str()).and_then(intern_cause);
    ev.hops = get_u64("hops").map(|v| v as u16);
    ev.latency_ns = get_u64("latency_ns");
    Some(ev)
}

/// Parses a whole trace file, silently skipping unparseable lines.
pub fn parse_events(text: &str) -> Vec<TraceEvent> {
    text.lines().filter_map(parse_event).collect()
}

/// Parses a samples file (only the fields path analysis uses).
pub fn parse_samples(text: &str) -> Vec<Sample> {
    text.lines()
        .filter_map(|line| {
            let m = parse_flat(line)?;
            let g = |k: &str| m.get(k).and_then(JsonValue::as_u64);
            Some(Sample {
                t_ns: g("t_ns")?,
                events_executed: g("events_executed").unwrap_or(0),
                pending_events: g("pending_events").unwrap_or(0),
                queue_pkts_total: g("queue_pkts_total").unwrap_or(0),
                queue_pkts_max: g("queue_pkts_max").unwrap_or(0),
                occ_tor: g("occ_tor").unwrap_or(0),
                occ_spine: g("occ_spine").unwrap_or(0),
                occ_core: g("occ_core").unwrap_or(0),
                hit_rate_window: m.get("hit_rate_window").and_then(JsonValue::as_f64),
                hit_rate_cum: m
                    .get("hit_rate_cum")
                    .and_then(JsonValue::as_f64)
                    .unwrap_or(0.0),
                gateway_pkts_cum: g("gateway_pkts_cum").unwrap_or(0),
            })
        })
        .collect()
}

/// Per-kind event counts in wire order (stable output).
pub fn kind_counts(events: &[TraceEvent]) -> Vec<(&'static str, usize)> {
    let mut by_kind: HashMap<EventKind, usize> = HashMap::new();
    for e in events {
        *by_kind.entry(e.kind).or_insert(0) += 1;
    }
    EventKind::ALL
        .iter()
        .filter_map(|k| by_kind.get(k).map(|&n| (k.as_str(), n)))
        .collect()
}

/// One hop of a reconstructed packet path.
#[derive(Debug, Clone)]
pub struct Hop {
    /// Virtual time of the hop, nanoseconds.
    pub t_ns: u64,
    /// Node the event happened at (`None` for node-less drop records).
    pub node: Option<u32>,
    /// The underlying event.
    pub event: TraceEvent,
    /// Nanoseconds since the previous hop (0 for the first).
    pub dt_ns: u64,
}

/// A packet's reconstructed journey.
#[derive(Debug, Clone)]
pub struct PathReport {
    /// Flow the packet belongs to.
    pub flow: u64,
    /// Packet id.
    pub pkt: u64,
    /// Ordered hops, each with latency since the previous.
    pub hops: Vec<Hop>,
    /// True if the packet detoured through a translation gateway.
    pub visited_gateway: bool,
    /// The switch whose cache resolved the packet, if any.
    pub hit_node: Option<u32>,
    /// True if the packet reached its destination VM.
    pub delivered: bool,
    /// Send-to-delivery latency, when both endpoints are in the trace.
    pub total_latency_ns: Option<u64>,
}

/// Reconstructs the hop-by-hop path of one packet of `flow`.
///
/// With `pkt == None` the flow's first traced packet (lowest packet id
/// with a `send` event, else lowest seen) is chosen. Events are replayed
/// in virtual-time order; the tracer's ring already stores them
/// chronologically, and parsing preserves file order, so no re-sort can
/// reorder same-instant events.
pub fn reconstruct_path(events: &[TraceEvent], flow: u64, pkt: Option<u64>) -> Option<PathReport> {
    let flow_events = || events.iter().filter(|e| e.flow == Some(flow));
    let pkt_id = match pkt {
        Some(p) => p,
        None => flow_events()
            .filter(|e| e.kind == EventKind::PacketSent)
            .filter_map(|e| e.pkt)
            .min()
            .or_else(|| flow_events().filter_map(|e| e.pkt).min())?,
    };
    let path: Vec<&TraceEvent> = flow_events().filter(|e| e.pkt == Some(pkt_id)).collect();
    if path.is_empty() {
        return None;
    }

    let mut hops = Vec::with_capacity(path.len());
    let mut prev_t = None;
    let mut visited_gateway = false;
    let mut hit_node = None;
    let mut delivered = false;
    let mut sent_at = None;
    let mut delivered_at = None;
    for e in &path {
        let dt = prev_t.map_or(0, |p| e.t_ns.saturating_sub(p));
        prev_t = Some(e.t_ns);
        match e.kind {
            EventKind::PacketSent => sent_at = sent_at.or(Some(e.t_ns)),
            EventKind::GatewayIngress => visited_gateway = true,
            EventKind::CacheLookup if e.hit == Some(true) => hit_node = hit_node.or(e.node),
            EventKind::Delivery => {
                delivered = true;
                delivered_at = delivered_at.or(Some(e.t_ns));
            }
            _ => {}
        }
        hops.push(Hop {
            t_ns: e.t_ns,
            node: e.node,
            event: (*e).clone(),
            dt_ns: dt,
        });
    }
    let total_latency_ns = match (sent_at, delivered_at) {
        (Some(s), Some(d)) => Some(d.saturating_sub(s)),
        _ => None,
    };
    Some(PathReport {
        flow,
        pkt: pkt_id,
        hops,
        visited_gateway,
        hit_node,
        delivered,
        total_latency_ns,
    })
}

/// Renders a [`PathReport`] as the human-readable listing `sv2p-trace
/// --path` prints.
pub fn format_path(r: &PathReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "flow {} pkt {}: {} events, gateway_detour={}, hit_switch={}, delivered={}\n",
        r.flow,
        r.pkt,
        r.hops.len(),
        r.visited_gateway,
        r.hit_node.map_or("none".to_string(), |n| format!("node {n}")),
        r.delivered,
    ));
    if let Some(lat) = r.total_latency_ns {
        out.push_str(&format!("total send->delivery latency: {lat} ns\n"));
    }
    for h in &r.hops {
        let e = &h.event;
        let mut extra = String::new();
        if let Some(l) = e.layer {
            extra.push_str(&format!(" layer={l}"));
        }
        if let Some(hit) = e.hit {
            extra.push_str(&format!(" hit={hit}"));
        }
        if let Some(op) = e.op {
            extra.push_str(&format!(" op={op}"));
        }
        if let Some(r) = e.resolved {
            extra.push_str(&format!(" resolved={r}"));
        }
        if let Some(c) = e.cause {
            extra.push_str(&format!(" cause={c}"));
        }
        if let Some(hops) = e.hops {
            extra.push_str(&format!(" switch_hops={hops}"));
        }
        out.push_str(&format!(
            "  t={:>12} ns  (+{:>9} ns)  {:<16} {}{}\n",
            h.t_ns,
            h.dt_ns,
            e.kind.as_str(),
            h.node.map_or("-".to_string(), |n| format!("node {n}")),
            extra,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Vec<TraceEvent> {
        let mut v = Vec::new();
        let mut e = TraceEvent::new(0, EventKind::PacketSent).packet(7, 100).at_node(0);
        e.resolved = Some(false);
        v.push(e);
        v.push(TraceEvent::new(10, EventKind::SwitchIngress).packet(7, 100).at_node(1));
        let mut e = TraceEvent::new(10, EventKind::CacheLookup).packet(7, 100).at_node(1);
        e.hit = Some(false);
        v.push(e);
        v.push(TraceEvent::new(30, EventKind::GatewayIngress).packet(7, 100).at_node(9));
        v.push(TraceEvent::new(70, EventKind::GatewayDone).packet(7, 100).at_node(9));
        v.push(TraceEvent::new(90, EventKind::SwitchIngress).packet(7, 100).at_node(2));
        let mut e = TraceEvent::new(90, EventKind::CacheLookup).packet(7, 100).at_node(2);
        e.hit = Some(true);
        v.push(e);
        let mut e = TraceEvent::new(120, EventKind::Delivery).packet(7, 100).at_node(5);
        e.hops = Some(4);
        e.latency_ns = Some(120);
        v.push(e);
        // Another flow's packet, to be filtered out.
        v.push(TraceEvent::new(15, EventKind::SwitchIngress).packet(8, 200).at_node(1));
        v
    }

    #[test]
    fn reconstruction_orders_hops_and_finds_landmarks() {
        let events = trace();
        let r = reconstruct_path(&events, 7, None).expect("path");
        assert_eq!(r.pkt, 100);
        assert_eq!(r.hops.len(), 8);
        assert!(r.visited_gateway);
        assert_eq!(r.hit_node, Some(2));
        assert!(r.delivered);
        assert_eq!(r.total_latency_ns, Some(120));
        // Per-hop latency: gateway processing shows up as the 70-30=40ns gap.
        let gw_done = r
            .hops
            .iter()
            .find(|h| h.event.kind == EventKind::GatewayDone)
            .unwrap();
        assert_eq!(gw_done.dt_ns, 40);
        let listing = format_path(&r);
        assert!(listing.contains("gateway_detour=true"), "{listing}");
        assert!(listing.contains("hit_switch=node 2"), "{listing}");
    }

    #[test]
    fn unknown_flow_yields_none() {
        assert!(reconstruct_path(&trace(), 99, None).is_none());
        assert!(reconstruct_path(&trace(), 7, Some(999)).is_none());
    }

    #[test]
    fn events_round_trip_through_jsonl() {
        let events = trace();
        let text: String = events.iter().map(|e| e.to_json() + "\n").collect();
        let back = parse_events(&text);
        assert_eq!(back, events);
    }

    #[test]
    fn kind_counts_are_stable_order() {
        let counts = kind_counts(&trace());
        let names: Vec<&str> = counts.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec!["send", "switch_ingress", "cache_lookup", "gateway_ingress", "gateway_done", "delivery"]
        );
        assert_eq!(counts[1].1, 3, "three switch_ingress events");
    }
}
