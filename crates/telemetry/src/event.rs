//! Trace events, the ring-buffered tracer, and time-series samples.
//!
//! Everything here is keyed by **virtual time only** (`t_ns`). Wall-clock
//! never enters a trace or a sample, so two same-seed runs of the same
//! experiment render byte-identical JSONL.

use crate::json::JsonObj;

/// Switch-layer label carried on switch-side events.
///
/// Kept as a `&'static str` ("tor"/"spine"/"core") so this crate stays
/// dependency-free; the simulator maps its `Layer` enum at emission time.
pub type LayerName = &'static str;

/// What happened. One discriminant per packet-lifecycle or cache-mutation
/// point; the per-kind payload rides in [`TraceEvent`]'s optional fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A tenant data packet entered the network at its source host.
    PacketSent,
    /// A packet arrived at a switch.
    SwitchIngress,
    /// A caching switch looked the packet's destination up (`hit` says
    /// whether its cache resolved it).
    CacheLookup,
    /// A cache mutated (`op` = insert/update/evict/invalidate/spill/promote).
    CacheOp,
    /// An unresolved packet reached a translation gateway (the detour).
    GatewayIngress,
    /// The gateway finished translating and re-emitted the packet.
    GatewayDone,
    /// A packet arrived at a host that no longer hosts the destination VM.
    Misdelivery,
    /// A data packet reached its (correct) destination VM.
    Delivery,
    /// A data packet was dropped (`cause` = queue/unroutable/blackout/loss/
    /// gateway-shed).
    Drop,
    /// A churn tenant arrived (`vip` = tenant id, `hops` = VMs claimed).
    ChurnArrival,
    /// A churn tenant departed (`vip` = tenant id, `hops` = VMs released).
    ChurnDeparture,
    /// A rolling migration wave started (`hops` = migrations in the wave).
    MigrationWave,
    /// A cache hit served a mapping that disagrees with the ground-truth
    /// database (`vip`/`pip` = the stale entry, `latency_ns` = entry age
    /// since the migration that invalidated it).
    StaleHit,
}

impl EventKind {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::PacketSent => "send",
            EventKind::SwitchIngress => "switch_ingress",
            EventKind::CacheLookup => "cache_lookup",
            EventKind::CacheOp => "cache_op",
            EventKind::GatewayIngress => "gateway_ingress",
            EventKind::GatewayDone => "gateway_done",
            EventKind::Misdelivery => "misdelivery",
            EventKind::Delivery => "delivery",
            EventKind::Drop => "drop",
            EventKind::ChurnArrival => "churn_arrival",
            EventKind::ChurnDeparture => "churn_departure",
            EventKind::MigrationWave => "migration_wave",
            EventKind::StaleHit => "stale_hit",
        }
    }

    /// Inverse of [`Self::as_str`].
    pub fn parse(s: &str) -> Option<EventKind> {
        Some(match s {
            "send" => EventKind::PacketSent,
            "switch_ingress" => EventKind::SwitchIngress,
            "cache_lookup" => EventKind::CacheLookup,
            "cache_op" => EventKind::CacheOp,
            "gateway_ingress" => EventKind::GatewayIngress,
            "gateway_done" => EventKind::GatewayDone,
            "misdelivery" => EventKind::Misdelivery,
            "delivery" => EventKind::Delivery,
            "drop" => EventKind::Drop,
            "churn_arrival" => EventKind::ChurnArrival,
            "churn_departure" => EventKind::ChurnDeparture,
            "migration_wave" => EventKind::MigrationWave,
            "stale_hit" => EventKind::StaleHit,
            _ => return None,
        })
    }

    /// Every kind, in wire order (inspector summaries iterate this so
    /// output order never depends on hash-map iteration).
    pub const ALL: [EventKind; 13] = [
        EventKind::PacketSent,
        EventKind::SwitchIngress,
        EventKind::CacheLookup,
        EventKind::CacheOp,
        EventKind::GatewayIngress,
        EventKind::GatewayDone,
        EventKind::Misdelivery,
        EventKind::Delivery,
        EventKind::Drop,
        EventKind::ChurnArrival,
        EventKind::ChurnDeparture,
        EventKind::MigrationWave,
        EventKind::StaleHit,
    ];
}

/// One structured trace record. Flat on purpose: a fixed field order
/// renders to a byte-stable JSONL line and parses back with the minimal
/// flat-object parser.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Virtual time, nanoseconds.
    pub t_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// Flow id (absent for cache ops driven by protocol packets with no
    /// tenant flow).
    pub flow: Option<u64>,
    /// Packet id.
    pub pkt: Option<u64>,
    /// Node id where it happened (switch, gateway, or host).
    pub node: Option<u32>,
    /// Switch layer ("tor"/"spine"/"core"), switch-side events only.
    pub layer: Option<LayerName>,
    /// Cache-lookup outcome.
    pub hit: Option<bool>,
    /// Whether the packet was outer-resolved (send events).
    pub resolved: Option<bool>,
    /// Virtual address involved in a cache op.
    pub vip: Option<u32>,
    /// Physical address involved in a cache op / gateway translation.
    pub pip: Option<u32>,
    /// Cache-op name ("insert"/"update"/"evict"/"invalidate"/"spill"/"promote").
    pub op: Option<&'static str>,
    /// Drop cause ("queue"/"unroutable"/"blackout"/"loss").
    pub cause: Option<&'static str>,
    /// Switch hops traversed (delivery events).
    pub hops: Option<u16>,
    /// End-to-end latency, nanoseconds (delivery events).
    pub latency_ns: Option<u64>,
}

impl TraceEvent {
    /// A blank event of `kind` at `t_ns`.
    pub fn new(t_ns: u64, kind: EventKind) -> Self {
        TraceEvent {
            t_ns,
            kind,
            flow: None,
            pkt: None,
            node: None,
            layer: None,
            hit: None,
            resolved: None,
            vip: None,
            pip: None,
            op: None,
            cause: None,
            hops: None,
            latency_ns: None,
        }
    }

    /// Attaches flow/packet identity.
    pub fn packet(mut self, flow: u64, pkt: u64) -> Self {
        self.flow = Some(flow);
        self.pkt = Some(pkt);
        self
    }

    /// Attaches the node id.
    pub fn at_node(mut self, node: u32) -> Self {
        self.node = Some(node);
        self
    }

    /// Renders the event as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.u64("t_ns", self.t_ns).str("kind", self.kind.as_str());
        if let Some(v) = self.flow {
            o.u64("flow", v);
        }
        if let Some(v) = self.pkt {
            o.u64("pkt", v);
        }
        if let Some(v) = self.node {
            o.u64("node", v as u64);
        }
        if let Some(v) = self.layer {
            o.str("layer", v);
        }
        if let Some(v) = self.hit {
            o.bool("hit", v);
        }
        if let Some(v) = self.resolved {
            o.bool("resolved", v);
        }
        if let Some(v) = self.vip {
            o.u64("vip", v as u64);
        }
        if let Some(v) = self.pip {
            o.u64("pip", v as u64);
        }
        if let Some(v) = self.op {
            o.str("op", v);
        }
        if let Some(v) = self.cause {
            o.str("cause", v);
        }
        if let Some(v) = self.hops {
            o.u64("hops", v as u64);
        }
        if let Some(v) = self.latency_ns {
            o.u64("latency_ns", v);
        }
        o.finish()
    }
}

/// One periodic snapshot of simulator state (virtual-time sampler).
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Virtual time of the snapshot, nanoseconds.
    pub t_ns: u64,
    /// Events executed by the calendar so far.
    pub events_executed: u64,
    /// Pending events in the calendar right now.
    pub pending_events: u64,
    /// Sum of egress-queue depths over all links, packets.
    pub queue_pkts_total: u64,
    /// Deepest single egress queue, packets.
    pub queue_pkts_max: u64,
    /// Valid cache entries across ToR switches.
    pub occ_tor: u64,
    /// Valid cache entries across spine switches.
    pub occ_spine: u64,
    /// Valid cache entries across core switches.
    pub occ_core: u64,
    /// Hit rate of the metrics window containing this instant (`None`
    /// when the window saw no traffic).
    pub hit_rate_window: Option<f64>,
    /// Cumulative hit rate since t=0.
    pub hit_rate_cum: f64,
    /// Cumulative packets processed by gateways.
    pub gateway_pkts_cum: u64,
}

impl Sample {
    /// Renders the sample as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.u64("t_ns", self.t_ns)
            .u64("events_executed", self.events_executed)
            .u64("pending_events", self.pending_events)
            .u64("queue_pkts_total", self.queue_pkts_total)
            .u64("queue_pkts_max", self.queue_pkts_max)
            .u64("occ_tor", self.occ_tor)
            .u64("occ_spine", self.occ_spine)
            .u64("occ_core", self.occ_core);
        match self.hit_rate_window {
            Some(h) => o.f64("hit_rate_window", h),
            None => o.str("hit_rate_window", "n/a"),
        };
        o.f64("hit_rate_cum", self.hit_rate_cum)
            .u64("gateway_pkts_cum", self.gateway_pkts_cum);
        o.finish()
    }
}

/// Telemetry knobs, embedded in the simulator's `SimConfig`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryConfig {
    /// Master gate. When false the tracer records nothing, the sampler
    /// schedules no events, and agents skip cache-op bookkeeping — the
    /// entire layer costs one predictable branch per emission point.
    pub enabled: bool,
    /// Ring-buffer capacity in events; the oldest events are overwritten
    /// once full (the dropped count is kept).
    pub event_capacity: usize,
    /// Sampler period in virtual nanoseconds (0 disables sampling even
    /// when tracing is on).
    pub sample_every_ns: u64,
}

impl TelemetryConfig {
    /// Tracing off (the default for every experiment).
    pub fn disabled() -> Self {
        TelemetryConfig {
            enabled: false,
            event_capacity: 0,
            sample_every_ns: 0,
        }
    }

    /// Tracing on with a 1 Mi-event ring and 100 µs sampling.
    pub fn enabled() -> Self {
        TelemetryConfig {
            enabled: true,
            event_capacity: 1 << 20,
            sample_every_ns: 100_000,
        }
    }
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// The event sink: a boolean gate plus a bounded ring buffer.
///
/// Callers guard emission with [`Tracer::enabled`] so the disabled path
/// never constructs a [`TraceEvent`]. When the ring fills, the oldest
/// events are overwritten; [`Tracer::dropped`] reports how many.
#[derive(Debug)]
pub struct Tracer {
    cfg: TelemetryConfig,
    /// Ring storage; chronological order is `buf[start..] ++ buf[..start]`.
    buf: Vec<TraceEvent>,
    start: usize,
    total: u64,
    /// Collected time-series samples, in virtual-time order.
    pub samples: Vec<Sample>,
}

impl Tracer {
    /// A tracer for `cfg` (records nothing unless `cfg.enabled`).
    pub fn new(cfg: TelemetryConfig) -> Self {
        Tracer {
            cfg,
            buf: Vec::new(),
            start: 0,
            total: 0,
            samples: Vec::new(),
        }
    }

    /// A disabled tracer.
    pub fn off() -> Self {
        Self::new(TelemetryConfig::disabled())
    }

    /// True if events should be recorded. `#[inline]` so the guard at each
    /// emission point compiles to one load+branch.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// The configuration this tracer was built with.
    pub fn config(&self) -> TelemetryConfig {
        self.cfg
    }

    /// Records one event (call only when [`Self::enabled`]).
    pub fn record(&mut self, ev: TraceEvent) {
        if !self.cfg.enabled || self.cfg.event_capacity == 0 {
            return;
        }
        self.total += 1;
        if self.buf.len() < self.cfg.event_capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.start] = ev;
            self.start = (self.start + 1) % self.buf.len();
        }
    }

    /// Total events offered to the tracer.
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Events lost to ring overwrite.
    pub fn dropped(&self) -> u64 {
        self.total - self.buf.len() as u64
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf[self.start..].iter().chain(self.buf[..self.start].iter())
    }

    /// Renders retained events as JSONL (one event per line, trailing
    /// newline after each).
    pub fn render_events_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.events() {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }

    /// Renders collected samples as JSONL.
    pub fn render_samples_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            out.push_str(&s.to_json());
            out.push('\n');
        }
        out
    }

    /// Writes `<label>.events.jsonl` and `<label>.samples.jsonl` under
    /// `dir` (created if missing); returns the two paths.
    pub fn write_to_dir(
        &self,
        dir: &std::path::Path,
        label: &str,
    ) -> std::io::Result<(std::path::PathBuf, std::path::PathBuf)> {
        std::fs::create_dir_all(dir)?;
        let ev_path = dir.join(format!("{label}.events.jsonl"));
        let sm_path = dir.join(format!("{label}.samples.jsonl"));
        std::fs::write(&ev_path, self.render_events_jsonl())?;
        std::fs::write(&sm_path, self.render_samples_jsonl())?;
        Ok((ev_path, sm_path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64) -> TraceEvent {
        TraceEvent::new(t, EventKind::Delivery).packet(1, t)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::off();
        assert!(!t.enabled());
        t.record(ev(1));
        assert_eq!(t.total_recorded(), 0);
        assert_eq!(t.events().count(), 0);
        assert!(t.render_events_jsonl().is_empty());
    }

    #[test]
    fn ring_overwrites_oldest() {
        let mut t = Tracer::new(TelemetryConfig {
            enabled: true,
            event_capacity: 3,
            sample_every_ns: 0,
        });
        for i in 0..5 {
            t.record(ev(i));
        }
        assert_eq!(t.total_recorded(), 5);
        assert_eq!(t.dropped(), 2);
        let ts: Vec<u64> = t.events().map(|e| e.t_ns).collect();
        assert_eq!(ts, vec![2, 3, 4], "oldest-first after wrap");
    }

    #[test]
    fn kind_names_round_trip() {
        for k in EventKind::ALL {
            assert_eq!(EventKind::parse(k.as_str()), Some(k));
        }
        assert_eq!(EventKind::parse("nope"), None);
    }

    #[test]
    fn event_json_has_fixed_field_order() {
        let mut e = TraceEvent::new(5, EventKind::CacheLookup).packet(7, 9).at_node(3);
        e.layer = Some("tor");
        e.hit = Some(true);
        assert_eq!(
            e.to_json(),
            r#"{"t_ns":5,"kind":"cache_lookup","flow":7,"pkt":9,"node":3,"layer":"tor","hit":true}"#
        );
    }

    #[test]
    fn sample_json_renders_missing_window_as_na() {
        let s = Sample {
            t_ns: 100,
            events_executed: 10,
            pending_events: 2,
            queue_pkts_total: 0,
            queue_pkts_max: 0,
            occ_tor: 1,
            occ_spine: 2,
            occ_core: 3,
            hit_rate_window: None,
            hit_rate_cum: 0.25,
            gateway_pkts_cum: 4,
        };
        let line = s.to_json();
        assert!(line.contains(r#""hit_rate_window":"n/a""#), "{line}");
        assert!(line.contains(r#""hit_rate_cum":0.25"#), "{line}");
    }
}
