//! Property tests: the wire format round-trips arbitrary packets and never
//! panics on arbitrary input bytes.

use bytes::Bytes;
use proptest::prelude::*;
use sv2p_packet::packet::Protocol;
use sv2p_packet::wire::{decode, encode, wire_eq};
use sv2p_packet::{
    FlowId, InnerHeader, MappingOption, MisdeliveryTag, OuterHeader, Packet, PacketId, PacketKind,
    Pip, SwitchTag, TcpFlags, TunnelOptions, Vip,
};

fn arb_mapping() -> impl Strategy<Value = MappingOption> {
    (any::<u32>(), any::<u32>()).prop_map(|(v, p)| MappingOption {
        vip: Vip(v),
        pip: Pip(p),
    })
}

fn arb_tag() -> impl Strategy<Value = MisdeliveryTag> {
    (any::<u32>(), any::<u32>()).prop_map(|(v, p)| MisdeliveryTag {
        vip: Vip(v),
        stale_pip: Pip(p),
    })
}

fn arb_kind() -> impl Strategy<Value = PacketKind> {
    prop_oneof![
        Just(PacketKind::Data),
        arb_mapping().prop_map(PacketKind::Learning),
        arb_tag().prop_map(PacketKind::Invalidation),
    ]
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    (
        arb_kind(),
        any::<(u32, u32, bool)>(),
        any::<(u32, u32, u16, u16)>(),
        any::<(u32, u32, u8)>(),
        prop_oneof![Just(Protocol::Tcp), Just(Protocol::Udp)],
        (
            proptest::option::of(arb_mapping()),
            proptest::option::of(arb_mapping()),
            proptest::option::of(arb_tag()),
            proptest::option::of(any::<u16>().prop_map(SwitchTag)),
        ),
        0u32..1200,
    )
        .prop_map(
            |(kind, (spip, dpip, resolved), (svip, dvip, sport, dport), (seq, ack, fl), proto, (spill, promo, misd, hit), payload)| {
                Packet {
                    id: PacketId(0),
                    flow: FlowId(0),
                    kind,
                    outer: OuterHeader {
                        src_pip: Pip(spip),
                        dst_pip: Pip(dpip),
                        resolved,
                    },
                    inner: InnerHeader {
                        src_vip: Vip(svip),
                        dst_vip: Vip(dvip),
                        src_port: sport,
                        dst_port: dport,
                        protocol: proto,
                        seq,
                        ack,
                        flags: TcpFlags::from_byte(fl),
                    },
                    opts: TunnelOptions {
                        spillover: spill,
                        promotion: promo,
                        misdelivery: misd,
                        hit_switch: hit,
                    },
                    payload,
                    switch_hops: 0,
                    sent_ns: 0,
                    first_of_flow: false,
                    visited_gateway: false,
                }
            },
        )
}

proptest! {
    #[test]
    fn encode_decode_round_trips(pkt in arb_packet()) {
        let encoded = encode(&pkt);
        prop_assert_eq!(encoded.len() as u32, pkt.wire_size());
        let decoded = decode(encoded).expect("decode of own encoding failed");
        prop_assert!(wire_eq(&pkt, &decoded));
    }

    #[test]
    fn decode_never_panics_on_noise(data in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = decode(Bytes::from(data));
    }

    #[test]
    fn decode_rejects_every_truncation(pkt in arb_packet()) {
        let encoded = encode(&pkt);
        // Cutting anywhere before the payload must fail; cutting inside the
        // payload is a length mismatch.
        let hdr_end = (pkt.wire_size() - pkt.payload) as usize;
        for cut in (0..hdr_end).step_by(7) {
            prop_assert!(decode(encoded.slice(..cut)).is_err());
        }
    }

    #[test]
    fn single_bit_flips_in_headers_are_detected_or_benign(
        pkt in arb_packet(),
        byte_idx in 0usize..20,
        bit in 0u8..8,
    ) {
        let encoded = encode(&pkt);
        let mut raw = encoded.to_vec();
        raw[byte_idx] ^= 1 << bit;
        // Flips in the outer IPv4 header must be caught by the checksum or by
        // a structural check — silent acceptance with altered addresses is
        // the one outcome that may never happen.
        if let Ok(d) = decode(Bytes::from(raw)) {
            // If it decoded, the flip must not have silently changed
            // addresses (e.g. it hit a don't-care field like TOS/TTL —
            // but those are covered by the checksum, so anything that
            // decodes must equal the original).
            prop_assert!(wire_eq(&pkt, &d));
        }
    }
}
