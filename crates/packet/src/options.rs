//! Typed tunnel-header options.
//!
//! The paper piggybacks four kinds of state on forwarded packets (§3.2–3.3),
//! all of which ride in the tunnel header's option field:
//!
//! * **spillover** — an entry evicted from one switch, offered to the caches
//!   downstream ("cache spillover");
//! * **promotion** — a hot entry a spine offers to the core switch above it;
//! * **misdelivery tag** — set by the old destination's ToR on packets that
//!   were delivered using a stale mapping, so upstream caches invalidate;
//! * **hit-switch tag** — the identifier of the switch whose cache resolved
//!   this packet, used to target invalidation packets after a misdelivery.
//!
//! Each option is at most one instance per packet, which bounds the header to
//! a fixed worst-case size — a hard requirement for a P4 parser and exactly
//! how the prototype's register-array layout treats it.

use serde::{Deserialize, Serialize};

use crate::addr::{Pip, SwitchTag, Vip};

/// A V2P mapping carried in an option (spillover, promotion, learning).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MappingOption {
    /// The virtual address (key).
    pub vip: Vip,
    /// Its physical location (value).
    pub pip: Pip,
}

/// The misdelivery tag (§3.3).
///
/// Carries the destination VIP whose mapping proved stale and the physical
/// address it was wrongly delivered to. A switch holding `vip -> stale_pip`
/// invalidates; a switch holding a *newer* mapping for `vip` may still serve
/// the packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MisdeliveryTag {
    /// The virtual destination that was misrouted.
    pub vip: Vip,
    /// The stale physical address the packet was delivered to.
    pub stale_pip: Pip,
}

/// The full option set of one packet.
///
/// `Default` is the empty set: a freshly sent tenant packet carries no
/// options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TunnelOptions {
    /// Entry evicted upstream, looking for a cache slot downstream.
    pub spillover: Option<MappingOption>,
    /// Hot entry a spine promotes toward the core layer.
    pub promotion: Option<MappingOption>,
    /// Set after delivery to a stale location.
    pub misdelivery: Option<MisdeliveryTag>,
    /// Which switch's cache resolved this packet, if any.
    pub hit_switch: Option<SwitchTag>,
}

impl TunnelOptions {
    /// An empty option set.
    pub const EMPTY: TunnelOptions = TunnelOptions {
        spillover: None,
        promotion: None,
        misdelivery: None,
        hit_switch: None,
    };

    /// True if no options are present.
    pub fn is_empty(&self) -> bool {
        self.spillover.is_none()
            && self.promotion.is_none()
            && self.misdelivery.is_none()
            && self.hit_switch.is_none()
    }

    /// Total encoded length of the present options in bytes
    /// (type + length byte plus the value, per option).
    pub fn wire_len(&self) -> u32 {
        let mut len = 0;
        if self.spillover.is_some() {
            len += 2 + 8;
        }
        if self.promotion.is_some() {
            len += 2 + 8;
        }
        if self.misdelivery.is_some() {
            len += 2 + 8;
        }
        if self.hit_switch.is_some() {
            len += 2 + 2;
        }
        len
    }

    /// The worst-case encoded length (all options present).
    pub const MAX_WIRE_LEN: u32 = (2 + 8) * 3 + (2 + 2);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_options_have_zero_length() {
        let o = TunnelOptions::default();
        assert!(o.is_empty());
        assert_eq!(o.wire_len(), 0);
    }

    #[test]
    fn wire_len_counts_each_present_option() {
        let mut o = TunnelOptions {
            spillover: Some(MappingOption {
                vip: Vip(1),
                pip: Pip(2),
            }),
            ..TunnelOptions::default()
        };
        assert_eq!(o.wire_len(), 10);
        o.hit_switch = Some(SwitchTag(3));
        assert_eq!(o.wire_len(), 14);
        o.promotion = Some(MappingOption {
            vip: Vip(4),
            pip: Pip(5),
        });
        o.misdelivery = Some(MisdeliveryTag {
            vip: Vip(6),
            stale_pip: Pip(7),
        });
        assert_eq!(o.wire_len(), TunnelOptions::MAX_WIRE_LEN);
        assert!(!o.is_empty());
    }
}
