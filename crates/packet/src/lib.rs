//! Packet model and wire format for the SwitchV2P reproduction.
//!
//! SwitchV2P tunnels tenant packets IPv4-in-IPv4 (RFC 1853) and piggybacks its
//! protocol state — spillover mappings, promotions, misdelivery tags, the
//! hit-switch identifier — in tunnel-header options, the way the paper uses
//! the Geneve option field. This crate provides:
//!
//! * [`addr`] — virtual ([`Vip`]) and physical ([`Pip`]) address types;
//! * [`packet`] — the structured [`Packet`] the simulator moves around;
//! * [`options`] — the typed tunnel options ([`TunnelOptions`]);
//! * [`wire`] — a byte-level encode/decode of the full outer + shim + inner
//!   layout, round-trip property-tested, so every piggybacked field provably
//!   fits an on-wire representation (the `sv2p-p4model` crate sizes its
//!   register arrays from the same layout).
//!
//! The simulator itself passes structured packets (parsing per hop would only
//! burn cycles), but the wire module keeps the protocol honest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod options;
pub mod packet;
pub mod wire;

pub use addr::{Pip, SwitchTag, Vip};
pub use options::{MappingOption, MisdeliveryTag, TunnelOptions};
pub use packet::{FlowId, InnerHeader, OuterHeader, Packet, PacketId, PacketKind, TcpFlags};
