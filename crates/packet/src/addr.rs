//! Address types.
//!
//! A *virtual IP* ([`Vip`]) is a tenant-visible identifier with no location
//! information; a *physical IP* ([`Pip`]) locates a server (or gateway, or
//! switch CPU) in the underlay. Keeping them as distinct newtypes makes it a
//! type error to forward on the wrong address space — the bug class this
//! whole paper is about.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A virtual (tenant-assigned) IPv4 address.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Vip(pub u32);

/// A physical (underlay) IPv4 address.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Pip(pub u32);

/// The compact per-switch identifier carried in the hit-switch tunnel option
/// (§3.3: "each switch is assigned a unique identifier, which it adds to the
/// packet header upon a hit in its local cache").
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SwitchTag(pub u16);

impl Vip {
    /// Formats as dotted quad (for traces and debugging).
    pub fn dotted(self) -> String {
        dotted(self.0)
    }
}

impl Pip {
    /// Formats as dotted quad (for traces and debugging).
    pub fn dotted(self) -> String {
        dotted(self.0)
    }
}

fn dotted(v: u32) -> String {
    format!(
        "{}.{}.{}.{}",
        (v >> 24) & 0xff,
        (v >> 16) & 0xff,
        (v >> 8) & 0xff,
        v & 0xff
    )
}

impl fmt::Display for Vip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v:{}", self.dotted())
    }
}

impl fmt::Display for Pip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p:{}", self.dotted())
    }
}

impl fmt::Display for SwitchTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sw#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dotted_quad_formatting() {
        assert_eq!(Vip(0x0A00_0001).dotted(), "10.0.0.1");
        assert_eq!(Pip(0xC0A8_0102).dotted(), "192.168.1.2");
        assert_eq!(Vip(0).dotted(), "0.0.0.0");
        assert_eq!(Pip(u32::MAX).dotted(), "255.255.255.255");
    }

    #[test]
    fn display_marks_address_space() {
        assert_eq!(Vip(1).to_string(), "v:0.0.0.1");
        assert_eq!(Pip(1).to_string(), "p:0.0.0.1");
        assert_eq!(SwitchTag(7).to_string(), "sw#7");
    }
}
