//! Byte-level wire format: outer IPv4, tunnel shim with option TLVs, inner
//! IPv4, inner transport header.
//!
//! The simulator never serializes packets on the hot path, but this module
//! proves that the protocol state SwitchV2P piggybacks has a concrete,
//! bounded on-wire representation, and it gives the property tests something
//! sharp to bite on: `decode(encode(p))` must preserve every wire-visible
//! field, and corrupted inputs must be rejected, never mis-parsed.
//!
//! Layout (all integers big-endian, as on real networks):
//!
//! ```text
//! outer IPv4 (20 B)     src/dst = physical addresses, proto = 250 (shim)
//! tunnel shim (4 B)     kind, flags(resolved), option length, reserved
//! option TLVs (0..34 B) spillover / promotion / misdelivery / hit-switch /
//!                       learning payload / invalidation payload
//! inner IPv4 (20 B)     src/dst = virtual addresses, proto = 6 or 17
//! inner transport (16 B) ports, seq, ack, flags
//! payload (N B)         zeros (content is irrelevant to the simulation)
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::addr::{Pip, SwitchTag, Vip};
use crate::options::{MappingOption, MisdeliveryTag, TunnelOptions};
use crate::packet::{
    FlowId, InnerHeader, OuterHeader, Packet, PacketId, PacketKind, Protocol, TcpFlags,
};

/// IP protocol number of the tunnel shim in the outer header
/// (253 and 254 are reserved for experimentation; we use 250 to make clear
/// this is a private encapsulation).
pub const SHIM_PROTO: u8 = 250;

const TLV_SPILLOVER: u8 = 1;
const TLV_PROMOTION: u8 = 2;
const TLV_MISDELIVERY: u8 = 3;
const TLV_HIT_SWITCH: u8 = 4;
const TLV_LEARNING: u8 = 5;
const TLV_INVALIDATION: u8 = 6;

const KIND_DATA: u8 = 0;
const KIND_LEARNING: u8 = 1;
const KIND_INVALIDATION: u8 = 2;

const FLAG_RESOLVED: u8 = 0x01;

/// Decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input shorter than the fixed headers require.
    Truncated,
    /// Outer or inner IPv4 checksum mismatch.
    BadChecksum,
    /// A version/IHL byte other than 0x45.
    BadVersion,
    /// Outer protocol is not the tunnel shim.
    NotTunnel,
    /// Unknown shim kind byte.
    BadKind(u8),
    /// Malformed or duplicate option TLV.
    BadOption(u8),
    /// Inner protocol number is neither TCP nor UDP.
    BadProtocol(u8),
    /// total_len fields disagree with the buffer.
    LengthMismatch,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "packet truncated"),
            WireError::BadChecksum => write!(f, "IPv4 checksum mismatch"),
            WireError::BadVersion => write!(f, "unsupported IPv4 version/IHL"),
            WireError::NotTunnel => write!(f, "outer protocol is not the tunnel shim"),
            WireError::BadKind(k) => write!(f, "unknown shim kind {k}"),
            WireError::BadOption(t) => write!(f, "malformed option TLV type {t}"),
            WireError::BadProtocol(p) => write!(f, "unsupported inner protocol {p}"),
            WireError::LengthMismatch => write!(f, "length fields disagree with buffer"),
        }
    }
}

impl std::error::Error for WireError {}

/// RFC 1071 internet checksum over `data` (assumed even-length padded).
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum = 0u32;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        sum += (*last as u32) << 8;
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

fn put_ipv4(buf: &mut BytesMut, total_len: u16, proto: u8, src: u32, dst: u32) {
    let start = buf.len();
    buf.put_u8(0x45); // version 4, IHL 5
    buf.put_u8(0); // TOS
    buf.put_u16(total_len);
    buf.put_u16(0); // identification
    buf.put_u16(0x4000); // DF
    buf.put_u8(64); // TTL
    buf.put_u8(proto);
    buf.put_u16(0); // checksum placeholder
    buf.put_u32(src);
    buf.put_u32(dst);
    let csum = internet_checksum(&buf[start..start + 20]);
    buf[start + 10..start + 12].copy_from_slice(&csum.to_be_bytes());
}

struct Ipv4 {
    total_len: u16,
    proto: u8,
    src: u32,
    dst: u32,
}

fn get_ipv4(buf: &mut Bytes) -> Result<Ipv4, WireError> {
    if buf.remaining() < 20 {
        return Err(WireError::Truncated);
    }
    let header: Vec<u8> = buf[..20].to_vec();
    if internet_checksum(&header) != 0 {
        return Err(WireError::BadChecksum);
    }
    let ver_ihl = buf.get_u8();
    if ver_ihl != 0x45 {
        return Err(WireError::BadVersion);
    }
    buf.advance(1); // TOS
    let total_len = buf.get_u16();
    buf.advance(5); // id, flags/frag, TTL
    let proto = buf.get_u8();
    buf.advance(2); // checksum (verified above)
    let src = buf.get_u32();
    let dst = buf.get_u32();
    Ok(Ipv4 {
        total_len,
        proto,
        src,
        dst,
    })
}

fn put_mapping_tlv(buf: &mut BytesMut, tlv: u8, m: MappingOption) {
    buf.put_u8(tlv);
    buf.put_u8(8);
    buf.put_u32(m.vip.0);
    buf.put_u32(m.pip.0);
}

/// Encodes `pkt` into its full wire representation.
///
/// The payload is emitted as zeros — simulation payloads carry no content.
pub fn encode(pkt: &Packet) -> Bytes {
    let opt_len = pkt.opts.wire_len()
        + match pkt.kind {
            PacketKind::Data => 0,
            PacketKind::Learning(_) | PacketKind::Invalidation(_) => 10,
        };
    let inner_total = 20 + 16 + pkt.payload;
    let outer_total = 20 + 4 + opt_len + inner_total;
    let mut buf = BytesMut::with_capacity(outer_total as usize);

    put_ipv4(
        &mut buf,
        outer_total as u16,
        SHIM_PROTO,
        pkt.outer.src_pip.0,
        pkt.outer.dst_pip.0,
    );

    // Shim.
    let kind = match pkt.kind {
        PacketKind::Data => KIND_DATA,
        PacketKind::Learning(_) => KIND_LEARNING,
        PacketKind::Invalidation(_) => KIND_INVALIDATION,
    };
    buf.put_u8(kind);
    buf.put_u8(if pkt.outer.resolved { FLAG_RESOLVED } else { 0 });
    buf.put_u8(opt_len as u8);
    buf.put_u8(0);

    // Options.
    if let Some(m) = pkt.opts.spillover {
        put_mapping_tlv(&mut buf, TLV_SPILLOVER, m);
    }
    if let Some(m) = pkt.opts.promotion {
        put_mapping_tlv(&mut buf, TLV_PROMOTION, m);
    }
    if let Some(t) = pkt.opts.misdelivery {
        buf.put_u8(TLV_MISDELIVERY);
        buf.put_u8(8);
        buf.put_u32(t.vip.0);
        buf.put_u32(t.stale_pip.0);
    }
    if let Some(s) = pkt.opts.hit_switch {
        buf.put_u8(TLV_HIT_SWITCH);
        buf.put_u8(2);
        buf.put_u16(s.0);
    }
    match pkt.kind {
        PacketKind::Learning(m) => put_mapping_tlv(&mut buf, TLV_LEARNING, m),
        PacketKind::Invalidation(t) => {
            buf.put_u8(TLV_INVALIDATION);
            buf.put_u8(8);
            buf.put_u32(t.vip.0);
            buf.put_u32(t.stale_pip.0);
        }
        PacketKind::Data => {}
    }

    // Inner IPv4 + transport.
    let inner_proto = match pkt.inner.protocol {
        Protocol::Tcp => 6,
        Protocol::Udp => 17,
    };
    put_ipv4(
        &mut buf,
        inner_total as u16,
        inner_proto,
        pkt.inner.src_vip.0,
        pkt.inner.dst_vip.0,
    );
    buf.put_u16(pkt.inner.src_port);
    buf.put_u16(pkt.inner.dst_port);
    buf.put_u32(pkt.inner.seq);
    buf.put_u32(pkt.inner.ack);
    buf.put_u8(pkt.inner.flags.to_byte());
    buf.put_bytes(0, 3);

    buf.put_bytes(0, pkt.payload as usize);
    buf.freeze()
}

/// Decodes a wire buffer back into a structured packet.
///
/// Simulation-only metadata (`id`, `flow`, hop counters, …) is not on the
/// wire and comes back zeroed; compare wire-visible fields only.
pub fn decode(mut buf: Bytes) -> Result<Packet, WireError> {
    let total_avail = buf.remaining();
    let outer = get_ipv4(&mut buf)?;
    if outer.proto != SHIM_PROTO {
        return Err(WireError::NotTunnel);
    }
    if outer.total_len as usize != total_avail {
        return Err(WireError::LengthMismatch);
    }

    if buf.remaining() < 4 {
        return Err(WireError::Truncated);
    }
    let kind_byte = buf.get_u8();
    let flags = buf.get_u8();
    let opt_len = buf.get_u8() as usize;
    buf.advance(1);

    if buf.remaining() < opt_len {
        return Err(WireError::Truncated);
    }
    let mut opts = TunnelOptions::default();
    let mut learning = None;
    let mut invalidation = None;
    let mut opt_buf = buf.split_to(opt_len);
    while opt_buf.has_remaining() {
        if opt_buf.remaining() < 2 {
            return Err(WireError::BadOption(0));
        }
        let t = opt_buf.get_u8();
        let l = opt_buf.get_u8() as usize;
        if opt_buf.remaining() < l {
            return Err(WireError::BadOption(t));
        }
        match (t, l) {
            (TLV_SPILLOVER, 8) | (TLV_PROMOTION, 8) | (TLV_LEARNING, 8) => {
                let m = MappingOption {
                    vip: Vip(opt_buf.get_u32()),
                    pip: Pip(opt_buf.get_u32()),
                };
                let slot = match t {
                    TLV_SPILLOVER => &mut opts.spillover,
                    TLV_PROMOTION => &mut opts.promotion,
                    _ => &mut learning,
                };
                if slot.replace(m).is_some() {
                    return Err(WireError::BadOption(t));
                }
            }
            (TLV_MISDELIVERY, 8) | (TLV_INVALIDATION, 8) => {
                let tag = MisdeliveryTag {
                    vip: Vip(opt_buf.get_u32()),
                    stale_pip: Pip(opt_buf.get_u32()),
                };
                let slot = if t == TLV_MISDELIVERY {
                    &mut opts.misdelivery
                } else {
                    &mut invalidation
                };
                if slot.replace(tag).is_some() {
                    return Err(WireError::BadOption(t));
                }
            }
            (TLV_HIT_SWITCH, 2) => {
                if opts.hit_switch.replace(SwitchTag(opt_buf.get_u16())).is_some() {
                    return Err(WireError::BadOption(t));
                }
            }
            _ => return Err(WireError::BadOption(t)),
        }
    }

    let kind = match kind_byte {
        KIND_DATA => PacketKind::Data,
        KIND_LEARNING => PacketKind::Learning(learning.ok_or(WireError::BadKind(kind_byte))?),
        KIND_INVALIDATION => {
            PacketKind::Invalidation(invalidation.ok_or(WireError::BadKind(kind_byte))?)
        }
        k => return Err(WireError::BadKind(k)),
    };

    let inner = get_ipv4(&mut buf)?;
    let protocol = match inner.proto {
        6 => Protocol::Tcp,
        17 => Protocol::Udp,
        p => return Err(WireError::BadProtocol(p)),
    };
    if buf.remaining() < 16 {
        return Err(WireError::Truncated);
    }
    let src_port = buf.get_u16();
    let dst_port = buf.get_u16();
    let seq = buf.get_u32();
    let ack = buf.get_u32();
    let tcp_flags = TcpFlags::from_byte(buf.get_u8());
    buf.advance(3);

    let payload = buf.remaining() as u32;
    if inner.total_len as u32 != 20 + 16 + payload {
        return Err(WireError::LengthMismatch);
    }

    Ok(Packet {
        id: PacketId(0),
        flow: FlowId(0),
        kind,
        outer: OuterHeader {
            src_pip: Pip(outer.src),
            dst_pip: Pip(outer.dst),
            resolved: flags & FLAG_RESOLVED != 0,
        },
        inner: InnerHeader {
            src_vip: Vip(inner.src),
            dst_vip: Vip(inner.dst),
            src_port,
            dst_port,
            protocol,
            seq,
            ack,
            flags: tcp_flags,
        },
        opts,
        payload,
        switch_hops: 0,
            sent_ns: 0,
        first_of_flow: false,
        visited_gateway: false,
    })
}

/// True if the two packets agree on every wire-visible field.
pub fn wire_eq(a: &Packet, b: &Packet) -> bool {
    a.kind == b.kind
        && a.outer == b.outer
        && a.inner == b.inner
        && a.opts == b.opts
        && a.payload == b.payload
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{HEADER_OVERHEAD, MSS};

    fn sample() -> Packet {
        Packet {
            id: PacketId(42),
            flow: FlowId(7),
            kind: PacketKind::Data,
            outer: OuterHeader {
                src_pip: Pip(0x0a00_0001),
                dst_pip: Pip(0x0a00_0102),
                resolved: false,
            },
            inner: InnerHeader {
                src_vip: Vip(0xc0a8_0001),
                dst_vip: Vip(0xc0a8_0002),
                src_port: 40000,
                dst_port: 80,
                protocol: Protocol::Tcp,
                seq: 123456,
                ack: 654321,
                flags: TcpFlags {
                    syn: true,
                    ack: false,
                    fin: false,
                },
            },
            opts: TunnelOptions::default(),
            payload: MSS,
            switch_hops: 3,
            sent_ns: 0,
            first_of_flow: true,
            visited_gateway: false,
        }
    }

    #[test]
    fn encode_length_matches_wire_size() {
        let p = sample();
        assert_eq!(encode(&p).len() as u32, p.wire_size());
        assert_eq!(p.wire_size(), HEADER_OVERHEAD + MSS);
    }

    #[test]
    fn round_trip_plain_data() {
        let p = sample();
        let d = decode(encode(&p)).unwrap();
        assert!(wire_eq(&p, &d));
    }

    #[test]
    fn round_trip_all_options() {
        let mut p = sample();
        p.outer.resolved = true;
        p.opts.spillover = Some(MappingOption {
            vip: Vip(11),
            pip: Pip(12),
        });
        p.opts.promotion = Some(MappingOption {
            vip: Vip(13),
            pip: Pip(14),
        });
        p.opts.misdelivery = Some(MisdeliveryTag {
            vip: Vip(15),
            stale_pip: Pip(16),
        });
        p.opts.hit_switch = Some(SwitchTag(17));
        let d = decode(encode(&p)).unwrap();
        assert!(wire_eq(&p, &d));
    }

    #[test]
    fn round_trip_learning_and_invalidation() {
        let mut p = sample();
        p.payload = 0;
        p.kind = PacketKind::Learning(MappingOption {
            vip: Vip(1),
            pip: Pip(2),
        });
        let d = decode(encode(&p)).unwrap();
        assert!(wire_eq(&p, &d));

        p.kind = PacketKind::Invalidation(MisdeliveryTag {
            vip: Vip(3),
            stale_pip: Pip(4),
        });
        let d = decode(encode(&p)).unwrap();
        assert!(wire_eq(&p, &d));
    }

    #[test]
    fn truncated_input_is_rejected() {
        let p = sample();
        let full = encode(&p);
        for cut in [0, 10, 19, 21, 45, full.len() - 1] {
            let r = decode(full.slice(..cut));
            assert!(r.is_err(), "decode accepted a {cut}-byte prefix");
        }
    }

    #[test]
    fn corrupted_checksum_is_rejected() {
        let p = sample();
        let mut raw = BytesMut::from(&encode(&p)[..]);
        raw[12] ^= 0xff; // outer src byte
        assert_eq!(decode(raw.freeze()), Err(WireError::BadChecksum));
    }

    #[test]
    fn non_tunnel_protocol_is_rejected() {
        let p = sample();
        let mut raw = BytesMut::from(&encode(&p)[..]);
        raw[9] = 6; // outer proto = TCP, not our shim
        // Fix the checksum so the proto check is what fires.
        raw[10] = 0;
        raw[11] = 0;
        let csum = internet_checksum(&raw[..20]);
        raw[10..12].copy_from_slice(&csum.to_be_bytes());
        assert_eq!(decode(raw.freeze()), Err(WireError::NotTunnel));
    }

    #[test]
    fn checksum_of_valid_header_is_zero() {
        let mut buf = BytesMut::new();
        put_ipv4(&mut buf, 20, SHIM_PROTO, 1, 2);
        assert_eq!(internet_checksum(&buf), 0);
    }

    #[test]
    fn internet_checksum_known_vector() {
        // Classic example from RFC 1071 discussions.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), !0xddf2u16);
    }
}
