//! Property tests: TCP delivers every byte exactly once over adversarial
//! networks (random loss, reordering, duplication), and the sender always
//! terminates.

use std::collections::VecDeque;

use proptest::prelude::*;
use sv2p_simcore::{SimDuration, SimRng, SimTime};
use sv2p_transport::{Segment, TcpConfig, TcpReceiver, TcpSender};

/// A hostile pipe: drops with probability `loss`, reorders by random extra
/// delay, duplicates with probability `dup`.
struct HostilePipe {
    rng: SimRng,
    loss: f64,
    dup: f64,
    /// (deliver_at, segment) — not ordered; we scan for due ones.
    in_flight: Vec<(SimTime, Segment)>,
    base_delay: SimDuration,
    jitter_ns: u64,
}

impl HostilePipe {
    fn send(&mut self, now: SimTime, seg: Segment) {
        if self.rng.chance(self.loss) {
            return;
        }
        let jitter = SimDuration::from_nanos(self.rng.gen_range(0..=self.jitter_ns));
        self.in_flight.push((now + self.base_delay + jitter, seg));
        if self.rng.chance(self.dup) {
            let jitter2 = SimDuration::from_nanos(self.rng.gen_range(0..=self.jitter_ns));
            self.in_flight.push((now + self.base_delay + jitter2, seg));
        }
    }

    fn due(&mut self, now: SimTime) -> Vec<Segment> {
        let mut out = Vec::new();
        self.in_flight.retain(|&(at, seg)| {
            if at <= now {
                out.push(seg);
                false
            } else {
                true
            }
        });
        out
    }

    fn next_due(&self) -> Option<SimTime> {
        self.in_flight.iter().map(|&(at, _)| at).min()
    }
}

/// Drives sender + receiver over the hostile pipe until completion (or a
/// step bound, which the properties assert is never hit).
fn drive(flow: u64, seed: u64, loss: f64, dup: f64, jitter_ns: u64) -> (TcpSender, TcpReceiver) {
    let cfg = TcpConfig {
        min_rto: SimDuration::from_micros(200),
        initial_rto: SimDuration::from_micros(500),
        ..TcpConfig::default()
    };
    let mut tx = TcpSender::new(cfg, flow);
    let mut rx = TcpReceiver::new();
    let mut data_pipe = HostilePipe {
        rng: SimRng::new(seed),
        loss,
        dup,
        in_flight: Vec::new(),
        base_delay: SimDuration::from_micros(6),
        jitter_ns,
    };
    // ACKs ride a lossy pipe too.
    let mut ack_pipe: VecDeque<(SimTime, u64)> = VecDeque::new();
    let mut ack_rng = SimRng::new(seed ^ 0xACAC);

    let mut now = SimTime::ZERO;
    let mut rto_deadline: Option<SimTime> = None;
    let ops = tx.start(now);
    for seg in &ops.segments {
        data_pipe.send(now, *seg);
    }
    rto_deadline = ops.arm_rto.or(rto_deadline);

    for _step in 0..200_000 {
        if tx.is_complete() {
            return (tx, rx);
        }
        // Advance to the next event: segment arrival, ACK arrival, or RTO.
        let mut next = SimTime::MAX;
        if let Some(t) = data_pipe.next_due() {
            next = next.min(t);
        }
        if let Some(&(t, _)) = ack_pipe.front() {
            next = next.min(t);
        }
        if let Some(t) = rto_deadline {
            next = next.min(t);
        }
        assert!(next != SimTime::MAX, "deadlock: nothing scheduled");
        now = next;

        // Deliver due segments to the receiver; emit (possibly lost) ACKs.
        for seg in data_pipe.due(now) {
            let ack = rx.on_data(seg.seq, seg.len);
            if !ack_rng.chance(loss) {
                ack_pipe.push_back((now + SimDuration::from_micros(6), ack));
            }
        }
        // Deliver due ACKs to the sender.
        while ack_pipe.front().is_some_and(|&(t, _)| t <= now) {
            let (_, ack) = ack_pipe.pop_front().unwrap();
            let ops = tx.on_ack(now, ack);
            for seg in &ops.segments {
                data_pipe.send(now, *seg);
            }
            if let Some(t) = ops.arm_rto {
                rto_deadline = Some(t);
            }
        }
        // Fire RTO if due.
        if rto_deadline.is_some_and(|t| t <= now) {
            let ops = tx.on_rto(now);
            for seg in &ops.segments {
                data_pipe.send(now, *seg);
            }
            rto_deadline = ops.arm_rto;
        }
    }
    panic!("flow did not complete within the step bound");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn completes_over_lossless_jittery_network(
        flow in 1u64..200_000,
        seed in any::<u64>(),
        jitter in 0u64..20_000,
    ) {
        let (tx, rx) = drive(flow, seed, 0.0, 0.0, jitter);
        prop_assert!(tx.is_complete());
        prop_assert_eq!(rx.bytes_delivered, flow);
    }

    #[test]
    fn completes_under_loss_and_duplication(
        flow in 1u64..60_000,
        seed in any::<u64>(),
        loss in 0.0f64..0.3,
        dup in 0.0f64..0.2,
    ) {
        let (tx, rx) = drive(flow, seed, loss, dup, 10_000);
        prop_assert!(tx.is_complete());
        // Exactly-once delivery accounting regardless of what the network did.
        prop_assert_eq!(rx.bytes_delivered, flow);
    }

    #[test]
    fn heavy_reordering_with_tolerant_profile_avoids_spurious_retransmits(
        flow in 50_000u64..150_000,
        seed in any::<u64>(),
    ) {
        // Pure reordering (no loss): a 300-dupack profile should complete
        // with no fast retransmits at all.
        let cfg = TcpConfig::reorder_tolerant();
        let mut tx = TcpSender::new(cfg, flow);
        let mut rx = TcpReceiver::new();
        let mut rng = SimRng::new(seed);
        let mut now = SimTime::ZERO;
        let mut pending: Vec<Segment> = tx.start(now).segments;
        let mut guard = 0;
        while !tx.is_complete() {
            now += SimDuration::from_micros(12);
            // Shuffle delivery order within the window.
            rng.shuffle(&mut pending);
            let mut next = Vec::new();
            for seg in pending.drain(..) {
                let ack = rx.on_data(seg.seq, seg.len);
                next.extend(tx.on_ack(now, ack).segments);
            }
            pending = next;
            guard += 1;
            prop_assert!(guard < 20_000, "no progress");
        }
        prop_assert_eq!(tx.fast_retransmits, 0);
        prop_assert_eq!(rx.bytes_delivered, flow);
    }
}
