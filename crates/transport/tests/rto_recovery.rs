//! RTO-driven recovery: the sender behavior the fault-injection subsystem
//! leans on when a blackout or outage eats entire windows of packets.

use sv2p_simcore::SimTime;
use sv2p_transport::{TcpConfig, TcpSender};

fn us(t: u64) -> SimTime {
    SimTime::from_micros(t)
}

#[test]
fn total_blackout_recovers_via_backed_off_rtos() {
    let cfg = TcpConfig::reorder_tolerant();
    let mut tx = TcpSender::new(cfg, 3 * cfg.mss as u64);
    let ops = tx.start(SimTime::ZERO);
    assert!(!ops.segments.is_empty());
    let first_deadline = ops.arm_rto.expect("initial window arms the timer");

    // The network is dark: every RTO must retransmit the lowest
    // unacknowledged byte and back the timer off exponentially (clamped),
    // never giving up.
    let mut now = first_deadline;
    let mut last_gap = None;
    for round in 0..8 {
        let ops = tx.on_rto(now);
        assert_eq!(ops.segments.len(), 1, "round {round}");
        let seg = ops.segments[0];
        assert_eq!(seg.seq, 0, "una is what gets retransmitted");
        assert!(seg.retransmit);
        let deadline = ops.arm_rto.expect("timer must be re-armed");
        let gap = deadline.as_nanos() - now.as_nanos();
        if let Some(prev) = last_gap {
            assert!(gap >= prev, "backoff must not shrink while dark");
        }
        assert!(
            gap <= cfg.max_rto.as_nanos(),
            "backoff must clamp at max_rto"
        );
        last_gap = Some(gap);
        now = deadline;
    }
    assert_eq!(tx.timeouts, 8);
    assert!(tx.retransmits >= 8);
    assert!(!tx.is_complete());

    // The fault clears: the receiver finally acks everything in order and
    // the flow completes despite the long outage.
    let ops = tx.on_ack(
        now + sv2p_simcore::SimDuration::from_micros(10),
        3 * cfg.mss as u64,
    );
    assert!(tx.is_complete());
    assert!(ops.segments.is_empty());
}

#[test]
fn partial_loss_window_resumes_where_it_left_off() {
    let cfg = TcpConfig::reorder_tolerant();
    let mut tx = TcpSender::new(cfg, 20 * cfg.mss as u64);
    let ops = tx.start(SimTime::ZERO);
    let sent: u64 = ops.segments.iter().map(|s| s.len as u64).sum();
    assert!(sent > 0);

    // One MSS got through before the loss window; the rest vanished.
    let _ = tx.on_ack(us(100), cfg.mss as u64);
    let ops = tx.on_rto(us(1_500));
    assert_eq!(ops.segments[0].seq, cfg.mss as u64, "resumes at new una");
    assert!(ops.segments[0].retransmit);

    // Post-fault acks drain the flow to completion.
    let mut now = us(2_000);
    let mut acked = 2 * cfg.mss as u64;
    let mut guard = 0;
    while !tx.is_complete() {
        acked = (acked + cfg.mss as u64).min(20 * cfg.mss as u64);
        let _ = tx.on_ack(now, acked);
        now += sv2p_simcore::SimDuration::from_micros(20);
        guard += 1;
        assert!(guard < 1000, "sender must converge after the fault");
    }
    assert!(tx.timeouts >= 1);
}
