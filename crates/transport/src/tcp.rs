//! A compact window-based TCP.
//!
//! Faithful to the mechanisms that shape flow completion times in a data
//! center simulation — window growth, loss recovery, retransmission timers —
//! without the full sockets machinery. Sequence numbers are byte offsets
//! from zero (no ISN), there is no handshake (the first data packet plays
//! the SYN's role for first-packet-latency measurements, as in the paper's
//! traces), and the receive window is unbounded (32 MB switch buffers
//! dominate, §5).

use std::collections::BTreeMap;

use sv2p_simcore::{SimDuration, SimTime};

/// Tunables.
#[derive(Debug, Clone, Copy)]
pub struct TcpConfig {
    /// Maximum segment size in bytes.
    pub mss: u32,
    /// Initial congestion window in segments (RFC 6928 default 10).
    pub init_cwnd_segments: u32,
    /// Duplicate-ACK threshold before fast retransmit. Classic Reno uses 3;
    /// the paper's experiments rely on Linux tolerating up to 300 reordered
    /// packets (§4).
    pub dupack_threshold: u32,
    /// Lower bound on the retransmission timeout.
    pub min_rto: SimDuration,
    /// Upper bound on the retransmission timeout.
    pub max_rto: SimDuration,
    /// RTO before the first RTT sample.
    pub initial_rto: SimDuration,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: sv2p_packet::packet::MSS,
            init_cwnd_segments: 10,
            dupack_threshold: 3,
            min_rto: SimDuration::from_micros(500),
            max_rto: SimDuration::from_millis(100),
            initial_rto: SimDuration::from_millis(1),
        }
    }
}

impl TcpConfig {
    /// The reordering-tolerant profile the paper assumes on modern stacks:
    /// duplicate-ACK threshold raised to 300 (Linux `tcp_reordering` cap,
    /// RACK-TLP-era behavior).
    pub fn reorder_tolerant() -> Self {
        TcpConfig {
            dupack_threshold: 300,
            ..TcpConfig::default()
        }
    }
}

/// One segment the sender wants on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Byte offset of the first payload byte.
    pub seq: u64,
    /// Payload length.
    pub len: u32,
    /// True if this is a retransmission.
    pub retransmit: bool,
}

/// What the host should do after driving the sender.
#[derive(Debug, Default)]
pub struct SenderOps {
    /// Segments to transmit, in order.
    pub segments: Vec<Segment>,
    /// If set, (re)arm the retransmission timer for this deadline; `None`
    /// leaves the timer alone. The sender asks to disarm by completing.
    pub arm_rto: Option<SimTime>,
}

/// Sender-side connection state.
#[derive(Debug, Clone)]
pub struct TcpSender {
    cfg: TcpConfig,
    /// Total bytes this flow transfers.
    flow_bytes: u64,
    /// Lowest unacknowledged byte.
    una: u64,
    /// Next new byte to transmit.
    next_seq: u64,
    /// Congestion window in bytes (fractional for CA increase).
    cwnd: f64,
    /// Slow-start threshold in bytes.
    ssthresh: f64,
    dupacks: u32,
    /// In fast recovery until `una` passes `recover`.
    in_recovery: bool,
    recover: u64,
    /// Smoothed RTT state (RFC 6298); `None` before the first sample.
    srtt: Option<(SimDuration, SimDuration)>,
    rto: SimDuration,
    /// Karn's algorithm: the single in-flight RTT probe (seq, sent_at).
    rtt_probe: Option<(u64, SimTime)>,
    /// Consecutive RTOs (exponential backoff).
    backoff: u32,
    /// Retransmissions performed (stats).
    pub retransmits: u64,
    /// Fast retransmits performed (stats).
    pub fast_retransmits: u64,
    /// Timeouts taken (stats).
    pub timeouts: u64,
}

impl TcpSender {
    /// A sender for a `flow_bytes`-byte flow.
    pub fn new(cfg: TcpConfig, flow_bytes: u64) -> Self {
        assert!(flow_bytes > 0, "empty flows are not modeled");
        let cwnd = (cfg.init_cwnd_segments * cfg.mss) as f64;
        TcpSender {
            cfg,
            flow_bytes,
            una: 0,
            next_seq: 0,
            cwnd,
            ssthresh: f64::INFINITY,
            dupacks: 0,
            in_recovery: false,
            recover: 0,
            srtt: None,
            rto: cfg.initial_rto,
            rtt_probe: None,
            backoff: 0,
            retransmits: 0,
            fast_retransmits: 0,
            timeouts: 0,
        }
    }

    /// All bytes acknowledged?
    pub fn is_complete(&self) -> bool {
        self.una >= self.flow_bytes
    }

    /// Bytes in flight.
    pub fn in_flight(&self) -> u64 {
        self.next_seq - self.una
    }

    /// Current congestion window in bytes.
    pub fn cwnd_bytes(&self) -> u64 {
        self.cwnd as u64
    }

    /// Current RTO.
    pub fn rto(&self) -> SimDuration {
        self.rto
    }

    /// Opens the connection: emits the initial window.
    pub fn start(&mut self, now: SimTime) -> SenderOps {
        let mut ops = SenderOps::default();
        self.fill_window(now, &mut ops);
        ops.arm_rto = Some(now + self.rto);
        ops
    }

    /// Processes a cumulative ACK for byte `ack`.
    pub fn on_ack(&mut self, now: SimTime, ack: u64) -> SenderOps {
        let mut ops = SenderOps::default();
        if self.is_complete() {
            return ops;
        }
        if ack > self.next_seq {
            // Acknowledging unsent data: a corrupted peer; ignore.
            return ops;
        }
        if ack > self.una {
            let newly_acked = ack - self.una;
            self.una = ack;
            self.dupacks = 0;
            self.backoff = 0;

            // RTT sample (Karn: only if the probe segment was not
            // retransmitted; probes are cleared on any retransmission).
            if let Some((pseq, sent)) = self.rtt_probe {
                if ack > pseq {
                    self.take_rtt_sample(now.saturating_since(sent));
                    self.rtt_probe = None;
                }
            }

            if self.in_recovery {
                if ack > self.recover {
                    // Full recovery: deflate to ssthresh.
                    self.in_recovery = false;
                    self.cwnd = self.ssthresh;
                } else {
                    // Partial ACK: retransmit the next hole (NewReno).
                    self.retransmit_una(now, &mut ops);
                    // Deflate by the amount acked, inflate by one MSS.
                    self.cwnd =
                        (self.cwnd - newly_acked as f64 + self.cfg.mss as f64).max(self.cfg.mss as f64);
                }
            } else if self.cwnd < self.ssthresh {
                // Slow start.
                self.cwnd += newly_acked.min(self.cfg.mss as u64) as f64;
            } else {
                // Congestion avoidance: +MSS per window.
                self.cwnd += (self.cfg.mss as f64 * self.cfg.mss as f64) / self.cwnd;
            }

            if self.is_complete() {
                return ops; // Timer owner sees completion and disarms.
            }
            self.fill_window(now, &mut ops);
            ops.arm_rto = Some(now + self.rto);
        } else if ack == self.una && self.in_flight() > 0 {
            // Duplicate ACK.
            self.dupacks += 1;
            if self.in_recovery {
                // Inflate and possibly send new data.
                self.cwnd += self.cfg.mss as f64;
                self.fill_window(now, &mut ops);
            } else if self.dupacks == self.cfg.dupack_threshold {
                // Fast retransmit.
                self.fast_retransmits += 1;
                self.in_recovery = true;
                self.recover = self.next_seq;
                self.ssthresh =
                    (self.in_flight() as f64 / 2.0).max(2.0 * self.cfg.mss as f64);
                self.cwnd = self.ssthresh + 3.0 * self.cfg.mss as f64;
                self.retransmit_una(now, &mut ops);
                ops.arm_rto = Some(now + self.rto);
            }
        }
        ops
    }

    /// Fires the retransmission timer.
    pub fn on_rto(&mut self, now: SimTime) -> SenderOps {
        let mut ops = SenderOps::default();
        if self.is_complete() {
            return ops;
        }
        self.timeouts += 1;
        self.backoff = (self.backoff + 1).min(10);
        self.ssthresh = (self.in_flight() as f64 / 2.0).max(2.0 * self.cfg.mss as f64);
        self.cwnd = self.cfg.mss as f64;
        self.in_recovery = false;
        self.dupacks = 0;
        // Exponential backoff, clamped.
        let backed_off = self.base_rto().saturating_mul(1 << self.backoff.min(6));
        self.rto = backed_off.min(self.cfg.max_rto);
        self.retransmit_una(now, &mut ops);
        ops.arm_rto = Some(now + self.rto);
        ops
    }

    fn base_rto(&self) -> SimDuration {
        match self.srtt {
            Some((srtt, rttvar)) => {
                (srtt + rttvar.saturating_mul(4)).clamp(self.cfg.min_rto, self.cfg.max_rto)
            }
            None => self.cfg.initial_rto,
        }
    }

    fn take_rtt_sample(&mut self, rtt: SimDuration) {
        let (srtt, rttvar) = match self.srtt {
            None => (rtt, rtt / 2),
            Some((srtt, rttvar)) => {
                // RFC 6298: alpha = 1/8, beta = 1/4, in integer arithmetic.
                let delta = if srtt > rtt { srtt - rtt } else { rtt - srtt };
                let rttvar = (rttvar.saturating_mul(3) + delta) / 4;
                let srtt = (srtt.saturating_mul(7) + rtt) / 8;
                (srtt, rttvar)
            }
        };
        self.srtt = Some((srtt, rttvar));
        self.rto = (srtt + rttvar.saturating_mul(4)).clamp(self.cfg.min_rto, self.cfg.max_rto);
    }

    fn retransmit_una(&mut self, _now: SimTime, ops: &mut SenderOps) {
        let len = self
            .cfg
            .mss
            .min((self.flow_bytes - self.una) as u32);
        ops.segments.push(Segment {
            seq: self.una,
            len,
            retransmit: true,
        });
        self.retransmits += 1;
        // Karn: the retransmitted range must not produce an RTT sample.
        if let Some((pseq, _)) = self.rtt_probe {
            if pseq >= self.una {
                self.rtt_probe = None;
            }
        }
    }

    fn fill_window(&mut self, now: SimTime, ops: &mut SenderOps) {
        let limit = self
            .flow_bytes
            .min(self.una + self.cwnd as u64);
        while self.next_seq < limit {
            let len = self.cfg.mss.min((limit - self.next_seq) as u32);
            // Don't emit a runt if a full MSS doesn't fit but more data
            // remains — wait for more window, unless it's the flow tail.
            if (len as u64) < self.cfg.mss as u64
                && self.next_seq + len as u64 != self.flow_bytes
            {
                break;
            }
            ops.segments.push(Segment {
                seq: self.next_seq,
                len,
                retransmit: false,
            });
            if self.rtt_probe.is_none() {
                self.rtt_probe = Some((self.next_seq, now));
            }
            self.next_seq += len as u64;
        }
    }
}

/// Receiver-side state: an interval set of received bytes plus reorder
/// accounting.
#[derive(Debug, Clone, Default)]
pub struct TcpReceiver {
    /// Received ranges beyond `rcv_nxt`, as start -> end.
    ooo: BTreeMap<u64, u64>,
    /// Next expected byte (== cumulative ACK value).
    rcv_nxt: u64,
    /// Highest sequence end seen (for reorder detection).
    max_seen: u64,
    /// Segments that arrived with a gap or behind `max_seen` (reordering
    /// metric, §4).
    pub reordered_segments: u64,
    /// Exact duplicate deliveries.
    pub duplicate_segments: u64,
    /// Total payload bytes accepted exactly once.
    pub bytes_delivered: u64,
}

impl TcpReceiver {
    /// A fresh receiver.
    pub fn new() -> Self {
        Self::default()
    }

    /// The cumulative ACK value to send right now.
    pub fn ack_value(&self) -> u64 {
        self.rcv_nxt
    }

    /// Accepts a data segment; returns the cumulative ACK to emit.
    pub fn on_data(&mut self, seq: u64, len: u32) -> u64 {
        let end = seq + len as u64;
        if end <= self.rcv_nxt {
            self.duplicate_segments += 1;
            return self.rcv_nxt;
        }
        if seq > self.rcv_nxt || end <= self.max_seen {
            // A gap ahead of us, or filling in behind data already seen:
            // evidence of reordering or loss.
            self.reordered_segments += 1;
        }
        self.max_seen = self.max_seen.max(end);

        // Insert [max(seq, rcv_nxt), end) into the interval set.
        let start = seq.max(self.rcv_nxt);
        self.insert_range(start, end);

        // Advance rcv_nxt over any now-contiguous prefix.
        while let Some((&s, &e)) = self.ooo.first_key_value() {
            if s <= self.rcv_nxt {
                if e > self.rcv_nxt {
                    self.bytes_delivered += e - self.rcv_nxt;
                    self.rcv_nxt = e;
                }
                self.ooo.pop_first();
            } else {
                break;
            }
        }
        self.rcv_nxt
    }

    fn insert_range(&mut self, mut start: u64, mut end: u64) {
        // Merge with overlapping neighbors.
        loop {
            // Find a stored range overlapping [start, end).
            let overlap = self
                .ooo
                .range(..=end)
                .next_back()
                .filter(|&(&_s, &e)| e >= start)
                .map(|(&s, &e)| (s, e));
            match overlap {
                Some((s, e)) => {
                    self.ooo.remove(&s);
                    start = start.min(s);
                    end = end.max(e);
                }
                None => break,
            }
        }
        self.ooo.insert(start, end);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u64 = sv2p_packet::packet::MSS as u64;

    fn cfg() -> TcpConfig {
        TcpConfig::default()
    }

    /// Drives sender + receiver over a perfect pipe with fixed RTT, in a
    /// simple lockstep: all emitted segments arrive after rtt/2, ACKs after
    /// another rtt/2.
    fn run_lossless(flow: u64) -> (TcpSender, TcpReceiver, SimTime) {
        let mut tx = TcpSender::new(cfg(), flow);
        let mut rx = TcpReceiver::new();
        let rtt = SimDuration::from_micros(12);
        let mut now = SimTime::ZERO;
        let mut pending = tx.start(now).segments;
        let mut rounds = 0;
        while !tx.is_complete() {
            now += rtt;
            let mut next = Vec::new();
            for seg in pending.drain(..) {
                let ack = rx.on_data(seg.seq, seg.len);
                next.extend(tx.on_ack(now, ack).segments);
            }
            pending = next;
            rounds += 1;
            assert!(rounds < 10_000, "no progress");
        }
        (tx, rx, now)
    }

    #[test]
    fn one_segment_flow_completes() {
        let (tx, rx, _) = run_lossless(100);
        assert!(tx.is_complete());
        assert_eq!(rx.bytes_delivered, 100);
        assert_eq!(tx.retransmits, 0);
    }

    #[test]
    fn large_flow_delivers_every_byte_once() {
        let flow = 1_000_000;
        let (tx, rx, _) = run_lossless(flow);
        assert!(tx.is_complete());
        assert_eq!(rx.bytes_delivered, flow);
        assert_eq!(rx.duplicate_segments, 0);
        assert_eq!(rx.reordered_segments, 0);
    }

    #[test]
    fn slow_start_doubles_window() {
        let mut tx = TcpSender::new(cfg(), 10_000_000);
        let now = SimTime::ZERO;
        let first = tx.start(now).segments;
        assert_eq!(first.len(), 10, "initial window is 10 segments");
        // ACK the whole first window: cwnd should roughly double.
        let mut emitted = 0;
        for i in 1..=10u64 {
            emitted += tx.on_ack(now, i * MSS).segments.len();
        }
        assert!(
            (18..=22).contains(&emitted),
            "slow start emitted {emitted} segments"
        );
    }

    #[test]
    fn dupacks_trigger_fast_retransmit() {
        let mut tx = TcpSender::new(cfg(), 100 * MSS);
        let now = SimTime::ZERO;
        let segs = tx.start(now).segments;
        assert_eq!(segs[0].seq, 0);
        // Segment 0 lost; receiver dupacks at 0 for segments 1..=3.
        let mut rtx = Vec::new();
        for _ in 0..3 {
            rtx.extend(tx.on_ack(now, 0).segments);
        }
        assert_eq!(tx.fast_retransmits, 1);
        assert!(rtx.iter().any(|s| s.seq == 0 && s.retransmit));
    }

    #[test]
    fn higher_dupack_threshold_tolerates_reordering() {
        let mut tx = TcpSender::new(TcpConfig::reorder_tolerant(), 100 * MSS);
        let now = SimTime::ZERO;
        tx.start(now);
        for _ in 0..50 {
            tx.on_ack(now, 0);
        }
        assert_eq!(tx.fast_retransmits, 0, "300-dupack profile fired early");
    }

    #[test]
    fn rto_backs_off_exponentially() {
        let mut tx = TcpSender::new(cfg(), 100 * MSS);
        let mut now = SimTime::ZERO;
        tx.start(now);
        let mut last = SimDuration::ZERO;
        for i in 0..4 {
            now += tx.rto();
            let ops = tx.on_rto(now);
            assert_eq!(ops.segments.len(), 1);
            assert!(ops.segments[0].retransmit);
            assert_eq!(ops.segments[0].seq, 0);
            if i > 0 {
                assert!(tx.rto() >= last, "RTO shrank during backoff");
            }
            last = tx.rto();
        }
        assert_eq!(tx.timeouts, 4);
    }

    #[test]
    fn recovery_retransmits_holes_and_completes() {
        // Lose the first segment of the initial window, deliver the rest,
        // dupack thrice, then let the retransmission complete the flow.
        let flow = 10 * MSS;
        let mut tx = TcpSender::new(cfg(), flow);
        let mut rx = TcpReceiver::new();
        let now = SimTime::ZERO;
        let segs = tx.start(now).segments;
        let mut pending: Vec<Segment> = Vec::new();
        for (i, seg) in segs.iter().enumerate() {
            if i == 0 {
                continue; // lost
            }
            let ack = rx.on_data(seg.seq, seg.len);
            pending.extend(tx.on_ack(now, ack).segments);
        }
        // 9 dupacks at 0 -> fast retransmit of seq 0 among pending.
        assert!(pending.iter().any(|s| s.seq == 0 && s.retransmit));
        for seg in pending {
            let ack = rx.on_data(seg.seq, seg.len);
            tx.on_ack(now, ack);
        }
        assert!(tx.is_complete());
        assert_eq!(rx.bytes_delivered, flow);
    }

    #[test]
    fn receiver_handles_out_of_order_and_duplicates() {
        let mut rx = TcpReceiver::new();
        assert_eq!(rx.on_data(1000, 1000), 0); // gap
        assert_eq!(rx.reordered_segments, 1);
        assert_eq!(rx.on_data(0, 1000), 2000); // fills the hole
        assert_eq!(rx.on_data(0, 1000), 2000); // pure duplicate
        assert_eq!(rx.duplicate_segments, 1);
        assert_eq!(rx.bytes_delivered, 2000);
    }

    #[test]
    fn receiver_merges_overlapping_ranges() {
        let mut rx = TcpReceiver::new();
        rx.on_data(3000, 1000);
        rx.on_data(1000, 1000);
        rx.on_data(1500, 2000); // overlaps both neighbors, bridges the gap
        assert_eq!(rx.ack_value(), 0);
        assert_eq!(rx.on_data(0, 1000), 4000);
        assert_eq!(rx.bytes_delivered, 4000);
    }

    #[test]
    fn rtt_sampling_sets_rto() {
        let mut tx = TcpSender::new(cfg(), 100 * MSS);
        let t0 = SimTime::ZERO;
        tx.start(t0);
        let t1 = t0 + SimDuration::from_micros(100);
        tx.on_ack(t1, MSS);
        // srtt = 100us, rttvar = 50us -> rto = 300us, clamped to min 500us.
        assert_eq!(tx.rto(), SimDuration::from_micros(500));
        // A slower network raises it above the clamp.
        let mut tx2 = TcpSender::new(cfg(), 100 * MSS);
        tx2.start(t0);
        tx2.on_ack(t0 + SimDuration::from_micros(400), MSS);
        assert_eq!(tx2.rto(), SimDuration::from_micros(1200));
    }
}
