//! UDP send schedules.
//!
//! The Video trace is constant-bit-rate ("64 senders at 48 Mbps"), the
//! Microbursts trace is bursts of back-to-back datagrams, and the migration
//! experiment is a steady incast. None need feedback, so a schedule — the
//! list of (send time, payload) pairs — is the whole transport.

use sv2p_simcore::{SimDuration, SimTime};

/// A precomputed datagram schedule for one UDP flow.
#[derive(Debug, Clone, Default)]
pub struct UdpSchedule {
    /// (send time, payload bytes) in nondecreasing time order.
    pub sends: Vec<(SimTime, u32)>,
}

impl UdpSchedule {
    /// Constant bit rate: `rate_bps` of payload from `start` for `duration`,
    /// in `payload`-byte datagrams (the last one may be short).
    pub fn cbr(start: SimTime, duration: SimDuration, rate_bps: u64, payload: u32) -> Self {
        assert!(payload > 0 && rate_bps > 0);
        let total_bytes = (rate_bps as u128 * duration.as_nanos() as u128 / 8 / 1_000_000_000)
            as u64;
        let interval = SimDuration::from_secs_f64(payload as f64 * 8.0 / rate_bps as f64);
        let mut sends = Vec::new();
        let mut sent = 0u64;
        let mut t = start;
        while sent < total_bytes {
            let len = payload.min((total_bytes - sent) as u32);
            sends.push((t, len));
            sent += len as u64;
            t += interval;
        }
        UdpSchedule { sends }
    }

    /// A burst of `count` back-to-back datagrams at `at`, spaced by the
    /// sender NIC's serialization time.
    pub fn burst(at: SimTime, count: u32, payload: u32, nic_bps: u64) -> Self {
        let gap = SimDuration::serialization(payload + sv2p_packet::packet::HEADER_OVERHEAD, nic_bps);
        let sends = (0..count)
            .map(|i| (at + gap.saturating_mul(i as u64), payload))
            .collect();
        UdpSchedule { sends }
    }

    /// Total payload bytes.
    pub fn total_bytes(&self) -> u64 {
        self.sends.iter().map(|&(_, b)| b as u64).sum()
    }

    /// Number of datagrams.
    pub fn len(&self) -> usize {
        self.sends.len()
    }

    /// True if the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty()
    }

    /// Completion instant: the last send time (None if empty).
    pub fn last_send(&self) -> Option<SimTime> {
        self.sends.last().map(|&(t, _)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cbr_hits_target_rate() {
        // 48 Mbps for 10 ms = 60 kB.
        let s = UdpSchedule::cbr(
            SimTime::ZERO,
            SimDuration::from_millis(10),
            48_000_000,
            1000,
        );
        assert_eq!(s.total_bytes(), 60_000);
        assert_eq!(s.len(), 60);
        // Inter-packet gap = 1000*8/48e6 s = 166.67 us.
        let gap = s.sends[1].0 - s.sends[0].0;
        assert!((gap.as_micros_f64() - 166.67).abs() < 0.5, "gap {gap}");
    }

    #[test]
    fn cbr_short_tail() {
        let s = UdpSchedule::cbr(
            SimTime::ZERO,
            SimDuration::from_micros(250),
            48_000_000,
            1000,
        );
        // 1500 B total -> 1000 + 500.
        assert_eq!(s.total_bytes(), 1500);
        assert_eq!(s.sends.len(), 2);
        assert_eq!(s.sends[1].1, 500);
    }

    #[test]
    fn burst_is_back_to_back_at_line_rate() {
        let s = UdpSchedule::burst(SimTime::from_micros(5), 10, 1000, 100_000_000_000);
        assert_eq!(s.len(), 10);
        let gap = s.sends[1].0 - s.sends[0].0;
        // (1000+60) B at 100G = 84.8 ns, rounded up.
        assert_eq!(gap.as_nanos(), 85);
        assert_eq!(s.last_send().unwrap(), SimTime::from_micros(5) + gap * 9);
    }

    #[test]
    fn empty_schedule() {
        let s = UdpSchedule::default();
        assert!(s.is_empty());
        assert_eq!(s.last_send(), None);
        assert_eq!(s.total_bytes(), 0);
    }
}
