//! Transport state machines for the packet-level simulator.
//!
//! The paper's FCT results ride on NS3's TCP; here a compact, well-tested
//! window-based TCP stands in:
//!
//! * [`TcpSender`] — slow start, congestion avoidance, NewReno-style fast
//!   retransmit/recovery, RFC 6298 RTO with Karn's algorithm, configurable
//!   duplicate-ACK threshold (the paper leans on Linux's tolerance of up to
//!   300 reordered packets, §4 — `TcpConfig::reorder_tolerant` mirrors that);
//! * [`TcpReceiver`] — cumulative ACKing over an interval set, with
//!   reordering detection for the §4 reordering analysis;
//! * [`udp`] — constant-bit-rate and burst schedules for the Video,
//!   Microbursts, and incast workloads.
//!
//! Everything is sans-IO: state machines emit segment descriptors and timer
//! deadlines; the host model in `sv2p-netsim` turns them into packets.
//!
//! ```
//! use sv2p_simcore::SimTime;
//! use sv2p_transport::{TcpConfig, TcpReceiver, TcpSender};
//!
//! let mut tx = TcpSender::new(TcpConfig::default(), 2_500);
//! let mut rx = TcpReceiver::new();
//! let now = SimTime::ZERO;
//! // The initial window covers the whole 2.5 kB flow (3 segments).
//! let ops = tx.start(now);
//! assert_eq!(ops.segments.len(), 3);
//! for seg in &ops.segments {
//!     let ack = rx.on_data(seg.seq, seg.len);
//!     tx.on_ack(now, ack);
//! }
//! assert!(tx.is_complete());
//! assert_eq!(rx.bytes_delivered, 2_500);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod tcp;
pub mod udp;

pub use tcp::{Segment, SenderOps, TcpConfig, TcpReceiver, TcpSender};
pub use udp::UdpSchedule;
