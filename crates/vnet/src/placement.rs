//! VM placement: assigning virtual addresses to physical servers.
//!
//! The paper places VMs uniformly: "We uniformly draw sources and
//! destinations from a pool of 10240 VMs, with 80 VMs on each server"
//! (FT8-10K) and 32 containers per server for Alibaba on FT16-400K. The
//! placement fills servers round-robin so that VIP *i* lives on server
//! `i / vms_per_server` — uniform draws over VIPs then spread uniformly over
//! servers and racks.

use sv2p_packet::{Pip, Vip};
use sv2p_simcore::FxHashMap;
use sv2p_topology::{NodeId, Topology};

/// Where every VM lives.
#[derive(Debug, Clone)]
pub struct Placement {
    /// All VIPs, densely numbered — `vips[i]` is VM *i*.
    pub vips: Vec<Vip>,
    /// Server PIP of each VM, parallel to `vips`.
    pub pips: Vec<Pip>,
    /// Host node of each VM, parallel to `vips`.
    pub nodes: Vec<NodeId>,
    vip_index: FxHashMap<Vip, usize>,
}

/// Base of the VIP number space (dotted "20.0.0.0"); VM *i* is `VIP_BASE + i`.
pub const VIP_BASE: u32 = 0x1400_0000;

impl Placement {
    /// Places `vms_per_server` VMs on every server of `topo`, in server
    /// iteration order.
    pub fn uniform(topo: &Topology, vms_per_server: u32) -> Self {
        assert!(vms_per_server > 0);
        let mut vips = Vec::new();
        let mut pips = Vec::new();
        let mut nodes = Vec::new();
        let mut vip_index = FxHashMap::default();
        for server in topo.servers() {
            for _ in 0..vms_per_server {
                let vip = Vip(VIP_BASE + vips.len() as u32);
                vip_index.insert(vip, vips.len());
                vips.push(vip);
                pips.push(server.pip);
                nodes.push(server.id);
            }
        }
        Placement {
            vips,
            pips,
            nodes,
            vip_index,
        }
    }

    /// Number of VMs.
    pub fn len(&self) -> usize {
        self.vips.len()
    }

    /// True if no VMs are placed.
    pub fn is_empty(&self) -> bool {
        self.vips.is_empty()
    }

    /// VM index of a VIP, if it exists.
    pub fn index_of(&self, vip: Vip) -> Option<usize> {
        self.vip_index.get(&vip).copied()
    }

    /// VIP of VM `i`.
    pub fn vip_of(&self, i: usize) -> Vip {
        self.vips[i]
    }

    /// Current PIP of VM `i`.
    pub fn pip_of(&self, i: usize) -> Pip {
        self.pips[i]
    }

    /// Host node of VM `i`.
    pub fn node_of(&self, i: usize) -> NodeId {
        self.nodes[i]
    }

    /// Seeds a [`crate::MappingDb`] with the full placement.
    pub fn seed_db(&self) -> crate::MappingDb {
        let mut db = crate::MappingDb::new();
        for (i, &vip) in self.vips.iter().enumerate() {
            db.apply(crate::MappingOp::Install {
                vip,
                pip: self.pips[i],
            });
        }
        db
    }

    /// Records a migration of VM `i` to a new host (keeps the placement in
    /// sync with the mapping database; the caller updates the DB).
    pub fn relocate(&mut self, i: usize, node: NodeId, pip: Pip) {
        self.nodes[i] = node;
        self.pips[i] = pip;
    }

    /// All VM indices hosted on `node`.
    pub fn vms_on(&self, node: NodeId) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.nodes[i] == node).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv2p_topology::FatTreeConfig;

    #[test]
    fn ft8_placement_is_10240_vms() {
        let topo = FatTreeConfig::ft8_10k().build();
        let p = Placement::uniform(&topo, 80);
        assert_eq!(p.len(), 10_240);
        // All VIPs unique and resolvable.
        for (i, &vip) in p.vips.iter().enumerate() {
            assert_eq!(p.index_of(vip), Some(i));
        }
    }

    #[test]
    fn vms_spread_evenly() {
        let topo = FatTreeConfig::ft8_10k().build();
        let p = Placement::uniform(&topo, 80);
        for server in topo.servers() {
            assert_eq!(p.vms_on(server.id).len(), 80);
        }
    }

    #[test]
    fn seed_db_matches_placement() {
        let topo = FatTreeConfig::scaled_ft8(2).build();
        let p = Placement::uniform(&topo, 4);
        let db = p.seed_db();
        assert_eq!(db.len(), p.len());
        for i in 0..p.len() {
            assert_eq!(db.lookup(p.vips[i]), Some(p.pip_of(i)));
        }
    }

    #[test]
    fn relocate_updates_location() {
        let topo = FatTreeConfig::scaled_ft8(2).build();
        let mut p = Placement::uniform(&topo, 1);
        let target = topo.servers().last().unwrap();
        p.relocate(0, target.id, target.pip);
        assert_eq!(p.pip_of(0), target.pip);
        assert_eq!(p.node_of(0), target.id);
        assert!(p.vms_on(target.id).contains(&0));
    }
}
