//! VM placement: assigning virtual addresses to physical servers.
//!
//! The paper places VMs uniformly: "We uniformly draw sources and
//! destinations from a pool of 10240 VMs, with 80 VMs on each server"
//! (FT8-10K) and 32 containers per server for Alibaba on FT16-400K. The
//! placement fills servers round-robin so that VIP *i* lives on server
//! `i / vms_per_server` — uniform draws over VIPs then spread uniformly over
//! servers and racks.

use sv2p_packet::{Pip, Vip};
use sv2p_topology::{NodeId, Topology};

/// Where every VM lives.
///
/// The VIP column is index-ordered — [`Placement::uniform`] assigns
/// `Vip(VIP_BASE + i)` to VM *i* and [`Placement::relocate`] never touches
/// it — so [`Placement::index_of`] is a binary search over the sorted
/// column instead of a per-VM HashMap. At million-VM scale the placement is
/// 12 bytes per VM, all of it in the three parallel vectors.
#[derive(Debug, Clone)]
pub struct Placement {
    /// All VIPs, densely numbered and strictly increasing — `vips[i]` is
    /// VM *i*.
    pub vips: Vec<Vip>,
    /// Server PIP of each VM, parallel to `vips`.
    pub pips: Vec<Pip>,
    /// Host node of each VM, parallel to `vips`.
    pub nodes: Vec<NodeId>,
}

/// Base of the VIP number space (dotted "20.0.0.0"); VM *i* is `VIP_BASE + i`.
pub const VIP_BASE: u32 = 0x1400_0000;

impl Placement {
    /// Places `vms_per_server` VMs on every server of `topo`, in server
    /// iteration order.
    pub fn uniform(topo: &Topology, vms_per_server: u32) -> Self {
        assert!(vms_per_server > 0);
        let mut vips = Vec::new();
        let mut pips = Vec::new();
        let mut nodes = Vec::new();
        for server in topo.servers() {
            for _ in 0..vms_per_server {
                vips.push(Vip(VIP_BASE + vips.len() as u32));
                pips.push(server.pip);
                nodes.push(server.id);
            }
        }
        Placement { vips, pips, nodes }
    }

    /// Number of VMs.
    pub fn len(&self) -> usize {
        self.vips.len()
    }

    /// True if no VMs are placed.
    pub fn is_empty(&self) -> bool {
        self.vips.is_empty()
    }

    /// VM index of a VIP, if it exists (binary search over the sorted VIP
    /// column).
    pub fn index_of(&self, vip: Vip) -> Option<usize> {
        self.vips.binary_search(&vip).ok()
    }

    /// VIP of VM `i`.
    pub fn vip_of(&self, i: usize) -> Vip {
        self.vips[i]
    }

    /// Current PIP of VM `i`.
    pub fn pip_of(&self, i: usize) -> Pip {
        self.pips[i]
    }

    /// Host node of VM `i`.
    pub fn node_of(&self, i: usize) -> NodeId {
        self.nodes[i]
    }

    /// Seeds a [`crate::MappingDb`] with the full placement.
    pub fn seed_db(&self) -> crate::MappingDb {
        let mut db = crate::MappingDb::new();
        for (i, &vip) in self.vips.iter().enumerate() {
            db.apply(crate::MappingOp::Install {
                vip,
                pip: self.pips[i],
            });
        }
        db
    }

    /// Records a migration of VM `i` to a new host (keeps the placement in
    /// sync with the mapping database; the caller updates the DB).
    pub fn relocate(&mut self, i: usize, node: NodeId, pip: Pip) {
        self.nodes[i] = node;
        self.pips[i] = pip;
    }

    /// Collects the VM indices hosted on `node` into `out` (cleared first),
    /// so scan-heavy callers can reuse one buffer instead of allocating per
    /// call.
    pub fn vms_on_into(&self, node: NodeId, out: &mut Vec<usize>) {
        out.clear();
        out.extend((0..self.len()).filter(|&i| self.nodes[i] == node));
    }

    /// All VM indices hosted on `node` (allocating convenience wrapper over
    /// [`Self::vms_on_into`]).
    pub fn vms_on(&self, node: NodeId) -> Vec<usize> {
        let mut out = Vec::new();
        self.vms_on_into(node, &mut out);
        out
    }

    /// Resident bytes of the three parallel columns (perfbench
    /// `mapping_bytes` accounting).
    pub fn resident_bytes(&self) -> usize {
        self.vips.capacity() * std::mem::size_of::<Vip>()
            + self.pips.capacity() * std::mem::size_of::<Pip>()
            + self.nodes.capacity() * std::mem::size_of::<NodeId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv2p_topology::FatTreeConfig;

    #[test]
    fn ft8_placement_is_10240_vms() {
        let topo = FatTreeConfig::ft8_10k().build();
        let p = Placement::uniform(&topo, 80);
        assert_eq!(p.len(), 10_240);
        // All VIPs unique and resolvable.
        for (i, &vip) in p.vips.iter().enumerate() {
            assert_eq!(p.index_of(vip), Some(i));
        }
        assert_eq!(p.index_of(Vip(VIP_BASE + 10_240)), None);
        assert_eq!(p.index_of(Vip(0)), None);
    }

    #[test]
    fn vms_spread_evenly() {
        let topo = FatTreeConfig::ft8_10k().build();
        let p = Placement::uniform(&topo, 80);
        let mut buf = Vec::new();
        for server in topo.servers() {
            p.vms_on_into(server.id, &mut buf);
            assert_eq!(buf.len(), 80);
            assert_eq!(p.vms_on(server.id), buf);
        }
    }

    #[test]
    fn seed_db_matches_placement() {
        let topo = FatTreeConfig::scaled_ft8(2).build();
        let p = Placement::uniform(&topo, 4);
        let db = p.seed_db();
        assert_eq!(db.len(), p.len());
        for i in 0..p.len() {
            assert_eq!(db.lookup(p.vips[i]), Some(p.pip_of(i)));
        }
    }

    #[test]
    fn relocate_updates_location_and_keeps_index() {
        let topo = FatTreeConfig::scaled_ft8(2).build();
        let mut p = Placement::uniform(&topo, 1);
        let target = topo.servers().last().unwrap();
        p.relocate(0, target.id, target.pip);
        assert_eq!(p.pip_of(0), target.pip);
        assert_eq!(p.node_of(0), target.id);
        assert!(p.vms_on(target.id).contains(&0));
        // The VIP column is untouched, so lookups still binary-search.
        assert_eq!(p.index_of(p.vip_of(0)), Some(0));
    }
}
