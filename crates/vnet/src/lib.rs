//! The virtual-network layer: everything a gateway-driven virtual network
//! (Andromeda/Zeta-style) needs before any in-network caching exists.
//!
//! * [`mapping`] — the V2P [`MappingDb`]: single-writer (control plane),
//!   many-reader ground truth, with an update epoch for staleness tests;
//! * [`placement`] — VM placement: which VIPs live on which server
//!   (80 VMs/server in FT8-10K, 32 containers/server in FT16-400K);
//! * [`gateway`] — the translation-gateway directory and per-flow gateway
//!   load balancing ("the gateways are replicated, with load balancing
//!   performed by each server on a per-flow basis", §5);
//! * [`agents`] — the data-plane extension points: [`SwitchAgent`] and
//!   [`HostAgent`] traits that SwitchV2P (`switchv2p` crate) and every
//!   baseline (`sv2p-baselines`) implement, plus the [`Strategy`] factory
//!   the simulator consumes;
//! * [`migration`] — VM migration plans and follow-me semantics (§5.2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agents;
pub mod gateway;
pub mod mapping;
pub mod migration;
pub mod placement;

pub use agents::{
    AgentOutput, CacheOp, HostAgent, HostResolution, MisdeliveryPolicy, PacketAction,
    Strategy, SwitchAgent, SwitchCtx,
};
pub use gateway::{GatewayConfig, GatewayDirectory};
pub use mapping::{ApplyError, MappingDb, MappingDelta, MappingOp};
pub use migration::Migration;
pub use placement::Placement;
