//! The V2P mapping database — the "ground truth at the gateways" (§3.3).
//!
//! A single writer (the virtual-network control plane) updates it; gateways
//! read it on every translation. In-network caches are *not* kept coherent
//! with it — that is the whole point of the paper's lazy invalidation design.
//!
//! All mutation flows through one audited entry point, [`MappingDb::apply`]
//! (and its non-panicking sibling [`MappingDb::try_apply`]): the simulator,
//! the churn engine, and the servable `v2p-controlplane` library mutate
//! state by submitting a [`MappingOp`] and observing the returned
//! [`MappingDelta`]. The historical `insert`/`migrate`/`migrate_at` methods
//! remain as thin deprecated wrappers for one release.

use sv2p_packet::{Pip, Vip};
use sv2p_simcore::FxHashMap;

/// One control-plane mutation against the V2P table.
///
/// This is the write-side vocabulary of the control plane: everything that
/// can change the authoritative mapping state is one of these three ops, so
/// a log of `MappingOp`s fully determines a database's end state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappingOp {
    /// Install or overwrite a mapping (tenant VM placement / re-placement).
    Install {
        /// The virtual address being placed.
        vip: Vip,
        /// The physical location it resolves to.
        pip: Pip,
    },
    /// Remove a mapping entirely (tenant departure). Removing an absent VIP
    /// is a no-op that still advances the epoch (the write was accepted).
    Invalidate {
        /// The virtual address being withdrawn.
        vip: Vip,
    },
    /// Move an existing mapping to a new physical location (VM migration),
    /// optionally recording *when* (virtual ns) so stale-cache hits can be
    /// aged against the instant.
    Migrate {
        /// The migrating virtual address.
        vip: Vip,
        /// Destination physical address.
        to_pip: Pip,
        /// Migration instant in virtual nanoseconds, if tracked.
        at_ns: Option<u64>,
    },
}

impl MappingOp {
    /// The VIP this op touches.
    pub fn vip(&self) -> Vip {
        match *self {
            MappingOp::Install { vip, .. }
            | MappingOp::Invalidate { vip }
            | MappingOp::Migrate { vip, .. } => vip,
        }
    }
}

/// What one applied [`MappingOp`] changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MappingDelta {
    /// The VIP that was written.
    pub vip: Vip,
    /// The mapping before the op (`None`: the VIP did not exist).
    pub old: Option<Pip>,
    /// The mapping after the op (`None`: the VIP no longer exists).
    pub new: Option<Pip>,
    /// The database epoch *after* this op was applied.
    pub epoch: u64,
}

/// Why [`MappingDb::try_apply`] rejected an op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyError {
    /// A `Migrate` named a VIP that was never placed.
    UnknownVip(Vip),
}

impl std::fmt::Display for ApplyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApplyError::UnknownVip(vip) => {
                write!(f, "migrating a VIP that was never placed: {vip}")
            }
        }
    }
}

impl std::error::Error for ApplyError {}

/// The authoritative virtual-to-physical mapping table.
#[derive(Debug, Clone, Default)]
pub struct MappingDb {
    map: FxHashMap<Vip, Pip>,
    /// Bumped on every update; lets tests and metrics distinguish
    /// reads-after-write from stale cache serving.
    epoch: u64,
    /// When each VIP last migrated, virtual nanoseconds. Only written by
    /// a timestamped [`MappingOp::Migrate`]; the stale-entry age a cache
    /// hit exposes is measured against this instant.
    last_migration: FxHashMap<Vip, u64>,
}

impl MappingDb {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies one control-plane op; every accepted write advances the
    /// epoch by exactly one. `Err` leaves the database untouched.
    pub fn try_apply(&mut self, op: MappingOp) -> Result<MappingDelta, ApplyError> {
        let delta = match op {
            MappingOp::Install { vip, pip } => {
                let old = self.map.insert(vip, pip);
                self.epoch += 1;
                MappingDelta {
                    vip,
                    old,
                    new: Some(pip),
                    epoch: self.epoch,
                }
            }
            MappingOp::Invalidate { vip } => {
                let old = self.map.remove(&vip);
                self.last_migration.remove(&vip);
                self.epoch += 1;
                MappingDelta {
                    vip,
                    old,
                    new: None,
                    epoch: self.epoch,
                }
            }
            MappingOp::Migrate { vip, to_pip, at_ns } => {
                let Some(slot) = self.map.get_mut(&vip) else {
                    return Err(ApplyError::UnknownVip(vip));
                };
                let old = std::mem::replace(slot, to_pip);
                self.epoch += 1;
                if let Some(at) = at_ns {
                    self.last_migration.insert(vip, at);
                }
                MappingDelta {
                    vip,
                    old: Some(old),
                    new: Some(to_pip),
                    epoch: self.epoch,
                }
            }
        };
        Ok(delta)
    }

    /// [`Self::try_apply`] for callers where a rejected op is a harness
    /// bug, not a runtime condition (the simulator's control plane).
    ///
    /// Panics if the op is rejected — e.g. migrating a VIP that was never
    /// placed.
    pub fn apply(&mut self, op: MappingOp) -> MappingDelta {
        match self.try_apply(op) {
            Ok(delta) => delta,
            Err(e) => panic!("{e}"),
        }
    }

    /// Resolves a VIP (gateway read). `None` means the VIP does not exist —
    /// a tenant misconfiguration the gateway drops.
    pub fn lookup(&self, vip: Vip) -> Option<Pip> {
        self.map.get(&vip).copied()
    }

    /// True if `vip` is currently mapped.
    pub fn contains(&self, vip: Vip) -> bool {
        self.map.contains_key(&vip)
    }

    /// When `vip` last migrated (virtual ns), if it ever did via a
    /// timestamped [`MappingOp::Migrate`].
    pub fn last_migration_ns(&self, vip: Vip) -> Option<u64> {
        self.last_migration.get(&vip).copied()
    }

    /// Number of mappings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no mappings exist.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The current write epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Iterates over all mappings (used by Direct-mode host preprogramming
    /// and by the Controller baseline).
    pub fn iter(&self) -> impl Iterator<Item = (Vip, Pip)> + '_ {
        self.map.iter().map(|(&v, &p)| (v, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_lookup_roundtrip() {
        let mut db = MappingDb::new();
        assert!(db.is_empty());
        let d = db.apply(MappingOp::Install {
            vip: Vip(1),
            pip: Pip(10),
        });
        assert_eq!(d.old, None);
        assert_eq!(d.new, Some(Pip(10)));
        assert_eq!(d.epoch, 1);
        assert_eq!(db.lookup(Vip(1)), Some(Pip(10)));
        assert_eq!(db.lookup(Vip(2)), None);
        assert!(db.contains(Vip(1)));
        assert!(!db.contains(Vip(2)));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn migrate_returns_old_location_and_bumps_epoch() {
        let mut db = MappingDb::new();
        db.apply(MappingOp::Install {
            vip: Vip(1),
            pip: Pip(10),
        });
        let e0 = db.epoch();
        let d = db.apply(MappingOp::Migrate {
            vip: Vip(1),
            to_pip: Pip(20),
            at_ns: None,
        });
        assert_eq!(d.old, Some(Pip(10)));
        assert_eq!(db.lookup(Vip(1)), Some(Pip(20)));
        assert!(db.epoch() > e0);
    }

    #[test]
    #[should_panic(expected = "never placed")]
    fn migrating_unknown_vip_panics() {
        let mut db = MappingDb::new();
        db.apply(MappingOp::Migrate {
            vip: Vip(1),
            to_pip: Pip(20),
            at_ns: None,
        });
    }

    #[test]
    fn try_apply_rejects_unknown_migration_without_mutating() {
        let mut db = MappingDb::new();
        let err = db
            .try_apply(MappingOp::Migrate {
                vip: Vip(9),
                to_pip: Pip(1),
                at_ns: None,
            })
            .unwrap_err();
        assert_eq!(err, ApplyError::UnknownVip(Vip(9)));
        assert_eq!(db.epoch(), 0);
        assert!(db.is_empty());
    }

    #[test]
    fn migrate_at_records_instant() {
        let mut db = MappingDb::new();
        db.apply(MappingOp::Install {
            vip: Vip(1),
            pip: Pip(10),
        });
        assert_eq!(db.last_migration_ns(Vip(1)), None);
        let d = db.apply(MappingOp::Migrate {
            vip: Vip(1),
            to_pip: Pip(20),
            at_ns: Some(5_000),
        });
        assert_eq!(d.old, Some(Pip(10)));
        assert_eq!(db.last_migration_ns(Vip(1)), Some(5_000));
        db.apply(MappingOp::Migrate {
            vip: Vip(1),
            to_pip: Pip(30),
            at_ns: Some(9_000),
        });
        assert_eq!(db.last_migration_ns(Vip(1)), Some(9_000));
    }

    #[test]
    fn reinstall_overwrites() {
        let mut db = MappingDb::new();
        db.apply(MappingOp::Install {
            vip: Vip(1),
            pip: Pip(10),
        });
        let d = db.apply(MappingOp::Install {
            vip: Vip(1),
            pip: Pip(11),
        });
        assert_eq!(d.old, Some(Pip(10)));
        assert_eq!(db.lookup(Vip(1)), Some(Pip(11)));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn invalidate_removes_and_advances_epoch() {
        let mut db = MappingDb::new();
        db.apply(MappingOp::Install {
            vip: Vip(1),
            pip: Pip(10),
        });
        db.apply(MappingOp::Migrate {
            vip: Vip(1),
            to_pip: Pip(20),
            at_ns: Some(1_000),
        });
        let e = db.epoch();
        let d = db.apply(MappingOp::Invalidate { vip: Vip(1) });
        assert_eq!(d.old, Some(Pip(20)));
        assert_eq!(d.new, None);
        assert_eq!(d.epoch, e + 1);
        assert_eq!(db.lookup(Vip(1)), None);
        // Migration history is withdrawn with the mapping.
        assert_eq!(db.last_migration_ns(Vip(1)), None);
        // Invalidating an absent VIP is accepted and still versioned.
        let d2 = db.apply(MappingOp::Invalidate { vip: Vip(1) });
        assert_eq!(d2.old, None);
        assert_eq!(d2.epoch, e + 2);
    }

    #[test]
    fn apply_sequences_install_and_timestamped_migrations() {
        let mut db = MappingDb::new();
        db.apply(MappingOp::Install {
            vip: Vip(1),
            pip: Pip(10),
        });
        assert_eq!(db.lookup(Vip(1)), Some(Pip(10)));
        let d = db.apply(MappingOp::Migrate {
            vip: Vip(1),
            to_pip: Pip(20),
            at_ns: None,
        });
        assert_eq!(d.old, Some(Pip(10)));
        let d = db.apply(MappingOp::Migrate {
            vip: Vip(1),
            to_pip: Pip(30),
            at_ns: Some(7_000),
        });
        assert_eq!(d.old, Some(Pip(20)));
        assert_eq!(db.last_migration_ns(Vip(1)), Some(7_000));
        assert_eq!(db.epoch(), 3);
    }

    #[test]
    fn op_vip_accessor() {
        assert_eq!(
            MappingOp::Install {
                vip: Vip(3),
                pip: Pip(4)
            }
            .vip(),
            Vip(3)
        );
        assert_eq!(MappingOp::Invalidate { vip: Vip(5) }.vip(), Vip(5));
        assert_eq!(
            MappingOp::Migrate {
                vip: Vip(6),
                to_pip: Pip(7),
                at_ns: None
            }
            .vip(),
            Vip(6)
        );
    }
}
