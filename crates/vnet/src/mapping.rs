//! The V2P mapping database — the "ground truth at the gateways" (§3.3).
//!
//! A single writer (the virtual-network control plane) updates it; gateways
//! read it on every translation. In-network caches are *not* kept coherent
//! with it — that is the whole point of the paper's lazy invalidation design.
//!
//! All mutation flows through one audited entry point, [`MappingDb::apply`]
//! (and its non-panicking sibling [`MappingDb::try_apply`]): the simulator,
//! the churn engine, and the servable `v2p-controlplane` library mutate
//! state by submitting a [`MappingOp`] and observing the returned
//! [`MappingDelta`]. The historical `insert`/`migrate`/`migrate_at` methods
//! remain as thin deprecated wrappers for one release.

use sv2p_packet::{Pip, Vip};
use sv2p_simcore::FxHashMap;

/// One control-plane mutation against the V2P table.
///
/// This is the write-side vocabulary of the control plane: everything that
/// can change the authoritative mapping state is one of these three ops, so
/// a log of `MappingOp`s fully determines a database's end state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappingOp {
    /// Install or overwrite a mapping (tenant VM placement / re-placement).
    Install {
        /// The virtual address being placed.
        vip: Vip,
        /// The physical location it resolves to.
        pip: Pip,
    },
    /// Remove a mapping entirely (tenant departure). Removing an absent VIP
    /// is a no-op that still advances the epoch (the write was accepted).
    Invalidate {
        /// The virtual address being withdrawn.
        vip: Vip,
    },
    /// Move an existing mapping to a new physical location (VM migration),
    /// optionally recording *when* (virtual ns) so stale-cache hits can be
    /// aged against the instant.
    Migrate {
        /// The migrating virtual address.
        vip: Vip,
        /// Destination physical address.
        to_pip: Pip,
        /// Migration instant in virtual nanoseconds, if tracked.
        at_ns: Option<u64>,
    },
}

impl MappingOp {
    /// The VIP this op touches.
    pub fn vip(&self) -> Vip {
        match *self {
            MappingOp::Install { vip, .. }
            | MappingOp::Invalidate { vip }
            | MappingOp::Migrate { vip, .. } => vip,
        }
    }
}

/// What one applied [`MappingOp`] changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MappingDelta {
    /// The VIP that was written.
    pub vip: Vip,
    /// The mapping before the op (`None`: the VIP did not exist).
    pub old: Option<Pip>,
    /// The mapping after the op (`None`: the VIP no longer exists).
    pub new: Option<Pip>,
    /// The database epoch *after* this op was applied.
    pub epoch: u64,
}

/// Why [`MappingDb::try_apply`] rejected an op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyError {
    /// A `Migrate` named a VIP that was never placed.
    UnknownVip(Vip),
}

impl std::fmt::Display for ApplyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApplyError::UnknownVip(vip) => {
                write!(f, "migrating a VIP that was never placed: {vip}")
            }
        }
    }
}

impl std::error::Error for ApplyError {}

/// Outcome of a slot probe: the VIP's live slot, or where it would go.
enum Probe {
    /// The VIP is resident at this slot.
    Found(usize),
    /// The VIP is absent; this is the slot an insert should claim (the
    /// first tombstone on the probe path, else the terminating empty slot).
    Vacant(usize),
}

/// The authoritative virtual-to-physical mapping table.
///
/// Storage is an open-addressed flat table — parallel `Vip`/`Pip` arrays
/// with per-slot live/tombstone bitmaps and linear probing — rather than a
/// per-entry HashMap. At million-VM scale this costs ~12 bytes per mapping
/// (vs ~50 for the former `FxHashMap<Vip, Pip>`), and the layout is fully
/// deterministic: the same op sequence yields the same slots, so [`Self::iter`]
/// order is reproducible across runs. The sparse migration instants stay in
/// a side `FxHashMap` — only migrated VIPs pay for the timestamp.
#[derive(Debug, Clone, Default)]
pub struct MappingDb {
    /// Slot keys; meaningful only where the `live` bit is set.
    keys: Vec<Vip>,
    /// Slot values, parallel to `keys`.
    vals: Vec<Pip>,
    /// Bit per slot: holds a live entry.
    live: Vec<u64>,
    /// Bit per slot: vacated by an `Invalidate` (probe chains continue
    /// through tombstones; they are reclaimed on rehash).
    tombstone: Vec<u64>,
    /// Live entries.
    len: usize,
    /// Live entries + tombstones (table pressure for the grow policy).
    used: usize,
    /// Bumped on every update; lets tests and metrics distinguish
    /// reads-after-write from stale cache serving.
    epoch: u64,
    /// When each VIP last migrated, virtual nanoseconds. Only written by
    /// a timestamped [`MappingOp::Migrate`]; the stale-entry age a cache
    /// hit exposes is measured against this instant.
    last_migration: FxHashMap<Vip, u64>,
}

#[inline]
fn avalanche(x: u32) -> u64 {
    // The same 64-bit finalizer the switch cache model uses.
    let mut h = x as u64;
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 29;
    h
}

#[inline]
fn bit_get(bits: &[u64], i: usize) -> bool {
    bits[i >> 6] & (1u64 << (i & 63)) != 0
}

#[inline]
fn bit_set(bits: &mut [u64], i: usize) {
    bits[i >> 6] |= 1u64 << (i & 63);
}

#[inline]
fn bit_clear(bits: &mut [u64], i: usize) {
    bits[i >> 6] &= !(1u64 << (i & 63));
}

impl MappingDb {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Probes for `vip`. The table must be non-empty.
    fn probe(&self, vip: Vip) -> Probe {
        let mask = self.keys.len() - 1;
        let mut i = (avalanche(vip.0) as usize) & mask;
        let mut first_tombstone = None;
        loop {
            if bit_get(&self.live, i) {
                if self.keys[i] == vip {
                    return Probe::Found(i);
                }
            } else if bit_get(&self.tombstone, i) {
                first_tombstone.get_or_insert(i);
            } else {
                return Probe::Vacant(first_tombstone.unwrap_or(i));
            }
            i = (i + 1) & mask;
        }
    }

    /// Rehashes into a table of `cap` slots (power of two), dropping
    /// tombstones. Slot order — and thus [`Self::iter`] order — stays a
    /// pure function of the live key set and the capacity.
    fn rehash(&mut self, cap: usize) {
        debug_assert!(cap.is_power_of_two() && cap >= self.len);
        let old_keys = std::mem::take(&mut self.keys);
        let old_vals = std::mem::take(&mut self.vals);
        let old_live = std::mem::take(&mut self.live);
        self.keys = vec![Vip(0); cap];
        self.vals = vec![Pip(0); cap];
        self.live = vec![0u64; cap.div_ceil(64)];
        self.tombstone = vec![0u64; cap.div_ceil(64)];
        self.used = self.len;
        let mask = cap - 1;
        for (slot, &key) in old_keys.iter().enumerate() {
            if !bit_get(&old_live, slot) {
                continue;
            }
            let mut i = (avalanche(key.0) as usize) & mask;
            while bit_get(&self.live, i) {
                i = (i + 1) & mask;
            }
            self.keys[i] = key;
            self.vals[i] = old_vals[slot];
            bit_set(&mut self.live, i);
        }
    }

    /// Ensures one more entry fits under the 7/8 load-factor ceiling.
    fn reserve_one(&mut self) {
        let cap = self.keys.len();
        if cap == 0 {
            self.rehash(16);
        } else if (self.used + 1) * 8 > cap * 7 {
            // Doubling also reclaims tombstones; a table that is mostly
            // tombstones rehashes at the same capacity instead of growing.
            let target = if self.len * 4 > cap { cap * 2 } else { cap };
            self.rehash(target.max(16));
        }
    }

    /// Inserts or overwrites `vip → pip`, returning the previous value.
    fn table_insert(&mut self, vip: Vip, pip: Pip) -> Option<Pip> {
        self.reserve_one();
        match self.probe(vip) {
            Probe::Found(i) => Some(std::mem::replace(&mut self.vals[i], pip)),
            Probe::Vacant(i) => {
                if bit_get(&self.tombstone, i) {
                    bit_clear(&mut self.tombstone, i);
                } else {
                    self.used += 1;
                }
                self.keys[i] = vip;
                self.vals[i] = pip;
                bit_set(&mut self.live, i);
                self.len += 1;
                None
            }
        }
    }

    /// Removes `vip`, returning its value. Leaves a tombstone.
    fn table_remove(&mut self, vip: Vip) -> Option<Pip> {
        if self.keys.is_empty() {
            return None;
        }
        match self.probe(vip) {
            Probe::Found(i) => {
                bit_clear(&mut self.live, i);
                bit_set(&mut self.tombstone, i);
                self.len -= 1;
                Some(self.vals[i])
            }
            Probe::Vacant(_) => None,
        }
    }

    /// The live slot index of `vip`, if mapped.
    #[inline]
    fn slot_of(&self, vip: Vip) -> Option<usize> {
        if self.keys.is_empty() {
            return None;
        }
        match self.probe(vip) {
            Probe::Found(i) => Some(i),
            Probe::Vacant(_) => None,
        }
    }

    /// Applies one control-plane op; every accepted write advances the
    /// epoch by exactly one. `Err` leaves the database untouched.
    pub fn try_apply(&mut self, op: MappingOp) -> Result<MappingDelta, ApplyError> {
        let delta = match op {
            MappingOp::Install { vip, pip } => {
                let old = self.table_insert(vip, pip);
                self.epoch += 1;
                MappingDelta {
                    vip,
                    old,
                    new: Some(pip),
                    epoch: self.epoch,
                }
            }
            MappingOp::Invalidate { vip } => {
                let old = self.table_remove(vip);
                self.last_migration.remove(&vip);
                self.epoch += 1;
                MappingDelta {
                    vip,
                    old,
                    new: None,
                    epoch: self.epoch,
                }
            }
            MappingOp::Migrate { vip, to_pip, at_ns } => {
                let Some(slot) = self.slot_of(vip) else {
                    return Err(ApplyError::UnknownVip(vip));
                };
                let old = std::mem::replace(&mut self.vals[slot], to_pip);
                self.epoch += 1;
                if let Some(at) = at_ns {
                    self.last_migration.insert(vip, at);
                }
                MappingDelta {
                    vip,
                    old: Some(old),
                    new: Some(to_pip),
                    epoch: self.epoch,
                }
            }
        };
        Ok(delta)
    }

    /// [`Self::try_apply`] for callers where a rejected op is a harness
    /// bug, not a runtime condition (the simulator's control plane).
    ///
    /// Panics if the op is rejected — e.g. migrating a VIP that was never
    /// placed.
    pub fn apply(&mut self, op: MappingOp) -> MappingDelta {
        match self.try_apply(op) {
            Ok(delta) => delta,
            Err(e) => panic!("{e}"),
        }
    }

    /// Resolves a VIP (gateway read). `None` means the VIP does not exist —
    /// a tenant misconfiguration the gateway drops.
    pub fn lookup(&self, vip: Vip) -> Option<Pip> {
        self.slot_of(vip).map(|i| self.vals[i])
    }

    /// True if `vip` is currently mapped.
    pub fn contains(&self, vip: Vip) -> bool {
        self.slot_of(vip).is_some()
    }

    /// When `vip` last migrated (virtual ns), if it ever did via a
    /// timestamped [`MappingOp::Migrate`].
    pub fn last_migration_ns(&self, vip: Vip) -> Option<u64> {
        self.last_migration.get(&vip).copied()
    }

    /// Number of mappings.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no mappings exist.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The current write epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Iterates over all mappings in slot order (deterministic for a given
    /// op sequence; consumers needing a canonical order sort, as the
    /// control-plane snapshot does).
    pub fn iter(&self) -> impl Iterator<Item = (Vip, Pip)> + '_ {
        self.keys
            .iter()
            .enumerate()
            .filter(|&(i, _)| bit_get(&self.live, i))
            .map(|(i, &k)| (k, self.vals[i]))
    }

    /// Approximate resident bytes of the mapping state: the flat table
    /// (keys + values + both bitmaps at current capacity) plus the sparse
    /// migration-instant side table. Feeds the perfbench `mapping_bytes`
    /// column so table capacity vs resident memory stays a tracked surface.
    pub fn resident_bytes(&self) -> usize {
        let cap = self.keys.len();
        let table = cap * (std::mem::size_of::<Vip>() + std::mem::size_of::<Pip>())
            + 2 * (cap.div_ceil(64)) * 8;
        // FxHashMap entry: key + value + control byte, at ~8/7 load slack.
        let side = self.last_migration.capacity() * (4 + 8 + 1);
        table + side
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_lookup_roundtrip() {
        let mut db = MappingDb::new();
        assert!(db.is_empty());
        let d = db.apply(MappingOp::Install {
            vip: Vip(1),
            pip: Pip(10),
        });
        assert_eq!(d.old, None);
        assert_eq!(d.new, Some(Pip(10)));
        assert_eq!(d.epoch, 1);
        assert_eq!(db.lookup(Vip(1)), Some(Pip(10)));
        assert_eq!(db.lookup(Vip(2)), None);
        assert!(db.contains(Vip(1)));
        assert!(!db.contains(Vip(2)));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn migrate_returns_old_location_and_bumps_epoch() {
        let mut db = MappingDb::new();
        db.apply(MappingOp::Install {
            vip: Vip(1),
            pip: Pip(10),
        });
        let e0 = db.epoch();
        let d = db.apply(MappingOp::Migrate {
            vip: Vip(1),
            to_pip: Pip(20),
            at_ns: None,
        });
        assert_eq!(d.old, Some(Pip(10)));
        assert_eq!(db.lookup(Vip(1)), Some(Pip(20)));
        assert!(db.epoch() > e0);
    }

    #[test]
    #[should_panic(expected = "never placed")]
    fn migrating_unknown_vip_panics() {
        let mut db = MappingDb::new();
        db.apply(MappingOp::Migrate {
            vip: Vip(1),
            to_pip: Pip(20),
            at_ns: None,
        });
    }

    #[test]
    fn try_apply_rejects_unknown_migration_without_mutating() {
        let mut db = MappingDb::new();
        let err = db
            .try_apply(MappingOp::Migrate {
                vip: Vip(9),
                to_pip: Pip(1),
                at_ns: None,
            })
            .unwrap_err();
        assert_eq!(err, ApplyError::UnknownVip(Vip(9)));
        assert_eq!(db.epoch(), 0);
        assert!(db.is_empty());
    }

    #[test]
    fn migrate_at_records_instant() {
        let mut db = MappingDb::new();
        db.apply(MappingOp::Install {
            vip: Vip(1),
            pip: Pip(10),
        });
        assert_eq!(db.last_migration_ns(Vip(1)), None);
        let d = db.apply(MappingOp::Migrate {
            vip: Vip(1),
            to_pip: Pip(20),
            at_ns: Some(5_000),
        });
        assert_eq!(d.old, Some(Pip(10)));
        assert_eq!(db.last_migration_ns(Vip(1)), Some(5_000));
        db.apply(MappingOp::Migrate {
            vip: Vip(1),
            to_pip: Pip(30),
            at_ns: Some(9_000),
        });
        assert_eq!(db.last_migration_ns(Vip(1)), Some(9_000));
    }

    #[test]
    fn reinstall_overwrites() {
        let mut db = MappingDb::new();
        db.apply(MappingOp::Install {
            vip: Vip(1),
            pip: Pip(10),
        });
        let d = db.apply(MappingOp::Install {
            vip: Vip(1),
            pip: Pip(11),
        });
        assert_eq!(d.old, Some(Pip(10)));
        assert_eq!(db.lookup(Vip(1)), Some(Pip(11)));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn invalidate_removes_and_advances_epoch() {
        let mut db = MappingDb::new();
        db.apply(MappingOp::Install {
            vip: Vip(1),
            pip: Pip(10),
        });
        db.apply(MappingOp::Migrate {
            vip: Vip(1),
            to_pip: Pip(20),
            at_ns: Some(1_000),
        });
        let e = db.epoch();
        let d = db.apply(MappingOp::Invalidate { vip: Vip(1) });
        assert_eq!(d.old, Some(Pip(20)));
        assert_eq!(d.new, None);
        assert_eq!(d.epoch, e + 1);
        assert_eq!(db.lookup(Vip(1)), None);
        // Migration history is withdrawn with the mapping.
        assert_eq!(db.last_migration_ns(Vip(1)), None);
        // Invalidating an absent VIP is accepted and still versioned.
        let d2 = db.apply(MappingOp::Invalidate { vip: Vip(1) });
        assert_eq!(d2.old, None);
        assert_eq!(d2.epoch, e + 2);
    }

    #[test]
    fn apply_sequences_install_and_timestamped_migrations() {
        let mut db = MappingDb::new();
        db.apply(MappingOp::Install {
            vip: Vip(1),
            pip: Pip(10),
        });
        assert_eq!(db.lookup(Vip(1)), Some(Pip(10)));
        let d = db.apply(MappingOp::Migrate {
            vip: Vip(1),
            to_pip: Pip(20),
            at_ns: None,
        });
        assert_eq!(d.old, Some(Pip(10)));
        let d = db.apply(MappingOp::Migrate {
            vip: Vip(1),
            to_pip: Pip(30),
            at_ns: Some(7_000),
        });
        assert_eq!(d.old, Some(Pip(20)));
        assert_eq!(db.last_migration_ns(Vip(1)), Some(7_000));
        assert_eq!(db.epoch(), 3);
    }

    #[test]
    fn grows_past_initial_capacity_and_iter_covers_everything() {
        let mut db = MappingDb::new();
        for i in 0..10_000u32 {
            db.apply(MappingOp::Install {
                vip: Vip(i),
                pip: Pip(i + 1),
            });
        }
        assert_eq!(db.len(), 10_000);
        assert_eq!(db.epoch(), 10_000);
        for i in (0..10_000u32).step_by(97) {
            assert_eq!(db.lookup(Vip(i)), Some(Pip(i + 1)));
        }
        let mut seen: Vec<(Vip, Pip)> = db.iter().collect();
        seen.sort();
        assert_eq!(seen.len(), 10_000);
        assert_eq!(seen[0], (Vip(0), Pip(1)));
        assert_eq!(seen[9_999], (Vip(9_999), Pip(10_000)));
        assert!(db.resident_bytes() >= 10_000 * 8);
    }

    #[test]
    fn tombstones_are_reused_without_unbounded_growth() {
        let mut db = MappingDb::new();
        // Churn far more ops than the table has slots: installs and
        // invalidates of a small working set must not grow the table.
        for round in 0..5_000u32 {
            let vip = Vip(round % 7);
            db.apply(MappingOp::Install { vip, pip: Pip(round) });
            db.apply(MappingOp::Invalidate { vip });
        }
        assert!(db.is_empty());
        assert_eq!(db.epoch(), 10_000);
        assert!(
            db.resident_bytes() < 4096,
            "7-entry working set ballooned to {} bytes",
            db.resident_bytes()
        );
        db.apply(MappingOp::Install {
            vip: Vip(3),
            pip: Pip(42),
        });
        assert_eq!(db.lookup(Vip(3)), Some(Pip(42)));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn colliding_keys_survive_interleaved_removal() {
        // All multiples of 16 in a 16-slot table collide heavily; removing
        // the middle of a probe chain must not orphan later entries.
        let mut db = MappingDb::new();
        let vips: Vec<Vip> = (0..12u32).map(|i| Vip(i * 1_000_003)).collect();
        for &v in &vips {
            db.apply(MappingOp::Install { vip: v, pip: Pip(v.0 ^ 1) });
        }
        for &v in vips.iter().step_by(2) {
            db.apply(MappingOp::Invalidate { vip: v });
        }
        for (i, &v) in vips.iter().enumerate() {
            let expect = if i % 2 == 0 { None } else { Some(Pip(v.0 ^ 1)) };
            assert_eq!(db.lookup(v), expect, "vip {v:?}");
        }
        assert_eq!(db.len(), 6);
    }

    #[test]
    fn op_vip_accessor() {
        assert_eq!(
            MappingOp::Install {
                vip: Vip(3),
                pip: Pip(4)
            }
            .vip(),
            Vip(3)
        );
        assert_eq!(MappingOp::Invalidate { vip: Vip(5) }.vip(), Vip(5));
        assert_eq!(
            MappingOp::Migrate {
                vip: Vip(6),
                to_pip: Pip(7),
                at_ns: None
            }
            .vip(),
            Vip(6)
        );
    }
}
