//! The V2P mapping database — the "ground truth at the gateways" (§3.3).
//!
//! A single writer (the virtual-network control plane) updates it; gateways
//! read it on every translation. In-network caches are *not* kept coherent
//! with it — that is the whole point of the paper's lazy invalidation design.

use sv2p_packet::{Pip, Vip};
use sv2p_simcore::FxHashMap;

/// The authoritative virtual-to-physical mapping table.
#[derive(Debug, Clone, Default)]
pub struct MappingDb {
    map: FxHashMap<Vip, Pip>,
    /// Bumped on every update; lets tests and metrics distinguish
    /// reads-after-write from stale cache serving.
    epoch: u64,
    /// When each VIP last migrated, virtual nanoseconds. Only written by
    /// [`Self::migrate_at`]; the stale-entry age a cache hit exposes is
    /// measured against this instant.
    last_migration: FxHashMap<Vip, u64>,
}

impl MappingDb {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs or overwrites a mapping (control-plane write).
    pub fn insert(&mut self, vip: Vip, pip: Pip) {
        self.map.insert(vip, pip);
        self.epoch += 1;
    }

    /// Resolves a VIP (gateway read). `None` means the VIP does not exist —
    /// a tenant misconfiguration the gateway drops.
    pub fn lookup(&self, vip: Vip) -> Option<Pip> {
        self.map.get(&vip).copied()
    }

    /// Moves `vip` to a new physical location (VM migration). Returns the
    /// previous location.
    ///
    /// Panics if the VIP was never placed: migrating an unknown VM is a
    /// harness bug, not a runtime condition.
    pub fn migrate(&mut self, vip: Vip, new_pip: Pip) -> Pip {
        let old = self
            .map
            .insert(vip, new_pip)
            .expect("migrating a VIP that was never placed");
        self.epoch += 1;
        old
    }

    /// [`Self::migrate`], additionally recording *when* (virtual ns) the
    /// move happened so stale-cache hits can be aged against it.
    pub fn migrate_at(&mut self, vip: Vip, new_pip: Pip, at_ns: u64) -> Pip {
        let old = self.migrate(vip, new_pip);
        self.last_migration.insert(vip, at_ns);
        old
    }

    /// When `vip` last migrated (virtual ns), if it ever did via
    /// [`Self::migrate_at`].
    pub fn last_migration_ns(&self, vip: Vip) -> Option<u64> {
        self.last_migration.get(&vip).copied()
    }

    /// Number of mappings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no mappings exist.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The current write epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Iterates over all mappings (used by Direct-mode host preprogramming
    /// and by the Controller baseline).
    pub fn iter(&self) -> impl Iterator<Item = (Vip, Pip)> + '_ {
        self.map.iter().map(|(&v, &p)| (v, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_roundtrip() {
        let mut db = MappingDb::new();
        assert!(db.is_empty());
        db.insert(Vip(1), Pip(10));
        assert_eq!(db.lookup(Vip(1)), Some(Pip(10)));
        assert_eq!(db.lookup(Vip(2)), None);
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn migrate_returns_old_location_and_bumps_epoch() {
        let mut db = MappingDb::new();
        db.insert(Vip(1), Pip(10));
        let e0 = db.epoch();
        let old = db.migrate(Vip(1), Pip(20));
        assert_eq!(old, Pip(10));
        assert_eq!(db.lookup(Vip(1)), Some(Pip(20)));
        assert!(db.epoch() > e0);
    }

    #[test]
    #[should_panic(expected = "never placed")]
    fn migrating_unknown_vip_panics() {
        let mut db = MappingDb::new();
        db.migrate(Vip(1), Pip(20));
    }

    #[test]
    fn migrate_at_records_instant() {
        let mut db = MappingDb::new();
        db.insert(Vip(1), Pip(10));
        assert_eq!(db.last_migration_ns(Vip(1)), None);
        let old = db.migrate_at(Vip(1), Pip(20), 5_000);
        assert_eq!(old, Pip(10));
        assert_eq!(db.last_migration_ns(Vip(1)), Some(5_000));
        db.migrate_at(Vip(1), Pip(30), 9_000);
        assert_eq!(db.last_migration_ns(Vip(1)), Some(9_000));
    }

    #[test]
    fn reinsert_overwrites() {
        let mut db = MappingDb::new();
        db.insert(Vip(1), Pip(10));
        db.insert(Vip(1), Pip(11));
        assert_eq!(db.lookup(Vip(1)), Some(Pip(11)));
        assert_eq!(db.len(), 1);
    }
}
