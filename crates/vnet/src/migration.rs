//! VM migration plans (§5.2).
//!
//! A migration moves one VM's VIP to a new server at a given instant. The
//! control plane updates the [`crate::MappingDb`] immediately (updates at
//! the gateway are cheap — that is the gateway design's strength) and
//! installs a *follow-me* rule at the old host so packets in flight are
//! re-forwarded (Andromeda's mechanism). What the in-network caches do about
//! their now-stale entries is the strategy's problem.

use sv2p_packet::{Pip, Vip};
use sv2p_simcore::{SimDuration, SimTime};
use sv2p_topology::NodeId;

/// One planned VM migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Migration {
    /// When the VM switches location.
    pub at: SimTime,
    /// The VM being moved.
    pub vip: Vip,
    /// Destination server.
    pub to_node: NodeId,
    /// Destination server's PIP.
    pub to_pip: Pip,
    /// Extra processing added at the old host per misdelivered packet
    /// (paper: 10 µs).
    pub old_host_penalty: SimDuration,
}

impl Migration {
    /// A migration with the paper's 10 µs old-host forwarding penalty.
    pub fn new(at: SimTime, vip: Vip, to_node: NodeId, to_pip: Pip) -> Self {
        Migration {
            at,
            vip,
            to_node,
            to_pip,
            old_host_penalty: SimDuration::from_micros(10),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_penalty_is_10us() {
        let m = Migration::new(
            SimTime::from_micros(500),
            Vip(1),
            NodeId(3),
            Pip(7),
        );
        assert_eq!(m.old_host_penalty, SimDuration::from_micros(10));
        assert_eq!(m.at, SimTime::from_micros(500));
    }
}
