//! Data-plane extension points.
//!
//! The simulator (`sv2p-netsim`) is translation-scheme agnostic: every
//! scheme — SwitchV2P itself and each baseline of §5 — is a [`Strategy`]
//! that fabricates per-switch [`SwitchAgent`]s and per-server
//! [`HostAgent`]s. Agents are sans-IO state machines: they mutate the packet
//! in place (translate, tag, attach/strip options) and return an
//! [`AgentOutput`] describing what the data plane should do next; the
//! simulator owns queues, links, and the clock.

use sv2p_packet::{Packet, Pip, SwitchTag, Vip};
use sv2p_simcore::{SimDuration, SimRng, SimTime};
use sv2p_topology::{NodeId, SwitchRole};

use crate::mapping::MappingDb;

/// Everything a switch agent may consult while processing one packet.
///
/// The `db` field is the control-plane ground truth: data-plane designs
/// (SwitchV2P, GwCache, LocalLearning) never read it; it exists for agents
/// that model a switch-local control plane (Bluebird's SFE) or an
/// omniscient controller.
pub struct SwitchCtx<'a> {
    /// Current virtual time.
    pub now: SimTime,
    /// This switch's node id.
    pub node: NodeId,
    /// This switch's compact identifier (rides in the hit-switch option).
    pub tag: SwitchTag,
    /// This switch's own physical address (source of generated packets).
    pub switch_pip: Pip,
    /// Table 1 category.
    pub role: SwitchRole,
    /// Pod of this switch (`None` for cores).
    pub my_pod: Option<u16>,
    /// If the packet entered from a directly-attached host port, that host's
    /// PIP (the front-panel port-to-PIP mapping of §3.3).
    pub ingress_host: Option<Pip>,
    /// True if the packet's current outer destination is a host attached to
    /// this switch (used by ToRs to consume learning packets).
    pub dst_attached: bool,
    /// Control-plane ground truth (see struct docs).
    pub db: &'a MappingDb,
    /// Per-switch deterministic random stream (learning-packet coin flips).
    pub rng: &'a mut SimRng,
    /// The network's base RTT (timestamp-vector suppression window, §3.3).
    pub base_rtt: SimDuration,
    /// Resolves a PIP to its pod, if pod-local (promotion's "leaves the pod"
    /// test).
    pub pod_of: &'a dyn Fn(Pip) -> Option<u16>,
    /// Resolves a switch tag to that switch's PIP (addressing invalidation
    /// packets).
    pub pip_of_tag: &'a dyn Fn(SwitchTag) -> Pip,
    /// True when the simulator's telemetry layer wants [`CacheOp`]s
    /// reported in [`AgentOutput::cache_ops`]. Agents must skip the
    /// bookkeeping entirely when false so disabled tracing allocates
    /// nothing on the hot path.
    pub trace_cache_ops: bool,
}

/// One cache mutation, reported through [`AgentOutput::cache_ops`] when
/// [`SwitchCtx::trace_cache_ops`] is set (telemetry only — the simulator's
/// metrics counters are fed by the dedicated `AgentOutput` flags).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOp {
    /// A mapping was inserted into an empty line.
    Insert {
        /// Virtual address.
        vip: Vip,
        /// Physical address it maps to.
        pip: Pip,
    },
    /// An existing line's mapping was refreshed/overwritten in place.
    Update {
        /// Virtual address.
        vip: Vip,
        /// Physical address it maps to.
        pip: Pip,
    },
    /// A valid mapping was evicted to make room.
    Evict {
        /// Virtual address evicted.
        vip: Vip,
        /// Physical address it mapped to.
        pip: Pip,
    },
    /// A mapping was invalidated (misdelivery tag or invalidation packet).
    Invalidate {
        /// Virtual address invalidated.
        vip: Vip,
    },
    /// A spillover option riding on a packet was accepted here.
    Spill {
        /// Virtual address.
        vip: Vip,
        /// Physical address it maps to.
        pip: Pip,
    },
    /// A promotion option was accepted into this (core) switch.
    Promote {
        /// Virtual address.
        vip: Vip,
        /// Physical address it maps to.
        pip: Pip,
    },
    /// A control plane installed the mapping directly (Controller).
    Install {
        /// Virtual address.
        vip: Vip,
        /// Physical address it maps to.
        pip: Pip,
    },
}

impl CacheOp {
    /// Stable wire name of the operation.
    pub fn name(self) -> &'static str {
        match self {
            CacheOp::Insert { .. } => "insert",
            CacheOp::Update { .. } => "update",
            CacheOp::Evict { .. } => "evict",
            CacheOp::Invalidate { .. } => "invalidate",
            CacheOp::Spill { .. } => "spill",
            CacheOp::Promote { .. } => "promote",
            CacheOp::Install { .. } => "install",
        }
    }

    /// The virtual address the operation touched.
    pub fn vip(self) -> Vip {
        match self {
            CacheOp::Insert { vip, .. }
            | CacheOp::Update { vip, .. }
            | CacheOp::Evict { vip, .. }
            | CacheOp::Invalidate { vip }
            | CacheOp::Spill { vip, .. }
            | CacheOp::Promote { vip, .. }
            | CacheOp::Install { vip, .. } => vip,
        }
    }

    /// The physical address involved, when the operation carries one.
    pub fn pip(self) -> Option<Pip> {
        match self {
            CacheOp::Insert { pip, .. }
            | CacheOp::Update { pip, .. }
            | CacheOp::Evict { pip, .. }
            | CacheOp::Spill { pip, .. }
            | CacheOp::Promote { pip, .. }
            | CacheOp::Install { pip, .. } => Some(pip),
            CacheOp::Invalidate { .. } => None,
        }
    }
}

/// What the data plane should do with the processed packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketAction {
    /// Forward normally toward the (possibly rewritten) outer destination.
    Forward,
    /// Hold the packet inside the switch for the given time, then re-inject
    /// it at this switch (models a data-to-control-plane detour such as
    /// Bluebird's SFE; the agent must have already resolved the packet so it
    /// passes straight through on re-entry).
    Delay(SimDuration),
    /// Drop the packet (control-plane queue overflow).
    Drop,
    /// Absorb the packet: it reached its in-network consumer (a learning
    /// packet at the target ToR, an invalidation packet at its target
    /// switch).
    Consume,
}

/// Result of processing one packet at one switch.
#[derive(Debug, Clone)]
pub struct AgentOutput {
    /// Disposition of the processed packet.
    pub action: PacketAction,
    /// Extra protocol packets to inject at this switch (learning packets,
    /// invalidation packets). Ids are assigned by the simulator.
    pub emit: Vec<Packet>,
    /// True if this switch's cache resolved the packet (hit-rate metrics and
    /// Table 5's per-layer hit distribution).
    pub cache_hit: bool,
    /// True if a spillover option riding on the packet was inserted here.
    pub spill_inserted: bool,
    /// True if a promotion option was accepted into this (core) switch.
    pub promotion_inserted: bool,
    /// Cache mutations performed while processing this packet, reported
    /// only when [`SwitchCtx::trace_cache_ops`] was set (empty — and
    /// allocation-free — otherwise).
    pub cache_ops: Vec<CacheOp>,
}

impl AgentOutput {
    /// Plain forwarding, nothing else.
    pub fn forward() -> Self {
        AgentOutput {
            action: PacketAction::Forward,
            emit: Vec::new(),
            cache_hit: false,
            spill_inserted: false,
            promotion_inserted: false,
            cache_ops: Vec::new(),
        }
    }

    /// Forwarding after a local cache hit.
    pub fn forward_hit() -> Self {
        AgentOutput {
            cache_hit: true,
            ..AgentOutput::forward()
        }
    }

    /// Absorb the packet.
    pub fn consume() -> Self {
        AgentOutput {
            action: PacketAction::Consume,
            ..AgentOutput::forward()
        }
    }
}

/// Per-switch translation behavior.
pub trait SwitchAgent: Send {
    /// Processes one packet entering the switch, before routing.
    fn on_packet(&mut self, ctx: &mut SwitchCtx<'_>, pkt: &mut Packet) -> AgentOutput;

    /// Number of valid cache entries (capacity audits in tests/benches).
    fn occupancy(&self) -> usize {
        0
    }

    /// Entries currently cached, as (vip, pip) pairs (diagnostics only).
    fn entries(&self) -> Vec<(Vip, Pip)> {
        Vec::new()
    }

    /// Control-plane installation of one entry (Controller baseline; no-op
    /// for data-plane-managed caches).
    fn install(&mut self, _vip: Vip, _pip: Pip) {}

    /// Control-plane wipe of installed entries before a new epoch's
    /// allocation (Controller baseline; no-op elsewhere).
    fn clear_installed(&mut self) {}

    /// Models a switch reboot: all volatile cache state is lost. The paper
    /// argues SwitchV2P tolerates this by construction ("the opportunistic
    /// nature of the caching approach makes it resilient to switch
    /// failures"); netsim's failure-injection tests exercise the claim.
    fn reset(&mut self) {}
}

/// How a sending host addresses the first hop of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostResolution {
    /// The host knows the mapping: outer dst = this PIP, resolved = true.
    Direct(Pip),
    /// Send unresolved toward a gateway (the simulator picks the concrete
    /// gateway per flow from the [`crate::GatewayDirectory`]).
    Gateway,
    /// Send unresolved with a null outer destination; the first-hop ToR must
    /// translate (Bluebird's model, where ToRs own the mapping table).
    FirstHopTor,
}

/// Per-server sending behavior.
pub trait HostAgent: Send {
    /// Decides how to address a packet for `dst_vip` belonging to the flow
    /// with key `flow_key`. Called for every outgoing packet (agents cache
    /// internally if they want per-flow behavior).
    fn resolve(
        &mut self,
        now: SimTime,
        db: &MappingDb,
        dst_vip: Vip,
        flow_key: u64,
    ) -> HostResolution;

    /// Models losing the host's volatile resolution state (e.g. its vswitch
    /// restarting when the rack's ToR reboots). Stateless agents keep the
    /// no-op default; caching agents must drop their cached mappings so a
    /// reboot leaves the whole rack cold, mirroring
    /// [`SwitchAgent::reset`].
    fn reset(&mut self) {}
}

/// What the old host does with a packet that arrived for a VM that moved
/// away (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MisdeliveryPolicy {
    /// Forward to the VM's new location via the follow-me rule installed at
    /// migration time (NoCache / OnDemand in the paper's Table 4).
    FollowMe,
    /// Forward to a gateway, unresolved; the in-network caches are repaired
    /// by misdelivery tags and invalidation packets (SwitchV2P).
    ToGateway,
}

/// A complete translation scheme.
pub trait Strategy {
    /// Scheme name as used in the paper's figures ("SwitchV2P", "NoCache"…).
    fn name(&self) -> &'static str;

    /// True if switches with this role hold a cache. The harness divides
    /// the experiment's aggregate cache budget equally among caching
    /// switches ("the cache size per switch is 1/#switches of the total
    /// cache", §5).
    fn caches_at(&self, role: SwitchRole) -> bool;

    /// Relative share of the aggregate cache budget a switch of this role
    /// receives (§4 "Heterogeneous memory allocation"). The default is the
    /// paper's homogeneous split; schemes may weight layers differently.
    /// Ignored for roles where `caches_at` is false.
    fn cache_weight(&self, _role: SwitchRole) -> f64 {
        1.0
    }

    /// Builds the agent for one switch. `lines` is the per-switch
    /// direct-mapped cache capacity in entries (0 for non-caching switches).
    fn make_switch_agent(
        &self,
        node: NodeId,
        role: SwitchRole,
        tag: SwitchTag,
        lines: usize,
    ) -> Box<dyn SwitchAgent>;

    /// Builds the agent for one sending server. Defaults to the plain
    /// gateway-driven host.
    fn make_host_agent(&self, _node: NodeId, _pip: Pip) -> Box<dyn HostAgent> {
        Box::new(GatewayHostAgent)
    }

    /// Misdelivery handling after VM migration.
    fn misdelivery_policy(&self) -> MisdeliveryPolicy {
        MisdeliveryPolicy::ToGateway
    }

    /// False for schemes where gateways take no part (Direct, Bluebird).
    fn uses_gateways(&self) -> bool {
        true
    }
}

/// The default host behavior of every gateway-driven scheme: always send
/// unresolved packets toward the per-flow gateway.
#[derive(Debug, Clone, Copy, Default)]
pub struct GatewayHostAgent;

impl HostAgent for GatewayHostAgent {
    fn resolve(
        &mut self,
        _now: SimTime,
        _db: &MappingDb,
        _dst_vip: Vip,
        _flow_key: u64,
    ) -> HostResolution {
        HostResolution::Gateway
    }
}

/// A switch that does nothing (NoCache, and non-ToR switches in GwCache /
/// Bluebird).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSwitchAgent;

impl SwitchAgent for NoopSwitchAgent {
    fn on_packet(&mut self, _ctx: &mut SwitchCtx<'_>, _pkt: &mut Packet) -> AgentOutput {
        AgentOutput::forward()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gateway_host_agent_always_defers() {
        let mut agent = GatewayHostAgent;
        let db = MappingDb::new();
        for key in 0..5 {
            assert_eq!(
                agent.resolve(SimTime::ZERO, &db, Vip(1), key),
                HostResolution::Gateway
            );
        }
    }

    #[test]
    fn output_constructors() {
        assert_eq!(AgentOutput::forward().action, PacketAction::Forward);
        assert!(!AgentOutput::forward().cache_hit);
        assert!(AgentOutput::forward_hit().cache_hit);
        assert_eq!(AgentOutput::consume().action, PacketAction::Consume);
    }

    #[test]
    fn noop_agent_reports_empty_cache() {
        let agent = NoopSwitchAgent;
        assert_eq!(agent.occupancy(), 0);
        assert!(agent.entries().is_empty());
    }
}
