//! Translation gateways.
//!
//! Gateways are ordinary hosts that hold the full [`crate::MappingDb`] view.
//! An unresolved packet addressed to a gateway is translated after a fixed
//! processing delay (40 µs, following Sailfish) and re-emitted toward the
//! true destination. Senders pick a gateway per flow ("load balancing
//! performed by each server on a per-flow basis", §5); the pick is sticky
//! for the flow's lifetime so a flow's packets share fate.

use serde::{Deserialize, Serialize};
use sv2p_simcore::SimDuration;
use sv2p_packet::Pip;
use sv2p_topology::{NodeId, NodeKind, Topology};

/// Gateway behavior parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GatewayConfig {
    /// Per-packet translation latency (paper: 40 µs).
    pub processing_ns: u64,
    /// Bounded ingress queue: how many packets may wait for translation
    /// while one is in service. `0` (the default) models an infinitely
    /// parallel gateway — every packet is translated after exactly
    /// `processing_ns`, the behaviour all the static sweeps assume. A
    /// non-zero cap turns the gateway into a single-server queue that
    /// sheds load (drops with cause `gateway-shed`) once the queue fills,
    /// which is what makes invalidation storms under churn costly.
    pub queue_cap: u32,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            processing_ns: 40_000,
            queue_cap: 0,
        }
    }
}

impl GatewayConfig {
    /// Translation latency as a duration.
    pub fn processing(&self) -> SimDuration {
        SimDuration::from_nanos(self.processing_ns)
    }
}

/// The gateway fleet and the per-flow balancing rule.
#[derive(Debug, Clone)]
pub struct GatewayDirectory {
    /// (node, pip) of every gateway, in topology order.
    gateways: Vec<(NodeId, Pip)>,
}

impl GatewayDirectory {
    /// Collects all gateway nodes from the topology.
    pub fn from_topology(topo: &Topology) -> Self {
        let gateways = topo
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Gateway { .. }))
            .map(|n| (n.id, n.pip))
            .collect();
        GatewayDirectory { gateways }
    }

    /// Number of gateways.
    pub fn len(&self) -> usize {
        self.gateways.len()
    }

    /// True if the fleet is empty (Bluebird / Direct configurations).
    pub fn is_empty(&self) -> bool {
        self.gateways.is_empty()
    }

    /// The gateway a sender uses for a flow, by flow key (per-flow ECMP-style
    /// stickiness).
    pub fn pick(&self, flow_key: u64) -> Pip {
        assert!(!self.gateways.is_empty(), "no gateways deployed");
        // Avalanche the key so sequential flow ids spread.
        let mut h = flow_key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 29;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 32;
        self.gateways[(h % self.gateways.len() as u64) as usize].1
    }

    /// True if `pip` addresses a gateway.
    pub fn is_gateway(&self, pip: Pip) -> bool {
        self.gateways.iter().any(|&(_, p)| p == pip)
    }

    /// Iterates over the fleet.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Pip)> + '_ {
        self.gateways.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv2p_topology::FatTreeConfig;

    #[test]
    fn directory_finds_all_gateways() {
        let topo = FatTreeConfig::ft8_10k().build();
        let dir = GatewayDirectory::from_topology(&topo);
        assert_eq!(dir.len(), 40);
        for (_, pip) in dir.iter() {
            assert!(dir.is_gateway(pip));
        }
    }

    #[test]
    fn pick_is_sticky_and_spreads() {
        let topo = FatTreeConfig::ft8_10k().build();
        let dir = GatewayDirectory::from_topology(&topo);
        assert_eq!(dir.pick(7), dir.pick(7));
        let mut used = std::collections::HashSet::new();
        for key in 0..4000u64 {
            used.insert(dir.pick(key));
        }
        assert!(
            used.len() >= 38,
            "only {} of 40 gateways used by 4000 flows",
            used.len()
        );
    }

    #[test]
    fn default_processing_is_40us() {
        assert_eq!(
            GatewayConfig::default().processing(),
            SimDuration::from_micros(40)
        );
    }

    #[test]
    #[should_panic(expected = "no gateways")]
    fn pick_with_no_gateways_panics() {
        let dir = GatewayDirectory { gateways: vec![] };
        dir.pick(0);
    }
}
