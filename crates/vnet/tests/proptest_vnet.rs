//! Property tests for the virtual-network layer: placement/DB coherence
//! across arbitrary migration histories, and gateway balancing quality.

use proptest::prelude::*;
use sv2p_topology::FatTreeConfig;
use sv2p_vnet::{ApplyError, GatewayDirectory, MappingDb, MappingDelta, MappingOp, Placement};

/// The pre-compaction `MappingDb`: plain HashMaps, the behavioral oracle
/// the open-addressed layout must be indistinguishable from (lookups,
/// deltas, epochs, errors, and migration instants alike).
#[derive(Default)]
struct OracleDb {
    map: std::collections::HashMap<u32, u32>,
    last_migration: std::collections::HashMap<u32, u64>,
    epoch: u64,
}

impl OracleDb {
    fn try_apply(&mut self, op: MappingOp) -> Result<MappingDelta, ApplyError> {
        use sv2p_packet::{Pip, Vip};
        let delta = match op {
            MappingOp::Install { vip, pip } => {
                let old = self.map.insert(vip.0, pip.0).map(Pip);
                self.epoch += 1;
                MappingDelta { vip, old, new: Some(pip), epoch: self.epoch }
            }
            MappingOp::Invalidate { vip } => {
                let old = self.map.remove(&vip.0).map(Pip);
                self.last_migration.remove(&vip.0);
                self.epoch += 1;
                MappingDelta { vip, old, new: None, epoch: self.epoch }
            }
            MappingOp::Migrate { vip, to_pip, at_ns } => {
                if !self.map.contains_key(&vip.0) {
                    return Err(ApplyError::UnknownVip(Vip(vip.0)));
                }
                let old = self.map.insert(vip.0, to_pip.0).map(Pip);
                self.epoch += 1;
                if let Some(at) = at_ns {
                    self.last_migration.insert(vip.0, at);
                }
                MappingDelta { vip, old, new: Some(to_pip), epoch: self.epoch }
            }
        };
        Ok(delta)
    }
}

/// Arbitrary op over a small VIP universe so sequences collide, migrate
/// absent VIPs, and churn the same keys repeatedly.
fn arb_op() -> impl Strategy<Value = MappingOp> {
    use sv2p_packet::{Pip, Vip};
    prop_oneof![
        (0u32..48, 1u32..1_000).prop_map(|(v, p)| MappingOp::Install { vip: Vip(v), pip: Pip(p) }),
        (0u32..48).prop_map(|v| MappingOp::Invalidate { vip: Vip(v) }),
        (0u32..48, 1u32..1_000, proptest::option::of(0u64..1_000_000)).prop_map(
            |(v, p, at)| MappingOp::Migrate { vip: Vip(v), to_pip: Pip(p), at_ns: at }
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn db_and_placement_agree_across_migrations(
        moves in proptest::collection::vec((0usize..64, 0usize..32), 0..60),
    ) {
        let topo = FatTreeConfig::scaled_ft8(2).build();
        let mut placement = Placement::uniform(&topo, 1); // 128 VMs
        let mut db = placement.seed_db();
        let servers: Vec<_> = topo.servers().map(|n| (n.id, n.pip)).collect();
        for (vm, srv) in moves {
            let vm = vm % placement.len();
            let (node, pip) = servers[srv % servers.len()];
            db.apply(MappingOp::Migrate { vip: placement.vips[vm], to_pip: pip, at_ns: None });
            placement.relocate(vm, node, pip);
        }
        // Invariant: the DB and the placement answer identically for every VM.
        for i in 0..placement.len() {
            prop_assert_eq!(db.lookup(placement.vips[i]), Some(placement.pip_of(i)));
        }
        prop_assert_eq!(db.len(), placement.len());
    }

    #[test]
    fn vms_on_is_consistent_with_node_of(
        moves in proptest::collection::vec((0usize..64, 0usize..16), 0..40),
    ) {
        let topo = FatTreeConfig::scaled_ft8(2).build();
        let mut placement = Placement::uniform(&topo, 2);
        let servers: Vec<_> = topo.servers().map(|n| (n.id, n.pip)).collect();
        for (vm, srv) in moves {
            let vm = vm % placement.len();
            let (node, pip) = servers[srv % servers.len()];
            placement.relocate(vm, node, pip);
        }
        let mut total = 0;
        for &(node, _) in &servers {
            for vm in placement.vms_on(node) {
                prop_assert_eq!(placement.node_of(vm), node);
            }
            total += placement.vms_on(node).len();
        }
        prop_assert_eq!(total, placement.len());
    }

    #[test]
    fn compact_db_is_indistinguishable_from_hashmap_oracle(
        ops in proptest::collection::vec(arb_op(), 0..400),
    ) {
        use sv2p_packet::Vip;
        let mut compact = MappingDb::new();
        let mut oracle = OracleDb::default();
        for op in ops {
            let a = compact.try_apply(op);
            let b = oracle.try_apply(op);
            prop_assert_eq!(a, b, "divergent result for {:?}", op);
        }
        // End states agree on every observable: lookups (present and
        // absent), membership, len, epoch, and migration instants.
        prop_assert_eq!(compact.len(), oracle.map.len());
        prop_assert_eq!(compact.epoch(), oracle.epoch);
        for v in 0u32..48 {
            prop_assert_eq!(
                compact.lookup(Vip(v)).map(|p| p.0),
                oracle.map.get(&v).copied()
            );
            prop_assert_eq!(compact.contains(Vip(v)), oracle.map.contains_key(&v));
            prop_assert_eq!(
                compact.last_migration_ns(Vip(v)),
                oracle.last_migration.get(&v).copied()
            );
        }
        // iter() yields exactly the oracle's entry set (order is the
        // compact table's own, so compare as sorted sets).
        let mut got: Vec<(u32, u32)> = compact.iter().map(|(v, p)| (v.0, p.0)).collect();
        got.sort_unstable();
        let mut want: Vec<(u32, u32)> = oracle.map.iter().map(|(&v, &p)| (v, p)).collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn gateway_balancing_is_fair(seed in any::<u64>()) {
        let topo = FatTreeConfig::ft8_10k().build();
        let dir = GatewayDirectory::from_topology(&topo);
        let n = dir.len() as f64;
        let mut counts = std::collections::HashMap::new();
        let trials = 20_000u64;
        for i in 0..trials {
            *counts.entry(dir.pick(seed.wrapping_add(i))).or_insert(0u64) += 1;
        }
        // Per-flow balancing: no gateway receives more than 3x its fair
        // share over 20k flows.
        let fair = trials as f64 / n;
        for (&gw, &c) in &counts {
            prop_assert!(
                (c as f64) < 3.0 * fair,
                "gateway {gw} got {c} of {trials} flows (fair {fair})"
            );
        }
    }
}
