//! Property tests for the virtual-network layer: placement/DB coherence
//! across arbitrary migration histories, and gateway balancing quality.

use proptest::prelude::*;
use sv2p_topology::FatTreeConfig;
use sv2p_vnet::{GatewayDirectory, MappingOp, Placement};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn db_and_placement_agree_across_migrations(
        moves in proptest::collection::vec((0usize..64, 0usize..32), 0..60),
    ) {
        let topo = FatTreeConfig::scaled_ft8(2).build();
        let mut placement = Placement::uniform(&topo, 1); // 128 VMs
        let mut db = placement.seed_db();
        let servers: Vec<_> = topo.servers().map(|n| (n.id, n.pip)).collect();
        for (vm, srv) in moves {
            let vm = vm % placement.len();
            let (node, pip) = servers[srv % servers.len()];
            db.apply(MappingOp::Migrate { vip: placement.vips[vm], to_pip: pip, at_ns: None });
            placement.relocate(vm, node, pip);
        }
        // Invariant: the DB and the placement answer identically for every VM.
        for i in 0..placement.len() {
            prop_assert_eq!(db.lookup(placement.vips[i]), Some(placement.pip_of(i)));
        }
        prop_assert_eq!(db.len(), placement.len());
    }

    #[test]
    fn vms_on_is_consistent_with_node_of(
        moves in proptest::collection::vec((0usize..64, 0usize..16), 0..40),
    ) {
        let topo = FatTreeConfig::scaled_ft8(2).build();
        let mut placement = Placement::uniform(&topo, 2);
        let servers: Vec<_> = topo.servers().map(|n| (n.id, n.pip)).collect();
        for (vm, srv) in moves {
            let vm = vm % placement.len();
            let (node, pip) = servers[srv % servers.len()];
            placement.relocate(vm, node, pip);
        }
        let mut total = 0;
        for &(node, _) in &servers {
            for vm in placement.vms_on(node) {
                prop_assert_eq!(placement.node_of(vm), node);
            }
            total += placement.vms_on(node).len();
        }
        prop_assert_eq!(total, placement.len());
    }

    #[test]
    fn gateway_balancing_is_fair(seed in any::<u64>()) {
        let topo = FatTreeConfig::ft8_10k().build();
        let dir = GatewayDirectory::from_topology(&topo);
        let n = dir.len() as f64;
        let mut counts = std::collections::HashMap::new();
        let trials = 20_000u64;
        for i in 0..trials {
            *counts.entry(dir.pick(seed.wrapping_add(i))).or_insert(0u64) += 1;
        }
        // Per-flow balancing: no gateway receives more than 3x its fair
        // share over 20k flows.
        let fair = trials as f64 / n;
        for (&gw, &c) in &counts {
            prop_assert!(
                (c as f64) < 3.0 * fair,
                "gateway {gw} got {c} of {trials} flows (fair {fair})"
            );
        }
    }
}
