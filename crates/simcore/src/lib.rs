//! Discrete-event simulation core for the SwitchV2P reproduction.
//!
//! This crate replaces the NS3 scheduler used by the paper's artifact with a
//! small, deterministic, single-threaded event engine:
//!
//! * [`SimTime`] / [`SimDuration`] — virtual time with nanosecond resolution.
//! * [`EventQueue`] — a timing-wheel calendar with stable FIFO ordering
//!   among simultaneous events, so runs are bit-for-bit repeatable.
//! * [`FxHashMap`] / [`FxHashSet`] — seedless deterministic fast hashing
//!   for hot per-packet maps (std's SipHash + random seed is the wrong
//!   trade inside a simulator).
//! * [`TimerWheel`] — cancellable timers layered on top of the calendar
//!   (used by TCP retransmission and the control plane).
//! * [`SimRng`] — a seedable, splittable pseudo-random stream so that every
//!   component draws from an independent, reproducible sequence.
//!
//! The engine is intentionally synchronous: a packet-level data-center
//! simulator is CPU-bound, and single-threaded determinism is worth more than
//! concurrency inside one run (parameter sweeps parallelize across runs
//! instead — see the `sv2p-bench` crate).
//!
//! ```
//! use sv2p_simcore::{EventQueue, SimDuration, SimTime};
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.schedule_at(SimTime::from_micros(40), "gateway done");
//! q.schedule_in(SimDuration::from_micros(1), "link arrival");
//! let first = q.pop().unwrap();
//! assert_eq!(first.payload, "link arrival");
//! assert_eq!(q.now(), SimTime::from_micros(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod hash;
pub mod rng;
pub mod stats;
pub mod time;
pub mod timer;

pub use event::{EventQueue, ScheduledEvent};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use timer::{TimerHandle, TimerWheel};
