//! Discrete-event simulation core for the SwitchV2P reproduction.
//!
//! This crate replaces the NS3 scheduler used by the paper's artifact with a
//! small, deterministic, single-threaded event engine:
//!
//! * [`SimTime`] / [`SimDuration`] — virtual time with nanosecond resolution.
//! * [`EventQueue`] — a timing-wheel calendar with stable FIFO ordering
//!   among simultaneous events, so runs are bit-for-bit repeatable.
//! * [`FxHashMap`] / [`FxHashSet`] — seedless deterministic fast hashing
//!   for hot per-packet maps (std's SipHash + random seed is the wrong
//!   trade inside a simulator).
//! * [`TimerWheel`] — cancellable timers layered on top of the calendar
//!   (used by TCP retransmission and the control plane).
//! * [`SimRng`] — a seedable, splittable pseudo-random stream so that every
//!   component draws from an independent, reproducible sequence.
//!
//! The core calendar is synchronous; parallelism enters one level up.
//! [`shard`] provides the per-shard state and deterministic journal-merge
//! machinery for the windowed multi-core engine (`sv2p-netsim`'s
//! `ShardedSimulation`), which partitions a run by topology pod yet
//! reproduces the single-threaded `(time, seq)` execution order exactly.
//! Parameter sweeps additionally parallelize across runs — see the
//! `sv2p-bench` crate.
//!
//! ```
//! use sv2p_simcore::{EventQueue, SimDuration, SimTime};
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.schedule_at(SimTime::from_micros(40), "gateway done");
//! q.schedule_in(SimDuration::from_micros(1), "link arrival");
//! let first = q.pop().unwrap();
//! assert_eq!(first.payload, "link arrival");
//! assert_eq!(q.now(), SimTime::from_micros(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod hash;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod time;
pub mod timer;

pub use event::{EventQueue, ScheduledEvent};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use rng::SimRng;
pub use shard::{merge_journals, JournalBlock, SeqRef, ShardState};
pub use time::{SimDuration, SimTime};
pub use timer::{TimerHandle, TimerWheel};
