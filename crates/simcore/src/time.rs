//! Virtual time with nanosecond resolution.
//!
//! All latencies in the paper are quoted in microseconds (1 µs link
//! propagation, 40 µs gateway processing, 12 µs base RTT), while serialization
//! times at 100 Gb/s are fractions of a microsecond, so nanoseconds are the
//! natural resolution. A `u64` nanosecond counter overflows after ~584 years
//! of simulated time, far beyond any experiment here.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in virtual time, measured in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time since start as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Time since start as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier` is
    /// in the future (clock skew never occurs in-sim, but callers that race
    /// timers against packet arrivals appreciate the total function).
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked duration since `earlier`; `None` if `earlier > self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable duration; used as an "infinite" sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// Negative and non-finite inputs clamp to zero: they only arise from
    /// degenerate analytic expressions (e.g. a zero-rate source) where "never"
    /// is handled by the caller.
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_finite() && s > 0.0 {
            SimDuration((s * 1e9).round() as u64)
        } else {
            SimDuration(0)
        }
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// The serialization time of `bytes` at `bits_per_sec` line rate.
    ///
    /// This is the store-and-forward transmission delay used by every link in
    /// the simulator. Rounds up so that back-to-back packets never overlap.
    pub fn serialization(bytes: u32, bits_per_sec: u64) -> Self {
        debug_assert!(bits_per_sec > 0, "link rate must be positive");
        let bits = bytes as u128 * 8;
        let ns = (bits * 1_000_000_000).div_ceil(bits_per_sec as u128);
        SimDuration(ns as u64)
    }

    /// Saturating multiplication by an integer factor.
    pub fn saturating_mul(self, k: u64) -> Self {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.saturating_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", fmt_ns(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_micros(12).as_nanos(), 12_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_secs(2).as_secs_f64(), 2.0);
        assert_eq!(SimDuration::from_micros(40).as_micros_f64(), 40.0);
    }

    #[test]
    fn arithmetic_is_saturating() {
        let t = SimTime::from_nanos(10);
        assert_eq!((t - SimDuration::from_nanos(20)).as_nanos(), 0);
        assert_eq!(SimTime::MAX + SimDuration::from_nanos(1), SimTime::MAX);
        assert_eq!(
            SimTime::from_nanos(5).saturating_since(SimTime::from_nanos(9)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimTime::from_nanos(5).checked_since(SimTime::from_nanos(9)),
            None
        );
    }

    #[test]
    fn serialization_delay_matches_line_rate() {
        // 1500 B at 100 Gb/s = 120 ns.
        assert_eq!(
            SimDuration::serialization(1500, 100_000_000_000).as_nanos(),
            120
        );
        // 1500 B at 400 Gb/s = 30 ns.
        assert_eq!(
            SimDuration::serialization(1500, 400_000_000_000).as_nanos(),
            30
        );
        // Rounds up: 1 B at 3 b/s = ceil(8/3 * 1e9).
        assert_eq!(
            SimDuration::serialization(1, 3).as_nanos(),
            (8_u64 * 1_000_000_000).div_ceil(3)
        );
    }

    #[test]
    fn from_secs_f64_clamps_degenerate_inputs() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1.5e-9).as_nanos(), 2);
    }

    #[test]
    fn display_uses_human_units() {
        assert_eq!(SimTime::from_nanos(500).to_string(), "500ns");
        assert_eq!(SimTime::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimTime::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_secs(1).to_string(), "1.000s");
    }

    #[test]
    fn duration_sum_and_scalar_ops() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total, SimDuration::from_micros(10));
        assert_eq!(total / 2, SimDuration::from_micros(5));
        assert_eq!(total * 3, SimDuration::from_micros(30));
    }
}
