//! Deterministic, splittable random-number streams.
//!
//! Every stochastic component (workload generator, ECMP perturbation, learning
//! packet coin flips) receives its own [`SimRng`] forked from a single
//! experiment seed. Forking uses SplitMix64 on a stream label so that adding a
//! new consumer never perturbs the draws seen by existing ones — the property
//! that keeps A/B comparisons between translation schemes noise-free.

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::{Rng, RngCore, SeedableRng};

/// A 64-bit state xorshift-star generator seeded via SplitMix64.
///
/// Small, fast, and adequate for simulation workloads; statistical quality
/// matches `rand`'s SmallRng family. We hand-roll it (on top of the `rand`
/// traits) so that the exact stream is stable across `rand` version bumps —
/// reproductions should not change results when a dependency updates.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

const SPLITMIX_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(SPLITMIX_GAMMA);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a stream from an experiment seed.
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        // Warm up through SplitMix so that small seeds (0, 1, 2, ...) yield
        // uncorrelated streams.
        let state = splitmix64(&mut s) ^ splitmix64(&mut s);
        SimRng {
            state: if state == 0 { SPLITMIX_GAMMA } else { state },
        }
    }

    /// Forks an independent stream labeled by `label`.
    ///
    /// `fork(a) != fork(b)` for `a != b`, and forking does not advance the
    /// parent stream.
    pub fn fork(&self, label: u64) -> SimRng {
        let mut s = self.state ^ label.wrapping_mul(SPLITMIX_GAMMA);
        let state = splitmix64(&mut s) ^ splitmix64(&mut s);
        SimRng {
            state: if state == 0 { SPLITMIX_GAMMA } else { state },
        }
    }

    /// Next raw 64-bit value (xorshift64*).
    #[inline]
    pub fn next_u64_raw(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A uniform draw in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in the given range (delegates to `rand`).
    #[inline]
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        Rng::gen_range(self, range)
    }

    /// A Bernoulli trial with success probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// An exponential draw with the given mean (inverse-CDF method).
    ///
    /// Used for Poisson flow inter-arrival times. A zero or negative mean
    /// returns zero.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        // 1 - uniform() is in (0, 1], so ln() is finite.
        -mean * (1.0 - self.uniform()).ln()
    }

    /// Chooses a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.gen_range(0..items.len())]
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range(0..=i);
            items.swap(i, j);
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64_raw() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next_u64_raw()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64_raw().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64_raw().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for SimRng {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        SimRng::new(u64::from_le_bytes(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64_raw(), b.next_u64_raw());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100)
            .filter(|_| a.next_u64_raw() == b.next_u64_raw())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_independent_and_stable() {
        let parent = SimRng::new(7);
        let mut f1 = parent.fork(1);
        let mut f2 = parent.fork(2);
        assert_ne!(f1.next_u64_raw(), f2.next_u64_raw());
        // Forking again with the same label reproduces the stream.
        let mut f1b = parent.fork(1);
        let mut f1c = parent.fork(1);
        for _ in 0..100 {
            assert_eq!(f1b.next_u64_raw(), f1c.next_u64_raw());
        }
    }

    #[test]
    fn uniform_is_in_unit_interval_and_roughly_uniform() {
        let mut rng = SimRng::new(3);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn exponential_has_requested_mean() {
        let mut rng = SimRng::new(9);
        let n = 200_000;
        let mean_target = 25.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean_target)).sum();
        let mean = sum / n as f64;
        assert!(
            (mean - mean_target).abs() / mean_target < 0.02,
            "mean {mean} vs {mean_target}"
        );
        assert_eq!(rng.exponential(0.0), 0.0);
    }

    #[test]
    fn chance_matches_probability() {
        let mut rng = SimRng::new(11);
        let n = 200_000;
        let hits = (0..n).filter(|_| rng.chance(0.005)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.005).abs() < 0.001, "rate {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left input sorted");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SimRng::new(13);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
