//! The event calendar: a binary-heap priority queue with deterministic
//! tie-breaking.
//!
//! Two events scheduled for the same instant pop in the order they were
//! pushed (FIFO), which makes whole simulations reproducible regardless of
//! heap internals. The payload type is generic so unit tests can drive the
//! queue with plain integers while the network simulator uses its own event
//! enum.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event stamped with its due time and a monotone sequence number.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Push order, used to break ties among simultaneous events.
    pub seq: u64,
    /// The caller's payload.
    pub payload: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event calendar.
///
/// Invariants:
/// * events pop in nondecreasing time order;
/// * among equal times, in push (FIFO) order;
/// * scheduling in the past is a logic error and panics in debug builds
///   (in release it clamps to "now", which keeps long batch sweeps alive).
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
    now: SimTime,
    popped: u64,
    peak_len: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty calendar positioned at t = 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
            peak_len: 0,
        }
    }

    /// Creates an empty calendar with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
            peak_len: 0,
        }
    }

    /// The current virtual time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.popped
    }

    /// Largest number of simultaneously pending events seen so far (the
    /// calendar's memory high-water mark, reported by run manifests).
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// Returns the sequence number, which uniquely identifies the scheduling
    /// (timers use it for lazy cancellation).
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> u64 {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at:?} < now {:?}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent {
            time: at,
            seq,
            payload,
        });
        self.peak_len = self.peak_len.max(self.heap.len());
        seq
    }

    /// Schedules `payload` after a delay from the current time.
    pub fn schedule_in(&mut self, delay: crate::time::SimDuration, payload: E) -> u64 {
        self.schedule_at(self.now + delay, payload)
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.time >= self.now, "heap produced an out-of-order event");
        self.now = ev.time;
        self.popped += 1;
        Some(ev)
    }

    /// The timestamp of the next pending event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(30), "c");
        q.schedule_at(SimTime::from_nanos(10), "a");
        q.schedule_at(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime::from_nanos(30));
        assert_eq!(q.events_executed(), 3);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(100), 0);
        q.pop();
        q.schedule_in(SimDuration::from_nanos(50), 1);
        let e = q.pop().unwrap();
        assert_eq!(e.time, SimTime::from_nanos(150));
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(10), 1);
        q.schedule_at(SimTime::from_nanos(40), 4);
        assert_eq!(q.pop().unwrap().payload, 1);
        q.schedule_at(SimTime::from_nanos(20), 2);
        q.schedule_at(SimTime::from_nanos(30), 3);
        let rest: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(rest, vec![2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    #[cfg(debug_assertions)]
    fn scheduling_in_the_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(100), ());
        q.pop();
        q.schedule_at(SimTime::from_nanos(50), ());
    }

    #[test]
    fn peak_len_tracks_high_water_mark() {
        let mut q = EventQueue::new();
        assert_eq!(q.peak_len(), 0);
        q.schedule_at(SimTime::from_nanos(10), 1);
        q.schedule_at(SimTime::from_nanos(20), 2);
        q.schedule_at(SimTime::from_nanos(30), 3);
        assert_eq!(q.peak_len(), 3);
        q.pop();
        q.pop();
        q.schedule_at(SimTime::from_nanos(40), 4);
        // Draining below the peak must not lower it.
        assert_eq!(q.peak_len(), 3);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn peek_does_not_advance_clock() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(10), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(10)));
        assert_eq!(q.now(), SimTime::ZERO);
    }
}
