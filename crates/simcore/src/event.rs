//! The event calendar: a timing-wheel (calendar queue) with deterministic
//! tie-breaking.
//!
//! Two events scheduled for the same instant pop in the order they were
//! pushed (FIFO), which makes whole simulations reproducible regardless of
//! calendar internals. The payload type is generic so unit tests can drive
//! the queue with plain integers while the network simulator uses its own
//! event enum.
//!
//! # Structure
//!
//! A binary heap pays `O(log n)` per operation with `n` = *every* pending
//! event; at FT16-400K scale the calendar holds tens of thousands of events
//! and those comparisons (each moving a full event payload) dominate the
//! scheduler. The calendar queue exploits the fact that simulation events
//! are overwhelmingly near-future (link serializations, per-hop delays) and
//! sorts only what is about to execute:
//!
//! * **ready** — a small binary heap holding just the events in the current
//!   128 ns slot. Only these are ever compared, so the total `(time, seq)`
//!   order among them is exact — this is what keeps pop order byte-identical
//!   to the old global heap.
//! * **wheel** — 8192 slots of 128 ns (≈1 ms horizon), each an *unsorted*
//!   bucket, indexed by absolute slot number modulo the wheel size, with a
//!   bitmap for O(words) next-occupied-slot scans. Scheduling is O(1).
//! * **overflow** — a binary heap for the rare events beyond the horizon
//!   (RTO-scale timers, pre-scheduled flow starts). Each migrates into the
//!   wheel when the cursor comes within one rotation of it.
//!
//! Pop drains the ready heap; when it empties, the cursor jumps to the next
//! occupied slot (or the earliest overflow event, whichever is sooner), any
//! overflow events now within the horizon drop into the wheel, and the new
//! slot's bucket is dumped into the ready heap. Because an event is only
//! ever bucketed by a slot ≥ the cursor (scheduling into the past is
//! clamped), every event is heapified exactly once, in its final slot.
//!
//! The old single-heap implementation survives as a `#[cfg(test)]` oracle;
//! an equivalence proptest checks the two produce identical `(time, seq,
//! payload)` pop sequences on random schedules, including same-timestamp
//! ties and far-future overflow events.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event stamped with its due time and a monotone sequence number.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Push order, used to break ties among simultaneous events.
    pub seq: u64,
    /// The caller's payload.
    pub payload: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// log2 of the slot width: 128 ns per slot, finer than any link delay in
/// the fat-tree configs (1 µs) so back-to-back hops land in distinct slots.
const SLOT_NS_SHIFT: u64 = 7;
/// log2 of the slot count: 8192 slots × 128 ns ≈ 1.05 ms horizon, wide
/// enough that only RTO-scale timers and pre-scheduled flow starts overflow.
const SLOT_BITS: u64 = 13;
/// Number of wheel slots (power of two so modulo is a mask).
const NSLOTS: u64 = 1 << SLOT_BITS;
/// Ring-index mask.
const SLOT_MASK: u64 = NSLOTS - 1;
/// Bitmap words covering the wheel.
const BITMAP_WORDS: usize = (NSLOTS / 64) as usize;

/// A deterministic discrete-event calendar.
///
/// Invariants:
/// * events pop in nondecreasing time order;
/// * among equal times, in push (FIFO) order;
/// * scheduling in the past is a logic error and panics in debug builds
///   (in release it clamps to "now", which keeps long batch sweeps alive).
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Events in the current slot, fully ordered by `(time, seq)`.
    ready: BinaryHeap<ScheduledEvent<E>>,
    /// Unsorted near-future buckets; index = absolute slot & `SLOT_MASK`.
    slots: Vec<Vec<ScheduledEvent<E>>>,
    /// One bit per wheel slot: bucket non-empty.
    occupied: [u64; BITMAP_WORDS],
    /// Events at least one rotation ahead of the cursor.
    overflow: BinaryHeap<ScheduledEvent<E>>,
    /// Absolute slot number of `now` (not wrapped).
    cursor: u64,
    /// Pending events across ready + wheel + overflow.
    pending: usize,
    next_seq: u64,
    now: SimTime,
    popped: u64,
    peak_len: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty calendar positioned at t = 0.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty calendar with pre-allocated capacity (spread over
    /// the ready and overflow heaps; wheel buckets grow on demand).
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            ready: BinaryHeap::with_capacity(cap / 2),
            slots: (0..NSLOTS).map(|_| Vec::new()).collect(),
            occupied: [0u64; BITMAP_WORDS],
            overflow: BinaryHeap::with_capacity(cap / 2),
            cursor: 0,
            pending: 0,
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
            peak_len: 0,
        }
    }

    /// The current virtual time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.pending
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Total number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.popped
    }

    /// Largest number of simultaneously pending events seen so far (the
    /// calendar's memory high-water mark, reported by run manifests).
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Where the pending events currently sit: `(ready, wheel, overflow)`.
    /// `ready` and `overflow` are the two heaps (the only `O(log n)`
    /// structures); `wheel` is everything parked in `O(1)` slots. The
    /// profiler samples this to histogram calendar occupancy — a growing
    /// overflow share would mean the wheel horizon no longer fits the
    /// workload's timer spread.
    pub fn occupancy_breakdown(&self) -> (usize, usize, usize) {
        let ready = self.ready.len();
        let overflow = self.overflow.len();
        (ready, self.pending - ready - overflow, overflow)
    }

    #[inline]
    fn slot_of(t: SimTime) -> u64 {
        t.as_nanos() >> SLOT_NS_SHIFT
    }

    #[inline]
    fn bit_is_set(&self, ring: usize) -> bool {
        self.occupied[ring / 64] & (1u64 << (ring % 64)) != 0
    }

    #[inline]
    fn set_bit(&mut self, ring: usize) {
        self.occupied[ring / 64] |= 1u64 << (ring % 64);
    }

    #[inline]
    fn clear_bit(&mut self, ring: usize) {
        self.occupied[ring / 64] &= !(1u64 << (ring % 64));
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// Returns the sequence number, which uniquely identifies the scheduling
    /// (timers use it for lazy cancellation).
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> u64 {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at:?} < now {:?}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        let ev = ScheduledEvent {
            time: at,
            seq,
            payload,
        };
        let slot = Self::slot_of(at);
        debug_assert!(slot >= self.cursor, "slot behind the cursor");
        if slot == self.cursor {
            self.ready.push(ev);
        } else if slot - self.cursor < NSLOTS {
            self.put_in_wheel(slot, ev);
        } else {
            self.overflow.push(ev);
        }
        self.pending += 1;
        self.peak_len = self.peak_len.max(self.pending);
        seq
    }

    /// Schedules `payload` after a delay from the current time.
    pub fn schedule_in(&mut self, delay: crate::time::SimDuration, payload: E) -> u64 {
        self.schedule_at(self.now + delay, payload)
    }

    /// Consumes and returns the next sequence number without scheduling
    /// anything. The sharded engine uses this to mirror the single-threaded
    /// calendar's sequence stream for events that a shard already executed
    /// locally (they never enter this queue, but they did consume a
    /// sequence number in the reference execution).
    pub fn reserve_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Consumes `n` consecutive sequence numbers and returns the first.
    /// The sharded driver grants these blocks to shards whose events
    /// scheduled children during a window, reproducing the single-threaded
    /// calendar's per-event consecutive seq assignment.
    pub fn reserve_seqs(&mut self, n: u64) -> u64 {
        let base = self.next_seq;
        self.next_seq += n;
        base
    }

    /// Schedules `payload` at `at` under an externally-assigned sequence
    /// number, leaving this queue's own seq counter untouched. Shard-local
    /// calendars are fed exclusively through this: real seqs come from the
    /// driver's global counter, provisional seqs carry a high tag bit so
    /// they order after every real seq at the same instant (a child
    /// scheduled mid-window always has a larger global seq than anything
    /// scheduled before the window opened).
    pub fn schedule_at_seq(&mut self, at: SimTime, seq: u64, payload: E) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at:?} < now {:?}",
            self.now
        );
        let at = at.max(self.now);
        let ev = ScheduledEvent {
            time: at,
            seq,
            payload,
        };
        let slot = Self::slot_of(at);
        debug_assert!(slot >= self.cursor, "slot behind the cursor");
        if slot == self.cursor {
            self.ready.push(ev);
        } else if slot - self.cursor < NSLOTS {
            self.put_in_wheel(slot, ev);
        } else {
            self.overflow.push(ev);
        }
        self.pending += 1;
        self.peak_len = self.peak_len.max(self.pending);
    }

    #[inline]
    fn put_in_wheel(&mut self, slot: u64, ev: ScheduledEvent<E>) {
        let ring = (slot & SLOT_MASK) as usize;
        self.slots[ring].push(ev);
        self.set_bit(ring);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        if self.ready.is_empty() {
            if self.pending == 0 {
                return None;
            }
            self.advance();
        }
        let ev = self.ready.pop().expect("advance refilled the ready heap");
        debug_assert!(ev.time >= self.now, "calendar produced an out-of-order event");
        self.pending -= 1;
        self.now = ev.time;
        self.popped += 1;
        Some(ev)
    }

    /// Pops the next event only if its `(time, seq)` key is strictly below
    /// the boundary `(bt, bseq)`; otherwise leaves the calendar untouched
    /// and returns `None`. This is the conservative-PDES window pop: a
    /// shard drains everything before the boundary, then parks. The cursor
    /// only advances into slots at or before the boundary's slot, so
    /// boundary-time inserts arriving between windows never land behind it.
    pub fn pop_before(&mut self, bt: SimTime, bseq: u64) -> Option<ScheduledEvent<E>> {
        if self.ready.is_empty() {
            if self.pending == 0 {
                return None;
            }
            let target = self.next_slot().expect("pending > 0 but no occupied slot");
            if target > Self::slot_of(bt) {
                return None;
            }
            self.advance_to(target);
        }
        let top = self.ready.peek().expect("ready refilled or non-empty");
        if (top.time, top.seq) < (bt, bseq) {
            let ev = self.ready.pop().expect("peeked");
            self.pending -= 1;
            self.now = ev.time;
            self.popped += 1;
            Some(ev)
        } else {
            None
        }
    }

    /// The absolute slot of the earliest non-ready event (wheel or
    /// overflow). Precondition for `Some`: `pending > ready.len()` or the
    /// queue holds at least one non-ready event.
    fn next_slot(&self) -> Option<u64> {
        let next_wheel = self.next_occupied_after(self.cursor);
        let next_over = self.overflow.peek().map(|e| Self::slot_of(e.time));
        match (next_wheel, next_over) {
            (Some(w), Some(o)) => Some(w.min(o)),
            (Some(w), None) => Some(w),
            (None, Some(o)) => Some(o),
            (None, None) => None,
        }
    }

    /// Jumps the cursor to the next slot holding events and refills the
    /// ready heap from it. Precondition: ready empty, `pending > 0`.
    fn advance(&mut self) {
        let target = self.next_slot().expect("pending > 0 but no occupied slot");
        self.advance_to(target);
    }

    /// Moves the cursor to `target` and dumps that slot (plus any overflow
    /// events coming within a rotation) into the ready heap.
    fn advance_to(&mut self, target: u64) {
        self.cursor = target;
        // Overflow events now within one rotation drop into the wheel (or
        // straight into ready, for the slot being opened).
        while let Some(top) = self.overflow.peek() {
            let slot = Self::slot_of(top.time);
            if slot >= target + NSLOTS {
                break;
            }
            let ev = self.overflow.pop().expect("peeked");
            if slot == target {
                self.ready.push(ev);
            } else {
                self.put_in_wheel(slot, ev);
            }
        }
        // Dump the target bucket; the bucket keeps its allocation for reuse.
        let ring = (target & SLOT_MASK) as usize;
        if self.bit_is_set(ring) {
            self.clear_bit(ring);
            let mut bucket = std::mem::take(&mut self.slots[ring]);
            for ev in bucket.drain(..) {
                self.ready.push(ev);
            }
            self.slots[ring] = bucket;
        }
        debug_assert!(!self.ready.is_empty(), "advance chose an empty slot");
    }

    /// The next occupied wheel slot strictly after `cur`, as an absolute
    /// slot number. The cursor's own bit is always clear (its bucket lives
    /// in the ready heap), so a full circular scan is safe.
    fn next_occupied_after(&self, cur: u64) -> Option<u64> {
        let cur_ring = (cur & SLOT_MASK) as usize;
        let ring = self
            .scan_bits(cur_ring + 1, NSLOTS as usize)
            .or_else(|| self.scan_bits(0, cur_ring))?;
        let dist = if ring > cur_ring {
            (ring - cur_ring) as u64
        } else {
            ring as u64 + NSLOTS - cur_ring as u64
        };
        Some(cur + dist)
    }

    /// First set bit with ring index in `[lo, hi)`.
    fn scan_bits(&self, lo: usize, hi: usize) -> Option<usize> {
        if lo >= hi {
            return None;
        }
        let mut w = lo / 64;
        let last_w = (hi - 1) / 64;
        let mut word = self.occupied[w] & (!0u64 << (lo % 64));
        loop {
            if w == last_w {
                let keep = hi - w * 64; // 1..=64
                if keep < 64 {
                    word &= (1u64 << keep) - 1;
                }
            }
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
            if w == last_w {
                return None;
            }
            w += 1;
            word = self.occupied[w];
        }
    }

    /// The timestamp of the next pending event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.peek_key().map(|(t, _)| t)
    }

    /// The `(time, seq)` key of the next pending event without popping it.
    /// The sharded driver peeks its global calendar through this to decide
    /// whether a window's boundary is a global event or pure lookahead.
    pub fn peek_key(&self) -> Option<(SimTime, u64)> {
        if let Some(e) = self.ready.peek() {
            return Some((e.time, e.seq));
        }
        if self.pending == 0 {
            return None;
        }
        let over = self.overflow.peek().map(|e| (e.time, e.seq));
        match self.next_occupied_after(self.cursor) {
            Some(w) if over.is_none_or(|(t, _)| Self::slot_of(t) >= w) => {
                // Earliest event is in wheel slot `w` (an overflow event in
                // the same slot may still be sooner — compare keys).
                let ring = (w & SLOT_MASK) as usize;
                let bucket_min = self.slots[ring]
                    .iter()
                    .map(|e| (e.time, e.seq))
                    .min()
                    .expect("occupied bit set on an empty bucket");
                match over {
                    Some(k) if Self::slot_of(k.0) == w => Some(bucket_min.min(k)),
                    _ => Some(bucket_min),
                }
            }
            _ => over,
        }
    }

    /// Removes and returns every pending event whose payload matches
    /// `pred`, sorted by `(time, seq)`; non-matching events stay exactly
    /// where they were. O(pending + wheel slots) — used only at migration
    /// boundaries, where a VM's not-yet-due flow events move to the flow's
    /// new owner shard with their global keys intact.
    pub fn extract_if(&mut self, mut pred: impl FnMut(&E) -> bool) -> Vec<ScheduledEvent<E>> {
        let mut out = Vec::new();
        let mut keep = BinaryHeap::with_capacity(self.ready.len());
        for ev in std::mem::take(&mut self.ready) {
            if pred(&ev.payload) {
                out.push(ev);
            } else {
                keep.push(ev);
            }
        }
        self.ready = keep;
        for ring in 0..NSLOTS as usize {
            if !self.bit_is_set(ring) {
                continue;
            }
            let bucket = &mut self.slots[ring];
            let mut i = 0;
            while i < bucket.len() {
                if pred(&bucket[i].payload) {
                    out.push(bucket.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            if bucket.is_empty() {
                self.clear_bit(ring);
            }
        }
        let mut keep = BinaryHeap::with_capacity(self.overflow.len());
        for ev in std::mem::take(&mut self.overflow) {
            if pred(&ev.payload) {
                out.push(ev);
            } else {
                keep.push(ev);
            }
        }
        self.overflow = keep;
        self.pending -= out.len();
        out.sort_by_key(|a| (a.time, a.seq));
        out
    }
}

/// The original single-binary-heap calendar, kept as a test oracle: the
/// timing wheel must reproduce its pop order event-for-event.
#[cfg(test)]
pub(crate) mod oracle {
    use super::*;

    /// Reference implementation with the same scheduling semantics.
    #[derive(Debug, Default)]
    pub struct HeapQueue<E> {
        heap: BinaryHeap<ScheduledEvent<E>>,
        next_seq: u64,
        now: SimTime,
    }

    impl<E> HeapQueue<E> {
        pub fn new() -> Self {
            HeapQueue {
                heap: BinaryHeap::new(),
                next_seq: 0,
                now: SimTime::ZERO,
            }
        }

        pub fn schedule_at(&mut self, at: SimTime, payload: E) -> u64 {
            let at = at.max(self.now);
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(ScheduledEvent {
                time: at,
                seq,
                payload,
            });
            seq
        }

        pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
            let ev = self.heap.pop()?;
            self.now = ev.time;
            Some(ev)
        }

        pub fn peek_time(&self) -> Option<SimTime> {
            self.heap.peek().map(|e| e.time)
        }

        pub fn now(&self) -> SimTime {
            self.now
        }
    }
}

#[cfg(test)]
mod tests {
    use super::oracle::HeapQueue;
    use super::*;
    use crate::time::SimDuration;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(30), "c");
        q.schedule_at(SimTime::from_nanos(10), "a");
        q.schedule_at(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime::from_nanos(30));
        assert_eq!(q.events_executed(), 3);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(100), 0);
        q.pop();
        q.schedule_in(SimDuration::from_nanos(50), 1);
        let e = q.pop().unwrap();
        assert_eq!(e.time, SimTime::from_nanos(150));
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(10), 1);
        q.schedule_at(SimTime::from_nanos(40), 4);
        assert_eq!(q.pop().unwrap().payload, 1);
        q.schedule_at(SimTime::from_nanos(20), 2);
        q.schedule_at(SimTime::from_nanos(30), 3);
        let rest: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(rest, vec![2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    #[cfg(debug_assertions)]
    fn scheduling_in_the_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(100), ());
        q.pop();
        q.schedule_at(SimTime::from_nanos(50), ());
    }

    #[test]
    fn peak_len_tracks_high_water_mark() {
        let mut q = EventQueue::new();
        assert_eq!(q.peak_len(), 0);
        q.schedule_at(SimTime::from_nanos(10), 1);
        q.schedule_at(SimTime::from_nanos(20), 2);
        q.schedule_at(SimTime::from_nanos(30), 3);
        assert_eq!(q.peak_len(), 3);
        q.pop();
        q.pop();
        q.schedule_at(SimTime::from_nanos(40), 4);
        // Draining below the peak must not lower it.
        assert_eq!(q.peak_len(), 3);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn occupancy_breakdown_partitions_pending() {
        let mut q = EventQueue::new();
        assert_eq!(q.occupancy_breakdown(), (0, 0, 0));
        q.schedule_at(SimTime::from_nanos(10), 1); // slot 0: straight to ready
        q.schedule_at(SimTime::from_nanos(500_000), 2); // within horizon: wheel
        q.schedule_at(SimTime::from_millis(50), 3); // beyond horizon: overflow
        let (ready, wheel, overflow) = q.occupancy_breakdown();
        assert_eq!(ready + wheel + overflow, q.len());
        assert_eq!(overflow, 1);
        assert_eq!(ready, 1);
        assert_eq!(wheel, 1);
        q.pop();
        q.pop();
        q.pop();
        assert_eq!(q.occupancy_breakdown(), (0, 0, 0));
    }

    #[test]
    fn peek_does_not_advance_clock() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(10), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(10)));
        assert_eq!(q.now(), SimTime::ZERO);
    }

    #[test]
    fn events_beyond_the_wheel_horizon_pop_in_order() {
        // > 1 ms deltas force the overflow path; interleave with near events.
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(50), "far");
        q.schedule_at(SimTime::from_nanos(10), "near");
        q.schedule_at(SimTime::from_millis(3), "mid");
        q.schedule_at(SimTime::from_millis(50), "far2"); // same-time tie
        assert_eq!(q.pop().unwrap().payload, "near");
        q.schedule_at(SimTime::from_millis(2), "mid0");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["mid0", "mid", "far", "far2"]);
        assert_eq!(q.now(), SimTime::from_millis(50));
    }

    #[test]
    fn wheel_wraps_across_many_rotations() {
        // March the cursor across >> NSLOTS slots with a sparse event train.
        let mut q = EventQueue::new();
        let step = SimDuration::from_nanos(900_000); // ~0.9 ms, near-horizon
        let mut expect = Vec::new();
        q.schedule_at(SimTime::ZERO, 0u32);
        for i in 1..40 {
            let at = SimTime::from_nanos(i as u64 * step.as_nanos());
            q.schedule_at(at, i);
        }
        for i in 0..40u32 {
            expect.push(i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, expect);
    }

    #[test]
    fn reserve_seqs_grants_consecutive_blocks() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert_eq!(q.reserve_seqs(3), 0);
        assert_eq!(q.reserve_seq(), 3);
        assert_eq!(q.reserve_seqs(2), 4);
        assert_eq!(q.schedule_at(SimTime::from_nanos(1), ()), 6);
    }

    #[test]
    fn explicit_seqs_control_tie_order() {
        // Inserts carry externally-assigned seqs; FIFO ties follow the seq,
        // not insertion order, and the queue's own counter is untouched.
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(64);
        q.schedule_at_seq(t, 7, "late");
        q.schedule_at_seq(t, 2, "early");
        q.schedule_at_seq(SimTime::from_millis(40), 1, "far"); // overflow path
        assert_eq!(q.pop().unwrap().payload, "early");
        assert_eq!(q.pop().unwrap().payload, "late");
        assert_eq!(q.pop().unwrap().payload, "far");
        assert_eq!(q.schedule_at(SimTime::from_millis(41), "auto"), 0);
    }

    #[test]
    fn provisional_tag_orders_after_real_seqs() {
        const PROV: u64 = 1 << 63;
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(100);
        q.schedule_at_seq(t, PROV, "child0");
        q.schedule_at_seq(t, 40, "real");
        q.schedule_at_seq(t, PROV | 1, "child1");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["real", "child0", "child1"]);
    }

    #[test]
    fn pop_before_respects_time_and_seq_boundary() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(10), "a"); // seq 0
        q.schedule_at(SimTime::from_nanos(20), "b"); // seq 1
        q.schedule_at(SimTime::from_nanos(20), "c"); // seq 2
        q.schedule_at(SimTime::from_nanos(30), "d"); // seq 3
        // Boundary at (20, seq 2): "a" and "b" drain, "c" parks.
        assert_eq!(q.pop_before(SimTime::from_nanos(20), 2).unwrap().payload, "a");
        assert_eq!(q.pop_before(SimTime::from_nanos(20), 2).unwrap().payload, "b");
        assert!(q.pop_before(SimTime::from_nanos(20), 2).is_none());
        // Next window picks "c" and "d" up where they were left.
        assert_eq!(q.pop_before(SimTime::from_nanos(100), 0).unwrap().payload, "c");
        assert_eq!(q.pop_before(SimTime::from_nanos(100), 0).unwrap().payload, "d");
        assert!(q.pop_before(SimTime::from_nanos(100), 0).is_none());
        assert_eq!(q.events_executed(), 4);
    }

    #[test]
    fn pop_before_leaves_cursor_safe_for_boundary_inserts() {
        // The only pending event is far past the boundary: pop_before must
        // not advance the cursor to it, so a later insert *at* the boundary
        // still lands on a slot >= cursor.
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_micros(500), "far");
        let bt = SimTime::from_micros(10);
        assert!(q.pop_before(bt, 0).is_none());
        q.schedule_at_seq(bt, 100, "boundary");
        assert_eq!(q.pop_before(SimTime::from_micros(600), 0).unwrap().payload, "boundary");
        assert_eq!(q.pop_before(SimTime::from_micros(600), 0).unwrap().payload, "far");
    }

    #[test]
    fn pop_before_drains_wheel_and_overflow_up_to_boundary() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(5), 0u32);
        q.schedule_at(SimTime::from_micros(300), 1); // wheel
        q.schedule_at(SimTime::from_millis(20), 2); // overflow
        let bt = SimTime::from_millis(30);
        let mut got = Vec::new();
        while let Some(e) = q.pop_before(bt, 0) {
            got.push(e.payload);
        }
        assert_eq!(got, vec![0, 1, 2]);
        assert!(q.is_empty());
    }

    #[test]
    fn peek_key_agrees_with_pop_everywhere() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(12), ());
        q.schedule_at(SimTime::from_nanos(12), ());
        q.schedule_at(SimTime::from_micros(200), ());
        q.schedule_at(SimTime::from_millis(90), ());
        while let Some(key) = q.peek_key() {
            let e = q.pop().unwrap();
            assert_eq!(key, (e.time, e.seq));
        }
        assert_eq!(q.peek_key(), None);
    }

    #[test]
    fn extract_if_pulls_matches_from_every_structure() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(3), 10u32); // ready
        q.schedule_at(SimTime::from_nanos(7), 21); // ready, odd
        q.schedule_at(SimTime::from_micros(400), 11); // wheel, odd
        q.schedule_at(SimTime::from_micros(420), 12); // wheel
        q.schedule_at(SimTime::from_millis(50), 13); // overflow, odd
        let odd = q.extract_if(|p| p % 2 == 1);
        let keys: Vec<_> = odd.iter().map(|e| e.payload).collect();
        assert_eq!(keys, vec![21, 11, 13]); // sorted by (time, seq)
        assert_eq!(q.len(), 2);
        let rest: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(rest, vec![10, 12]);
        // Re-inserting under the original keys restores global order.
        let mut q2 = EventQueue::new();
        for e in odd {
            q2.schedule_at_seq(e.time, e.seq, e.payload);
        }
        let back: Vec<_> = std::iter::from_fn(|| q2.pop().map(|e| e.payload)).collect();
        assert_eq!(back, vec![21, 11, 13]);
    }

    /// Replays one op tape against both calendars and compares every
    /// observable: peek, pop sequence (time, seq, payload), now.
    fn check_equivalence(ops: &[(u16, u8)]) {
        let mut wheel = EventQueue::new();
        let mut heap = HeapQueue::new();
        let mut next_payload = 0u32;
        for &(offset, op) in ops {
            if op % 4 == 0 {
                // Pop from both; compare the full event identity.
                let a = wheel.pop();
                let b = heap.pop();
                match (a, b) {
                    (None, None) => {}
                    (Some(x), Some(y)) => {
                        assert_eq!((x.time, x.seq, x.payload), (y.time, y.seq, y.payload));
                        assert_eq!(wheel.now(), heap.now());
                    }
                    (a, b) => panic!("pop divergence: {a:?} vs {b:?}"),
                }
            } else {
                // Shifted offsets reach from same-slot ties (shift 0) to far
                // past the wheel horizon (65535 << 11 ≈ 134 ms).
                let delta = (offset as u64) << (op % 12);
                let at = SimTime::from_nanos(wheel.now().as_nanos() + delta);
                let sa = wheel.schedule_at(at, next_payload);
                let sb = heap.schedule_at(at, next_payload);
                assert_eq!(sa, sb);
                next_payload += 1;
            }
            assert_eq!(wheel.peek_time(), heap.peek_time());
        }
        // Drain both to the end.
        loop {
            match (wheel.pop(), heap.pop()) {
                (None, None) => break,
                (Some(x), Some(y)) => {
                    assert_eq!((x.time, x.seq, x.payload), (y.time, y.seq, y.payload))
                }
                (a, b) => panic!("drain divergence: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn equivalence_on_dense_ties() {
        // Many zero and tiny offsets: every tie-breaking path.
        let ops: Vec<(u16, u8)> = (0..400)
            .map(|i| ((i % 3) as u16, (i % 7) as u8))
            .collect();
        check_equivalence(&ops);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn wheel_matches_heap_oracle(
            ops in proptest::collection::vec((any::<u16>(), any::<u8>()), 0..300)
        ) {
            check_equivalence(&ops);
        }

        #[test]
        fn windowed_pop_before_is_plain_pop(
            times in proptest::collection::vec(0u64..4_000_000u64, 1..120),
            window in 1u64..700_000,
        ) {
            // Draining through successive pop_before boundaries must yield
            // the exact pop order of an unwindowed queue.
            let mut plain = EventQueue::new();
            let mut windowed = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                plain.schedule_at(SimTime::from_nanos(t), i);
                windowed.schedule_at(SimTime::from_nanos(t), i);
            }
            let expect: Vec<_> =
                std::iter::from_fn(|| plain.pop().map(|e| (e.time, e.seq, e.payload))).collect();
            let mut got = Vec::new();
            let mut bt = 0u64;
            while !windowed.is_empty() {
                bt += window;
                while let Some(e) = windowed.pop_before(SimTime::from_nanos(bt), 0) {
                    got.push((e.time, e.seq, e.payload));
                }
            }
            prop_assert_eq!(got, expect);
        }
    }
}
