//! Deterministic fast hashing for simulation hot paths.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3 behind a per-process
//! random seed. That is the right call for servers parsing untrusted input,
//! but wrong on both axes for a simulator: the keys here (VIPs, PIPs, node
//! ids, switch tags) are small trusted integers, so DoS resistance buys
//! nothing while the 1-3 rounds cost real time on every switch hop — and the
//! random seed makes iteration order differ between processes, which is a
//! reproducibility hazard waiting for an unsorted `iter()` to slip in.
//!
//! [`FxHasher`] is the classic rustc hash (rotate, xor, multiply by a
//! Fibonacci-style constant), vendored here because the workspace builds
//! offline. It is seedless: the same keys hash identically in every process
//! on every run, so map behavior is a pure function of the inserted keys.
//!
//! Use the [`FxHashMap`] / [`FxHashSet`] aliases for hot per-packet state;
//! cold maps (config parsing, report assembly) can stay on the std default.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from FxHash: a random-looking odd constant close to
/// 2^64 / golden ratio, spreading low-entropy integer keys across buckets.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc hash function: one rotate-xor-multiply round per word.
///
/// Not cryptographic, not seeded, not DoS-resistant — by design. See the
/// module docs for why that trade is correct here.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Safe byte-chunked path (the crate forbids unsafe code): fold the
        // slice as little-endian u64 words, zero-padding the tail.
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Seedless `BuildHasher` producing [`FxHasher`]s; plug into any
/// `HashMap::with_hasher` site.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the deterministic fast hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the deterministic fast hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn identical_keys_hash_identically() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&(7u32, 9u32)), hash_of(&(7u32, 9u32)));
        assert_eq!(hash_of(&"switch"), hash_of(&"switch"));
    }

    #[test]
    fn different_keys_disperse() {
        // Not a collision-resistance claim — just a sanity check that
        // nearby integers do not collapse onto one value.
        let hashes: std::collections::HashSet<u64> =
            (0u32..1000).map(|i| hash_of(&i)).collect();
        assert_eq!(hashes.len(), 1000);
    }

    #[test]
    fn byte_writes_match_padded_words() {
        // chunks(8) zero-pads the tail, so a 3-byte write must equal the
        // corresponding padded little-endian word write.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write_u64(u64::from_le_bytes([1, 2, 3, 0, 0, 0, 0, 0]));
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<(u32, u32), u64> = FxHashMap::default();
        m.insert((1, 2), 10);
        m.insert((2, 1), 20);
        assert_eq!(m.get(&(1, 2)), Some(&10));
        assert_eq!(m.get(&(2, 1)), Some(&20));
        let mut s: FxHashSet<u32> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn hashing_is_stable_across_builders() {
        // Seedless: two independently built hashers agree, unlike
        // `RandomState` where each build gets fresh keys.
        let h1 = FxBuildHasher::default().hash_one(0xDEAD_BEEFu64);
        let h2 = FxBuildHasher::default().hash_one(0xDEAD_BEEFu64);
        assert_eq!(h1, h2);
    }
}
