//! Generic per-shard bookkeeping for conservative windowed parallel
//! simulation.
//!
//! The sharded engine splits a run into lookahead windows. Each shard owns
//! a *persistent* private [`EventQueue`] holding every pending event of its
//! partition; within a window it drains that calendar up to the window
//! boundary with [`EventQueue::pop_before`] and returns an execution
//! journal. The driver's only calendar holds global events (faults,
//! migrations, telemetry samples); its sequence counter is the global
//! `(time, seq)` authority.
//!
//! Sequence numbers make the merge exact:
//!
//! * Events scheduled *before* a window opened already carry their real
//!   global sequence number (granted at an earlier merge, or assigned by
//!   the driver at registration) — a shard inserts them with
//!   [`EventQueue::schedule_at_seq`].
//! * Events scheduled *during* a window (causal children) don't know their
//!   global seq yet. [`ShardState::sched_local`] queues them under a
//!   provisional key `PROV_BIT | ordinal`. The tag bit makes a provisional
//!   key compare greater than every real seq at the same instant — which
//!   is exactly right, because a child scheduled mid-window always receives
//!   a larger global seq than anything scheduled before the window opened.
//!   Among themselves, children order by ordinal = local scheduling order,
//!   which is their global scheduling order restricted to the shard
//!   (cross-shard events only arrive in *later* windows, thanks to the
//!   lookahead).
//! * [`merge_journals`] replays the blocks of all shards in global
//!   `(time, resolved seq)` order, resolving child ordinals through the
//!   per-shard grant vectors it accumulates, and returns those vectors so
//!   the driver can hand every shard the real seqs for the children it
//!   parked past the boundary or shipped across the cut.
//!
//! No provisional key ever survives a window: children are only queued
//! locally when they land strictly before the boundary, and the window
//! drains everything before the boundary.

use crate::event::EventQueue;
use crate::time::SimTime;

/// Tag bit marking a provisional (window-local child) sequence key.
pub const PROV_BIT: u64 = 1 << 63;

/// What a journal block's executed event corresponds to globally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqRef {
    /// An event that already carried its real global sequence number.
    Orig(u64),
    /// The n-th scheduling this shard performed in the current window
    /// (counting every scheduling — local, deferred, or cross-shard — in
    /// execution order). The merge resolves the ordinal to a global
    /// sequence number when the parent's journal record replays.
    Child(u32),
}

/// Per-window child-ordinal accounting for one shard.
#[derive(Debug, Default)]
pub struct ShardState {
    /// Schedulings performed this window (the child ordinal counter).
    sched_count: u32,
}

impl ShardState {
    /// Empty bookkeeping.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a new window: resets the per-window child ordinal counter.
    pub fn open_window(&mut self) {
        self.sched_count = 0;
    }

    /// Number of schedulings recorded so far this window.
    pub fn sched_count(&self) -> u32 {
        self.sched_count
    }

    /// Records a local child scheduling: queues `payload` at `at` under a
    /// provisional key and returns the child ordinal.
    pub fn sched_local<E>(
        &mut self,
        queue: &mut EventQueue<E>,
        at: SimTime,
        payload: E,
    ) -> u32 {
        let ord = self.sched_count;
        self.sched_count += 1;
        queue.schedule_at_seq(at, PROV_BIT | ord as u64, payload);
        ord
    }

    /// Records a scheduling whose event does not enter the local calendar
    /// yet (parked past the boundary, or bound for another shard): only an
    /// ordinal is consumed.
    pub fn sched_deferred(&mut self) -> u32 {
        let ord = self.sched_count;
        self.sched_count += 1;
        ord
    }

    /// Resolves a popped sequence key to its global identity.
    pub fn resolve(seq: u64) -> SeqRef {
        if seq & PROV_BIT != 0 {
            SeqRef::Child((seq & !PROV_BIT) as u32)
        } else {
            SeqRef::Orig(seq)
        }
    }
}

/// One journal entry boundary the merge needs: when and as-whom a shard
/// executed an event. The payload (scheds, metric ops, traces) lives in
/// the caller's journal type.
pub trait JournalBlock {
    /// Execution instant of the block.
    fn time(&self) -> SimTime;
    /// Global identity of the executed event.
    fn seq_ref(&self) -> SeqRef;
}

/// K-way merges per-shard journals back into global `(time, seq)` order.
///
/// `journals[i]` is shard `i`'s execution-ordered journal for one window.
/// `replay` is called once per block, in global order, with
/// `(shard, block)`; it must return the global sequence numbers assigned
/// to the block's schedulings, in scheduling order, so later blocks that
/// reference those children by ordinal can be positioned. Within a shard,
/// `(time, resolved seq)` is non-decreasing (local execution follows the
/// same comparator), which is what makes a streaming merge possible.
///
/// Returns the per-shard grant vectors (global seq of child ordinal `n` at
/// index `n`): the driver sends shard `i` its `child_seqs[i]` so the shard
/// can insert its parked past-boundary events under real seqs (provisional
/// keys never survive a window, so the calendar itself needs no re-keying).
pub fn merge_journals<B: JournalBlock>(
    journals: &[Vec<B>],
    mut replay: impl FnMut(usize, &B) -> Vec<u64>,
) -> Vec<Vec<u64>> {
    let mut cursors = vec![0usize; journals.len()];
    // Global seqs of each shard's window children, indexed by ordinal.
    let mut child_seqs: Vec<Vec<u64>> = vec![Vec::new(); journals.len()];
    loop {
        let mut best: Option<(SimTime, u64, usize)> = None;
        for (shard, j) in journals.iter().enumerate() {
            let Some(block) = j.get(cursors[shard]) else {
                continue;
            };
            let seq = match block.seq_ref() {
                SeqRef::Orig(s) => s,
                SeqRef::Child(ord) => child_seqs[shard][ord as usize],
            };
            let key = (block.time(), seq, shard);
            if best.is_none_or(|(t, s, _)| (key.0, key.1) < (t, s)) {
                best = Some(key);
            }
        }
        let Some((_, _, shard)) = best else { break };
        let block = &journals[shard][cursors[shard]];
        cursors[shard] += 1;
        let assigned = replay(shard, block);
        child_seqs[shard].extend(assigned);
    }
    child_seqs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    struct Block {
        time: SimTime,
        seq_ref: SeqRef,
        // Global seqs this block's scheds should be assigned (test fixture).
        scheds: Vec<u64>,
        label: u32,
    }

    impl JournalBlock for Block {
        fn time(&self) -> SimTime {
            self.time
        }
        fn seq_ref(&self) -> SeqRef {
            self.seq_ref
        }
    }

    fn b(t: u64, r: SeqRef, scheds: Vec<u64>, label: u32) -> Block {
        Block {
            time: SimTime::from_nanos(t),
            seq_ref: r,
            scheds,
            label,
        }
    }

    #[test]
    fn merge_restores_global_order_with_child_resolution() {
        // Shard 0: event seq 10 at t=5 schedules children that get global
        // seqs 100 and 101; ordinal 1 (seq 101) executes at t=7.
        // Shard 1: event seq 11 at t=5, event seq 50 at t=7.
        // Global order: (5,10), (5,11), (7,50), (7,101).
        let j0 = vec![
            b(5, SeqRef::Orig(10), vec![100, 101], 0),
            b(7, SeqRef::Child(1), vec![], 3),
        ];
        let j1 = vec![
            b(5, SeqRef::Orig(11), vec![], 1),
            b(7, SeqRef::Orig(50), vec![], 2),
        ];
        let mut order = Vec::new();
        let grants = merge_journals(&[j0, j1], |_, blk| {
            order.push(blk.label);
            blk.scheds.clone()
        });
        assert_eq!(order, vec![0, 1, 2, 3]);
        assert_eq!(grants, vec![vec![100, 101], vec![]]);
    }

    #[test]
    fn provisional_keys_round_trip_and_order_after_real_seqs() {
        let mut q: EventQueue<u32> = EventQueue::with_capacity(8);
        let mut s = ShardState::new();
        s.open_window();
        // Pre-window events carry real global seqs.
        q.schedule_at_seq(SimTime::from_nanos(3), 42, 1);
        q.schedule_at_seq(SimTime::from_nanos(4), 40, 2);
        let ord_def = s.sched_deferred();
        assert_eq!(ord_def, 0);
        // A mid-window child at the same instant as a real event pops after
        // it, regardless of insertion order.
        let ord_loc = s.sched_local(&mut q, SimTime::from_nanos(3), 3);
        assert_eq!(ord_loc, 1);
        let e1 = q.pop().unwrap();
        assert_eq!(e1.payload, 1);
        assert_eq!(ShardState::resolve(e1.seq), SeqRef::Orig(42));
        let e2 = q.pop().unwrap();
        assert_eq!(e2.payload, 3);
        assert_eq!(ShardState::resolve(e2.seq), SeqRef::Child(1));
        let e3 = q.pop().unwrap();
        assert_eq!(e3.payload, 2);
        assert_eq!(ShardState::resolve(e3.seq), SeqRef::Orig(40));
        s.open_window();
        assert_eq!(s.sched_deferred(), 0, "ordinals reset per window");
    }
}
