//! Generic per-shard bookkeeping for windowed parallel simulation.
//!
//! The sharded engine splits a run into lookahead windows. In each window a
//! coordinating driver pops the events of the window from its global
//! calendar (the single source of truth for `(time, seq)` order) and hands
//! each shard its slice. A shard executes its slice — plus any causal
//! children that land inside the window — on its private [`EventQueue`],
//! and returns an execution journal. The driver then merges the journals
//! of all shards back into global `(time, seq)` order.
//!
//! Two pieces here make that merge exact:
//!
//! * [`ShardState`] tracks, for every locally queued event, *which global
//!   event it is*: either an original driver event ([`SeqRef::Orig`], with
//!   its global sequence number) or the n-th scheduling the shard
//!   performed this window ([`SeqRef::Child`]). Local FIFO order at equal
//!   times then mirrors global order, because batch events are seeded in
//!   driver order and children are created in execution order.
//! * [`merge_journals`] performs the k-way merge by `(time, resolved
//!   seq)`, resolving child ordinals through a caller that assigns global
//!   sequence numbers as parent records replay. A child's parent always
//!   replays first (same shard, executed earlier), so resolution never
//!   blocks.
//!
//! `ShardState` deliberately does not own the queue: the simulator's event
//! loop owns its calendar, and the bookkeeping here is layered next to it
//! (the same queue serves as the oracle calendar in single-shard runs).

use crate::event::EventQueue;
use crate::time::SimTime;
use crate::FxHashMap;

/// What a locally queued event corresponds to globally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqRef {
    /// An event the driver popped from the global calendar; the payload is
    /// its global sequence number.
    Orig(u64),
    /// The n-th scheduling this shard performed in the current window
    /// (counting every scheduling, local or returned, in execution
    /// order). The driver resolves the ordinal to a global sequence
    /// number when the parent's journal record replays.
    Child(u32),
}

/// Ties every event in a shard's window-local calendar back to the global
/// `(time, seq)` order.
#[derive(Debug, Default)]
pub struct ShardState {
    /// Local seq → global identity of every event currently queued.
    seq_map: FxHashMap<u64, SeqRef>,
    /// Schedulings performed this window (the child ordinal counter).
    sched_count: u32,
}

impl ShardState {
    /// Empty bookkeeping.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a new window: resets the per-window child ordinal counter.
    /// The local queue must be empty (every window drains it).
    pub fn open_window<E>(&mut self, queue: &EventQueue<E>) {
        debug_assert!(queue.is_empty(), "window opened with events queued");
        debug_assert!(self.seq_map.is_empty(), "stale seq mappings");
        self.sched_count = 0;
    }

    /// Seeds one driver batch entry: schedules `payload` at `at` on the
    /// local queue and records that it stands for global event `orig_seq`.
    pub fn seed<E>(
        &mut self,
        queue: &mut EventQueue<E>,
        at: SimTime,
        orig_seq: u64,
        payload: E,
    ) {
        let s = queue.schedule_at(at, payload);
        self.seq_map.insert(s, SeqRef::Orig(orig_seq));
    }

    /// Records a local child scheduling: schedules `payload` at `at` and
    /// returns the child ordinal for the journal record.
    pub fn sched_local<E>(
        &mut self,
        queue: &mut EventQueue<E>,
        at: SimTime,
        payload: E,
    ) -> u32 {
        let ord = self.sched_count;
        self.sched_count += 1;
        let s = queue.schedule_at(at, payload);
        self.seq_map.insert(s, SeqRef::Child(ord));
        ord
    }

    /// Records a scheduling that returns to the driver (cross-shard or
    /// beyond the window): only an ordinal is consumed; nothing is queued
    /// locally.
    pub fn sched_returned(&mut self) -> u32 {
        let ord = self.sched_count;
        self.sched_count += 1;
        ord
    }

    /// Resolves a popped local sequence number to its global identity.
    /// Must be called exactly once per popped event.
    pub fn resolve_popped(&mut self, local_seq: u64) -> SeqRef {
        self.seq_map
            .remove(&local_seq)
            .expect("popped an event with no global identity")
    }
}

/// One journal entry boundary the merge needs: when and as-whom a shard
/// executed an event. The payload (scheds, metric ops, traces) lives in
/// the caller's journal type.
pub trait JournalBlock {
    /// Execution instant of the block.
    fn time(&self) -> SimTime;
    /// Global identity of the executed event.
    fn seq_ref(&self) -> SeqRef;
}

/// K-way merges per-shard journals back into global `(time, seq)` order.
///
/// `journals[i]` is shard `i`'s execution-ordered journal for one window.
/// `replay` is called once per block, in global order, with
/// `(shard, block)`; it must return the global sequence numbers assigned
/// to the block's schedulings, in scheduling order, so later blocks that
/// reference those children by ordinal can be positioned. Within a shard,
/// `(time, resolved seq)` is non-decreasing (local execution follows the
/// same comparator), which is what makes a streaming merge possible.
pub fn merge_journals<B: JournalBlock>(
    journals: Vec<Vec<B>>,
    mut replay: impl FnMut(usize, &B) -> Vec<u64>,
) {
    let mut cursors = vec![0usize; journals.len()];
    // Global seqs of each shard's window children, indexed by ordinal.
    let mut child_seqs: Vec<Vec<u64>> = vec![Vec::new(); journals.len()];
    loop {
        let mut best: Option<(SimTime, u64, usize)> = None;
        for (shard, j) in journals.iter().enumerate() {
            let Some(block) = j.get(cursors[shard]) else {
                continue;
            };
            let seq = match block.seq_ref() {
                SeqRef::Orig(s) => s,
                SeqRef::Child(ord) => child_seqs[shard][ord as usize],
            };
            let key = (block.time(), seq, shard);
            if best.is_none_or(|(t, s, _)| (key.0, key.1) < (t, s)) {
                best = Some(key);
            }
        }
        let Some((_, _, shard)) = best else { break };
        let block = &journals[shard][cursors[shard]];
        cursors[shard] += 1;
        let assigned = replay(shard, block);
        child_seqs[shard].extend(assigned);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    struct Block {
        time: SimTime,
        seq_ref: SeqRef,
        // Global seqs this block's scheds should be assigned (test fixture).
        scheds: Vec<u64>,
        label: u32,
    }

    impl JournalBlock for Block {
        fn time(&self) -> SimTime {
            self.time
        }
        fn seq_ref(&self) -> SeqRef {
            self.seq_ref
        }
    }

    fn b(t: u64, r: SeqRef, scheds: Vec<u64>, label: u32) -> Block {
        Block {
            time: SimTime::from_nanos(t),
            seq_ref: r,
            scheds,
            label,
        }
    }

    #[test]
    fn merge_restores_global_order_with_child_resolution() {
        // Shard 0: event seq 10 at t=5 schedules children that get global
        // seqs 100 and 101; ordinal 1 (seq 101) executes at t=7.
        // Shard 1: event seq 11 at t=5, event seq 50 at t=7.
        // Global order: (5,10), (5,11), (7,50), (7,101).
        let j0 = vec![
            b(5, SeqRef::Orig(10), vec![100, 101], 0),
            b(7, SeqRef::Child(1), vec![], 3),
        ];
        let j1 = vec![
            b(5, SeqRef::Orig(11), vec![], 1),
            b(7, SeqRef::Orig(50), vec![], 2),
        ];
        let mut order = Vec::new();
        merge_journals(vec![j0, j1], |_, blk| {
            order.push(blk.label);
            blk.scheds.clone()
        });
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn shard_state_round_trips_identities() {
        let mut q: EventQueue<u32> = EventQueue::with_capacity(8);
        let mut s = ShardState::new();
        s.open_window(&q);
        s.seed(&mut q, SimTime::from_nanos(3), 42, 1);
        s.seed(&mut q, SimTime::from_nanos(3), 43, 2);
        let ord_ret = s.sched_returned();
        assert_eq!(ord_ret, 0);
        let ord_loc = s.sched_local(&mut q, SimTime::from_nanos(4), 3);
        assert_eq!(ord_loc, 1);
        // Pop order: t=3 seeds in driver order, then the local child.
        let e1 = q.pop().unwrap();
        assert_eq!(e1.payload, 1);
        assert_eq!(s.resolve_popped(e1.seq), SeqRef::Orig(42));
        let e2 = q.pop().unwrap();
        assert_eq!(e2.payload, 2);
        assert_eq!(s.resolve_popped(e2.seq), SeqRef::Orig(43));
        let e3 = q.pop().unwrap();
        assert_eq!(e3.payload, 3);
        assert_eq!(s.resolve_popped(e3.seq), SeqRef::Child(1));
        s.open_window(&q);
        assert_eq!(s.sched_returned(), 0, "ordinals reset per window");
    }
}
