//! Cancellable timers layered on the event calendar.
//!
//! The calendar itself only supports push/pop; cancellation (needed by TCP
//! retransmission timers that are rearmed on every ACK) is implemented lazily:
//! each armed timer carries a generation number, and firing a timer whose
//! generation is stale is a no-op. This is the classic approach used by
//! production event loops — O(1) cancel, no heap surgery.

use crate::hash::FxHashMap;
use crate::time::SimTime;

/// Identifies one logical timer that may be armed, rearmed and cancelled.
///
/// The owner allocates handles from [`TimerWheel::register`]; the `(handle,
/// generation)` pair travels inside the simulator's event payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerHandle(pub u32);

/// Per-timer bookkeeping.
#[derive(Debug, Clone, Copy)]
struct TimerState {
    /// Incremented on every arm/cancel; a firing with an older generation is
    /// ignored.
    generation: u64,
    /// When the currently armed generation fires, if armed.
    deadline: Option<SimTime>,
}

/// Lazy-cancellation timer table.
///
/// The wheel does not own the calendar: `arm` returns the `(handle,
/// generation)` token that the caller must schedule, and `should_fire`
/// filters stale tokens when they pop. Keeping the two decoupled lets the
/// simulator store timer tokens inside its own event enum.
#[derive(Debug, Default)]
pub struct TimerWheel {
    timers: FxHashMap<TimerHandle, TimerState>,
    next_id: u32,
}

/// The token to embed in a scheduled event for a timer firing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerToken {
    /// Which logical timer.
    pub handle: TimerHandle,
    /// Which arming of it.
    pub generation: u64,
}

impl TimerWheel {
    /// Creates an empty wheel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a new logical timer in the disarmed state.
    pub fn register(&mut self) -> TimerHandle {
        let h = TimerHandle(self.next_id);
        self.next_id += 1;
        self.timers.insert(
            h,
            TimerState {
                generation: 0,
                deadline: None,
            },
        );
        h
    }

    /// Arms (or rearms) `handle` to fire at `deadline`.
    ///
    /// Returns the token the caller must schedule on its calendar. Any
    /// previously armed firing of this handle becomes stale.
    pub fn arm(&mut self, handle: TimerHandle, deadline: SimTime) -> TimerToken {
        let st = self.timers.get_mut(&handle).expect("unknown timer handle");
        st.generation += 1;
        st.deadline = Some(deadline);
        TimerToken {
            handle,
            generation: st.generation,
        }
    }

    /// Cancels any pending firing of `handle`.
    pub fn cancel(&mut self, handle: TimerHandle) {
        if let Some(st) = self.timers.get_mut(&handle) {
            st.generation += 1;
            st.deadline = None;
        }
    }

    /// True if the token is still the live arming of its timer. Consumes the
    /// arming: a token fires at most once.
    pub fn should_fire(&mut self, token: TimerToken) -> bool {
        match self.timers.get_mut(&token.handle) {
            Some(st) if st.generation == token.generation => {
                // Consume the arming so the same token cannot fire twice.
                st.generation += 1;
                st.deadline = None;
                true
            }
            _ => false,
        }
    }

    /// The pending deadline of `handle`, if armed.
    pub fn deadline(&self, handle: TimerHandle) -> Option<SimTime> {
        self.timers.get(&handle).and_then(|s| s.deadline)
    }

    /// True if `handle` has a pending firing.
    pub fn is_armed(&self, handle: TimerHandle) -> bool {
        self.deadline(handle).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_timer_is_disarmed() {
        let mut w = TimerWheel::new();
        let h = w.register();
        assert!(!w.is_armed(h));
        assert_eq!(w.deadline(h), None);
    }

    #[test]
    fn armed_token_fires_once() {
        let mut w = TimerWheel::new();
        let h = w.register();
        let tok = w.arm(h, SimTime::from_micros(10));
        assert!(w.is_armed(h));
        assert!(w.should_fire(tok));
        // The same token must not fire twice.
        assert!(!w.should_fire(tok));
        assert!(!w.is_armed(h));
    }

    #[test]
    fn rearm_invalidates_previous_token() {
        let mut w = TimerWheel::new();
        let h = w.register();
        let old = w.arm(h, SimTime::from_micros(10));
        let new = w.arm(h, SimTime::from_micros(20));
        assert!(!w.should_fire(old), "stale token fired");
        assert!(w.should_fire(new));
    }

    #[test]
    fn cancel_invalidates_token() {
        let mut w = TimerWheel::new();
        let h = w.register();
        let tok = w.arm(h, SimTime::from_micros(10));
        w.cancel(h);
        assert!(!w.is_armed(h));
        assert!(!w.should_fire(tok));
    }

    #[test]
    fn timers_are_independent() {
        let mut w = TimerWheel::new();
        let a = w.register();
        let b = w.register();
        let ta = w.arm(a, SimTime::from_micros(1));
        let tb = w.arm(b, SimTime::from_micros(2));
        w.cancel(a);
        assert!(!w.should_fire(ta));
        assert!(w.should_fire(tb));
    }
}
