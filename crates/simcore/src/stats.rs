//! Small statistics accumulators shared by the metrics layer and tests.

/// Streaming mean/min/max/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Running {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest observation (0 if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sample standard deviation (0 if fewer than two observations).
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Running) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        let mean = self.mean + d * other.n as f64 / n as f64;
        let m2 =
            self.m2 + other.m2 + d * d * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exact-percentile accumulator: stores samples, sorts on query.
///
/// Simulations here produce at most a few million samples per metric, so
/// exact percentiles are affordable and avoid sketch error in reported
/// numbers.
#[derive(Debug, Clone, Default)]
pub struct Percentiles {
    samples: Vec<f64>,
    sorted: bool,
}

impl Percentiles {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// The q-quantile (q in [0, 1]) by nearest-rank; 0 if empty.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.samples
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
        let q = q.clamp(0.0, 1.0);
        let n = self.samples.len();
        // Nearest-rank: the smallest value with at least ceil(q*n) samples <= it.
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        self.samples[rank - 1]
    }

    /// Arithmetic mean; 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_mean_min_max() {
        let mut r = Running::new();
        for x in [2.0, 4.0, 6.0] {
            r.push(x);
        }
        assert_eq!(r.count(), 3);
        assert!((r.mean() - 4.0).abs() < 1e-12);
        assert_eq!(r.min(), 2.0);
        assert_eq!(r.max(), 6.0);
        assert!((r.stddev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn running_empty_is_zero() {
        let r = Running::new();
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.min(), 0.0);
        assert_eq!(r.max(), 0.0);
        assert_eq!(r.stddev(), 0.0);
    }

    #[test]
    fn running_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i * 7 % 13) as f64).collect();
        let mut whole = Running::new();
        for &x in &data {
            whole.push(x);
        }
        let mut left = Running::new();
        let mut right = Running::new();
        for &x in &data[..40] {
            left.push(x);
        }
        for &x in &data[40..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.stddev() - whole.stddev()).abs() < 1e-9);
    }

    #[test]
    fn running_single_sample() {
        let mut r = Running::new();
        r.push(7.5);
        assert_eq!(r.count(), 1);
        assert_eq!(r.mean(), 7.5);
        assert_eq!(r.min(), 7.5);
        assert_eq!(r.max(), 7.5);
        assert_eq!(r.stddev(), 0.0, "one sample has no spread");
    }

    #[test]
    fn running_min_max_are_nan_free() {
        // Empty: the sentinel infinities must never leak out.
        let empty = Running::new();
        for v in [empty.mean(), empty.min(), empty.max(), empty.stddev()] {
            assert!(v.is_finite(), "empty accumulator leaked {v}");
        }
        // Negative-only data: min/max stay finite and ordered.
        let mut r = Running::new();
        r.push(-3.0);
        r.push(-1.0);
        assert_eq!(r.min(), -3.0);
        assert_eq!(r.max(), -1.0);
        assert!(r.min().is_finite() && r.max().is_finite());
        // Merging an empty accumulator changes nothing.
        r.merge(&Running::new());
        assert_eq!(r.count(), 2);
        assert_eq!(r.min(), -3.0);
    }

    #[test]
    fn percentiles_empty_accumulator_is_zero() {
        let mut p = Percentiles::new();
        assert_eq!(p.count(), 0);
        assert_eq!(p.mean(), 0.0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(p.quantile(q), 0.0);
        }
    }

    #[test]
    fn percentiles_single_sample_dominates_every_quantile() {
        let mut p = Percentiles::new();
        p.push(42.0);
        assert_eq!(p.count(), 1);
        assert_eq!(p.mean(), 42.0);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(p.quantile(q), 42.0);
        }
    }

    #[test]
    fn percentiles_quantile_clamps_out_of_range_q() {
        let mut p = Percentiles::new();
        p.push(1.0);
        p.push(2.0);
        assert_eq!(p.quantile(-0.5), 1.0);
        assert_eq!(p.quantile(7.0), 2.0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut p = Percentiles::new();
        for x in 1..=100 {
            p.push(x as f64);
        }
        assert_eq!(p.quantile(0.0), 1.0);
        assert_eq!(p.quantile(1.0), 100.0);
        assert_eq!(p.quantile(0.5), 50.0);
        assert!((p.quantile(0.99) - 99.0).abs() <= 1.0);
        assert!((p.mean() - 50.5).abs() < 1e-12);
    }

    #[test]
    fn percentiles_interleaved_push_query() {
        let mut p = Percentiles::new();
        p.push(10.0);
        assert_eq!(p.quantile(0.5), 10.0);
        p.push(0.0);
        p.push(20.0);
        assert_eq!(p.quantile(0.5), 10.0);
        assert_eq!(p.quantile(1.0), 20.0);
    }
}
