//! Property tests: the event calendar's ordering contract and the timer
//! wheel's exactly-once firing, under arbitrary interleavings.

use proptest::prelude::*;
use sv2p_simcore::{EventQueue, SimTime, TimerWheel};

proptest! {
    #[test]
    fn events_pop_in_time_then_fifo_order(
        times in proptest::collection::vec(0u64..1_000, 1..300),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_nanos(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some(ev) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(ev.time >= lt);
                if ev.time == lt {
                    prop_assert!(ev.payload > li, "FIFO violated among ties");
                }
            }
            last = Some((ev.time, ev.payload));
        }
        prop_assert_eq!(q.events_executed(), times.len() as u64);
    }

    #[test]
    fn interleaved_scheduling_respects_causality(
        script in proptest::collection::vec((0u64..50, any::<bool>()), 1..200),
    ) {
        // Alternate pushes (relative delays) and pops; the clock must be
        // nondecreasing and every pop at or after its schedule time.
        let mut q = EventQueue::new();
        let mut clock = SimTime::ZERO;
        for (delay, pop) in script {
            if pop {
                if let Some(ev) = q.pop() {
                    prop_assert!(ev.time >= clock);
                    clock = ev.time;
                }
            } else {
                q.schedule_in(sv2p_simcore::SimDuration::from_nanos(delay), ());
            }
            prop_assert_eq!(q.now(), clock);
        }
    }

    #[test]
    fn timers_fire_exactly_once_per_live_arming(
        ops in proptest::collection::vec((0u8..3, 0usize..4), 1..200),
    ) {
        // ops: (action, timer index) where action 0=arm, 1=cancel, 2=fire
        // the latest token of that timer.
        let mut wheel = TimerWheel::new();
        let handles: Vec<_> = (0..4).map(|_| wheel.register()).collect();
        let mut latest = [None; 4];
        let mut armed = [false; 4];
        for (i, (action, t)) in ops.into_iter().enumerate() {
            match action {
                0 => {
                    let tok = wheel.arm(handles[t], SimTime::from_nanos(i as u64));
                    latest[t] = Some(tok);
                    armed[t] = true;
                }
                1 => {
                    wheel.cancel(handles[t]);
                    armed[t] = false;
                }
                _ => {
                    if let Some(tok) = latest[t].take() {
                        let fired = wheel.should_fire(tok);
                        prop_assert_eq!(fired, armed[t], "timer {} state", t);
                        armed[t] = false;
                        // Firing again with the same token must be a no-op.
                        prop_assert!(!wheel.should_fire(tok));
                    }
                }
            }
        }
    }
}
