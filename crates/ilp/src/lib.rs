//! Cache-placement optimization for the Controller baseline (Appendix A.1).
//!
//! The paper formulates centralized cache allocation as an ILP — minimize
//! `Σ L_ij · T_ij` subject to per-switch capacity — and solves it with Z3.
//! Z3 is not available offline, so this crate provides (a) a greedy
//! marginal-gain solver (the objective is monotone submodular in the chosen
//! placement set, so greedy carries the classic `1 − 1/e` guarantee) and
//! (b) an exact exhaustive solver for small instances that the tests use to
//! certify the greedy's quality. DESIGN.md §4 documents the substitution.
//!
//! The model is deliberately abstract: a [`Demand`] is "weight packets whose
//! latency becomes `cost` if `(switch, mapping)` is cached, else
//! `miss_cost`". The Controller baseline in `sv2p-baselines` lowers
//! topology + traffic matrix to this form.
//!
//! ```
//! use sv2p_ilp::{Demand, PlacementProblem};
//!
//! let p = PlacementProblem {
//!     num_switches: 2,
//!     capacity: 1,
//!     demands: vec![Demand {
//!         weight: 10,
//!         mapping: 7,
//!         options: vec![(0, 3.0), (1, 5.0)],
//!         miss_cost: 20.0,
//!     }],
//! };
//! let sol = p.solve_greedy();
//! assert!(sol.contains(0, 7), "cheapest caching point wins");
//! assert_eq!(p.cost(&sol), 30.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

/// One (source, destination-mapping) traffic aggregate.
#[derive(Debug, Clone)]
pub struct Demand {
    /// Packet count of this aggregate.
    pub weight: u64,
    /// The mapping (destination VM) that must be cached to serve it.
    pub mapping: u32,
    /// Candidate caching points on the aggregate's uplink path, with the
    /// per-packet cost if resolved there (earlier switches → lower cost).
    pub options: Vec<(usize, f64)>,
    /// Per-packet cost when no option is cached (gateway detour + C).
    pub miss_cost: f64,
}

/// A placement instance.
#[derive(Debug, Clone)]
pub struct PlacementProblem {
    /// Number of switches.
    pub num_switches: usize,
    /// Capacity (entries) per switch.
    pub capacity: usize,
    /// Traffic aggregates.
    pub demands: Vec<Demand>,
}

/// A solution: for each switch, the mappings cached there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// `chosen[s]` = mappings cached at switch `s`.
    pub chosen: Vec<Vec<u32>>,
}

impl Placement {
    fn empty(num_switches: usize) -> Self {
        Placement {
            chosen: vec![Vec::new(); num_switches],
        }
    }

    /// Total entries placed.
    pub fn size(&self) -> usize {
        self.chosen.iter().map(Vec::len).sum()
    }

    /// True if `(switch, mapping)` is selected.
    pub fn contains(&self, switch: usize, mapping: u32) -> bool {
        self.chosen[switch].contains(&mapping)
    }
}

impl PlacementProblem {
    /// Objective value of `p`: total weighted per-packet cost.
    pub fn cost(&self, p: &Placement) -> f64 {
        self.demands
            .iter()
            .map(|d| {
                let best = d
                    .options
                    .iter()
                    .filter(|&&(s, _)| p.contains(s, d.mapping))
                    .map(|&(_, c)| c)
                    .fold(d.miss_cost, f64::min);
                best * d.weight as f64
            })
            .sum()
    }

    /// Greedy marginal-gain placement.
    ///
    /// Repeatedly selects the `(switch, mapping)` pair with the greatest
    /// reduction in total cost until every switch is full or no pair helps.
    pub fn solve_greedy(&self) -> Placement {
        let mut placement = Placement::empty(self.num_switches);
        // Current realized per-demand cost.
        let mut cur: Vec<f64> = self.demands.iter().map(|d| d.miss_cost).collect();
        // Candidate pairs and the demands they touch. Candidates are
        // scanned in first-appearance order, never HashMap order: the
        // randomized hasher would break equal-gain ties differently on
        // every run, making the whole Controller experiment
        // irreproducible.
        let mut touching: HashMap<(usize, u32), Vec<usize>> = HashMap::new();
        let mut candidates: Vec<(usize, u32)> = Vec::new();
        for (di, d) in self.demands.iter().enumerate() {
            for &(s, _) in &d.options {
                let dis = touching.entry((s, d.mapping)).or_default();
                if dis.is_empty() {
                    candidates.push((s, d.mapping));
                }
                dis.push(di);
            }
        }
        let mut slots: Vec<usize> = vec![self.capacity; self.num_switches];

        loop {
            // Find the best remaining pair. (Plain rescan: candidate counts
            // in our experiments are small enough that lazy heaps don't pay.)
            let mut best: Option<((usize, u32), f64)> = None;
            for &(s, m) in &candidates {
                let dis = &touching[&(s, m)];
                if slots[s] == 0 || placement.contains(s, m) {
                    continue;
                }
                let gain: f64 = dis
                    .iter()
                    .map(|&di| {
                        let d = &self.demands[di];
                        let here = d
                            .options
                            .iter()
                            .find(|&&(os, _)| os == s)
                            .map(|&(_, c)| c)
                            .unwrap_or(d.miss_cost);
                        (cur[di] - here).max(0.0) * d.weight as f64
                    })
                    .sum();
                if gain > 0.0 && best.is_none_or(|(_, g)| gain > g) {
                    best = Some(((s, m), gain));
                }
            }
            let Some(((s, m), _)) = best else { break };
            placement.chosen[s].push(m);
            slots[s] -= 1;
            for &di in &touching[&(s, m)] {
                let d = &self.demands[di];
                if let Some(&(_, c)) = d.options.iter().find(|&&(os, _)| os == s) {
                    cur[di] = cur[di].min(c);
                }
            }
        }
        placement
    }

    /// Exact solver by exhaustive search over all feasible placements.
    ///
    /// Exponential — only for certifying the greedy on small instances
    /// (≤ ~16 candidate pairs).
    pub fn solve_exact(&self) -> Placement {
        let mut candidates: Vec<(usize, u32)> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for d in &self.demands {
            for &(s, _) in &d.options {
                if seen.insert((s, d.mapping)) {
                    candidates.push((s, d.mapping));
                }
            }
        }
        assert!(
            candidates.len() <= 20,
            "exact solver is for tiny instances ({} candidates)",
            candidates.len()
        );
        let mut best = Placement::empty(self.num_switches);
        let mut best_cost = self.cost(&best);
        for mask in 0u32..(1 << candidates.len()) {
            let mut p = Placement::empty(self.num_switches);
            let mut feasible = true;
            for (bit, &(s, m)) in candidates.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    p.chosen[s].push(m);
                    if p.chosen[s].len() > self.capacity {
                        feasible = false;
                        break;
                    }
                }
            }
            if !feasible {
                continue;
            }
            let c = self.cost(&p);
            if c < best_cost {
                best_cost = c;
                best = p;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(weight: u64, mapping: u32, options: &[(usize, f64)], miss: f64) -> Demand {
        Demand {
            weight,
            mapping,
            options: options.to_vec(),
            miss_cost: miss,
        }
    }

    #[test]
    fn empty_problem_is_free() {
        let p = PlacementProblem {
            num_switches: 3,
            capacity: 1,
            demands: vec![],
        };
        let sol = p.solve_greedy();
        assert_eq!(sol.size(), 0);
        assert_eq!(p.cost(&sol), 0.0);
    }

    #[test]
    fn greedy_prefers_shared_intersection() {
        // Two demands for the same mapping share switch 1 ("the intersection
        // of all network paths", A.1); switch 0 helps only demand 0.
        let p = PlacementProblem {
            num_switches: 2,
            capacity: 1,
            demands: vec![
                demand(10, 7, &[(0, 3.0), (1, 4.0)], 10.0),
                demand(10, 7, &[(1, 4.0)], 10.0),
            ],
        };
        let sol = p.solve_greedy();
        // First pick must be switch 1 (gain 120 vs 70).
        assert!(sol.contains(1, 7));
        // With remaining capacity, switch 0 still helps demand 0 (4 -> 3).
        assert!(sol.contains(0, 7));
        assert_eq!(p.cost(&sol), 10.0 * 3.0 + 10.0 * 4.0);
    }

    #[test]
    fn capacity_is_respected() {
        let p = PlacementProblem {
            num_switches: 1,
            capacity: 2,
            demands: (0..5)
                .map(|m| demand(1 + m as u64, m, &[(0, 1.0)], 10.0))
                .collect(),
        };
        let sol = p.solve_greedy();
        assert_eq!(sol.chosen[0].len(), 2);
        // The two heaviest mappings (3, 4) win.
        assert!(sol.contains(0, 4) && sol.contains(0, 3));
    }

    #[test]
    fn zero_capacity_places_nothing() {
        let p = PlacementProblem {
            num_switches: 2,
            capacity: 0,
            demands: vec![demand(5, 1, &[(0, 1.0)], 9.0)],
        };
        let sol = p.solve_greedy();
        assert_eq!(sol.size(), 0);
        assert_eq!(p.cost(&sol), 45.0);
    }

    #[test]
    fn useless_placements_are_not_made() {
        // Option cost equals miss cost: no gain, nothing placed.
        let p = PlacementProblem {
            num_switches: 1,
            capacity: 5,
            demands: vec![demand(5, 1, &[(0, 9.0)], 9.0)],
        };
        assert_eq!(p.solve_greedy().size(), 0);
    }

    #[test]
    fn greedy_matches_exact_on_small_instances() {
        // Deterministic pseudo-random small instances.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..50 {
            let num_switches = 2 + (next() % 2) as usize;
            let demands: Vec<Demand> = (0..(2 + next() % 3))
                .map(|_| {
                    let mapping = (next() % 3) as u32;
                    let n_opt = 1 + (next() % 2) as usize;
                    let options: Vec<(usize, f64)> = (0..n_opt)
                        .map(|_| ((next() % num_switches as u64) as usize, (2 + next() % 5) as f64))
                        .collect();
                    Demand {
                        weight: 1 + next() % 9,
                        mapping,
                        options,
                        miss_cost: 10.0,
                    }
                })
                .collect();
            let p = PlacementProblem {
                num_switches,
                capacity: 1,
                demands,
            };
            let all_miss: f64 = p
                .demands
                .iter()
                .map(|d| d.miss_cost * d.weight as f64)
                .sum();
            let greedy_cost = p.cost(&p.solve_greedy());
            let exact_cost = p.cost(&p.solve_exact());
            assert!(exact_cost <= greedy_cost + 1e-9, "exact must be optimal");
            // Greedy over a partition matroid keeps at least half of the
            // optimal *gain* (latency saved vs. all-miss).
            let greedy_gain = all_miss - greedy_cost;
            let exact_gain = all_miss - exact_cost;
            assert!(
                greedy_gain + 1e-9 >= 0.5 * exact_gain,
                "greedy gain {greedy_gain} < half of optimal {exact_gain}: {p:?}"
            );
        }
    }
}
