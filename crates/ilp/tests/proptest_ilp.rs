//! Property tests for the placement solvers: capacity feasibility,
//! monotonicity in capacity, and the greedy-vs-exact gain bound on random
//! instances.

use proptest::prelude::*;
use sv2p_ilp::{Demand, Placement, PlacementProblem};

fn arb_problem(max_candidates: usize) -> impl Strategy<Value = PlacementProblem> {
    (2usize..4, 1usize..3, proptest::collection::vec(
        (
            1u64..10,
            0u32..4,
            proptest::collection::vec((0usize..3, 1.0f64..9.0), 1..3),
            10.0f64..30.0,
        ),
        1..5,
    ))
        .prop_map(move |(num_switches, capacity, raw)| {
            let demands = raw
                .into_iter()
                .map(|(weight, mapping, options, miss)| Demand {
                    weight,
                    mapping,
                    options: options
                        .into_iter()
                        .map(|(s, c)| (s % num_switches, c))
                        .collect(),
                    miss_cost: miss,
                })
                .collect();
            let p = PlacementProblem {
                num_switches,
                capacity,
                demands,
            };
            let _ = max_candidates;
            p
        })
}

fn assert_feasible(p: &PlacementProblem, sol: &Placement) {
    for (s, chosen) in sol.chosen.iter().enumerate() {
        assert!(
            chosen.len() <= p.capacity,
            "switch {s} over capacity: {chosen:?}"
        );
        let mut dedup = chosen.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), chosen.len(), "duplicate placement at {s}");
    }
}

proptest! {
    #[test]
    fn greedy_solutions_are_feasible(p in arb_problem(12)) {
        let sol = p.solve_greedy();
        assert_feasible(&p, &sol);
        // Placing entries can only help: cost <= all-miss cost.
        let empty = PlacementProblem {
            capacity: 0,
            ..p.clone()
        };
        prop_assert!(p.cost(&sol) <= empty.cost(&empty.solve_greedy()) + 1e-9);
    }

    #[test]
    fn greedy_gain_is_at_least_half_of_optimal(p in arb_problem(12)) {
        let all_miss: f64 = p.demands.iter().map(|d| d.miss_cost * d.weight as f64).sum();
        let greedy = all_miss - p.cost(&p.solve_greedy());
        let exact = all_miss - p.cost(&p.solve_exact());
        prop_assert!(exact + 1e-9 >= greedy, "exact must be optimal");
        prop_assert!(
            greedy + 1e-9 >= 0.5 * exact,
            "greedy gain {greedy} < half of {exact} on {p:?}"
        );
    }

    #[test]
    fn more_capacity_never_hurts_greedy(p in arb_problem(12)) {
        let small = p.cost(&p.solve_greedy());
        let bigger = PlacementProblem {
            capacity: p.capacity + 1,
            ..p.clone()
        };
        let big = bigger.cost(&bigger.solve_greedy());
        prop_assert!(big <= small + 1e-9, "capacity increase raised cost");
    }
}
