//! End-to-end behavior of each baseline inside the full simulator: the
//! defining property of every §5 comparison system, checked on a small
//! FatTree.

use sv2p_baselines::{Bluebird, Direct, GwCache, LocalLearning, NoCache, OnDemand};
use sv2p_netsim::{FlowKind, FlowSpec, SimConfig, Simulation};
use sv2p_simcore::SimTime;
use sv2p_topology::FatTreeConfig;
use sv2p_traces::{hadoop, HadoopConfig};
use sv2p_vnet::Strategy;

fn workload(vms: usize, flows: usize) -> Vec<FlowSpec> {
    hadoop(&HadoopConfig {
        vms,
        flows,
        hosts: 128,
        ..HadoopConfig::default()
    })
    .into_iter()
    .map(|f| FlowSpec {
        src_vm: f.src_vm,
        dst_vm: f.dst_vm,
        start: SimTime::from_nanos(f.start_ns),
        kind: FlowKind::Tcp { bytes: f.bytes() },
    })
    .collect()
}

fn run(strategy: &dyn Strategy, cache: usize, flows: usize) -> sv2p_metrics::RunSummary {
    let ft = FatTreeConfig::scaled_ft8(2);
    let mut sim = Simulation::new(SimConfig::default(), &ft, strategy, cache, 4);
    let vms = sim.placement.len();
    sim.add_flows(workload(vms, flows));
    sim.run();
    sim.summary()
}

#[test]
fn nocache_sends_every_packet_through_gateways() {
    let s = run(&NoCache, 0, 300);
    assert_eq!(s.flows, s.flows_completed);
    assert_eq!(s.gateway_packets, s.data_packets_sent);
    assert_eq!(s.hit_rate, 0.0);
}

#[test]
fn direct_never_touches_gateways() {
    let s = run(&Direct, 0, 300);
    assert_eq!(s.flows, s.flows_completed);
    assert_eq!(s.gateway_packets, 0);
    // Direct paths are the stretch floor among all schemes.
    let nocache = run(&NoCache, 0, 300);
    assert!(s.avg_stretch < nocache.avg_stretch);
}

#[test]
fn ondemand_pays_the_detour_once_per_destination() {
    let s = run(&OnDemand, 0, 300);
    assert_eq!(s.flows, s.flows_completed);
    // Only first-to-a-destination packets reach gateways: far fewer than
    // total, far more than zero (each (host, dst) pair misses once).
    assert!(s.gateway_packets > 0);
    assert!(
        (s.gateway_packets as f64) < 0.2 * s.data_packets_sent as f64,
        "OnDemand gateway share {}/{}",
        s.gateway_packets,
        s.data_packets_sent
    );
}

#[test]
fn gwcache_hits_only_at_gateway_tors() {
    let s = run(&GwCache, 512, 500);
    assert_eq!(s.flows, s.flows_completed);
    assert!(s.hit_rate > 0.0);
    assert!(
        (s.hit_share_tor - 1.0).abs() < 1e-9,
        "GwCache hit at a non-ToR layer: {s:?}"
    );
}

#[test]
fn local_learning_hits_everywhere_but_less_effectively() {
    let ll = run(&LocalLearning, 512, 500);
    assert_eq!(ll.flows, ll.flows_completed);
    assert!(ll.hit_rate > 0.0);
    // The strawman replicates entries along the downlink path, so it does
    // get spine hits — the inefficiency is in WHERE entries sit relative to
    // future uplink paths, visible as a lower hit rate than GwCache at the
    // same budget (GwCache concentrates its budget at the 2 gateway ToRs).
    let gw = run(&GwCache, 512, 500);
    assert!(
        ll.hit_rate <= gw.hit_rate + 0.05,
        "LocalLearning {} vs GwCache {}",
        ll.hit_rate,
        gw.hit_rate
    );
}

#[test]
fn bluebird_resolves_at_tors_without_gateways() {
    let s = run(&Bluebird::default(), 1024, 150);
    assert_eq!(s.gateway_packets, 0, "Bluebird has no gateways");
    assert_eq!(s.flows, s.flows_completed, "{s:?}");
    // Control-plane detours are not cache hits; hits only appear once the
    // 2 ms insertion latency has passed, so with a ~4 ms trace some arrive.
    assert!(s.hit_rate <= 1.0);
}

#[test]
fn bluebird_first_packets_are_slower_than_direct() {
    // The SFE detour (8.5 µs + 20 Gb/s queue) must show up in first-packet
    // latency relative to Direct, which resolves at the host for free.
    let bb = run(&Bluebird::default(), 1024, 150);
    let d = run(&Direct, 0, 150);
    assert!(
        bb.avg_first_packet_latency_us > d.avg_first_packet_latency_us,
        "Bluebird {} !> Direct {}",
        bb.avg_first_packet_latency_us,
        d.avg_first_packet_latency_us
    );
}
