//! NoCache — the pure gateway design (Andromeda's Hoverboard model without
//! host offloading): every packet detours through a translation gateway.

use sv2p_packet::SwitchTag;
use sv2p_topology::{NodeId, SwitchRole};
use sv2p_vnet::agents::NoopSwitchAgent;
use sv2p_vnet::{MisdeliveryPolicy, Strategy, SwitchAgent};

/// The NoCache baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoCache;

impl Strategy for NoCache {
    fn name(&self) -> &'static str {
        "NoCache"
    }

    fn caches_at(&self, _role: SwitchRole) -> bool {
        false
    }

    fn make_switch_agent(
        &self,
        _node: NodeId,
        _role: SwitchRole,
        _tag: SwitchTag,
        _lines: usize,
    ) -> Box<dyn SwitchAgent> {
        Box::new(NoopSwitchAgent)
    }

    fn misdelivery_policy(&self) -> MisdeliveryPolicy {
        // Andromeda installs a follow-me rule before migrating (§3.3/§5.2).
        MisdeliveryPolicy::FollowMe
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_nowhere() {
        let s = NoCache;
        for role in [
            SwitchRole::GatewayTor,
            SwitchRole::GatewaySpine,
            SwitchRole::Tor,
            SwitchRole::Spine,
            SwitchRole::Core,
        ] {
            assert!(!s.caches_at(role));
        }
        assert_eq!(s.misdelivery_policy(), MisdeliveryPolicy::FollowMe);
    }
}
