//! Controller — centralized cache allocation via the Appendix A.1 program.
//!
//! "The controller periodically fetches the connection matrix statistics
//! from each switch, solves the ILP, and installs the mappings in each
//! switch according to the solution." The experiment loop (halt, collect,
//! solve, install) is driven by the harness between `run_until` chunks; this
//! module provides the [`Controller`] strategy (lookup-only installed
//! caches) and the [`ControllerDriver`] that lowers a traffic matrix to the
//! `sv2p-ilp` placement problem.

use sv2p_ilp::{Demand, PlacementProblem};
use sv2p_simcore::FxHashMap;
use sv2p_packet::{Packet, PacketKind, Pip, SwitchTag, Vip};
use sv2p_topology::{NodeId, Routing, SwitchRole, Topology};
use sv2p_vnet::{
    AgentOutput, GatewayDirectory, MisdeliveryPolicy, Placement as VmPlacement, Strategy,
    SwitchAgent, SwitchCtx,
};

/// The Controller baseline strategy.
#[derive(Debug, Clone, Copy, Default)]
pub struct Controller;

/// Lookup-only cache filled by control-plane installs.
#[derive(Debug, Default)]
struct InstalledCacheAgent {
    capacity: usize,
    entries: FxHashMap<Vip, Pip>,
    /// Installed-entry hits (diagnostics).
    hits: u64,
}

impl SwitchAgent for InstalledCacheAgent {
    fn on_packet(&mut self, _ctx: &mut SwitchCtx<'_>, pkt: &mut Packet) -> AgentOutput {
        if !matches!(pkt.kind, PacketKind::Data) || pkt.outer.resolved {
            return AgentOutput::forward();
        }
        match self.entries.get(&pkt.inner.dst_vip) {
            Some(&pip) => {
                pkt.outer.dst_pip = pip;
                pkt.outer.resolved = true;
                self.hits += 1;
                AgentOutput::forward_hit()
            }
            None => AgentOutput::forward(),
        }
    }

    fn occupancy(&self) -> usize {
        self.entries.len()
    }

    fn entries(&self) -> Vec<(Vip, Pip)> {
        self.entries.iter().map(|(&v, &p)| (v, p)).collect()
    }

    fn install(&mut self, vip: Vip, pip: Pip) {
        if self.entries.len() < self.capacity || self.entries.contains_key(&vip) {
            self.entries.insert(vip, pip);
        }
    }

    fn clear_installed(&mut self) {
        self.entries.clear();
    }

    fn reset(&mut self) {
        // A reboot wipes installed entries too; the controller re-installs
        // them at its next epoch.
        self.entries.clear();
    }
}

impl Strategy for Controller {
    fn name(&self) -> &'static str {
        "Controller"
    }

    fn caches_at(&self, _role: SwitchRole) -> bool {
        true
    }

    fn make_switch_agent(
        &self,
        _node: NodeId,
        _role: SwitchRole,
        _tag: SwitchTag,
        lines: usize,
    ) -> Box<dyn SwitchAgent> {
        Box::new(InstalledCacheAgent {
            capacity: lines,
            ..Default::default()
        })
    }

    fn misdelivery_policy(&self) -> MisdeliveryPolicy {
        MisdeliveryPolicy::FollowMe
    }
}

/// Lowers traffic matrices to placement problems and plans installs.
#[derive(Debug, Clone, Copy)]
pub struct ControllerDriver {
    /// Entries per switch.
    pub capacity_per_switch: usize,
    /// Gateway processing cost expressed in switch-hop equivalents
    /// (40 µs gateway / ~2 µs per hop ≈ 20).
    pub gateway_cost_hops: f64,
}

impl Default for ControllerDriver {
    fn default() -> Self {
        ControllerDriver {
            capacity_per_switch: 0,
            gateway_cost_hops: 20.0,
        }
    }
}

impl ControllerDriver {
    /// Plans per-switch installs from the observed traffic matrix.
    ///
    /// The paper's controller knows exact future paths; ours approximates
    /// the per-flow ECMP/gateway choices by a deterministic hash of the
    /// (src, dst) pair — the ToR-level placements (where most of the gain
    /// is) are unaffected, spine/core-level ones pick one representative
    /// equal-cost path.
    pub fn plan(
        &self,
        topo: &Topology,
        routing: &Routing,
        dir: &GatewayDirectory,
        placement: &VmPlacement,
        traffic: &FxHashMap<(u32, u32), u64>,
        switch_nodes: &[NodeId],
    ) -> Vec<(NodeId, Vec<(Vip, Pip)>)> {
        let tag_of: FxHashMap<NodeId, usize> = switch_nodes
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i))
            .collect();

        let mut demands = Vec::new();
        for (&(src, dst), &weight) in traffic {
            let (src, dst) = (src as usize, dst as usize);
            if src >= placement.len() || dst >= placement.len() {
                continue;
            }
            let key = (src as u64) << 32 | dst as u64;
            let src_node = placement.node_of(src);
            let dst_node = placement.node_of(dst);
            let gw_pip = dir.pick(key);
            let Some(gw_node) = topo.node_by_pip(gw_pip) else {
                continue;
            };
            let up_path = routing.path(topo, src_node, gw_node, key);
            // Hop position of each switch on the uplink; cost if resolved
            // there = hops so far + hops from there to the destination.
            let mut options = Vec::new();
            let mut hops = 0.0;
            for &n in &up_path {
                if !topo.node(n).kind.is_switch() {
                    continue;
                }
                hops += 1.0;
                if let Some(&sidx) = tag_of.get(&n) {
                    let down = routing.switch_hops(topo, n, dst_node, key) as f64;
                    options.push((sidx, hops + down));
                }
            }
            let to_gw = routing.switch_hops(topo, src_node, gw_node, key) as f64;
            let from_gw = routing.switch_hops(topo, gw_node, dst_node, key) as f64;
            demands.push(Demand {
                weight,
                mapping: dst as u32,
                options,
                miss_cost: to_gw + self.gateway_cost_hops + from_gw,
            });
        }

        let problem = PlacementProblem {
            num_switches: switch_nodes.len(),
            capacity: self.capacity_per_switch,
            demands,
        };
        let solution = problem.solve_greedy();
        solution
            .chosen
            .iter()
            .enumerate()
            .filter(|(_, ms)| !ms.is_empty())
            .map(|(sidx, ms)| {
                let entries = ms
                    .iter()
                    .map(|&vm| {
                        let vm = vm as usize;
                        (placement.vips[vm], placement.pip_of(vm))
                    })
                    .collect();
                (switch_nodes[sidx], entries)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv2p_packet::packet::Protocol;
    use sv2p_packet::{FlowId, InnerHeader, OuterHeader, PacketId, TcpFlags, TunnelOptions};
    use sv2p_simcore::{SimDuration, SimRng, SimTime};
    use sv2p_topology::FatTreeConfig;
    use sv2p_vnet::MappingDb;

    #[test]
    fn installed_cache_respects_capacity_and_serves() {
        let mut agent = InstalledCacheAgent {
            capacity: 2,
            ..Default::default()
        };
        agent.install(Vip(1), Pip(10));
        agent.install(Vip(2), Pip(20));
        agent.install(Vip(3), Pip(30)); // over capacity: ignored
        assert_eq!(agent.occupancy(), 2);
        agent.install(Vip(1), Pip(11)); // update allowed at capacity
        let db = MappingDb::new();
        let mut rng = SimRng::new(1);
        let mut ctx = SwitchCtx {
            now: SimTime::ZERO,
            node: NodeId(0),
            tag: SwitchTag(0),
            switch_pip: Pip(0),
            role: SwitchRole::Spine,
            my_pod: None,
            ingress_host: None,
            dst_attached: false,
            db: &db,
            rng: &mut rng,
            base_rtt: SimDuration::from_micros(12),
            pod_of: &|_| None,
            pip_of_tag: &|_| Pip(0),
            trace_cache_ops: false,
        };
        let mut pkt = Packet {
            id: PacketId(0),
            flow: FlowId(0),
            kind: PacketKind::Data,
            outer: OuterHeader {
                src_pip: Pip(1),
                dst_pip: Pip(99),
                resolved: false,
            },
            inner: InnerHeader {
                src_vip: Vip(9),
                dst_vip: Vip(1),
                src_port: 0,
                dst_port: 0,
                protocol: Protocol::Tcp,
                seq: 0,
                ack: 0,
                flags: TcpFlags::default(),
            },
            opts: TunnelOptions::default(),
            payload: 0,
            switch_hops: 0,
            sent_ns: 0,
            first_of_flow: false,
            visited_gateway: false,
        };
        let out = agent.on_packet(&mut ctx, &mut pkt);
        assert!(out.cache_hit);
        assert_eq!(pkt.outer.dst_pip, Pip(11));
        agent.clear_installed();
        assert_eq!(agent.occupancy(), 0);
    }

    #[test]
    fn planner_places_popular_destinations() {
        let cfg = FatTreeConfig::ft8_10k();
        let topo = cfg.build();
        let routing = Routing::new(&cfg, &topo);
        let dir = GatewayDirectory::from_topology(&topo);
        let placement = VmPlacement::uniform(&topo, 2);
        let switch_nodes: Vec<NodeId> = topo.switches().map(|n| n.id).collect();

        // Everyone talks to VM 7 (incast): the planner should cache VM 7's
        // mapping somewhere useful.
        let mut traffic = FxHashMap::default();
        for src in [1u32, 50, 100, 150, 200] {
            traffic.insert((src, 7u32), 100u64);
        }
        let driver = ControllerDriver {
            capacity_per_switch: 1,
            gateway_cost_hops: 20.0,
        };
        let plan = driver.plan(&topo, &routing, &dir, &placement, &traffic, &switch_nodes);
        assert!(!plan.is_empty());
        let placed_vips: Vec<Vip> = plan
            .iter()
            .flat_map(|(_, es)| es.iter().map(|&(v, _)| v))
            .collect();
        assert!(
            placed_vips.contains(&placement.vips[7]),
            "hot destination must be placed: {plan:?}"
        );
        // Every install maps to the VM's true location.
        for (_, entries) in &plan {
            for &(v, p) in entries {
                let vm = placement.index_of(v).unwrap();
                assert_eq!(p, placement.pip_of(vm));
            }
        }
    }

    #[test]
    fn empty_traffic_plans_nothing() {
        let cfg = FatTreeConfig::scaled_ft8(2);
        let topo = cfg.build();
        let routing = Routing::new(&cfg, &topo);
        let dir = GatewayDirectory::from_topology(&topo);
        let placement = VmPlacement::uniform(&topo, 1);
        let switch_nodes: Vec<NodeId> = topo.switches().map(|n| n.id).collect();
        let driver = ControllerDriver {
            capacity_per_switch: 4,
            gateway_cost_hops: 20.0,
        };
        let plan = driver.plan(
            &topo,
            &routing,
            &dir,
            &placement,
            &FxHashMap::default(),
            &switch_nodes,
        );
        assert!(plan.is_empty());
    }
}
