//! Bluebird (NSDI'22) — ToR route caches backed by a switch-local control
//! plane.
//!
//! "ToR switches resolve addresses in the data plane when they are in the
//! cache (route cache); otherwise, the control plane (SFE) forwards packets
//! and updates the cache. We set the data to control plane bandwidth to
//! 20 Gbps, the forwarding latency of packets by the control plane to
//! 8.5 µsec, and the cache insertion latency to 2 msec" (§5).
//!
//! Hosts send unresolved packets that the first-hop ToR must translate
//! ([`sv2p_vnet::HostResolution::FirstHopTor`]); there are no translation
//! gateways. A data-plane miss detours the packet through the bandwidth-
//! limited control link, which drops when its backlog exceeds the buffer —
//! the effect behind Bluebird's poor showing under bursts (§5.1).

use sv2p_packet::{Packet, PacketKind, Pip, SwitchTag, Vip};
use sv2p_simcore::{FxHashMap, SimDuration, SimTime};
use sv2p_topology::{NodeId, SwitchRole};
use sv2p_vnet::agents::NoopSwitchAgent;
use sv2p_vnet::{
    AgentOutput, CacheOp, HostAgent, HostResolution, MappingDb, MisdeliveryPolicy,
    PacketAction, Strategy, SwitchAgent, SwitchCtx,
};
use switchv2p::cache::{push_insert_ops, Admission, DirectMappedCache};

/// Bluebird model parameters (paper defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BluebirdConfig {
    /// Data-plane to control-plane link rate.
    pub control_bandwidth_bps: u64,
    /// Control-plane forwarding latency per packet.
    pub control_latency: SimDuration,
    /// Delay until a control-plane-resolved mapping appears in the route
    /// cache.
    pub insertion_latency: SimDuration,
    /// Control-link backlog limit; packets beyond it are dropped.
    pub control_buffer_bytes: u64,
}

impl Default for BluebirdConfig {
    fn default() -> Self {
        BluebirdConfig {
            control_bandwidth_bps: 20_000_000_000,
            control_latency: SimDuration::from_nanos(8_500),
            insertion_latency: SimDuration::from_millis(2),
            control_buffer_bytes: 1024 * 1024,
        }
    }
}

/// The Bluebird baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct Bluebird {
    /// Model parameters.
    pub config: BluebirdConfig,
}

/// ToR agent: route cache + modeled SFE.
#[derive(Debug)]
struct BluebirdTorAgent {
    cfg: BluebirdConfig,
    cache: DirectMappedCache,
    /// Mappings resolved by the SFE, visible in the cache after the
    /// insertion latency.
    pending: FxHashMap<Vip, (Pip, SimTime)>,
    /// When the control link frees up.
    control_busy_until: SimTime,
    /// Control-plane packet drops.
    drops: u64,
}

impl BluebirdTorAgent {
    /// Moves matured pending insertions into the route cache. Sorted by VIP
    /// so line-collision winners (and any traced ops) never depend on
    /// `HashMap` iteration order.
    fn flush_pending(&mut self, now: SimTime, mut ops: Option<&mut Vec<CacheOp>>) {
        let mut ready: Vec<Vip> = self
            .pending
            .iter()
            .filter(|&(_, &(_, at))| at <= now)
            .map(|(&v, _)| v)
            .collect();
        ready.sort_unstable_by_key(|v| v.0);
        for vip in ready {
            let (pip, _) = self.pending.remove(&vip).expect("pending entry");
            let outcome = self.cache.insert(vip, pip, Admission::All);
            if let Some(ops) = ops.as_deref_mut() {
                push_insert_ops(ops, outcome, CacheOp::Insert { vip, pip });
            }
        }
    }
}

impl SwitchAgent for BluebirdTorAgent {
    fn on_packet(&mut self, ctx: &mut SwitchCtx<'_>, pkt: &mut Packet) -> AgentOutput {
        if !matches!(pkt.kind, PacketKind::Data) || pkt.outer.resolved {
            return AgentOutput::forward();
        }
        let mut out = AgentOutput::forward();
        let trace = ctx.trace_cache_ops;
        self.flush_pending(ctx.now, trace.then_some(&mut out.cache_ops));

        // Route-cache lookup (data plane).
        if let Some((pip, _)) = self.cache.lookup(pkt.inner.dst_vip) {
            pkt.outer.dst_pip = pip;
            pkt.outer.resolved = true;
            out.cache_hit = true;
            return out;
        }

        // Miss: the SFE takes over. Model the 20 Gbps control link as a
        // single-server queue with a finite backlog.
        let ser = SimDuration::serialization(pkt.wire_size(), self.cfg.control_bandwidth_bps);
        let backlog = self.control_busy_until.saturating_since(ctx.now);
        let backlog_bytes = (backlog.as_secs_f64() * self.cfg.control_bandwidth_bps as f64
            / 8.0) as u64;
        if backlog_bytes > self.cfg.control_buffer_bytes {
            self.drops += 1;
            out.action = PacketAction::Drop;
            return out;
        }
        let start = self.control_busy_until.max(ctx.now);
        self.control_busy_until = start + ser;
        let detour = self.control_busy_until.saturating_since(ctx.now) + self.cfg.control_latency;

        // The SFE holds the full mapping table (installed by the SDN
        // controller); translate and arrange the cache insertion.
        match ctx.db.lookup(pkt.inner.dst_vip) {
            Some(pip) => {
                pkt.outer.dst_pip = pip;
                pkt.outer.resolved = true;
                self.pending
                    .entry(pkt.inner.dst_vip)
                    .or_insert((pip, ctx.now + self.cfg.insertion_latency));
                out.action = PacketAction::Delay(detour);
            }
            None => out.action = PacketAction::Drop,
        }
        out
    }

    fn occupancy(&self) -> usize {
        self.cache.occupancy()
    }

    fn entries(&self) -> Vec<(Vip, Pip)> {
        self.cache.entries()
    }

    fn reset(&mut self) {
        self.cache = DirectMappedCache::new(self.cache.capacity());
        self.pending.clear();
        self.control_busy_until = SimTime::ZERO;
    }
}

/// Host agent: defer all translation to the first-hop ToR.
#[derive(Debug, Default)]
struct BluebirdHostAgent;

impl HostAgent for BluebirdHostAgent {
    fn resolve(
        &mut self,
        _now: SimTime,
        _db: &MappingDb,
        _dst_vip: Vip,
        _flow_key: u64,
    ) -> HostResolution {
        HostResolution::FirstHopTor
    }
}

impl Strategy for Bluebird {
    fn name(&self) -> &'static str {
        "Bluebird"
    }

    fn caches_at(&self, role: SwitchRole) -> bool {
        matches!(role, SwitchRole::Tor | SwitchRole::GatewayTor)
    }

    fn make_switch_agent(
        &self,
        _node: NodeId,
        role: SwitchRole,
        _tag: SwitchTag,
        lines: usize,
    ) -> Box<dyn SwitchAgent> {
        if matches!(role, SwitchRole::Tor | SwitchRole::GatewayTor) {
            Box::new(BluebirdTorAgent {
                cfg: self.config,
                cache: DirectMappedCache::new(lines),
                pending: FxHashMap::default(),
                control_busy_until: SimTime::ZERO,
                drops: 0,
            })
        } else {
            Box::new(NoopSwitchAgent)
        }
    }

    fn make_host_agent(&self, _node: NodeId, _pip: Pip) -> Box<dyn HostAgent> {
        Box::new(BluebirdHostAgent)
    }

    fn misdelivery_policy(&self) -> MisdeliveryPolicy {
        MisdeliveryPolicy::FollowMe
    }

    fn uses_gateways(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv2p_packet::packet::Protocol;
    use sv2p_packet::{FlowId, InnerHeader, OuterHeader, PacketId, TcpFlags, TunnelOptions};
    use sv2p_simcore::SimRng;
    use sv2p_vnet::MappingOp;

    fn mk_ctx<'a>(db: &'a MappingDb, rng: &'a mut SimRng, now: SimTime) -> SwitchCtx<'a> {
        SwitchCtx {
            now,
            node: NodeId(0),
            tag: SwitchTag(0),
            switch_pip: Pip(9000),
            role: SwitchRole::Tor,
            my_pod: Some(0),
            ingress_host: Some(Pip(1)),
            dst_attached: false,
            db,
            rng,
            base_rtt: SimDuration::from_micros(12),
            pod_of: &|_| None,
            pip_of_tag: &|_| Pip(0),
            trace_cache_ops: false,
        }
    }

    fn unresolved(dst_vip: u32) -> Packet {
        Packet {
            id: PacketId(0),
            flow: FlowId(0),
            kind: PacketKind::Data,
            outer: OuterHeader {
                src_pip: Pip(1),
                dst_pip: Pip(0),
                resolved: false,
            },
            inner: InnerHeader {
                src_vip: Vip(500),
                dst_vip: Vip(dst_vip),
                src_port: 1,
                dst_port: 2,
                protocol: Protocol::Udp,
                seq: 0,
                ack: 0,
                flags: TcpFlags::default(),
            },
            opts: TunnelOptions::default(),
            payload: 1000,
            switch_hops: 0,
            sent_ns: 0,
            first_of_flow: false,
            visited_gateway: false,
        }
    }

    fn agent_and_db() -> (Box<dyn SwitchAgent>, MappingDb) {
        let mut db = MappingDb::new();
        db.apply(MappingOp::Install { vip: Vip(5), pip: Pip(55) });
        let agent = Bluebird::default().make_switch_agent(
            NodeId(0),
            SwitchRole::Tor,
            SwitchTag(0),
            64,
        );
        (agent, db)
    }

    #[test]
    fn miss_detours_through_control_plane_then_cache_serves() {
        let (mut agent, db) = agent_and_db();
        let mut rng = SimRng::new(1);
        let mut p = unresolved(5);
        let out = agent.on_packet(&mut mk_ctx(&db, &mut rng, SimTime::ZERO), &mut p);
        // Control-plane detour: resolved but delayed >= 8.5us.
        match out.action {
            PacketAction::Delay(d) => assert!(d >= SimDuration::from_nanos(8_500), "{d}"),
            other => panic!("{other:?}"),
        }
        assert!(p.outer.resolved);
        assert_eq!(p.outer.dst_pip, Pip(55));
        assert!(!out.cache_hit);

        // Before 2ms: still a control-plane miss.
        let mut p2 = unresolved(5);
        let out = agent.on_packet(
            &mut mk_ctx(&db, &mut rng, SimTime::from_millis(1)),
            &mut p2,
        );
        assert!(matches!(out.action, PacketAction::Delay(_)));
        assert!(!out.cache_hit);

        // After 2ms: data-plane hit, zero detour.
        let mut p3 = unresolved(5);
        let out = agent.on_packet(
            &mut mk_ctx(&db, &mut rng, SimTime::from_millis(3)),
            &mut p3,
        );
        assert!(out.cache_hit);
        assert_eq!(out.action, PacketAction::Forward);
    }

    #[test]
    fn control_link_backlog_drops() {
        let cfg = BluebirdConfig {
            control_buffer_bytes: 3000,
            ..BluebirdConfig::default()
        };
        let mut agent = Bluebird { config: cfg }.make_switch_agent(
            NodeId(0),
            SwitchRole::Tor,
            SwitchTag(0),
            64,
        );
        let mut db = MappingDb::new();
        for v in 0..100 {
            db.apply(MappingOp::Install { vip: Vip(v), pip: Pip(1000 + v) });
        }
        let mut rng = SimRng::new(1);
        let mut dropped = 0;
        // A burst of misses at the same instant overruns the 20G link.
        for v in 0..100 {
            let mut p = unresolved(v);
            let out = agent.on_packet(&mut mk_ctx(&db, &mut rng, SimTime::ZERO), &mut p);
            if out.action == PacketAction::Drop {
                dropped += 1;
            }
        }
        assert!(dropped > 0, "burst must overflow the control link");
        assert!(dropped < 100, "early packets must survive");
    }

    #[test]
    fn unknown_vip_is_dropped() {
        let (mut agent, db) = agent_and_db();
        let mut rng = SimRng::new(1);
        let mut p = unresolved(999);
        let out = agent.on_packet(&mut mk_ctx(&db, &mut rng, SimTime::ZERO), &mut p);
        assert_eq!(out.action, PacketAction::Drop);
    }

    #[test]
    fn hosts_defer_to_tor_and_no_gateways() {
        let b = Bluebird::default();
        assert!(!b.uses_gateways());
        let mut h = BluebirdHostAgent;
        assert_eq!(
            h.resolve(SimTime::ZERO, &MappingDb::new(), Vip(1), 0),
            HostResolution::FirstHopTor
        );
    }
}
