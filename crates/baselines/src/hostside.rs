//! Host-driven baselines: Direct (preprogrammed) and OnDemand (first lookup
//! via the gateway, then immediate host-rule offload).

use sv2p_packet::{Pip, SwitchTag, Vip};
use sv2p_simcore::{FxHashMap, SimTime};
use sv2p_topology::{NodeId, SwitchRole};
use sv2p_vnet::agents::NoopSwitchAgent;
use sv2p_vnet::{
    HostAgent, HostResolution, MappingDb, MisdeliveryPolicy, Strategy, SwitchAgent,
};
/// Direct — pure host-driven: every host is preprogrammed with all mappings
/// (the paper's best-network-performance reference; it "ignores the
/// overheads of mapping updates", §5).
#[derive(Debug, Clone, Copy, Default)]
pub struct Direct;

/// Host agent that always resolves from the (pre-installed) full table.
#[derive(Debug, Default)]
struct DirectHostAgent;

impl HostAgent for DirectHostAgent {
    fn resolve(
        &mut self,
        _now: SimTime,
        db: &MappingDb,
        dst_vip: Vip,
        _flow_key: u64,
    ) -> HostResolution {
        match db.lookup(dst_vip) {
            Some(pip) => HostResolution::Direct(pip),
            // An unplaced VIP: fall back to the gateway, which will drop it.
            None => HostResolution::Gateway,
        }
    }
}

impl Strategy for Direct {
    fn name(&self) -> &'static str {
        "Direct"
    }

    fn caches_at(&self, _role: SwitchRole) -> bool {
        false
    }

    fn make_switch_agent(
        &self,
        _node: NodeId,
        _role: SwitchRole,
        _tag: SwitchTag,
        _lines: usize,
    ) -> Box<dyn SwitchAgent> {
        Box::new(NoopSwitchAgent)
    }

    fn make_host_agent(&self, _node: NodeId, _pip: Pip) -> Box<dyn HostAgent> {
        Box::new(DirectHostAgent)
    }

    fn misdelivery_policy(&self) -> MisdeliveryPolicy {
        MisdeliveryPolicy::FollowMe
    }

    fn uses_gateways(&self) -> bool {
        false
    }
}

/// OnDemand — host-driven with a first lookup via the gateway: the first
/// packet to a destination detours through a gateway while the mapping rule
/// is immediately offloaded to the sender host (VL2's on-demand lookup, the
/// Hoverboard model with immediate offloading, Achelous's ALM).
///
/// The host rule is *not* refreshed afterwards: after a migration it serves
/// stale until the (millisecond-scale) control plane catches up, which in
/// the paper's 1 ms migration window means never (§5.2).
#[derive(Debug, Clone, Copy, Default)]
pub struct OnDemand;

/// Host agent with an unbounded first-miss-filled cache.
#[derive(Debug, Default)]
struct OnDemandHostAgent {
    cache: FxHashMap<Vip, Pip>,
}

impl HostAgent for OnDemandHostAgent {
    fn resolve(
        &mut self,
        _now: SimTime,
        db: &MappingDb,
        dst_vip: Vip,
        _flow_key: u64,
    ) -> HostResolution {
        if let Some(&pip) = self.cache.get(&dst_vip) {
            return HostResolution::Direct(pip);
        }
        // Miss: this packet pays the gateway detour; the rule is installed
        // for everything after it.
        if let Some(pip) = db.lookup(dst_vip) {
            self.cache.insert(dst_vip, pip);
        }
        HostResolution::Gateway
    }

    fn reset(&mut self) {
        self.cache.clear();
    }
}

impl Strategy for OnDemand {
    fn name(&self) -> &'static str {
        "OnDemand"
    }

    fn caches_at(&self, _role: SwitchRole) -> bool {
        false
    }

    fn make_switch_agent(
        &self,
        _node: NodeId,
        _role: SwitchRole,
        _tag: SwitchTag,
        _lines: usize,
    ) -> Box<dyn SwitchAgent> {
        Box::new(NoopSwitchAgent)
    }

    fn make_host_agent(&self, _node: NodeId, _pip: Pip) -> Box<dyn HostAgent> {
        Box::new(OnDemandHostAgent::default())
    }

    fn misdelivery_policy(&self) -> MisdeliveryPolicy {
        MisdeliveryPolicy::FollowMe
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv2p_vnet::MappingOp;

    fn db() -> MappingDb {
        let mut db = MappingDb::new();
        db.apply(MappingOp::Install { vip: Vip(1), pip: Pip(10) });
        db
    }

    #[test]
    fn direct_always_resolves_locally() {
        let db = db();
        let mut agent = DirectHostAgent;
        for _ in 0..3 {
            assert_eq!(
                agent.resolve(SimTime::ZERO, &db, Vip(1), 0),
                HostResolution::Direct(Pip(10))
            );
        }
        assert_eq!(
            agent.resolve(SimTime::ZERO, &db, Vip(99), 0),
            HostResolution::Gateway
        );
    }

    #[test]
    fn ondemand_first_miss_then_direct() {
        let mut db = db();
        let mut agent = OnDemandHostAgent::default();
        assert_eq!(
            agent.resolve(SimTime::ZERO, &db, Vip(1), 0),
            HostResolution::Gateway,
            "first packet detours"
        );
        assert_eq!(
            agent.resolve(SimTime::ZERO, &db, Vip(1), 0),
            HostResolution::Direct(Pip(10)),
            "subsequent packets go direct"
        );
        // The rule is NOT refreshed on migration: stays stale.
        db.apply(MappingOp::Migrate { vip: Vip(1), to_pip: Pip(20), at_ns: None });
        assert_eq!(
            agent.resolve(SimTime::ZERO, &db, Vip(1), 0),
            HostResolution::Direct(Pip(10)),
            "stale rule after migration"
        );
    }

    #[test]
    fn strategy_wiring() {
        assert_eq!(Direct.name(), "Direct");
        assert!(!Direct.uses_gateways());
        assert_eq!(OnDemand.name(), "OnDemand");
        assert!(OnDemand.uses_gateways());
        assert_eq!(OnDemand.misdelivery_policy(), MisdeliveryPolicy::FollowMe);
    }
}
