//! GwCache — Sailfish-style caching at the gateway ToR switches only.
//!
//! "Local caches are deployed only on the gateway ToRs. Other switches are
//! not used for caching... unlike the controller-managed cache in Sailfish,
//! GwCache learns the mappings dynamically in the data plane" (§5).

use sv2p_packet::{Packet, PacketKind, Pip, SwitchTag, Vip};
use sv2p_topology::{NodeId, SwitchRole};
use sv2p_vnet::agents::NoopSwitchAgent;
use sv2p_vnet::{AgentOutput, CacheOp, MisdeliveryPolicy, Strategy, SwitchAgent, SwitchCtx};
use switchv2p::cache::{push_insert_ops, Admission, DirectMappedCache};

/// The GwCache baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct GwCache;

/// Gateway-ToR agent: destination learning + lookup, admit all.
#[derive(Debug)]
struct GwCacheAgent {
    cache: DirectMappedCache,
}

impl SwitchAgent for GwCacheAgent {
    fn on_packet(&mut self, ctx: &mut SwitchCtx<'_>, pkt: &mut Packet) -> AgentOutput {
        if !matches!(pkt.kind, PacketKind::Data) {
            return AgentOutput::forward();
        }
        let mut out = AgentOutput::forward();
        if !pkt.outer.resolved {
            if let Some((pip, _)) = self.cache.lookup(pkt.inner.dst_vip) {
                pkt.outer.dst_pip = pip;
                pkt.outer.resolved = true;
                out.cache_hit = true;
            }
        } else {
            // Packets leaving the gateways teach the mapping.
            let (vip, pip) = (pkt.inner.dst_vip, pkt.outer.dst_pip);
            let outcome = self.cache.insert(vip, pip, Admission::All);
            if ctx.trace_cache_ops {
                push_insert_ops(&mut out.cache_ops, outcome, CacheOp::Insert { vip, pip });
            }
        }
        out
    }

    fn occupancy(&self) -> usize {
        self.cache.occupancy()
    }

    fn entries(&self) -> Vec<(Vip, Pip)> {
        self.cache.entries()
    }

    fn reset(&mut self) {
        self.cache = DirectMappedCache::new(self.cache.capacity());
    }
}

impl Strategy for GwCache {
    fn name(&self) -> &'static str {
        "GwCache"
    }

    fn caches_at(&self, role: SwitchRole) -> bool {
        role == SwitchRole::GatewayTor
    }

    fn make_switch_agent(
        &self,
        _node: NodeId,
        role: SwitchRole,
        _tag: SwitchTag,
        lines: usize,
    ) -> Box<dyn SwitchAgent> {
        if role == SwitchRole::GatewayTor {
            Box::new(GwCacheAgent {
                cache: DirectMappedCache::new(lines),
            })
        } else {
            Box::new(NoopSwitchAgent)
        }
    }

    fn misdelivery_policy(&self) -> MisdeliveryPolicy {
        MisdeliveryPolicy::FollowMe
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_gateway_tors_cache() {
        let s = GwCache;
        assert!(s.caches_at(SwitchRole::GatewayTor));
        for role in [
            SwitchRole::GatewaySpine,
            SwitchRole::Tor,
            SwitchRole::Spine,
            SwitchRole::Core,
        ] {
            assert!(!s.caches_at(role), "{role:?}");
        }
    }

    #[test]
    fn non_gateway_agents_are_noops() {
        let s = GwCache;
        let agent = s.make_switch_agent(NodeId(0), SwitchRole::Spine, SwitchTag(0), 100);
        assert_eq!(agent.occupancy(), 0);
        assert!(agent.entries().is_empty());
    }
}
