//! LocalLearning — the §3.1 strawman: every switch destination-learns and
//! admits everything, with purely local greedy decisions. No learning
//! packets, no spillover, no promotion, no role awareness.

use sv2p_packet::{Packet, PacketKind, Pip, SwitchTag, Vip};
use sv2p_topology::{NodeId, SwitchRole};
use sv2p_vnet::{AgentOutput, CacheOp, MisdeliveryPolicy, Strategy, SwitchAgent, SwitchCtx};
use switchv2p::cache::{push_insert_ops, Admission, DirectMappedCache};

/// The LocalLearning baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalLearning;

/// Per-switch agent: lookup + unconditional destination learning.
#[derive(Debug)]
pub struct LocalLearningAgent {
    cache: DirectMappedCache,
}

impl SwitchAgent for LocalLearningAgent {
    fn on_packet(&mut self, ctx: &mut SwitchCtx<'_>, pkt: &mut Packet) -> AgentOutput {
        if !matches!(pkt.kind, PacketKind::Data) {
            return AgentOutput::forward();
        }
        let mut out = AgentOutput::forward();
        if !pkt.outer.resolved {
            if let Some((pip, _)) = self.cache.lookup(pkt.inner.dst_vip) {
                pkt.outer.dst_pip = pip;
                pkt.outer.resolved = true;
                out.cache_hit = true;
            }
        }
        if pkt.outer.resolved {
            // Local greedy destination learning, admit all (§3.1).
            let (vip, pip) = (pkt.inner.dst_vip, pkt.outer.dst_pip);
            let outcome = self.cache.insert(vip, pip, Admission::All);
            if ctx.trace_cache_ops {
                push_insert_ops(&mut out.cache_ops, outcome, CacheOp::Insert { vip, pip });
            }
        }
        out
    }

    fn occupancy(&self) -> usize {
        self.cache.occupancy()
    }

    fn entries(&self) -> Vec<(Vip, Pip)> {
        self.cache.entries()
    }

    fn reset(&mut self) {
        self.cache = DirectMappedCache::new(self.cache.capacity());
    }
}

impl Strategy for LocalLearning {
    fn name(&self) -> &'static str {
        "LocalLearning"
    }

    fn caches_at(&self, _role: SwitchRole) -> bool {
        true
    }

    fn make_switch_agent(
        &self,
        _node: NodeId,
        _role: SwitchRole,
        _tag: SwitchTag,
        lines: usize,
    ) -> Box<dyn SwitchAgent> {
        Box::new(LocalLearningAgent {
            cache: DirectMappedCache::new(lines),
        })
    }

    fn misdelivery_policy(&self) -> MisdeliveryPolicy {
        MisdeliveryPolicy::FollowMe
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv2p_packet::packet::Protocol;
    use sv2p_packet::{
        FlowId, InnerHeader, OuterHeader, PacketId, TcpFlags, TunnelOptions,
    };
    use sv2p_simcore::{SimDuration, SimRng, SimTime};
    use sv2p_vnet::MappingDb;

    fn ctx<'a>(db: &'a MappingDb, rng: &'a mut SimRng) -> SwitchCtx<'a> {
        SwitchCtx {
            now: SimTime::ZERO,
            node: NodeId(0),
            tag: SwitchTag(0),
            switch_pip: Pip(9999),
            role: SwitchRole::Spine,
            my_pod: Some(0),
            ingress_host: None,
            dst_attached: false,
            db,
            rng,
            base_rtt: SimDuration::from_micros(12),
            pod_of: &|_| None,
            pip_of_tag: &|_| Pip(0),
            trace_cache_ops: false,
        }
    }

    fn pkt(dst_vip: u32, dst_pip: u32, resolved: bool) -> Packet {
        Packet {
            id: PacketId(0),
            flow: FlowId(0),
            kind: PacketKind::Data,
            outer: OuterHeader {
                src_pip: Pip(1),
                dst_pip: Pip(dst_pip),
                resolved,
            },
            inner: InnerHeader {
                src_vip: Vip(100),
                dst_vip: Vip(dst_vip),
                src_port: 1,
                dst_port: 2,
                protocol: Protocol::Tcp,
                seq: 0,
                ack: 0,
                flags: TcpFlags::default(),
            },
            opts: TunnelOptions::default(),
            payload: 10,
            switch_hops: 0,
            sent_ns: 0,
            first_of_flow: false,
            visited_gateway: false,
        }
    }

    #[test]
    fn learns_from_resolved_then_serves() {
        let db = MappingDb::new();
        let mut rng = SimRng::new(1);
        let s = LocalLearning;
        let mut agent = s.make_switch_agent(NodeId(0), SwitchRole::Spine, SwitchTag(0), 8);
        // Resolved packet teaches the mapping.
        let mut p1 = pkt(5, 50, true);
        let out = agent.on_packet(&mut ctx(&db, &mut rng), &mut p1);
        assert!(!out.cache_hit);
        // Unresolved packet for the same VIP now hits.
        let mut p2 = pkt(5, 999, false);
        let out = agent.on_packet(&mut ctx(&db, &mut rng), &mut p2);
        assert!(out.cache_hit);
        assert_eq!(p2.outer.dst_pip, Pip(50));
        assert!(p2.outer.resolved);
    }

    #[test]
    fn unresolved_miss_learns_nothing() {
        let db = MappingDb::new();
        let mut rng = SimRng::new(1);
        let s = LocalLearning;
        let mut agent = s.make_switch_agent(NodeId(0), SwitchRole::Tor, SwitchTag(0), 8);
        let mut p = pkt(5, 999, false);
        agent.on_packet(&mut ctx(&db, &mut rng), &mut p);
        assert_eq!(agent.occupancy(), 0);
    }
}
