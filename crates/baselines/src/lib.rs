//! The baseline V2P translation systems of the paper's §5 evaluation.
//!
//! | Baseline | Paper reference | Where mappings live |
//! |---|---|---|
//! | [`NoCache`] | Andromeda's Hoverboard w/o offloading | gateways only |
//! | [`LocalLearning`] | §3.1's strawman | every switch, local greedy |
//! | [`GwCache`] | Sailfish | gateway ToR switches |
//! | [`Bluebird`] | Bluebird (NSDI'22) | ToR route caches + switch control plane |
//! | [`OnDemand`] | VL2 / Hoverboard immediate offload / Achelous ALM | sender hosts, filled on first miss |
//! | [`Direct`] | preprogrammed host-driven | all sender hosts |
//! | [`controller`] | Appendix A.1/A.2 ILP | switches, centrally installed |
//!
//! Each implements `sv2p_vnet::Strategy` and plugs into the same simulator
//! as SwitchV2P itself.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bluebird;
pub mod controller;
pub mod gwcache;
pub mod hostside;
pub mod local_learning;
pub mod nocache;

pub use bluebird::{Bluebird, BluebirdConfig};
pub use controller::{Controller, ControllerDriver};
pub use gwcache::GwCache;
pub use hostside::{Direct, OnDemand};
pub use local_learning::LocalLearning;
pub use nocache::NoCache;
