//! The five switch categories of the paper's Table 1.
//!
//! Roles are derived purely from the topology: a *gateway ToR* is a ToR with
//! at least one gateway attached; a *gateway spine* is a spine directly
//! connected to a gateway ToR (Figure 3: "A3 and A4 function as gateway
//! spines due to their direct attachment to a gateway ToR"). Everything else
//! keeps its layer name. The paper notes roles can be reassigned by the
//! control plane when a gateway moves (§4 "Gateway migration") — that is a
//! recomputation of this classification.

use serde::{Deserialize, Serialize};

use crate::graph::{NodeId, NodeKind, Topology};

/// Table 1 switch categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SwitchRole {
    /// ToR directly connected to one or more gateways.
    GatewayTor,
    /// Spine directly attached to a gateway ToR.
    GatewaySpine,
    /// Regular top-of-rack switch.
    Tor,
    /// Regular pod switch.
    Spine,
    /// Core switch.
    Core,
}

impl SwitchRole {
    /// Human-readable name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            SwitchRole::GatewayTor => "Gateway ToR",
            SwitchRole::GatewaySpine => "Gateway Spine",
            SwitchRole::Tor => "ToR",
            SwitchRole::Spine => "Spine",
            SwitchRole::Core => "Core",
        }
    }

    /// The topology layer (ToR/Spine/Core) ignoring gateway adjacency —
    /// Table 5 reports hit distribution by layer.
    pub fn layer(self) -> &'static str {
        match self {
            SwitchRole::GatewayTor | SwitchRole::Tor => "ToR",
            SwitchRole::GatewaySpine | SwitchRole::Spine => "Spine",
            SwitchRole::Core => "Core",
        }
    }
}

/// Per-node role table: `roles[node.0] == None` for hosts.
#[derive(Debug, Clone)]
pub struct RoleMap {
    roles: Vec<Option<SwitchRole>>,
}

impl RoleMap {
    /// Classifies every switch in `topo`.
    pub fn classify(topo: &Topology) -> Self {
        let n = topo.nodes.len();
        let mut roles: Vec<Option<SwitchRole>> = vec![None; n];

        // Pass 1: base layers + gateway ToRs.
        for node in &topo.nodes {
            roles[node.id.0 as usize] = match node.kind {
                NodeKind::Tor { .. } => {
                    let has_gw = topo
                        .neighbors(node.id)
                        .any(|nb| matches!(topo.node(nb).kind, NodeKind::Gateway { .. }));
                    Some(if has_gw {
                        SwitchRole::GatewayTor
                    } else {
                        SwitchRole::Tor
                    })
                }
                NodeKind::Spine { .. } => Some(SwitchRole::Spine),
                NodeKind::Core { .. } => Some(SwitchRole::Core),
                _ => None,
            };
        }
        // Pass 2: spines adjacent to a gateway ToR become gateway spines.
        for node in &topo.nodes {
            if roles[node.id.0 as usize] == Some(SwitchRole::GatewayTor) {
                for nb in topo.neighbors(node.id) {
                    if roles[nb.0 as usize] == Some(SwitchRole::Spine) {
                        roles[nb.0 as usize] = Some(SwitchRole::GatewaySpine);
                    }
                }
            }
        }
        RoleMap { roles }
    }

    /// Role of `node` (`None` for hosts).
    pub fn role(&self, node: NodeId) -> Option<SwitchRole> {
        self.roles[node.0 as usize]
    }

    /// Reassigns a switch's role — the control-plane operation behind
    /// gateway migration (§4: "during gateway migrations, the former
    /// gateway ToR can transition to a standard ToR behavior, while the new
    /// ToR can take on the role of a gateway ToR").
    ///
    /// Panics if `node` is not a switch.
    pub fn set_role(&mut self, node: NodeId, role: SwitchRole) {
        assert!(
            self.roles[node.0 as usize].is_some(),
            "cannot assign a switch role to a host"
        );
        self.roles[node.0 as usize] = Some(role);
    }

    /// Counts switches per role.
    pub fn counts(&self) -> std::collections::HashMap<SwitchRole, usize> {
        let mut map = std::collections::HashMap::new();
        for r in self.roles.iter().flatten() {
            *map.entry(*r).or_insert(0) += 1;
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fattree::FatTreeConfig;

    #[test]
    fn ft8_role_census() {
        let cfg = FatTreeConfig::ft8_10k();
        let topo = cfg.build();
        let roles = RoleMap::classify(&topo);
        let counts = roles.counts();
        // 4 gateway pods: 1 gateway ToR each, all 4 spines become gateway
        // spines; 4 plain pods keep 4 ToRs + 4 spines.
        assert_eq!(counts[&SwitchRole::GatewayTor], 4);
        assert_eq!(counts[&SwitchRole::GatewaySpine], 16);
        assert_eq!(counts[&SwitchRole::Tor], 28);
        assert_eq!(counts[&SwitchRole::Spine], 16);
        assert_eq!(counts[&SwitchRole::Core], 16);
        assert_eq!(counts.values().sum::<usize>(), 80);
    }

    #[test]
    fn hosts_have_no_role() {
        let cfg = FatTreeConfig::ft8_10k();
        let topo = cfg.build();
        let roles = RoleMap::classify(&topo);
        for s in topo.servers() {
            assert_eq!(roles.role(s.id), None);
        }
        for g in topo.gateways() {
            assert_eq!(roles.role(g.id), None);
        }
    }

    #[test]
    fn layer_collapses_gateway_variants() {
        assert_eq!(SwitchRole::GatewayTor.layer(), "ToR");
        assert_eq!(SwitchRole::GatewaySpine.layer(), "Spine");
        assert_eq!(SwitchRole::Core.layer(), "Core");
    }
}
