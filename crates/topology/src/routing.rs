//! Structural ECMP up-down routing.
//!
//! Routing is computed from node locations rather than precomputed all-pairs
//! tables — FT16-400K has ~14 000 nodes and a dense next-hop matrix would
//! dwarf the caches being studied. The rules are the standard FatTree
//! up-down ones; among equal-cost choices the flow key picks one
//! deterministically ("Flows are balanced among multiple paths using ECMP
//! routing", §5).
//!
//! Switches are also routable destinations (invalidation packets are
//! addressed to a switch, §3.3), which adds a few down-then-up cases that
//! plain host-to-host routing never exercises.

use sv2p_simcore::FxHashMap;

use crate::fattree::FatTreeConfig;
use crate::graph::{LinkId, NodeId, NodeKind, Topology};

/// ECMP router over a built FatTree.
#[derive(Debug, Clone)]
pub struct Routing {
    /// ToR of each (pod, rack).
    tor: FxHashMap<(u16, u16), NodeId>,
    /// Spines of each pod, by index.
    spines: Vec<Vec<NodeId>>,
    /// Core switches by index.
    cores: Vec<NodeId>,
    /// Cores per spine group.
    m: u16,
    racks_per_pod: u16,
}

impl Routing {
    /// Builds the router for `topo` produced by `config.build()`.
    pub fn new(config: &FatTreeConfig, topo: &Topology) -> Self {
        let mut tor = FxHashMap::default();
        let mut spines = vec![Vec::new(); config.pods as usize];
        let mut cores = vec![NodeId(0); config.cores as usize];
        for n in &topo.nodes {
            match n.kind {
                NodeKind::Tor { pod, rack } => {
                    tor.insert((pod, rack), n.id);
                }
                NodeKind::Spine { pod, idx } => {
                    let v = &mut spines[pod as usize];
                    if v.len() <= idx as usize {
                        v.resize(idx as usize + 1, n.id);
                    }
                    v[idx as usize] = n.id;
                }
                NodeKind::Core { idx } => cores[idx as usize] = n.id,
                _ => {}
            }
        }
        Routing {
            tor,
            spines,
            cores,
            m: config.core_group(),
            racks_per_pod: config.racks_per_pod,
        }
    }

    /// The ToR a host (server or gateway) is attached to.
    pub fn tor_of(&self, topo: &Topology, host: NodeId) -> NodeId {
        match topo.node(host).kind {
            NodeKind::Server { pod, rack, .. } => self.tor[&(pod, rack)],
            NodeKind::Gateway { pod, .. } => {
                self.tor[&(pod, self.racks_per_pod - 1)]
            }
            k => panic!("tor_of on non-host {k:?}"),
        }
    }

    /// The equal-cost egress links from `at` toward `dst` (empty iff
    /// `at == dst`).
    pub fn candidates(&self, topo: &Topology, at: NodeId, dst: NodeId) -> Vec<LinkId> {
        let mut out = Vec::new();
        self.candidates_into(topo, at, dst, &mut out);
        out
    }

    /// [`Self::candidates`] into a caller-owned buffer — the hot path's
    /// variant. Clears `out` first; a reused scratch `Vec` makes per-hop
    /// routing allocation-free after warm-up.
    pub fn candidates_into(
        &self,
        topo: &Topology,
        at: NodeId,
        dst: NodeId,
        out: &mut Vec<LinkId>,
    ) {
        out.clear();
        if at == dst {
            return;
        }
        let at_kind = topo.node(at).kind;
        let dst_kind = topo.node(dst).kind;
        match at_kind {
            NodeKind::Server { .. } | NodeKind::Gateway { .. } => {
                let tor = self.tor_of(topo, at);
                out.push(topo.link_between(at, tor).expect("host uplink"));
            }
            NodeKind::Tor { pod, rack } => {
                // Directly attached host?
                match dst_kind {
                    NodeKind::Server {
                        pod: dp, rack: dr, ..
                    } if dp == pod && dr == rack => {
                        out.push(topo.link_between(at, dst).expect("rack downlink"));
                        return;
                    }
                    NodeKind::Gateway { pod: dp, .. }
                        if dp == pod && rack == self.racks_per_pod - 1 =>
                    {
                        out.push(topo.link_between(at, dst).expect("gateway downlink"));
                        return;
                    }
                    NodeKind::Spine { pod: dp, .. } if dp == pod => {
                        out.push(topo.link_between(at, dst).expect("pod spine uplink"));
                        return;
                    }
                    NodeKind::Core { idx } => {
                        // Only the spine of group idx/m reaches that core.
                        let sp = self.spines[pod as usize][(idx / self.m) as usize];
                        out.push(topo.link_between(at, sp).expect("spine uplink"));
                        return;
                    }
                    _ => {}
                }
                // Anywhere else: up to any spine of the pod.
                out.extend(
                    self.spines[pod as usize]
                        .iter()
                        .map(|&sp| topo.link_between(at, sp).expect("spine uplink")),
                );
            }
            NodeKind::Spine { pod, idx } => {
                match dst_kind {
                    // Down into my pod.
                    NodeKind::Server {
                        pod: dp, rack: dr, ..
                    } if dp == pod => {
                        let tor = self.tor[&(dp, dr)];
                        out.push(topo.link_between(at, tor).expect("tor downlink"));
                    }
                    NodeKind::Gateway { pod: dp, .. } if dp == pod => {
                        let tor = self.tor[&(dp, self.racks_per_pod - 1)];
                        out.push(topo.link_between(at, tor).expect("tor downlink"));
                    }
                    NodeKind::Tor { pod: dp, rack: dr } if dp == pod => {
                        out.push(
                            topo.link_between(at, self.tor[&(dp, dr)]).expect("tor link"),
                        );
                    }
                    // A sibling spine: bounce through any ToR below.
                    NodeKind::Spine { pod: dp, .. } if dp == pod => out.extend(
                        (0..self.racks_per_pod).map(|r| {
                            topo.link_between(at, self.tor[&(pod, r)]).expect("tor link")
                        }),
                    ),
                    // A core I connect to directly; otherwise bounce down.
                    NodeKind::Core { idx: c } => {
                        if c / self.m == idx {
                            out.push(
                                topo.link_between(at, self.cores[c as usize])
                                    .expect("core uplink"),
                            );
                        } else {
                            out.extend((0..self.racks_per_pod).map(|r| {
                                topo.link_between(at, self.tor[&(pod, r)])
                                    .expect("tor link")
                            }));
                        }
                    }
                    // Another pod: up to my core group.
                    _ => out.extend((0..self.m).map(|j| {
                        let c = self.cores[(idx * self.m + j) as usize];
                        topo.link_between(at, c).expect("core uplink")
                    })),
                }
            }
            NodeKind::Core { idx } => {
                // Down to the dst pod through my group's spine there.
                let group = idx / self.m;
                match dst_kind.pod() {
                    Some(p) => {
                        let sp = self.spines[p as usize][group as usize];
                        out.push(topo.link_between(at, sp).expect("spine downlink"));
                    }
                    None => {
                        // Core-to-core: descend into some pod and re-ascend.
                        // Rare (only mis-addressed control traffic); pick every
                        // pod's group spine as candidates.
                        out.extend(self.spines.iter().map(|pod_spines| {
                            topo.link_between(at, pod_spines[group as usize])
                                .expect("spine downlink")
                        }));
                    }
                }
            }
        }
    }

    /// The single ECMP next hop for a packet with flow key `key`.
    pub fn next_link(
        &self,
        topo: &Topology,
        at: NodeId,
        dst: NodeId,
        key: u64,
    ) -> Option<LinkId> {
        self.next_link_filtered(topo, at, dst, key, &|_| true)
    }

    /// [`Self::next_link`] restricted to links where `usable` holds — the
    /// data plane's view after link failures. Unusable members are masked
    /// out of the ECMP group before hashing, so flows rehash onto the
    /// surviving ports; returns `None` only when every candidate is down
    /// (the packet is unroutable).
    pub fn next_link_filtered(
        &self,
        topo: &Topology,
        at: NodeId,
        dst: NodeId,
        key: u64,
        usable: &dyn Fn(LinkId) -> bool,
    ) -> Option<LinkId> {
        let mut scratch = Vec::new();
        self.next_link_filtered_into(topo, at, dst, key, usable, &mut scratch)
    }

    /// [`Self::next_link_filtered`] using a caller-owned candidate buffer,
    /// so the per-hop ECMP decision allocates nothing once the scratch has
    /// grown to the widest group.
    pub fn next_link_filtered_into(
        &self,
        topo: &Topology,
        at: NodeId,
        dst: NodeId,
        key: u64,
        usable: &dyn Fn(LinkId) -> bool,
        scratch: &mut Vec<LinkId>,
    ) -> Option<LinkId> {
        self.candidates_into(topo, at, dst, scratch);
        scratch.retain(|&l| usable(l));
        if scratch.is_empty() {
            None
        } else {
            // Mix the switch id into the hash, as real ASICs seed their ECMP
            // hash per switch — otherwise the same low bits would pick
            // correlated members at every layer and only a fraction of the
            // core layer would ever be used.
            let mut h = key ^ (at.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            h ^= h >> 33;
            h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
            h ^= h >> 33;
            Some(scratch[(h % scratch.len() as u64) as usize])
        }
    }

    /// The full node path from `from` to `to` under flow key `key`,
    /// inclusive of both endpoints. Panics on a routing loop (> 64 hops).
    pub fn path(&self, topo: &Topology, from: NodeId, to: NodeId, key: u64) -> Vec<NodeId> {
        let mut path = vec![from];
        let mut at = from;
        while at != to {
            let link = self
                .next_link(topo, at, to, key)
                .expect("no route");
            at = topo.link(link).to;
            path.push(at);
            assert!(path.len() <= 64, "routing loop: {path:?}");
        }
        path
    }

    /// Number of switches on the path (packet stretch metric, §5.3).
    pub fn switch_hops(&self, topo: &Topology, from: NodeId, to: NodeId, key: u64) -> usize {
        self.path(topo, from, to, key)
            .iter()
            .filter(|&&n| topo.node(n).kind.is_switch())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fattree::FatTreeConfig;

    fn setup() -> (FatTreeConfig, Topology, Routing) {
        let cfg = FatTreeConfig::ft8_10k();
        let topo = cfg.build();
        let routing = Routing::new(&cfg, &topo);
        (cfg, topo, routing)
    }

    fn server(topo: &Topology, pod: u16, rack: u16, slot: u16) -> NodeId {
        topo.nodes
            .iter()
            .find(|n| {
                n.kind
                    == NodeKind::Server {
                        pod,
                        rack,
                        slot,
                    }
            })
            .unwrap()
            .id
    }

    #[test]
    fn intra_rack_path_is_one_switch() {
        let (_, topo, r) = setup();
        let a = server(&topo, 0, 0, 0);
        let b = server(&topo, 0, 0, 1);
        assert_eq!(r.switch_hops(&topo, a, b, 0), 1);
        let p = r.path(&topo, a, b, 0);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn intra_pod_path_is_three_switches() {
        let (_, topo, r) = setup();
        let a = server(&topo, 0, 0, 0);
        let b = server(&topo, 0, 1, 0);
        assert_eq!(r.switch_hops(&topo, a, b, 7), 3);
    }

    #[test]
    fn inter_pod_path_is_five_switches() {
        let (_, topo, r) = setup();
        let a = server(&topo, 0, 0, 0);
        let b = server(&topo, 3, 2, 1);
        assert_eq!(r.switch_hops(&topo, a, b, 42), 5);
    }

    #[test]
    fn ecmp_spreads_and_is_deterministic() {
        let (_, topo, r) = setup();
        let a = server(&topo, 0, 0, 0);
        let b = server(&topo, 5, 1, 0);
        let p1 = r.path(&topo, a, b, 1);
        let p1b = r.path(&topo, a, b, 1);
        assert_eq!(p1, p1b, "same key must give the same path");
        // Different keys must reach different core switches eventually.
        let mut distinct_cores = std::collections::HashSet::new();
        for key in 0..64u64 {
            let p = r.path(&topo, a, b, key);
            for n in p {
                if let NodeKind::Core { idx } = topo.node(n).kind {
                    distinct_cores.insert(idx);
                }
            }
        }
        assert!(
            distinct_cores.len() >= 8,
            "ECMP used only {distinct_cores:?}"
        );
    }

    #[test]
    fn all_pairs_route_without_loops() {
        // Sampled all-kinds reachability: every node can reach every other.
        let (_, topo, r) = setup();
        let sample: Vec<NodeId> = topo
            .nodes
            .iter()
            .step_by(17)
            .map(|n| n.id)
            .collect();
        for &a in &sample {
            for &b in &sample {
                if a != b {
                    let p = r.path(&topo, a, b, 13);
                    assert_eq!(*p.first().unwrap(), a);
                    assert_eq!(*p.last().unwrap(), b);
                }
            }
        }
    }

    #[test]
    fn switch_addressed_routing_works() {
        // Invalidation packets travel host -> switch and switch -> switch.
        let (_, topo, r) = setup();
        let host = server(&topo, 1, 0, 0);
        for sw in topo.switches().map(|n| n.id).take(20) {
            let p = r.path(&topo, host, sw, 3);
            assert_eq!(*p.last().unwrap(), sw);
        }
        // ToR to a sibling spine's core and spine-to-spine bounces.
        let tor = topo
            .nodes
            .iter()
            .find(|n| n.kind == NodeKind::Tor { pod: 0, rack: 0 })
            .unwrap()
            .id;
        let spine_far = topo
            .nodes
            .iter()
            .find(|n| n.kind == NodeKind::Spine { pod: 4, idx: 2 })
            .unwrap()
            .id;
        let p = r.path(&topo, tor, spine_far, 9);
        assert_eq!(*p.last().unwrap(), spine_far);
    }

    #[test]
    fn gateway_paths_terminate_at_gateway() {
        let (_, topo, r) = setup();
        let a = server(&topo, 1, 0, 0);
        for gw in topo.gateways().map(|n| n.id) {
            let p = r.path(&topo, a, gw, 11);
            assert_eq!(*p.last().unwrap(), gw);
        }
    }

    #[test]
    fn filtered_next_link_falls_back_to_surviving_ports() {
        let (_, topo, r) = setup();
        let a = server(&topo, 0, 0, 0);
        let b = server(&topo, 5, 1, 0);
        let tor = r.tor_of(&topo, a);
        // From the ToR every pod spine is a candidate; fail the one the
        // hash picks and the flow must rehash onto a different uplink.
        let picked = r.next_link(&topo, tor, b, 99).expect("route exists");
        let alt = r
            .next_link_filtered(&topo, tor, b, 99, &|l| l != picked)
            .expect("alternate port exists");
        assert_ne!(alt, picked);
        // Same key + same mask is deterministic.
        assert_eq!(
            r.next_link_filtered(&topo, tor, b, 99, &|l| l != picked),
            Some(alt)
        );
        // Masking everything makes the destination unroutable.
        assert_eq!(r.next_link_filtered(&topo, tor, b, 99, &|_| false), None);
        // A host's single uplink down: unroutable at the source.
        assert_eq!(
            r.next_link_filtered(&topo, a, b, 1, &|_| false),
            None
        );
    }

    #[test]
    fn paths_in_scaled_topologies() {
        for pods in [1u16, 2, 32] {
            let cfg = FatTreeConfig::scaled_ft8(pods);
            let topo = cfg.build();
            let r = Routing::new(&cfg, &topo);
            let servers: Vec<NodeId> = topo.servers().map(|n| n.id).collect();
            let a = servers[0];
            let b = *servers.last().unwrap();
            let p = r.path(&topo, a, b, 5);
            assert_eq!(*p.last().unwrap(), b, "pods={pods}");
        }
    }
}
