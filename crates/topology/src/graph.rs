//! Nodes, directed links, and the topology container.

use serde::{Deserialize, Serialize};
use sv2p_simcore::FxHashMap;
use sv2p_packet::Pip;

/// Index of a node (server, gateway, or switch) in the topology.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct NodeId(pub u32);

/// Index of a *directed* link. Every physical cable appears twice, once per
/// direction, because each direction has its own egress queue in the
/// simulator.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct LinkId(pub u32);

/// What a node is and where it sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// A VM-hosting server.
    Server {
        /// Pod index.
        pod: u16,
        /// Rack index within the pod.
        rack: u16,
        /// Slot within the rack.
        slot: u16,
    },
    /// A translation gateway box, attached to its pod's gateway ToR.
    Gateway {
        /// Pod index.
        pod: u16,
        /// Slot under the gateway ToR.
        slot: u16,
    },
    /// A top-of-rack switch.
    Tor {
        /// Pod index.
        pod: u16,
        /// Rack index within the pod.
        rack: u16,
    },
    /// A pod (aggregation) switch.
    Spine {
        /// Pod index.
        pod: u16,
        /// Spine index within the pod.
        idx: u16,
    },
    /// A core switch.
    Core {
        /// Core index.
        idx: u16,
    },
}

impl NodeKind {
    /// True for switches of any layer.
    pub fn is_switch(self) -> bool {
        matches!(
            self,
            NodeKind::Tor { .. } | NodeKind::Spine { .. } | NodeKind::Core { .. }
        )
    }

    /// True for end hosts (servers and gateways).
    pub fn is_host(self) -> bool {
        matches!(self, NodeKind::Server { .. } | NodeKind::Gateway { .. })
    }

    /// The pod this node belongs to, if it is pod-local.
    pub fn pod(self) -> Option<u16> {
        match self {
            NodeKind::Server { pod, .. }
            | NodeKind::Gateway { pod, .. }
            | NodeKind::Tor { pod, .. }
            | NodeKind::Spine { pod, .. } => Some(pod),
            NodeKind::Core { .. } => None,
        }
    }
}

/// One node of the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// Its index.
    pub id: NodeId,
    /// Kind and location.
    pub kind: NodeKind,
    /// Physical address; hosts and gateways always have one, switches get one
    /// too so invalidation packets can be addressed to them (§3.3).
    pub pip: Pip,
}

/// One direction of a physical cable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirectedLink {
    /// Its index.
    pub id: LinkId,
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Line rate in bits per second.
    pub bandwidth_bps: u64,
    /// Propagation delay in nanoseconds.
    pub delay_ns: u64,
}

/// A static network topology: nodes, directed links, port lists, and address
/// maps. Built once by [`crate::fattree::FatTreeConfig::build`]; never
/// mutated during simulation.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    /// All nodes, indexed by [`NodeId`].
    pub nodes: Vec<Node>,
    /// All directed links, indexed by [`LinkId`].
    pub links: Vec<DirectedLink>,
    /// Egress ports of each node.
    pub out_links: Vec<Vec<LinkId>>,
    adjacency: FxHashMap<(NodeId, NodeId), LinkId>,
    pip_to_node: FxHashMap<Pip, NodeId>,
}

impl Topology {
    /// Adds a node; `pip` must be unique.
    pub fn add_node(&mut self, kind: NodeKind, pip: Pip) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { id, kind, pip });
        self.out_links.push(Vec::new());
        let prev = self.pip_to_node.insert(pip, id);
        assert!(prev.is_none(), "duplicate PIP {pip}");
        id
    }

    /// Adds both directions of a cable between `a` and `b`.
    pub fn add_cable(&mut self, a: NodeId, b: NodeId, bandwidth_bps: u64, delay_ns: u64) {
        for (from, to) in [(a, b), (b, a)] {
            let id = LinkId(self.links.len() as u32);
            self.links.push(DirectedLink {
                id,
                from,
                to,
                bandwidth_bps,
                delay_ns,
            });
            self.out_links[from.0 as usize].push(id);
            let prev = self.adjacency.insert((from, to), id);
            assert!(prev.is_none(), "duplicate cable {from:?}->{to:?}");
        }
    }

    /// The node a PIP addresses, if any.
    pub fn node_by_pip(&self, pip: Pip) -> Option<NodeId> {
        self.pip_to_node.get(&pip).copied()
    }

    /// The directed link from `a` to `b`, if adjacent.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        self.adjacency.get(&(a, b)).copied()
    }

    /// Node accessor.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Link accessor.
    pub fn link(&self, id: LinkId) -> &DirectedLink {
        &self.links[id.0 as usize]
    }

    /// Iterates over all switch nodes.
    pub fn switches(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter().filter(|n| n.kind.is_switch())
    }

    /// Iterates over all VM-hosting servers.
    pub fn servers(&self) -> impl Iterator<Item = &Node> {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Server { .. }))
    }

    /// Iterates over all gateway boxes.
    pub fn gateways(&self) -> impl Iterator<Item = &Node> {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Gateway { .. }))
    }

    /// Number of switches.
    pub fn switch_count(&self) -> usize {
        self.switches().count()
    }

    /// The neighbors of `id` (one hop over any egress port).
    pub fn neighbors(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_links[id.0 as usize]
            .iter()
            .map(|l| self.link(*l).to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Topology, NodeId, NodeId, NodeId) {
        let mut t = Topology::default();
        let h1 = t.add_node(
            NodeKind::Server {
                pod: 0,
                rack: 0,
                slot: 0,
            },
            Pip(1),
        );
        let tor = t.add_node(NodeKind::Tor { pod: 0, rack: 0 }, Pip(100));
        let h2 = t.add_node(
            NodeKind::Server {
                pod: 0,
                rack: 0,
                slot: 1,
            },
            Pip(2),
        );
        t.add_cable(h1, tor, 100, 1000);
        t.add_cable(h2, tor, 100, 1000);
        (t, h1, tor, h2)
    }

    #[test]
    fn cables_create_both_directions() {
        let (t, h1, tor, h2) = tiny();
        assert!(t.link_between(h1, tor).is_some());
        assert!(t.link_between(tor, h1).is_some());
        assert_ne!(t.link_between(h1, tor), t.link_between(tor, h1));
        assert!(t.link_between(h1, h2).is_none());
        assert_eq!(t.out_links[tor.0 as usize].len(), 2);
    }

    #[test]
    fn pip_lookup() {
        let (t, h1, _, _) = tiny();
        assert_eq!(t.node_by_pip(Pip(1)), Some(h1));
        assert_eq!(t.node_by_pip(Pip(999)), None);
    }

    #[test]
    #[should_panic(expected = "duplicate PIP")]
    fn duplicate_pip_panics() {
        let mut t = Topology::default();
        t.add_node(NodeKind::Core { idx: 0 }, Pip(1));
        t.add_node(NodeKind::Core { idx: 1 }, Pip(1));
    }

    #[test]
    fn kind_classification() {
        assert!(NodeKind::Tor { pod: 0, rack: 0 }.is_switch());
        assert!(NodeKind::Core { idx: 0 }.is_switch());
        assert!(NodeKind::Server {
            pod: 0,
            rack: 0,
            slot: 0
        }
        .is_host());
        assert!(NodeKind::Gateway { pod: 0, slot: 0 }.is_host());
        assert_eq!(NodeKind::Core { idx: 3 }.pod(), None);
        assert_eq!(NodeKind::Spine { pod: 5, idx: 0 }.pod(), Some(5));
    }

    #[test]
    fn neighbors_iterates_adjacent_nodes() {
        let (t, h1, tor, h2) = tiny();
        let n: Vec<_> = t.neighbors(tor).collect();
        assert_eq!(n, vec![h1, h2]);
    }
}
