//! FatTree topology builder (paper Table 3 and §5.3 scaling).
//!
//! The layout follows the paper's figures: each pod has `racks_per_pod` ToRs
//! fully meshed to `spines_per_pod` pod switches; spine *i* of every pod
//! connects to the core group `[i*m, (i+1)*m)` where `m = cores /
//! spines_per_pod`. Gateways live in a configurable subset of pods ("we
//! deploy gateways in 50% of the pods"), attached to the last ToR of the pod
//! — the *gateway ToR* of Figure 8.

use serde::{Deserialize, Serialize};
use sv2p_packet::Pip;

use crate::graph::{NodeId, NodeKind, Topology};

/// Bandwidth + propagation of one cable class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Line rate in bits per second.
    pub bandwidth_bps: u64,
    /// Propagation delay in nanoseconds.
    pub delay_ns: u64,
}

impl LinkSpec {
    /// 100 Gb/s, 1 µs — the paper's server NIC links.
    pub const HOST_100G: LinkSpec = LinkSpec {
        bandwidth_bps: 100_000_000_000,
        delay_ns: 1_000,
    };
    /// 400 Gb/s, 1 µs — the paper's switch-to-switch links.
    pub const FABRIC_400G: LinkSpec = LinkSpec {
        bandwidth_bps: 400_000_000_000,
        delay_ns: 1_000,
    };
}

/// Everything needed to build a FatTree instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FatTreeConfig {
    /// Number of pods.
    pub pods: u16,
    /// Racks (== ToRs) per pod.
    pub racks_per_pod: u16,
    /// VM-hosting servers per rack.
    pub servers_per_rack: u16,
    /// Pod switches per pod.
    pub spines_per_pod: u16,
    /// Core switches (must be a multiple of `spines_per_pod`).
    pub cores: u16,
    /// Which pods host translation gateways.
    pub gateway_pods: Vec<u16>,
    /// Gateways attached to each gateway pod's gateway ToR. The vector is
    /// parallel to `gateway_pods`, so unequal spreads (Figure 9's 4-gateway
    /// point) are expressible.
    pub gateways_per_pod: Vec<u16>,
    /// Server and gateway NIC links.
    pub host_link: LinkSpec,
    /// Switch-to-switch links.
    pub fabric_link: LinkSpec,
}

/// Table 3 rows, computed from a built config.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Characteristics {
    /// Number of pods.
    pub pods: u16,
    /// Racks per pod.
    pub racks_per_pod: u16,
    /// Total ToR switches.
    pub tor_switches: u32,
    /// Total spine switches.
    pub spine_switches: u32,
    /// Total core switches.
    pub core_switches: u32,
    /// Total switches of all layers.
    pub total_switches: u32,
    /// Total gateways.
    pub gateways: u32,
    /// Total VM-hosting servers.
    pub physical_servers: u32,
}

impl FatTreeConfig {
    /// FT8-10K (Table 3): 8 pods × 4 racks × 4 servers = 128 servers,
    /// 32 ToRs + 32 spines + 16 cores = 80 switches, 40 gateways in pods
    /// {1, 3, 6, 8} (1-indexed, as in Figure 7).
    pub fn ft8_10k() -> Self {
        FatTreeConfig {
            pods: 8,
            racks_per_pod: 4,
            servers_per_rack: 4,
            spines_per_pod: 4,
            cores: 16,
            gateway_pods: vec![0, 2, 5, 7],
            gateways_per_pod: vec![10, 10, 10, 10],
            host_link: LinkSpec::HOST_100G,
            fabric_link: LinkSpec::FABRIC_400G,
        }
    }

    /// FT16-400K (Table 3): 50 pods × 8 racks × 32 servers = 12 800 servers,
    /// 400 ToRs, 16 cores, 250 gateways in 25 pods.
    pub fn ft16_400k() -> Self {
        FatTreeConfig {
            pods: 50,
            racks_per_pod: 8,
            servers_per_rack: 32,
            spines_per_pod: 4,
            cores: 16,
            gateway_pods: (0..50).step_by(2).collect(),
            gateways_per_pod: vec![10; 25],
            host_link: LinkSpec::HOST_100G,
            fabric_link: LinkSpec::FABRIC_400G,
        }
    }

    /// FT32-1M (the million-VM tier past the paper's Table 3): 32 pods ×
    /// 32 racks × 32 servers = 32 768 servers, which at 32 VMs per server
    /// holds 1 048 576 VMs. 1024 ToRs + 128 spines + 16 cores, 160
    /// gateways in every other pod — the same every-other-pod pattern as
    /// FT16-400K.
    pub fn ft32_1m() -> Self {
        FatTreeConfig {
            pods: 32,
            racks_per_pod: 32,
            servers_per_rack: 32,
            spines_per_pod: 4,
            cores: 16,
            gateway_pods: (0..32).step_by(2).collect(),
            gateways_per_pod: vec![10; 16],
            host_link: LinkSpec::HOST_100G,
            fabric_link: LinkSpec::FABRIC_400G,
        }
    }

    /// §5.3 topology scaling: vary the pod count while holding 128 servers
    /// (more pods → fewer servers per rack). `pods` must divide 32 and keep
    /// at least one server per rack: valid values are 1, 2, 4, 8, 16, 32.
    pub fn scaled_ft8(pods: u16) -> Self {
        assert!(
            matches!(pods, 1 | 2 | 4 | 8 | 16 | 32),
            "scaled_ft8 supports pods in {{1,2,4,8,16,32}}, got {pods}"
        );
        let servers_per_rack = 128 / (pods * 4);
        let gateway_pods: Vec<u16> = if pods == 1 {
            vec![0]
        } else {
            (0..pods).step_by(2).collect()
        };
        let n_gw_pods = gateway_pods.len();
        // Keep 40 gateways total, as in FT8-10K.
        let mut gateways_per_pod = vec![(40 / n_gw_pods) as u16; n_gw_pods];
        for slot in gateways_per_pod.iter_mut().take(40 % n_gw_pods) {
            *slot += 1;
        }
        FatTreeConfig {
            pods,
            racks_per_pod: 4,
            servers_per_rack,
            spines_per_pod: 4,
            cores: 16,
            gateway_pods,
            gateways_per_pod,
            host_link: LinkSpec::HOST_100G,
            fabric_link: LinkSpec::FABRIC_400G,
        }
    }

    /// Figure 9: reduce the gateway fleet to `total` boxes, spread round-robin
    /// over the existing gateway pods (pods left with zero are dropped).
    pub fn with_total_gateways(mut self, total: u16) -> Self {
        assert!(total >= 1, "at least one gateway is required");
        let n = self.gateway_pods.len();
        let mut per_pod = vec![0u16; n];
        for i in 0..total as usize {
            per_pod[i % n] += 1;
        }
        let kept: Vec<(u16, u16)> = self
            .gateway_pods
            .iter()
            .copied()
            .zip(per_pod)
            .filter(|&(_, g)| g > 0)
            .collect();
        self.gateway_pods = kept.iter().map(|&(p, _)| p).collect();
        self.gateways_per_pod = kept.iter().map(|&(_, g)| g).collect();
        self
    }

    /// Total gateway count.
    pub fn total_gateways(&self) -> u32 {
        self.gateways_per_pod.iter().map(|&g| g as u32).sum()
    }

    /// Table 3 characteristics.
    pub fn characteristics(&self) -> Characteristics {
        Characteristics {
            pods: self.pods,
            racks_per_pod: self.racks_per_pod,
            tor_switches: self.pods as u32 * self.racks_per_pod as u32,
            spine_switches: self.pods as u32 * self.spines_per_pod as u32,
            core_switches: self.cores as u32,
            total_switches: self.pods as u32
                * (self.racks_per_pod as u32 + self.spines_per_pod as u32)
                + self.cores as u32,
            gateways: self.total_gateways(),
            physical_servers: self.pods as u32
                * self.racks_per_pod as u32
                * self.servers_per_rack as u32,
        }
    }

    /// The rack whose ToR hosts the pod's gateways.
    pub fn gateway_rack(&self) -> u16 {
        self.racks_per_pod - 1
    }

    /// Builds the topology.
    ///
    /// PIP scheme (dotted quads for readability in traces):
    /// servers `10.pod.rack.slot+1`, gateways `172.16.pod.slot`, ToRs
    /// `192.168.pod.rack`, spines `192.169.pod.idx`, cores `192.170.0.idx`.
    pub fn build(&self) -> Topology {
        assert!(self.pods >= 1 && self.racks_per_pod >= 1 && self.servers_per_rack >= 1);
        assert!(
            self.spines_per_pod >= 1 && self.cores >= 1,
            "need at least one spine and core"
        );
        assert_eq!(
            self.cores % self.spines_per_pod,
            0,
            "cores must be a multiple of spines_per_pod for group wiring"
        );
        assert_eq!(self.gateway_pods.len(), self.gateways_per_pod.len());
        assert!(self.gateway_pods.iter().all(|&p| p < self.pods));
        assert!(self.pods as u32 <= 256 && self.racks_per_pod as u32 <= 256);
        assert!(self.servers_per_rack < 255 && self.cores as u32 <= 256);

        let m = self.cores / self.spines_per_pod;
        let mut topo = Topology::default();

        // Core switches.
        let cores: Vec<NodeId> = (0..self.cores)
            .map(|idx| topo.add_node(NodeKind::Core { idx }, Pip(0xC0AA_0000 | idx as u32)))
            .collect();

        for pod in 0..self.pods {
            // Spines.
            let spines: Vec<NodeId> = (0..self.spines_per_pod)
                .map(|idx| {
                    topo.add_node(
                        NodeKind::Spine { pod, idx },
                        Pip(0xC0A9_0000 | (pod as u32) << 8 | idx as u32),
                    )
                })
                .collect();
            // Spine i <-> cores [i*m, (i+1)*m).
            for (i, &sp) in spines.iter().enumerate() {
                for j in 0..m as usize {
                    topo.add_cable(
                        sp,
                        cores[i * m as usize + j],
                        self.fabric_link.bandwidth_bps,
                        self.fabric_link.delay_ns,
                    );
                }
            }
            // Racks.
            for rack in 0..self.racks_per_pod {
                let tor = topo.add_node(
                    NodeKind::Tor { pod, rack },
                    Pip(0xC0A8_0000 | (pod as u32) << 8 | rack as u32),
                );
                for &sp in &spines {
                    topo.add_cable(
                        tor,
                        sp,
                        self.fabric_link.bandwidth_bps,
                        self.fabric_link.delay_ns,
                    );
                }
                for slot in 0..self.servers_per_rack {
                    let server = topo.add_node(
                        NodeKind::Server { pod, rack, slot },
                        Pip(0x0A00_0000
                            | (pod as u32) << 16
                            | (rack as u32) << 8
                            | (slot as u32 + 1)),
                    );
                    topo.add_cable(
                        server,
                        tor,
                        self.host_link.bandwidth_bps,
                        self.host_link.delay_ns,
                    );
                }
            }
        }

        // Gateways, attached to the gateway ToR of their pod.
        for (&pod, &count) in self.gateway_pods.iter().zip(&self.gateways_per_pod) {
            let gw_rack = self.gateway_rack();
            let tor_pip = Pip(0xC0A8_0000 | (pod as u32) << 8 | gw_rack as u32);
            let tor = topo
                .node_by_pip(tor_pip)
                .expect("gateway ToR must exist");
            for slot in 0..count {
                let gw = topo.add_node(
                    NodeKind::Gateway { pod, slot },
                    Pip(0xAC10_0000 | (pod as u32) << 8 | slot as u32),
                );
                topo.add_cable(
                    gw,
                    tor,
                    self.host_link.bandwidth_bps,
                    self.host_link.delay_ns,
                );
            }
        }

        topo
    }

    /// Core group width: the number of cores each spine connects to.
    pub fn core_group(&self) -> u16 {
        self.cores / self.spines_per_pod
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ft8_matches_table3() {
        let c = FatTreeConfig::ft8_10k().characteristics();
        assert_eq!(c.pods, 8);
        assert_eq!(c.racks_per_pod, 4);
        assert_eq!(c.tor_switches, 32);
        assert_eq!(c.core_switches, 16);
        assert_eq!(c.total_switches, 80);
        assert_eq!(c.gateways, 40);
        assert_eq!(c.physical_servers, 128);
    }

    #[test]
    fn ft16_matches_table3() {
        let c = FatTreeConfig::ft16_400k().characteristics();
        assert_eq!(c.pods, 50);
        assert_eq!(c.racks_per_pod, 8);
        assert_eq!(c.tor_switches, 400);
        assert_eq!(c.core_switches, 16);
        assert_eq!(c.gateways, 250);
        assert_eq!(c.physical_servers, 12800);
    }

    #[test]
    fn ft32_1m_characteristics() {
        let c = FatTreeConfig::ft32_1m().characteristics();
        assert_eq!(c.pods, 32);
        assert_eq!(c.racks_per_pod, 32);
        assert_eq!(c.tor_switches, 1024);
        assert_eq!(c.spine_switches, 128);
        assert_eq!(c.core_switches, 16);
        assert_eq!(c.gateways, 160);
        // 32 768 servers × 32 VMs/server = 1 048 576 VMs.
        assert_eq!(c.physical_servers, 32_768);
        let topo = FatTreeConfig::ft32_1m().build();
        assert_eq!(topo.servers().count() as u32, c.physical_servers);
        assert_eq!(topo.gateways().count() as u32, c.gateways);
    }

    #[test]
    fn build_counts_match_characteristics() {
        let cfg = FatTreeConfig::ft8_10k();
        let topo = cfg.build();
        let c = cfg.characteristics();
        assert_eq!(topo.switch_count() as u32, c.total_switches);
        assert_eq!(topo.servers().count() as u32, c.physical_servers);
        assert_eq!(topo.gateways().count() as u32, c.gateways);
        // Every VM server has exactly one uplink; ToRs have servers + spines.
        for s in topo.servers() {
            assert_eq!(topo.out_links[s.id.0 as usize].len(), 1);
        }
    }

    #[test]
    fn spine_core_group_wiring() {
        let cfg = FatTreeConfig::ft8_10k();
        let topo = cfg.build();
        let m = cfg.core_group() as usize;
        assert_eq!(m, 4);
        for sp in topo.nodes.iter() {
            if let NodeKind::Spine { idx, .. } = sp.kind {
                let mut core_neighbors: Vec<u16> = topo
                    .neighbors(sp.id)
                    .filter_map(|n| match topo.node(n).kind {
                        NodeKind::Core { idx } => Some(idx),
                        _ => None,
                    })
                    .collect();
                core_neighbors.sort_unstable();
                let expect: Vec<u16> =
                    (idx * m as u16..(idx + 1) * m as u16).collect();
                assert_eq!(core_neighbors, expect, "spine {:?}", sp.kind);
            }
        }
    }

    #[test]
    fn gateways_attach_to_last_rack_tor() {
        let cfg = FatTreeConfig::ft8_10k();
        let topo = cfg.build();
        for gw in topo.gateways() {
            let tor = topo.neighbors(gw.id).next().unwrap();
            match topo.node(tor).kind {
                NodeKind::Tor { pod, rack } => {
                    assert!(cfg.gateway_pods.contains(&pod));
                    assert_eq!(rack, cfg.gateway_rack());
                }
                k => panic!("gateway attached to {k:?}"),
            }
        }
    }

    #[test]
    fn scaled_variants_preserve_server_count() {
        for pods in [1u16, 2, 4, 8, 16, 32] {
            let c = FatTreeConfig::scaled_ft8(pods).characteristics();
            assert_eq!(c.physical_servers, 128, "pods={pods}");
            assert_eq!(c.gateways, 40, "pods={pods}");
        }
    }

    #[test]
    fn gateway_reduction_round_robins() {
        let cfg = FatTreeConfig::ft8_10k().with_total_gateways(6);
        assert_eq!(cfg.total_gateways(), 6);
        assert_eq!(cfg.gateways_per_pod, vec![2, 2, 1, 1]);
        let cfg4 = FatTreeConfig::ft8_10k().with_total_gateways(4);
        assert_eq!(cfg4.gateways_per_pod, vec![1, 1, 1, 1]);
        let cfg3 = FatTreeConfig::ft8_10k().with_total_gateways(3);
        assert_eq!(cfg3.gateway_pods.len(), 3);
    }

    #[test]
    #[should_panic(expected = "multiple of spines_per_pod")]
    fn bad_core_count_panics() {
        let mut cfg = FatTreeConfig::ft8_10k();
        cfg.cores = 15;
        cfg.build();
    }
}
