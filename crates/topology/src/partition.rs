//! Pod-based topology partitioning for the sharded simulation engine.
//!
//! A [`PodPartition`] assigns every node of a FatTree to a shard: each pod
//! (its ToRs, spines, servers and gateways) is a natural unit of locality,
//! and the core switches — which belong to no pod — form the core shard.
//! Pods are distributed round-robin over the requested shard count, so
//! `shards = pods + 1` gives the finest cut and `shards = 1` the trivial
//! one.
//!
//! The partition also enumerates the **cut links** (links whose endpoints
//! live in different shards). In a FatTree every cut link is a
//! spine-to-core or core-to-spine hop (or a pod-to-pod hop when two pods
//! share a shard boundary through core), and the minimum propagation delay
//! over the cut is the engine's conservative lookahead: no shard can
//! influence another sooner than one cut-link delay.

use crate::graph::{LinkId, NodeId, Topology};

/// A node-to-shard assignment with its cut-edge set and lookahead bound.
#[derive(Debug, Clone)]
pub struct PodPartition {
    /// Shard of each node, indexed by `NodeId`.
    shard_of_node: Vec<u16>,
    /// Number of shards actually produced (≤ requested).
    shards: u16,
    /// Links whose `from` and `to` nodes live in different shards,
    /// ascending by `LinkId`.
    cut_links: Vec<LinkId>,
    /// Minimum propagation delay over the cut links, in nanoseconds
    /// (`u64::MAX` when the cut is empty, i.e. a single shard).
    lookahead_ns: u64,
}

impl PodPartition {
    /// Partitions `topo` into at most `shards` shards.
    ///
    /// Shard 0 always holds the core switches and any other podless node;
    /// pods are assigned round-robin to shards `1..shards`. Requesting more
    /// shards than `pods + 1` clamps to `pods + 1`; requesting 0 or 1
    /// yields the trivial single-shard partition.
    pub fn new(topo: &Topology, shards: u16) -> PodPartition {
        let max_pod = topo
            .nodes
            .iter()
            .filter_map(|n| n.kind.pod())
            .max()
            .map(|p| p as u32 + 1)
            .unwrap_or(0);
        let shards = shards.max(1).min((max_pod + 1).min(u16::MAX as u32) as u16);
        let shard_of_node: Vec<u16> = topo
            .nodes
            .iter()
            .map(|n| match n.kind.pod() {
                Some(pod) if shards > 1 => 1 + (pod % (shards - 1)),
                _ => 0,
            })
            .collect();
        let mut cut_links = Vec::new();
        let mut lookahead_ns = u64::MAX;
        for l in &topo.links {
            if shard_of_node[l.from.0 as usize] != shard_of_node[l.to.0 as usize] {
                cut_links.push(l.id);
                lookahead_ns = lookahead_ns.min(l.delay_ns);
            }
        }
        PodPartition {
            shard_of_node,
            shards,
            cut_links,
            lookahead_ns,
        }
    }

    /// Number of shards in the partition.
    pub fn shards(&self) -> u16 {
        self.shards
    }

    /// The shard owning `node`.
    pub fn shard_of(&self, node: NodeId) -> u16 {
        self.shard_of_node[node.0 as usize]
    }

    /// Shard of each node, indexed by `NodeId.0`.
    pub fn shard_map(&self) -> &[u16] {
        &self.shard_of_node
    }

    /// Links crossing a shard boundary, ascending by id.
    pub fn cut_links(&self) -> &[LinkId] {
        &self.cut_links
    }

    /// The conservative lookahead: minimum cut-link propagation delay in
    /// nanoseconds. `u64::MAX` when there is no cut (single shard).
    pub fn lookahead_ns(&self) -> u64 {
        self.lookahead_ns
    }

    /// Number of nodes owned by each shard (diagnostics / load balance).
    pub fn shard_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.shards as usize];
        for &s in &self.shard_of_node {
            sizes[s as usize] += 1;
        }
        sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fattree::FatTreeConfig;

    #[test]
    fn single_shard_has_no_cut() {
        let topo = FatTreeConfig::scaled_ft8(2).build();
        let p = PodPartition::new(&topo, 1);
        assert_eq!(p.shards(), 1);
        assert!(p.cut_links().is_empty());
        assert_eq!(p.lookahead_ns(), u64::MAX);
        assert!(p.shard_map().iter().all(|&s| s == 0));
    }

    #[test]
    fn cut_edges_exactly_cover_inter_shard_links() {
        let topo = FatTreeConfig::ft8_10k().build();
        for shards in [2u16, 3, 4, 5, 9] {
            let p = PodPartition::new(&topo, shards);
            for l in &topo.links {
                let crosses =
                    p.shard_of(l.from) != p.shard_of(l.to);
                assert_eq!(
                    p.cut_links().contains(&l.id),
                    crosses,
                    "link {:?} with {shards} shards",
                    l.id
                );
            }
            // Every cut link touches the core shard or joins two pod
            // shards; in a FatTree all inter-pod paths run through core,
            // so each cut link must have a core-side endpoint.
            for &l in p.cut_links() {
                let dl = topo.link(l);
                let podless = topo.node(dl.from).kind.pod().is_none()
                    || topo.node(dl.to).kind.pod().is_none();
                assert!(podless, "cut link {l:?} must touch the core shard");
            }
        }
    }

    #[test]
    fn pods_round_robin_and_core_is_shard_zero() {
        let topo = FatTreeConfig::ft8_10k().build();
        let p = PodPartition::new(&topo, 5);
        assert_eq!(p.shards(), 5);
        for n in &topo.nodes {
            match n.kind.pod() {
                None => assert_eq!(p.shard_of(n.id), 0, "core/podless in shard 0"),
                Some(pod) => assert_eq!(p.shard_of(n.id), 1 + pod % 4),
            }
        }
        let sizes = p.shard_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), topo.nodes.len());
        assert!(sizes.iter().all(|&s| s > 0), "no empty shard: {sizes:?}");
    }

    #[test]
    fn shard_count_clamps_to_pods_plus_one() {
        let topo = FatTreeConfig::scaled_ft8(2).build();
        let pods = topo
            .nodes
            .iter()
            .filter_map(|n| n.kind.pod())
            .max()
            .unwrap()
            + 1;
        let p = PodPartition::new(&topo, 64);
        assert_eq!(p.shards(), pods + 1);
        let p1 = PodPartition::new(&topo, 0);
        assert_eq!(p1.shards(), 1);
    }

    #[test]
    fn lookahead_is_min_cut_delay() {
        let topo = FatTreeConfig::ft8_10k().build();
        let p = PodPartition::new(&topo, 4);
        let min_delay = p
            .cut_links()
            .iter()
            .map(|&l| topo.link(l).delay_ns)
            .min()
            .unwrap();
        assert_eq!(p.lookahead_ns(), min_delay);
        assert!(p.lookahead_ns() > 0, "zero lookahead would stall windows");
    }
}
