//! Data-center topologies for the SwitchV2P reproduction.
//!
//! Builds the two FatTree networks of the paper's Table 3 (FT8-10K and
//! FT16-400K) plus the scaled variants of §5.3, and provides ECMP up-down
//! routing over them:
//!
//! * [`graph`] — nodes, directed links, port lists;
//! * [`fattree`] — the [`FatTreeConfig`] builder (pods × racks × servers,
//!   spines, cores, gateway placement);
//! * [`routing`] — structural ECMP next-hop computation (host → ToR → spine →
//!   core → spine → ToR → host), deterministic per flow key;
//! * [`roles`] — the five switch categories of the paper's Table 1.
//!
//! The topology is pure data: no queues or clocks here (those live in
//! `sv2p-netsim`), which keeps routing properties testable in isolation.
//!
//! ```
//! use sv2p_topology::{FatTreeConfig, Routing};
//!
//! let cfg = FatTreeConfig::ft8_10k();
//! assert_eq!(cfg.characteristics().total_switches, 80);
//! let topo = cfg.build();
//! let routing = Routing::new(&cfg, &topo);
//! // An inter-pod server pair crosses 5 switches (ToR-spine-core-spine-ToR).
//! let a = topo.servers().next().unwrap().id;
//! let b = topo.servers().last().unwrap().id;
//! assert_eq!(routing.switch_hops(&topo, a, b, 7), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fattree;
pub mod graph;
pub mod partition;
pub mod roles;
pub mod routing;

pub use fattree::{FatTreeConfig, LinkSpec};
pub use graph::{LinkId, Node, NodeId, NodeKind, Topology};
pub use partition::PodPartition;
pub use roles::{RoleMap, SwitchRole};
pub use routing::Routing;
