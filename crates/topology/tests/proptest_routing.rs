//! Property tests: ECMP routing over randomized FatTree shapes delivers
//! between every pair of nodes, never loops, and respects the up-down
//! structure.

use proptest::prelude::*;
use sv2p_topology::{FatTreeConfig, LinkSpec, NodeKind, Routing};

fn arb_config() -> impl Strategy<Value = FatTreeConfig> {
    (1u16..6, 1u16..5, 1u16..4, 1u16..4, 1u16..4).prop_map(
        |(pods, racks, servers, spines, core_group)| {
            let gateway_pods: Vec<u16> = (0..pods).step_by(2).collect();
            let n = gateway_pods.len();
            FatTreeConfig {
                pods,
                racks_per_pod: racks,
                servers_per_rack: servers,
                spines_per_pod: spines,
                cores: spines * core_group,
                gateway_pods,
                gateways_per_pod: vec![1; n],
                host_link: LinkSpec::HOST_100G,
                fabric_link: LinkSpec::FABRIC_400G,
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn every_sampled_pair_routes(cfg in arb_config(), key in any::<u64>()) {
        let topo = cfg.build();
        let routing = Routing::new(&cfg, &topo);
        let nodes: Vec<_> = topo.nodes.iter().map(|n| n.id).collect();
        // Sample pairs (full quadratic would be slow for larger shapes).
        for i in (0..nodes.len()).step_by(5) {
            for j in (0..nodes.len()).step_by(7) {
                if i == j {
                    continue;
                }
                let path = routing.path(&topo, nodes[i], nodes[j], key);
                prop_assert_eq!(*path.first().unwrap(), nodes[i]);
                prop_assert_eq!(*path.last().unwrap(), nodes[j]);
                // Paths never revisit a node (loop-freedom).
                let mut seen = std::collections::HashSet::new();
                for n in &path {
                    prop_assert!(seen.insert(*n), "revisit in {:?}", path);
                }
            }
        }
    }

    #[test]
    fn host_paths_are_up_down(cfg in arb_config(), key in any::<u64>()) {
        // Host-to-host paths must ascend then descend: layer sequence has a
        // single peak (ToR=1, Spine=2, Core=3).
        let topo = cfg.build();
        let routing = Routing::new(&cfg, &topo);
        let hosts: Vec<_> = topo
            .nodes
            .iter()
            .filter(|n| n.kind.is_host())
            .map(|n| n.id)
            .collect();
        let layer = |id| match topo.node(id).kind {
            NodeKind::Tor { .. } => 1i32,
            NodeKind::Spine { .. } => 2,
            NodeKind::Core { .. } => 3,
            _ => 0,
        };
        for i in (0..hosts.len()).step_by(3) {
            for j in (0..hosts.len()).step_by(11) {
                if i == j {
                    continue;
                }
                let path = routing.path(&topo, hosts[i], hosts[j], key);
                let layers: Vec<i32> = path.iter().map(|&n| layer(n)).collect();
                // Strictly rises to one maximum, then strictly falls.
                let peak = *layers.iter().max().unwrap();
                let peak_idx = layers.iter().position(|&l| l == peak).unwrap();
                for w in layers[..=peak_idx].windows(2) {
                    prop_assert!(w[0] < w[1], "non-monotone ascent {:?}", layers);
                }
                for w in layers[peak_idx..].windows(2) {
                    prop_assert!(w[0] > w[1], "non-monotone descent {:?}", layers);
                }
                // Host-to-host stretch is bounded by 5 switches in a 3-tier
                // fabric.
                prop_assert!(layers.len() <= 7, "{:?}", layers);
            }
        }
    }

    #[test]
    fn same_key_same_path(cfg in arb_config(), key in any::<u64>()) {
        let topo = cfg.build();
        let routing = Routing::new(&cfg, &topo);
        let hosts: Vec<_> = topo
            .nodes
            .iter()
            .filter(|n| n.kind.is_host())
            .map(|n| n.id)
            .collect();
        let a = hosts[0];
        let b = *hosts.last().unwrap();
        if a != b {
            prop_assert_eq!(
                routing.path(&topo, a, b, key),
                routing.path(&topo, a, b, key)
            );
        }
    }
}
