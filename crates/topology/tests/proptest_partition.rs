//! Property tests: [`PodPartition`] over randomized FatTree shapes and
//! shard counts. The conservative sharded engine leans on two guarantees
//! proved here against brute force — the cut-link set is *exactly* the
//! inter-shard edge set (a missed cut link would let a packet cross
//! shards without the exchange protocol seeing it), and the lookahead is
//! a true lower bound on every cut delay (an overestimate would let a
//! window outrun causality).

use proptest::prelude::*;
use sv2p_topology::{FatTreeConfig, LinkSpec, PodPartition};

fn arb_config() -> impl Strategy<Value = FatTreeConfig> {
    (1u16..6, 1u16..5, 1u16..4, 1u16..4, 1u16..4).prop_map(
        |(pods, racks, servers, spines, core_group)| {
            let gateway_pods: Vec<u16> = (0..pods).step_by(2).collect();
            let n = gateway_pods.len();
            FatTreeConfig {
                pods,
                racks_per_pod: racks,
                servers_per_rack: servers,
                spines_per_pod: spines,
                cores: spines * core_group,
                gateway_pods,
                gateways_per_pod: vec![1; n],
                host_link: LinkSpec::HOST_100G,
                fabric_link: LinkSpec::FABRIC_400G,
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cut_set_equals_brute_force_edge_enumeration(
        cfg in arb_config(),
        shards in 0u16..10,
    ) {
        let topo = cfg.build();
        let p = PodPartition::new(&topo, shards);
        // Brute force: walk every link, classify by endpoint shards.
        let expected: Vec<_> = topo
            .links
            .iter()
            .filter(|l| p.shard_of(l.from) != p.shard_of(l.to))
            .map(|l| l.id)
            .collect();
        prop_assert_eq!(
            p.cut_links(),
            expected.as_slice(),
            "cut set must be the exact inter-shard edge set, ascending"
        );
        // Ascending by id (the engine relies on deterministic order).
        for w in p.cut_links().windows(2) {
            prop_assert!(w[0] < w[1], "cut links out of order: {:?}", w);
        }
    }

    #[test]
    fn lookahead_is_a_true_lower_bound_on_cut_delays(
        cfg in arb_config(),
        shards in 0u16..10,
    ) {
        let topo = cfg.build();
        let p = PodPartition::new(&topo, shards);
        if p.cut_links().is_empty() {
            // No cut: single shard, infinite lookahead.
            prop_assert_eq!(p.shards(), 1);
            prop_assert_eq!(p.lookahead_ns(), u64::MAX);
        } else {
            for &l in p.cut_links() {
                prop_assert!(
                    topo.link(l).delay_ns >= p.lookahead_ns(),
                    "cut link {:?} undercuts the lookahead",
                    l
                );
            }
            // ...and the bound is tight: some cut link attains it.
            prop_assert!(
                p.cut_links()
                    .iter()
                    .any(|&l| topo.link(l).delay_ns == p.lookahead_ns()),
                "lookahead not attained by any cut link"
            );
        }
    }

    #[test]
    fn partition_is_total_and_clamped(
        cfg in arb_config(),
        shards in 0u16..10,
    ) {
        let topo = cfg.build();
        let p = PodPartition::new(&topo, shards);
        let pods = topo
            .nodes
            .iter()
            .filter_map(|n| n.kind.pod())
            .max()
            .map(|p| p + 1)
            .unwrap_or(0);
        prop_assert!(p.shards() >= 1);
        prop_assert!(p.shards() <= pods + 1, "more shards than pods + core");
        prop_assert!(p.shards() <= shards.max(1), "more shards than requested");
        // Total: every node belongs to exactly one in-range shard, and no
        // shard is empty (sizes sum back to the node count).
        prop_assert_eq!(p.shard_map().len(), topo.nodes.len());
        for n in &topo.nodes {
            prop_assert!(p.shard_of(n.id) < p.shards());
        }
        let sizes = p.shard_sizes();
        prop_assert_eq!(sizes.iter().sum::<usize>(), topo.nodes.len());
        prop_assert!(sizes.iter().all(|&s| s > 0), "empty shard in {:?}", sizes);
        // Pod atomicity: a pod never straddles shards.
        let mut pod_shard = std::collections::HashMap::new();
        for n in &topo.nodes {
            if let Some(pod) = n.kind.pod() {
                let s = pod_shard.entry(pod).or_insert_with(|| p.shard_of(n.id));
                prop_assert_eq!(*s, p.shard_of(n.id), "pod {} split", pod);
            }
        }
    }
}
