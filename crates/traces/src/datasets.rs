//! The concrete dataset generators.
//!
//! Every dataset is produced by a [`FlowSource`] — a deterministic,
//! cloneable iterator that yields flows one at a time, so the engine can
//! pull a million-VM workload without ever materializing the whole trace
//! (O(in-flight) memory instead of O(trace)). The original materializing
//! entry points ([`hadoop`], [`websearch`], …) remain as thin
//! `collect()` wrappers and are byte-identical to the pre-streaming
//! generators (locked by the oracle tests at the bottom of this file).
//!
//! Streaming preserves the exact RNG draw order of the materialized
//! generators via a two-stream split: the originals drew *all* Poisson
//! start gaps first (`poisson_starts`) and then the per-flow body draws
//! from the same RNG. Each source clones the RNG at that boundary —
//! `rng_starts` replays the gap draws, while `rng_body` is the same RNG
//! fast-forwarded past them (each `exponential` with a positive mean
//! consumes exactly one `uniform` draw), so interleaving one start draw
//! and one body batch per `next()` reproduces the original sequence
//! bit-for-bit.

use sv2p_simcore::SimRng;

use crate::dist::{EmpiricalCdf, Zipf};
use crate::spec::{FlowProfile, TraceFlow};

/// Summary statistics of a generated trace (the paper's "Address reuse
/// characteristics" paragraph).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Number of flows.
    pub flows: usize,
    /// Total payload bytes.
    pub total_bytes: u64,
    /// Trace duration (ns) from first to last flow start.
    pub duration_ns: u64,
    /// VMs that are a destination of at least one flow.
    pub distinct_dsts: usize,
    /// VMs that are a destination in at least two flows.
    pub dsts_with_2plus: usize,
    /// VMs that are a destination in at least ten flows.
    pub dsts_with_10plus: usize,
}

/// Computes [`TraceStats`].
pub fn stats(flows: &[TraceFlow]) -> TraceStats {
    use std::collections::HashMap;
    let mut counts: HashMap<usize, u32> = HashMap::new();
    for f in flows {
        *counts.entry(f.dst_vm).or_insert(0) += 1;
    }
    let start = flows.iter().map(|f| f.start_ns).min().unwrap_or(0);
    let end = flows.iter().map(|f| f.start_ns).max().unwrap_or(0);
    TraceStats {
        flows: flows.len(),
        total_bytes: flows.iter().map(|f| f.bytes()).sum(),
        duration_ns: end - start,
        distinct_dsts: counts.len(),
        dsts_with_2plus: counts.values().filter(|&&c| c >= 2).count(),
        dsts_with_10plus: counts.values().filter(|&&c| c >= 10).count(),
    }
}

/// Picks distinct (src, dst) uniformly.
fn uniform_pair(vms: usize, rng: &mut SimRng) -> (usize, usize) {
    let src = rng.gen_range(0..vms);
    let mut dst = rng.gen_range(0..vms - 1);
    if dst >= src {
        dst += 1;
    }
    (src, dst)
}

/// Splits `rng` at the starts/body boundary: returns the start-gap stream
/// (a clone at the boundary) and fast-forwards `rng` past the `n` gap
/// draws the materialized generators made up front.
fn split_starts(rng: &mut SimRng, n: usize, mean_gap: f64) -> SimRng {
    let starts = rng.clone();
    for _ in 0..n {
        rng.exponential(mean_gap);
    }
    starts
}

/// Streaming state shared by the TCP trace sources (Hadoop, WebSearch).
#[derive(Debug, Clone)]
pub struct TcpFlowSource {
    /// Active endpoint subset; `None` means the identity pool `0..vms`
    /// (no O(vms) permutation is retained in that case).
    pool: Option<Vec<u32>>,
    /// Endpoint pool size (`pool.len()` or `vms`).
    n: usize,
    remaining: usize,
    /// Poisson accumulator (seconds).
    t: f64,
    mean_gap: f64,
    rng_starts: SimRng,
    rng_body: SimRng,
    cdf: EmpiricalCdf,
}

impl TcpFlowSource {
    #[allow(clippy::too_many_arguments)]
    fn new(
        vms: usize,
        active_vms: Option<usize>,
        flows: usize,
        load: f64,
        hosts: usize,
        nic_bps: u64,
        cdf: EmpiricalCdf,
        seed: u64,
    ) -> Self {
        assert!(vms >= 2 && flows > 0 && load > 0.0 && hosts > 0);
        let mut rng = SimRng::new(seed);
        // Optionally restrict the endpoints to a random subset of the pool
        // so a scaled-down flow count keeps the paper's
        // flows-per-destination reuse ratio; the subset is shuffled, so it
        // stays spread over all racks.
        let pool: Option<Vec<u32>> = match active_vms {
            Some(k) => {
                assert!(k >= 2 && k <= vms);
                let mut ids: Vec<u32> = (0..vms as u32).collect();
                rng.shuffle(&mut ids);
                ids.truncate(k);
                ids.shrink_to_fit();
                Some(ids)
            }
            None => None,
        };
        let n = pool.as_ref().map_or(vms, Vec::len);
        // Offered load = load × aggregate host capacity; flow arrival rate
        // follows from the mean flow size (the HPCC-style load model).
        let agg_bps = load * hosts as f64 * nic_bps as f64;
        let mean_bits = cdf.mean() * 8.0;
        let rate = agg_bps / mean_bits;
        let mean_gap = 1.0 / rate;
        let rng_starts = split_starts(&mut rng, flows, mean_gap);
        TcpFlowSource {
            pool,
            n,
            remaining: flows,
            t: 0.0,
            mean_gap,
            rng_starts,
            rng_body: rng,
            cdf,
        }
    }
}

impl Iterator for TcpFlowSource {
    type Item = TraceFlow;

    fn next(&mut self) -> Option<TraceFlow> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.t += self.rng_starts.exponential(self.mean_gap);
        let start_ns = (self.t * 1e9) as u64;
        let (si, di) = uniform_pair(self.n, &mut self.rng_body);
        let (src, dst) = match &self.pool {
            Some(p) => (p[si] as usize, p[di] as usize),
            None => (si, di),
        };
        let bytes = self.cdf.sample(&mut self.rng_body).max(1.0) as u64;
        Some(TraceFlow {
            src_vm: src,
            dst_vm: dst,
            start_ns,
            profile: FlowProfile::Tcp { bytes },
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

/// Streaming Alibaba RPC source.
#[derive(Debug, Clone)]
pub struct AlibabaFlowSource {
    vms: usize,
    /// Zipf rank → VM id permutation (u32: 4 bytes per VM).
    perm: Vec<u32>,
    zipf: Zipf,
    remaining: usize,
    t: f64,
    mean_gap: f64,
    rng_starts: SimRng,
    rng_body: SimRng,
    cdf: EmpiricalCdf,
}

impl AlibabaFlowSource {
    fn new(cfg: &AlibabaConfig) -> Self {
        assert!(cfg.vms >= 2 && cfg.rpcs > 0 && cfg.duration_ns > 0);
        let zipf = Zipf::new(cfg.vms, cfg.zipf_s);
        // Permute ranks over VM ids so popular services are spread across
        // racks.
        let mut perm: Vec<u32> = (0..cfg.vms as u32).collect();
        let mut prng = SimRng::new(cfg.seed ^ 0xA11BABA);
        prng.shuffle(&mut perm);
        let mut rng = SimRng::new(cfg.seed);
        let rate = cfg.rpcs as f64 / (cfg.duration_ns as f64 / 1e9);
        let mean_gap = 1.0 / rate;
        let rng_starts = split_starts(&mut rng, cfg.rpcs, mean_gap);
        AlibabaFlowSource {
            vms: cfg.vms,
            perm,
            zipf,
            remaining: cfg.rpcs,
            t: 0.0,
            mean_gap,
            rng_starts,
            rng_body: rng,
            cdf: EmpiricalCdf::alibaba_rpc(),
        }
    }
}

impl Iterator for AlibabaFlowSource {
    type Item = TraceFlow;

    fn next(&mut self) -> Option<TraceFlow> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.t += self.rng_starts.exponential(self.mean_gap);
        let start_ns = (self.t * 1e9) as u64;
        let dst = self.perm[self.zipf.sample(&mut self.rng_body)] as usize;
        let mut src = self.rng_body.gen_range(0..self.vms - 1);
        if src >= dst {
            src += 1;
        }
        let bytes = self.cdf.sample(&mut self.rng_body).max(1.0) as u64;
        Some(TraceFlow {
            src_vm: src,
            dst_vm: dst,
            start_ns,
            profile: FlowProfile::Tcp { bytes },
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

/// Streaming Microbursts source.
#[derive(Debug, Clone)]
pub struct MicroburstsFlowSource {
    vms: usize,
    perm: Vec<u32>,
    zipf: Zipf,
    remaining: usize,
    t: f64,
    mean_gap: f64,
    mean_burst_ns: u64,
    nic_bps: u64,
    payload: u32,
    rng_starts: SimRng,
    rng_body: SimRng,
}

impl MicroburstsFlowSource {
    fn new(cfg: &MicroburstsConfig) -> Self {
        let mut rng = SimRng::new(cfg.seed);
        let zipf = Zipf::new(cfg.vms, cfg.zipf_s);
        let mut perm: Vec<u32> = (0..cfg.vms as u32).collect();
        rng.shuffle(&mut perm);
        let mean_gap = 1.0 / cfg.bursts_per_sec;
        let rng_starts = split_starts(&mut rng, cfg.bursts, mean_gap);
        MicroburstsFlowSource {
            vms: cfg.vms,
            perm,
            zipf,
            remaining: cfg.bursts,
            t: 0.0,
            mean_gap,
            mean_burst_ns: cfg.mean_burst_ns,
            nic_bps: cfg.nic_bps,
            payload: cfg.payload,
            rng_starts,
            rng_body: rng,
        }
    }
}

impl Iterator for MicroburstsFlowSource {
    type Item = TraceFlow;

    fn next(&mut self) -> Option<TraceFlow> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.t += self.rng_starts.exponential(self.mean_gap);
        let start_ns = (self.t * 1e9) as u64;
        let dst = self.perm[self.zipf.sample(&mut self.rng_body)] as usize;
        let mut src = self.rng_body.gen_range(0..self.vms - 1);
        if src >= dst {
            src += 1;
        }
        let duration = self
            .rng_body
            .exponential(self.mean_burst_ns as f64)
            .max(1.0);
        let bytes = duration * self.nic_bps as f64 / 8.0 / 1e9;
        let count = (bytes / self.payload as f64).ceil().max(1.0) as u32;
        Some(TraceFlow {
            src_vm: src,
            dst_vm: dst,
            start_ns,
            profile: FlowProfile::UdpBurst {
                count,
                payload: self.payload,
            },
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

/// Streaming 8K-Video source (retains only the `2 × senders` endpoints it
/// actually uses, not the full shuffled pool).
#[derive(Debug, Clone)]
pub struct VideoFlowSource {
    /// First `2 × senders` ids of the shuffled pool.
    ids: Vec<u32>,
    next: usize,
    senders: usize,
    rate_bps: u64,
    duration_ns: u64,
    payload: u32,
}

impl VideoFlowSource {
    fn new(cfg: &VideoConfig) -> Self {
        assert!(cfg.vms >= 2 * cfg.senders, "need disjoint endpoints");
        let mut rng = SimRng::new(cfg.seed);
        let mut ids: Vec<u32> = (0..cfg.vms as u32).collect();
        rng.shuffle(&mut ids);
        ids.truncate(2 * cfg.senders);
        ids.shrink_to_fit();
        VideoFlowSource {
            ids,
            next: 0,
            senders: cfg.senders,
            rate_bps: cfg.rate_bps,
            duration_ns: cfg.duration_ns,
            payload: cfg.payload,
        }
    }
}

impl Iterator for VideoFlowSource {
    type Item = TraceFlow;

    fn next(&mut self) -> Option<TraceFlow> {
        if self.next >= self.senders {
            return None;
        }
        let i = self.next;
        self.next += 1;
        Some(TraceFlow {
            src_vm: self.ids[2 * i] as usize,
            dst_vm: self.ids[2 * i + 1] as usize,
            start_ns: 0,
            profile: FlowProfile::UdpCbr {
                rate_bps: self.rate_bps,
                duration_ns: self.duration_ns,
                payload: self.payload,
            },
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.senders - self.next;
        (left, Some(left))
    }
}

/// Streaming incast source.
#[derive(Debug, Clone)]
pub struct IncastFlowSource {
    sender_vms: Vec<u32>,
    next: usize,
    dst_vm: usize,
    rate_bps: u64,
    duration_ns: u64,
    payload: u32,
}

impl IncastFlowSource {
    fn new(cfg: &IncastConfig, sender_vms: &[usize], dst_vm: usize) -> Self {
        assert_eq!(sender_vms.len(), cfg.senders);
        let per_sender = cfg.total_packets / cfg.senders as u32;
        let rate_bps = (per_sender as u64 * cfg.payload as u64 * 8) * 1_000_000_000
            / cfg.duration_ns;
        IncastFlowSource {
            sender_vms: sender_vms.iter().map(|&s| s as u32).collect(),
            next: 0,
            dst_vm,
            rate_bps,
            duration_ns: cfg.duration_ns,
            payload: cfg.payload,
        }
    }
}

impl Iterator for IncastFlowSource {
    type Item = TraceFlow;

    fn next(&mut self) -> Option<TraceFlow> {
        let src = *self.sender_vms.get(self.next)? as usize;
        self.next += 1;
        assert_ne!(src, self.dst_vm);
        Some(TraceFlow {
            src_vm: src,
            dst_vm: self.dst_vm,
            start_ns: 0,
            profile: FlowProfile::UdpCbr {
                rate_bps: self.rate_bps,
                duration_ns: self.duration_ns,
                payload: self.payload,
            },
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.sender_vms.len() - self.next;
        (left, Some(left))
    }
}

/// A deterministic streaming flow generator: one variant per dataset, all
/// cloneable (sweeps re-run the same source) and yielding exactly the flow
/// sequence the materialized entry points produce.
#[derive(Debug, Clone)]
pub enum FlowSource {
    /// Hadoop / WebSearch-style TCP trace.
    Tcp(TcpFlowSource),
    /// Alibaba microservice RPCs.
    Alibaba(AlibabaFlowSource),
    /// UDP microbursts.
    Microbursts(MicroburstsFlowSource),
    /// 8K-Video CBR streams.
    Video(VideoFlowSource),
    /// Migration incast.
    Incast(IncastFlowSource),
}

impl FlowSource {
    /// Streaming Hadoop trace (see [`hadoop`]).
    pub fn hadoop(cfg: &HadoopConfig) -> Self {
        FlowSource::Tcp(TcpFlowSource::new(
            cfg.vms,
            cfg.active_vms,
            cfg.flows,
            cfg.load,
            cfg.hosts,
            cfg.nic_bps,
            EmpiricalCdf::facebook_hadoop(),
            cfg.seed,
        ))
    }

    /// Streaming WebSearch trace (see [`websearch`]).
    pub fn websearch(cfg: &WebSearchConfig) -> Self {
        FlowSource::Tcp(TcpFlowSource::new(
            cfg.vms,
            cfg.active_vms,
            cfg.flows,
            cfg.load,
            cfg.hosts,
            cfg.nic_bps,
            EmpiricalCdf::dctcp_websearch(),
            cfg.seed,
        ))
    }

    /// Streaming Alibaba trace (see [`alibaba`]).
    pub fn alibaba(cfg: &AlibabaConfig) -> Self {
        FlowSource::Alibaba(AlibabaFlowSource::new(cfg))
    }

    /// Streaming Microbursts trace (see [`microbursts`]).
    pub fn microbursts(cfg: &MicroburstsConfig) -> Self {
        FlowSource::Microbursts(MicroburstsFlowSource::new(cfg))
    }

    /// Streaming Video trace (see [`video`]).
    pub fn video(cfg: &VideoConfig) -> Self {
        FlowSource::Video(VideoFlowSource::new(cfg))
    }

    /// Streaming incast trace (see [`incast`]).
    pub fn incast(cfg: &IncastConfig, sender_vms: &[usize], dst_vm: usize) -> Self {
        FlowSource::Incast(IncastFlowSource::new(cfg, sender_vms, dst_vm))
    }

    /// Flows left to yield.
    pub fn remaining(&self) -> usize {
        self.size_hint().0
    }
}

impl Iterator for FlowSource {
    type Item = TraceFlow;

    fn next(&mut self) -> Option<TraceFlow> {
        match self {
            FlowSource::Tcp(s) => s.next(),
            FlowSource::Alibaba(s) => s.next(),
            FlowSource::Microbursts(s) => s.next(),
            FlowSource::Video(s) => s.next(),
            FlowSource::Incast(s) => s.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            FlowSource::Tcp(s) => s.size_hint(),
            FlowSource::Alibaba(s) => s.size_hint(),
            FlowSource::Microbursts(s) => s.size_hint(),
            FlowSource::Video(s) => s.size_hint(),
            FlowSource::Incast(s) => s.size_hint(),
        }
    }
}

/// Hadoop trace parameters (defaults: FT8-10K at 30% load; the paper's full
/// trace has 99 297 flows — scale `flows` down for quick runs).
#[derive(Debug, Clone)]
pub struct HadoopConfig {
    /// VM pool size.
    pub vms: usize,
    /// If set, only this many (randomly chosen) VMs exchange traffic —
    /// preserves the reuse ratio when `flows` is scaled down.
    pub active_vms: Option<usize>,
    /// Number of flows.
    pub flows: usize,
    /// Network load as a fraction of aggregate host bandwidth.
    pub load: f64,
    /// Physical host count.
    pub hosts: usize,
    /// Host NIC rate.
    pub nic_bps: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HadoopConfig {
    fn default() -> Self {
        HadoopConfig {
            vms: 10_240,
            active_vms: None,
            flows: 99_297,
            load: 0.3,
            hosts: 128,
            nic_bps: 100_000_000_000,
            seed: 1,
        }
    }
}

/// Generates the Hadoop trace: short TCP flows, uniform src/dst, heavy
/// cross-flow destination reuse at paper scale.
pub fn hadoop(cfg: &HadoopConfig) -> Vec<TraceFlow> {
    FlowSource::hadoop(cfg).collect()
}

/// WebSearch trace parameters.
#[derive(Debug, Clone)]
pub struct WebSearchConfig {
    /// VM pool size.
    pub vms: usize,
    /// Optional active-subset restriction (see [`HadoopConfig::active_vms`]).
    pub active_vms: Option<usize>,
    /// Number of flows (heavy flows: far fewer than Hadoop at equal load).
    pub flows: usize,
    /// Network load fraction.
    pub load: f64,
    /// Physical host count.
    pub hosts: usize,
    /// Host NIC rate.
    pub nic_bps: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WebSearchConfig {
    fn default() -> Self {
        WebSearchConfig {
            vms: 10_240,
            active_vms: None,
            flows: 5_000,
            load: 0.3,
            hosts: 128,
            nic_bps: 100_000_000_000,
            seed: 1,
        }
    }
}

/// Generates the WebSearch trace: DCTCP flow sizes, minimal reuse.
pub fn websearch(cfg: &WebSearchConfig) -> Vec<TraceFlow> {
    FlowSource::websearch(cfg).collect()
}

/// Alibaba microservice trace parameters.
#[derive(Debug, Clone)]
pub struct AlibabaConfig {
    /// Container pool size (410 865 at paper scale on FT16-400K).
    pub vms: usize,
    /// Number of RPC calls.
    pub rpcs: usize,
    /// Trace duration (ns): the RPC prefix is replayed over this window
    /// (the paper replays a prefix of the call trace rather than matching
    /// a byte-load target — RPCs are tiny, so a load-derived arrival rate
    /// would collapse the trace into a burst).
    pub duration_ns: u64,
    /// Zipf exponent over callee services (1.32 reproduces "95% of requests
    /// to 5% of the microservices").
    pub zipf_s: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AlibabaConfig {
    fn default() -> Self {
        AlibabaConfig {
            vms: 410_865,
            rpcs: 200_000,
            duration_ns: 20_000_000,
            zipf_s: 1.32,
            seed: 1,
        }
    }
}

/// Generates the Alibaba trace: small TCP RPCs with Zipf-skewed callees,
/// arriving as a Poisson process over the configured replay window.
pub fn alibaba(cfg: &AlibabaConfig) -> Vec<TraceFlow> {
    FlowSource::alibaba(cfg).collect()
}

/// Microbursts trace parameters.
#[derive(Debug, Clone)]
pub struct MicroburstsConfig {
    /// VM pool size.
    pub vms: usize,
    /// Number of bursts.
    pub bursts: usize,
    /// Mean burst duration (ns); exponential durations give the paper's
    /// "99th percentile burst duration of 158 µs" at a 34.3 µs mean.
    pub mean_burst_ns: u64,
    /// Burst rate at the source NIC (bursts transmit at line rate).
    pub nic_bps: u64,
    /// Datagram payload bytes (mice packets).
    pub payload: u32,
    /// Burst arrival rate (bursts/s across the cluster).
    pub bursts_per_sec: f64,
    /// Zipf exponent of destination popularity.
    pub zipf_s: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MicroburstsConfig {
    fn default() -> Self {
        MicroburstsConfig {
            vms: 10_240,
            bursts: 20_000,
            mean_burst_ns: 34_300,
            nic_bps: 100_000_000_000,
            payload: 1000,
            bursts_per_sec: 2_000_000.0,
            zipf_s: 0.9,
            seed: 1,
        }
    }
}

/// Generates the Microbursts trace: UDP bursts to Zipf-popular destinations.
pub fn microbursts(cfg: &MicroburstsConfig) -> Vec<TraceFlow> {
    FlowSource::microbursts(cfg).collect()
}

/// Video trace parameters ("64 senders at 48 Mbps", no destination reuse).
#[derive(Debug, Clone)]
pub struct VideoConfig {
    /// VM pool size (senders and receivers are drawn from it).
    pub vms: usize,
    /// Number of streams.
    pub senders: usize,
    /// Per-stream rate.
    pub rate_bps: u64,
    /// Stream duration (ns).
    pub duration_ns: u64,
    /// Datagram payload.
    pub payload: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for VideoConfig {
    fn default() -> Self {
        VideoConfig {
            vms: 10_240,
            senders: 64,
            rate_bps: 48_000_000,
            duration_ns: 100_000_000, // 100 ms
            payload: 1000,
            seed: 1,
        }
    }
}

/// Generates the 8K-Video trace: disjoint sender → receiver CBR streams.
pub fn video(cfg: &VideoConfig) -> Vec<TraceFlow> {
    FlowSource::video(cfg).collect()
}

/// Migration incast parameters (§5.2: "64 UDP senders, each running on a
/// distinct physical server... The entire trace lasts 1 msec, totaling 64K
/// packets").
#[derive(Debug, Clone)]
pub struct IncastConfig {
    /// Senders (each from a distinct server — the harness maps VM indices to
    /// distinct servers).
    pub senders: usize,
    /// Total packets across all senders.
    pub total_packets: u32,
    /// Trace duration (ns).
    pub duration_ns: u64,
    /// Datagram payload; small packets keep the 64 Kpkt/ms aggregate within
    /// the destination NIC rate.
    pub payload: u32,
}

impl Default for IncastConfig {
    fn default() -> Self {
        IncastConfig {
            senders: 64,
            total_packets: 65_536,
            duration_ns: 1_000_000,
            payload: 100,
        }
    }
}

/// Generates the incast trace toward `dst_vm`; `sender_vms` must hold
/// `senders` distinct VM indices on distinct servers.
pub fn incast(cfg: &IncastConfig, sender_vms: &[usize], dst_vm: usize) -> Vec<TraceFlow> {
    FlowSource::incast(cfg, sender_vms, dst_vm).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pre-streaming materializing generators, copied verbatim. They
    /// are the byte-identity oracle: if a streaming source ever diverges
    /// from what the original closed-form generators produced, the
    /// regression tests below catch it.
    mod oracle {
        use super::super::*;

        fn poisson_starts(n: usize, rate_per_sec: f64, rng: &mut SimRng) -> Vec<u64> {
            let mut t = 0.0;
            (0..n)
                .map(|_| {
                    t += rng.exponential(1.0 / rate_per_sec);
                    (t * 1e9) as u64
                })
                .collect()
        }

        #[allow(clippy::too_many_arguments)]
        fn tcp_trace(
            vms: usize,
            active_vms: Option<usize>,
            flows: usize,
            load: f64,
            hosts: usize,
            nic_bps: u64,
            cdf: &EmpiricalCdf,
            pick_dst: &mut dyn FnMut(&mut SimRng) -> Option<usize>,
            seed: u64,
        ) -> Vec<TraceFlow> {
            assert!(vms >= 2 && flows > 0 && load > 0.0 && hosts > 0);
            let mut rng = SimRng::new(seed);
            let pool: Vec<usize> = match active_vms {
                Some(k) => {
                    assert!(k >= 2 && k <= vms);
                    let mut ids: Vec<usize> = (0..vms).collect();
                    rng.shuffle(&mut ids);
                    ids.truncate(k);
                    ids
                }
                None => (0..vms).collect(),
            };
            let n = pool.len();
            let agg_bps = load * hosts as f64 * nic_bps as f64;
            let mean_bits = cdf.mean() * 8.0;
            let rate = agg_bps / mean_bits;
            let starts = poisson_starts(flows, rate, &mut rng);
            starts
                .into_iter()
                .map(|start_ns| {
                    let (src, dst) = match pick_dst(&mut rng) {
                        Some(d) => {
                            let mut src = rng.gen_range(0..vms - 1);
                            if src >= d {
                                src += 1;
                            }
                            (src, d)
                        }
                        None => {
                            let (si, di) = uniform_pair(n, &mut rng);
                            (pool[si], pool[di])
                        }
                    };
                    let bytes = cdf.sample(&mut rng).max(1.0) as u64;
                    TraceFlow {
                        src_vm: src,
                        dst_vm: dst,
                        start_ns,
                        profile: FlowProfile::Tcp { bytes },
                    }
                })
                .collect()
        }

        pub fn hadoop(cfg: &HadoopConfig) -> Vec<TraceFlow> {
            tcp_trace(
                cfg.vms,
                cfg.active_vms,
                cfg.flows,
                cfg.load,
                cfg.hosts,
                cfg.nic_bps,
                &EmpiricalCdf::facebook_hadoop(),
                &mut |_| None,
                cfg.seed,
            )
        }

        pub fn websearch(cfg: &WebSearchConfig) -> Vec<TraceFlow> {
            tcp_trace(
                cfg.vms,
                cfg.active_vms,
                cfg.flows,
                cfg.load,
                cfg.hosts,
                cfg.nic_bps,
                &EmpiricalCdf::dctcp_websearch(),
                &mut |_| None,
                cfg.seed,
            )
        }

        pub fn alibaba(cfg: &AlibabaConfig) -> Vec<TraceFlow> {
            assert!(cfg.vms >= 2 && cfg.rpcs > 0 && cfg.duration_ns > 0);
            let zipf = Zipf::new(cfg.vms, cfg.zipf_s);
            let mut perm: Vec<usize> = (0..cfg.vms).collect();
            let mut prng = SimRng::new(cfg.seed ^ 0xA11BABA);
            prng.shuffle(&mut perm);
            let mut rng = SimRng::new(cfg.seed);
            let rate = cfg.rpcs as f64 / (cfg.duration_ns as f64 / 1e9);
            let cdf = EmpiricalCdf::alibaba_rpc();
            let starts = poisson_starts(cfg.rpcs, rate, &mut rng);
            starts
                .into_iter()
                .map(|start_ns| {
                    let dst = perm[zipf.sample(&mut rng)];
                    let mut src = rng.gen_range(0..cfg.vms - 1);
                    if src >= dst {
                        src += 1;
                    }
                    let bytes = cdf.sample(&mut rng).max(1.0) as u64;
                    TraceFlow {
                        src_vm: src,
                        dst_vm: dst,
                        start_ns,
                        profile: FlowProfile::Tcp { bytes },
                    }
                })
                .collect()
        }

        pub fn microbursts(cfg: &MicroburstsConfig) -> Vec<TraceFlow> {
            let mut rng = SimRng::new(cfg.seed);
            let zipf = Zipf::new(cfg.vms, cfg.zipf_s);
            let mut perm: Vec<usize> = (0..cfg.vms).collect();
            rng.shuffle(&mut perm);
            let starts = poisson_starts(cfg.bursts, cfg.bursts_per_sec, &mut rng);
            starts
                .into_iter()
                .map(|start_ns| {
                    let dst = perm[zipf.sample(&mut rng)];
                    let mut src = rng.gen_range(0..cfg.vms - 1);
                    if src >= dst {
                        src += 1;
                    }
                    let duration = rng.exponential(cfg.mean_burst_ns as f64).max(1.0);
                    let bytes = duration * cfg.nic_bps as f64 / 8.0 / 1e9;
                    let count = (bytes / cfg.payload as f64).ceil().max(1.0) as u32;
                    TraceFlow {
                        src_vm: src,
                        dst_vm: dst,
                        start_ns,
                        profile: FlowProfile::UdpBurst {
                            count,
                            payload: cfg.payload,
                        },
                    }
                })
                .collect()
        }

        pub fn video(cfg: &VideoConfig) -> Vec<TraceFlow> {
            assert!(cfg.vms >= 2 * cfg.senders, "need disjoint endpoints");
            let mut rng = SimRng::new(cfg.seed);
            let mut ids: Vec<usize> = (0..cfg.vms).collect();
            rng.shuffle(&mut ids);
            (0..cfg.senders)
                .map(|i| TraceFlow {
                    src_vm: ids[2 * i],
                    dst_vm: ids[2 * i + 1],
                    start_ns: 0,
                    profile: FlowProfile::UdpCbr {
                        rate_bps: cfg.rate_bps,
                        duration_ns: cfg.duration_ns,
                        payload: cfg.payload,
                    },
                })
                .collect()
        }
    }

    #[test]
    fn streamed_hadoop_matches_materialized_oracle() {
        let cfg = HadoopConfig {
            flows: 2_000,
            ..Default::default()
        };
        assert_eq!(hadoop(&cfg), oracle::hadoop(&cfg));
        // The active-subset path shuffles the pool before the starts.
        let cfg = HadoopConfig {
            flows: 2_000,
            active_vms: Some(512),
            ..Default::default()
        };
        assert_eq!(hadoop(&cfg), oracle::hadoop(&cfg));
    }

    #[test]
    fn streamed_websearch_matches_materialized_oracle() {
        let cfg = WebSearchConfig {
            flows: 1_000,
            ..Default::default()
        };
        assert_eq!(websearch(&cfg), oracle::websearch(&cfg));
    }

    #[test]
    fn streamed_alibaba_matches_materialized_oracle() {
        let cfg = AlibabaConfig {
            vms: 20_000,
            rpcs: 5_000,
            duration_ns: 1_000_000,
            ..Default::default()
        };
        assert_eq!(alibaba(&cfg), oracle::alibaba(&cfg));
    }

    #[test]
    fn streamed_microbursts_matches_materialized_oracle() {
        let cfg = MicroburstsConfig {
            bursts: 2_000,
            ..Default::default()
        };
        assert_eq!(microbursts(&cfg), oracle::microbursts(&cfg));
    }

    #[test]
    fn streamed_video_matches_materialized_oracle() {
        let cfg = VideoConfig::default();
        assert_eq!(video(&cfg), oracle::video(&cfg));
    }

    #[test]
    fn source_is_cloneable_and_replays() {
        let cfg = HadoopConfig {
            flows: 200,
            ..Default::default()
        };
        let src = FlowSource::hadoop(&cfg);
        assert_eq!(src.remaining(), 200);
        let a: Vec<TraceFlow> = src.clone().collect();
        let b: Vec<TraceFlow> = src.collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
    }

    #[test]
    fn hadoop_is_deterministic_and_sorted() {
        let cfg = HadoopConfig {
            flows: 2000,
            ..Default::default()
        };
        let a = hadoop(&cfg);
        let b = hadoop(&cfg);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
        assert!(a.iter().all(|f| f.src_vm != f.dst_vm));
    }

    #[test]
    fn hadoop_load_matches_target() {
        let cfg = HadoopConfig {
            flows: 30_000,
            ..Default::default()
        };
        let t = hadoop(&cfg);
        let s = stats(&t);
        let offered = s.total_bytes as f64 * 8.0 / (s.duration_ns as f64 / 1e9);
        let target = 0.3 * 128.0 * 100e9;
        assert!(
            (offered - target).abs() / target < 0.25,
            "offered {offered:e} vs target {target:e}"
        );
    }

    #[test]
    fn paper_scale_hadoop_reuse_characteristics() {
        let t = hadoop(&HadoopConfig::default());
        let s = stats(&t);
        assert_eq!(s.flows, 99_297);
        // "10,233 VMs serve as destinations in at least two flows."
        assert!(s.dsts_with_2plus > 10_000, "{s:?}");
        assert!(s.distinct_dsts > 10_200, "{s:?}");
    }

    #[test]
    fn active_subset_preserves_reuse_ratio() {
        let cfg = HadoopConfig {
            flows: 5_000,
            active_vms: Some(512),
            ..Default::default()
        };
        let t = hadoop(&cfg);
        let s = stats(&t);
        assert!(s.distinct_dsts <= 512, "{s:?}");
        // ~9.8 flows per destination: nearly all active VMs repeat.
        assert!(s.dsts_with_2plus > 450, "{s:?}");
        // Endpoints spread over the whole pool, not just low ids.
        assert!(t.iter().any(|f| f.dst_vm > 5_000));
    }

    #[test]
    fn websearch_has_low_reuse_and_heavy_flows() {
        let t = websearch(&WebSearchConfig::default());
        let s = stats(&t);
        assert_eq!(s.flows, 5_000);
        // "only 48% of the VMs being a destination in at least one flow"
        let frac = s.distinct_dsts as f64 / 10_240.0;
        assert!((0.3..0.6).contains(&frac), "dst fraction {frac}");
        // Few VMs repeat: order ~1.5K ("1,466 VMs are destinations in at
        // least two flows").
        assert!(s.dsts_with_2plus < 3_000, "{s:?}");
        let mean = s.total_bytes / s.flows as u64;
        assert!(mean > 1_000_000, "websearch mean flow {mean} too small");
    }

    #[test]
    fn alibaba_concentrates_destinations() {
        let cfg = AlibabaConfig {
            vms: 50_000,
            rpcs: 100_000,
            ..Default::default()
        };
        let t = alibaba(&cfg);
        let s = stats(&t);
        // High cross-flow reuse: thousands of VMs with >= 10 RPCs.
        assert!(s.dsts_with_10plus > 300, "{s:?}");
        // Only a minority of the pool receives anything (24% in the paper).
        assert!(
            (s.distinct_dsts as f64) < 0.5 * cfg.vms as f64,
            "{s:?}"
        );
    }

    #[test]
    fn alibaba_spreads_over_its_window() {
        let cfg = AlibabaConfig {
            vms: 10_000,
            rpcs: 5_000,
            duration_ns: 1_000_000,
            ..Default::default()
        };
        let t = alibaba(&cfg);
        let s = stats(&t);
        // Poisson arrivals: the realized span is near the configured window.
        assert!(
            (s.duration_ns as f64) > 0.7e6 && (s.duration_ns as f64) < 1.6e6,
            "{s:?}"
        );
    }

    #[test]
    fn microbursts_shape() {
        let cfg = MicroburstsConfig {
            bursts: 5_000,
            ..Default::default()
        };
        let t = microbursts(&cfg);
        // p99 burst duration ≈ 158 us => p99 packets ≈ 158us*100G/8/1000B ≈ 1975.
        let mut counts: Vec<u32> = t
            .iter()
            .map(|f| match f.profile {
                FlowProfile::UdpBurst { count, .. } => count,
                _ => panic!("not a burst"),
            })
            .collect();
        counts.sort_unstable();
        let p99 = counts[(counts.len() as f64 * 0.99) as usize];
        assert!(
            (1_200..=3_000).contains(&p99),
            "p99 burst packets {p99} off target"
        );
        let s = stats(&t);
        assert!(s.dsts_with_10plus > 40, "{s:?}");
    }

    #[test]
    fn video_streams_are_disjoint() {
        let t = video(&VideoConfig::default());
        assert_eq!(t.len(), 64);
        let mut endpoints: Vec<usize> = t
            .iter()
            .flat_map(|f| [f.src_vm, f.dst_vm])
            .collect();
        endpoints.sort_unstable();
        endpoints.dedup();
        assert_eq!(endpoints.len(), 128, "no endpoint reuse allowed");
        let s = stats(&t);
        assert_eq!(s.dsts_with_2plus, 0);
    }

    #[test]
    fn incast_totals_match() {
        let cfg = IncastConfig::default();
        let senders: Vec<usize> = (1..=64).collect();
        let t = incast(&cfg, &senders, 0);
        assert_eq!(t.len(), 64);
        let total: u64 = t.iter().map(|f| f.bytes()).sum();
        let expect = 65_536 / 64 * 64 * 100;
        assert!(
            (total as i64 - expect as i64).unsigned_abs() < 7_000,
            "total {total} vs {expect}"
        );
    }
}
