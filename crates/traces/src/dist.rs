//! Sampling distributions: empirical CDFs (flow sizes) and Zipf (service
//! popularity).

use sv2p_simcore::SimRng;

/// A piecewise-linear empirical CDF over flow sizes, in the format used by
/// the public DCTCP / HPCC workload files: (value, cumulative probability)
/// knots, interpolated linearly between knots.
#[derive(Debug, Clone)]
pub struct EmpiricalCdf {
    points: Vec<(f64, f64)>,
}

impl EmpiricalCdf {
    /// Builds from knots; they must be sorted in both coordinates, start at
    /// probability 0 and end at 1.
    pub fn new(points: &[(f64, f64)]) -> Self {
        assert!(points.len() >= 2, "need at least two knots");
        assert_eq!(points[0].1, 0.0, "CDF must start at 0");
        assert!(
            (points.last().unwrap().1 - 1.0).abs() < 1e-9,
            "CDF must end at 1"
        );
        for w in points.windows(2) {
            assert!(
                w[0].0 <= w[1].0 && w[0].1 <= w[1].1,
                "knots must be nondecreasing: {w:?}"
            );
        }
        EmpiricalCdf {
            points: points.to_vec(),
        }
    }

    /// The Facebook Hadoop flow-size CDF (Roy et al., SIGCOMM'15, as used by
    /// the HPCC evaluation): dominated by sub-10 kB flows with a tail to a
    /// few MB.
    pub fn facebook_hadoop() -> Self {
        EmpiricalCdf::new(&[
            (250.0, 0.0),
            (500.0, 0.15),
            (1_000.0, 0.35),
            (2_000.0, 0.50),
            (10_000.0, 0.70),
            (100_000.0, 0.90),
            (1_000_000.0, 0.97),
            (2_000_000.0, 1.0),
        ])
    }

    /// The DCTCP WebSearch flow-size CDF: "mostly comprised of heavy flows",
    /// bytes dominated by the multi-MB tail.
    pub fn dctcp_websearch() -> Self {
        EmpiricalCdf::new(&[
            (6_000.0, 0.0),
            (10_000.0, 0.15),
            (20_000.0, 0.20),
            (30_000.0, 0.30),
            (50_000.0, 0.40),
            (80_000.0, 0.53),
            (200_000.0, 0.60),
            (1_000_000.0, 0.70),
            (2_000_000.0, 0.80),
            (5_000_000.0, 0.90),
            (10_000_000.0, 0.97),
            (30_000_000.0, 1.0),
        ])
    }

    /// Alibaba microservice RPC sizes: small requests, few kB.
    pub fn alibaba_rpc() -> Self {
        EmpiricalCdf::new(&[
            (256.0, 0.0),
            (1_000.0, 0.40),
            (2_000.0, 0.70),
            (8_000.0, 0.90),
            (64_000.0, 0.99),
            (256_000.0, 1.0),
        ])
    }

    /// Inverse-CDF sample.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        let u = rng.uniform();
        let mut iter = self.points.windows(2);
        for w in &mut iter {
            let (x0, p0) = w[0];
            let (x1, p1) = w[1];
            if u <= p1 {
                if p1 == p0 {
                    return x1;
                }
                return x0 + (x1 - x0) * (u - p0) / (p1 - p0);
            }
        }
        self.points.last().unwrap().0
    }

    /// Analytic mean of the piecewise-linear distribution.
    pub fn mean(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| {
                let (x0, p0) = w[0];
                let (x1, p1) = w[1];
                (p1 - p0) * (x0 + x1) / 2.0
            })
            .sum()
    }
}

/// Zipf-distributed ranks: `P(rank k) ∝ 1 / k^s` over `n` items.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative weights for inverse sampling.
    cumulative: Vec<f64>,
}

impl Zipf {
    /// A Zipf law over `n` ranks with exponent `s`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0);
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cumulative.push(acc);
        }
        let total = acc;
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Samples a rank in `0..n` (0 = most popular).
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.uniform();
        self.cumulative.partition_point(|&c| c < u)
    }

    /// Fraction of probability mass held by the top `frac` of ranks.
    pub fn top_mass(&self, frac: f64) -> f64 {
        let k = ((self.cumulative.len() as f64 * frac).ceil() as usize)
            .clamp(1, self.cumulative.len());
        self.cumulative[k - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_sample_within_support_and_mean_close() {
        let cdf = EmpiricalCdf::facebook_hadoop();
        let mut rng = SimRng::new(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = cdf.sample(&mut rng);
            assert!((250.0..=2_000_000.0).contains(&x), "{x}");
            sum += x;
        }
        let emp_mean = sum / n as f64;
        let mean = cdf.mean();
        assert!(
            (emp_mean - mean).abs() / mean < 0.05,
            "empirical {emp_mean} vs analytic {mean}"
        );
    }

    #[test]
    fn websearch_is_heavier_than_hadoop() {
        assert!(EmpiricalCdf::dctcp_websearch().mean() > 10.0 * EmpiricalCdf::facebook_hadoop().mean());
    }

    #[test]
    #[should_panic(expected = "start at 0")]
    fn bad_cdf_is_rejected() {
        EmpiricalCdf::new(&[(1.0, 0.5), (2.0, 1.0)]);
    }

    #[test]
    fn zipf_concentrates_mass() {
        // Calibration target from the paper: ~95% of requests to 5% of
        // services.
        let z = Zipf::new(10_000, 1.32);
        let top5 = z.top_mass(0.05);
        assert!(top5 > 0.85, "top-5% mass only {top5}");
        // Sampling matches the analytic mass.
        let mut rng = SimRng::new(2);
        let n = 200_000;
        let hits = (0..n).filter(|_| z.sample(&mut rng) < 500).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - top5).abs() < 0.02, "sampled {frac} vs {top5}");
    }

    #[test]
    fn zipf_rank_zero_is_most_popular() {
        let z = Zipf::new(100, 1.0);
        let mut rng = SimRng::new(3);
        let mut counts = [0u32; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[1] > counts[50]);
    }
}
