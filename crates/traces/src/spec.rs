//! Neutral trace output format (converted to `sv2p-netsim` flow specs by the
//! harness, keeping this crate simulator-independent).

use serde::{Deserialize, Serialize};

/// Payload profile of one flow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FlowProfile {
    /// A TCP transfer.
    Tcp {
        /// Flow size in bytes.
        bytes: u64,
    },
    /// Constant-bit-rate UDP.
    UdpCbr {
        /// Payload rate in bits per second.
        rate_bps: u64,
        /// Sending duration in nanoseconds.
        duration_ns: u64,
        /// Datagram payload bytes.
        payload: u32,
    },
    /// A back-to-back UDP burst at the sender's line rate.
    UdpBurst {
        /// Number of datagrams.
        count: u32,
        /// Datagram payload bytes.
        payload: u32,
    },
}

/// One generated flow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceFlow {
    /// Sending VM index.
    pub src_vm: usize,
    /// Destination VM index.
    pub dst_vm: usize,
    /// Start time in nanoseconds.
    pub start_ns: u64,
    /// What the flow carries.
    pub profile: FlowProfile,
}

impl TraceFlow {
    /// Total payload bytes of the flow.
    pub fn bytes(&self) -> u64 {
        match self.profile {
            FlowProfile::Tcp { bytes } => bytes,
            FlowProfile::UdpCbr {
                rate_bps,
                duration_ns,
                ..
            } => (rate_bps as u128 * duration_ns as u128 / 8 / 1_000_000_000) as u64,
            FlowProfile::UdpBurst { count, payload } => count as u64 * payload as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_accounting() {
        let tcp = TraceFlow {
            src_vm: 0,
            dst_vm: 1,
            start_ns: 0,
            profile: FlowProfile::Tcp { bytes: 1234 },
        };
        assert_eq!(tcp.bytes(), 1234);
        let cbr = TraceFlow {
            src_vm: 0,
            dst_vm: 1,
            start_ns: 0,
            profile: FlowProfile::UdpCbr {
                rate_bps: 48_000_000,
                duration_ns: 1_000_000_000,
                payload: 1000,
            },
        };
        assert_eq!(cbr.bytes(), 6_000_000);
        let burst = TraceFlow {
            src_vm: 0,
            dst_vm: 1,
            start_ns: 0,
            profile: FlowProfile::UdpBurst {
                count: 10,
                payload: 100,
            },
        };
        assert_eq!(burst.bytes(), 1000);
    }
}
