//! Workload generators for the five datasets of §5 plus the migration
//! incast of §5.2.
//!
//! The paper replays proprietary packet traces; per DESIGN.md §4 we resample
//! the *published* distributions they are built from:
//!
//! * **Hadoop** — Facebook's Hadoop cluster flow sizes (Roy et al.,
//!   SIGCOMM'15): short flows, heavy cross-flow destination reuse;
//! * **WebSearch** — the DCTCP search workload: mostly bytes in multi-MB
//!   flows, minimal destination sharing;
//! * **Alibaba** — microservice RPCs with Zipf service popularity
//!   calibrated to "over 95% of the total requests are processed by just 5%
//!   of the microservices" (Luo et al., SoCC'21);
//! * **Microbursts** — mice-flow UDP bursts with a 158 µs 99th-percentile
//!   burst duration;
//! * **Video** — 64 × 48 Mb/s UDP senders, no destination reuse;
//! * **Incast** — 64 UDP senders to one VM for the §5.2 migration study.
//!
//! Every generator is deterministic in its seed and emits flows at a Poisson
//! arrival rate matched to the requested network load ("network load of 30%
//! with 100 Gbps links").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datasets;
pub mod dist;
pub mod spec;

pub use datasets::{
    alibaba, hadoop, incast, microbursts, video, AlibabaConfig, FlowSource, HadoopConfig,
    IncastConfig, MicroburstsConfig, TraceStats, VideoConfig, WebSearchConfig, websearch,
};
pub use dist::{EmpiricalCdf, Zipf};
pub use spec::{FlowProfile, TraceFlow};
