//! The [`SwitchV2P`] strategy: plugs the agent into the simulator.

use sv2p_packet::SwitchTag;
use sv2p_topology::{NodeId, SwitchRole};
use sv2p_vnet::{MisdeliveryPolicy, Strategy, SwitchAgent};

use crate::agent::SwitchV2PAgent;
use crate::config::SwitchV2PConfig;

/// The paper's system as a pluggable translation scheme.
#[derive(Debug, Clone, Default)]
pub struct SwitchV2P {
    /// Protocol configuration.
    pub config: SwitchV2PConfig,
}

impl SwitchV2P {
    /// A SwitchV2P deployment with the given protocol configuration.
    pub fn new(config: SwitchV2PConfig) -> Self {
        SwitchV2P { config }
    }
}

impl Strategy for SwitchV2P {
    fn name(&self) -> &'static str {
        "SwitchV2P"
    }

    fn caches_at(&self, role: SwitchRole) -> bool {
        if self.config.tor_only {
            matches!(role, SwitchRole::Tor | SwitchRole::GatewayTor)
        } else {
            true
        }
    }

    fn make_switch_agent(
        &self,
        _node: NodeId,
        role: SwitchRole,
        _tag: SwitchTag,
        lines: usize,
    ) -> Box<dyn SwitchAgent> {
        Box::new(SwitchV2PAgent::new(role, lines, self.config))
    }

    fn cache_weight(&self, role: SwitchRole) -> f64 {
        let (tor, spine, core) = self.config.layer_weights;
        match role {
            SwitchRole::Tor | SwitchRole::GatewayTor => tor,
            SwitchRole::Spine | SwitchRole::GatewaySpine => spine,
            SwitchRole::Core => core,
        }
    }

    fn misdelivery_policy(&self) -> MisdeliveryPolicy {
        // Old hosts re-forward to the gateway; the in-network caches repair
        // themselves via tags and invalidation packets (§5.2).
        MisdeliveryPolicy::ToGateway
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_caches_everywhere() {
        let s = SwitchV2P::default();
        for role in [
            SwitchRole::GatewayTor,
            SwitchRole::GatewaySpine,
            SwitchRole::Tor,
            SwitchRole::Spine,
            SwitchRole::Core,
        ] {
            assert!(s.caches_at(role), "{role:?}");
        }
        assert_eq!(s.misdelivery_policy(), MisdeliveryPolicy::ToGateway);
        assert!(s.uses_gateways());
    }

    #[test]
    fn tor_only_restricts_caching() {
        let s = SwitchV2P::new(SwitchV2PConfig::tor_only());
        assert!(s.caches_at(SwitchRole::Tor));
        assert!(s.caches_at(SwitchRole::GatewayTor));
        assert!(!s.caches_at(SwitchRole::Spine));
        assert!(!s.caches_at(SwitchRole::Core));
    }

    #[test]
    fn agents_receive_their_capacity() {
        let s = SwitchV2P::default();
        let agent = s.make_switch_agent(NodeId(0), SwitchRole::Tor, SwitchTag(0), 8);
        assert_eq!(agent.occupancy(), 0);
    }
}
