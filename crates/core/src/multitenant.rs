//! Multi-tenant cache partitioning — the §4 "Multitenancy support" sketch.
//!
//! "SwitchV2P may serve for maintaining a per-VPC private cache in a private
//! memory partition in a switch. As in-switch memory is a scarce resource,
//! an operator may decide to enable SwitchV2P for a particular VPC based on
//! a policy, e.g., when the gateway load exceeds a certain threshold."
//!
//! The paper leaves a systematic design to future work; this module
//! implements the mechanism it describes: a [`PartitionedCache`] that hosts
//! isolated per-VPC [`DirectMappedCache`] partitions carved out of one
//! memory budget, plus the [`AdmissionPolicy`] that decides which VPCs get a
//! partition (static allowlist or gateway-load threshold). Partitions are
//! fully isolated: one tenant's traffic can neither read nor evict
//! another's entries — the property the paper requires ("the in-switch
//! cache must be isolated to avoid performance interference between the
//! tenants").

use sv2p_packet::{Pip, Vip};
use sv2p_simcore::FxHashMap;

use crate::cache::{Admission, DirectMappedCache, InsertOutcome};

/// A tenant (VPC) identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VpcId(pub u32);

/// Which VPCs are granted a cache partition.
#[derive(Debug, Clone)]
pub enum AdmissionPolicy {
    /// Every VPC gets a partition until memory runs out (first come, first
    /// served).
    FirstComeFirstServed,
    /// Only the listed VPCs are cached.
    Allowlist(Vec<VpcId>),
    /// A VPC is enabled once its observed gateway load (packets needing
    /// translation) crosses the threshold — the paper's example policy.
    GatewayLoadThreshold {
        /// Packets a VPC must push through gateways before it earns a
        /// partition.
        min_gateway_packets: u64,
    },
}

/// One switch's memory budget split into isolated per-VPC partitions.
#[derive(Debug)]
pub struct PartitionedCache {
    /// Lines per partition.
    partition_lines: usize,
    /// Maximum number of partitions the memory budget allows.
    max_partitions: usize,
    policy: AdmissionPolicy,
    partitions: FxHashMap<VpcId, DirectMappedCache>,
    /// Per-VPC gateway-load observations (for the threshold policy).
    gateway_load: FxHashMap<VpcId, u64>,
}

impl PartitionedCache {
    /// Splits `total_lines` into up to `max_partitions` equal partitions.
    pub fn new(total_lines: usize, max_partitions: usize, policy: AdmissionPolicy) -> Self {
        assert!(max_partitions > 0);
        PartitionedCache {
            partition_lines: total_lines / max_partitions,
            max_partitions,
            policy,
            partitions: FxHashMap::default(),
            gateway_load: FxHashMap::default(),
        }
    }

    /// Number of active partitions.
    pub fn partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Records that a packet of `vpc` had to be translated by a gateway
    /// (input to the threshold policy).
    pub fn record_gateway_packet(&mut self, vpc: VpcId) {
        *self.gateway_load.entry(vpc).or_insert(0) += 1;
    }

    fn admits(&self, vpc: VpcId) -> bool {
        match &self.policy {
            AdmissionPolicy::FirstComeFirstServed => true,
            AdmissionPolicy::Allowlist(list) => list.contains(&vpc),
            AdmissionPolicy::GatewayLoadThreshold {
                min_gateway_packets,
            } => self.gateway_load.get(&vpc).copied().unwrap_or(0) >= *min_gateway_packets,
        }
    }

    fn partition_mut(&mut self, vpc: VpcId) -> Option<&mut DirectMappedCache> {
        if !self.partitions.contains_key(&vpc) {
            if self.partitions.len() >= self.max_partitions
                || self.partition_lines == 0
                || !self.admits(vpc)
            {
                return None;
            }
            self.partitions
                .insert(vpc, DirectMappedCache::new(self.partition_lines));
        }
        self.partitions.get_mut(&vpc)
    }

    /// Looks up `vip` within `vpc`'s partition only.
    pub fn lookup(&mut self, vpc: VpcId, vip: Vip) -> Option<(Pip, bool)> {
        self.partitions.get_mut(&vpc)?.lookup(vip)
    }

    /// Inserts into `vpc`'s partition (creating it if policy and memory
    /// allow). Returns `None` if the VPC is not cacheable here.
    pub fn insert(
        &mut self,
        vpc: VpcId,
        vip: Vip,
        pip: Pip,
        admission: Admission,
    ) -> Option<InsertOutcome> {
        self.partition_mut(vpc).map(|c| c.insert(vip, pip, admission))
    }

    /// Invalidates within one VPC only.
    pub fn invalidate(&mut self, vpc: VpcId, vip: Vip, only_if_pip: Option<Pip>) -> bool {
        self.partitions
            .get_mut(&vpc)
            .is_some_and(|c| c.invalidate(vip, only_if_pip))
    }

    /// Total valid entries across partitions.
    pub fn occupancy(&self) -> usize {
        self.partitions.values().map(|c| c.occupancy()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_are_isolated() {
        let mut pc = PartitionedCache::new(64, 4, AdmissionPolicy::FirstComeFirstServed);
        // Same VIP in two VPCs maps to different PIPs — different address
        // spaces must not collide.
        pc.insert(VpcId(1), Vip(7), Pip(100), Admission::All).unwrap();
        pc.insert(VpcId(2), Vip(7), Pip(200), Admission::All).unwrap();
        assert_eq!(pc.lookup(VpcId(1), Vip(7)).map(|(p, _)| p), Some(Pip(100)));
        assert_eq!(pc.lookup(VpcId(2), Vip(7)).map(|(p, _)| p), Some(Pip(200)));
        // Invalidation stays inside the tenant.
        assert!(pc.invalidate(VpcId(1), Vip(7), None));
        assert_eq!(pc.lookup(VpcId(1), Vip(7)), None);
        assert!(pc.lookup(VpcId(2), Vip(7)).is_some());
    }

    #[test]
    fn tenants_cannot_evict_each_other() {
        let mut pc = PartitionedCache::new(8, 2, AdmissionPolicy::FirstComeFirstServed);
        pc.insert(VpcId(1), Vip(1), Pip(10), Admission::All).unwrap();
        // VPC 2 floods its own partition.
        for k in 0..100 {
            pc.insert(VpcId(2), Vip(k), Pip(k), Admission::All);
        }
        assert_eq!(pc.lookup(VpcId(1), Vip(1)).map(|(p, _)| p), Some(Pip(10)));
    }

    #[test]
    fn memory_budget_bounds_partitions() {
        let mut pc = PartitionedCache::new(16, 2, AdmissionPolicy::FirstComeFirstServed);
        assert!(pc.insert(VpcId(1), Vip(1), Pip(1), Admission::All).is_some());
        assert!(pc.insert(VpcId(2), Vip(1), Pip(1), Admission::All).is_some());
        // No room for a third tenant; its traffic is simply not cached.
        assert!(pc.insert(VpcId(3), Vip(1), Pip(1), Admission::All).is_none());
        assert_eq!(pc.partitions(), 2);
        assert_eq!(pc.lookup(VpcId(3), Vip(1)), None);
    }

    #[test]
    fn allowlist_policy_restricts() {
        let mut pc = PartitionedCache::new(
            64,
            8,
            AdmissionPolicy::Allowlist(vec![VpcId(5)]),
        );
        assert!(pc.insert(VpcId(5), Vip(1), Pip(1), Admission::All).is_some());
        assert!(pc.insert(VpcId(6), Vip(1), Pip(1), Admission::All).is_none());
    }

    #[test]
    fn gateway_load_threshold_enables_hot_tenants() {
        let mut pc = PartitionedCache::new(
            64,
            8,
            AdmissionPolicy::GatewayLoadThreshold {
                min_gateway_packets: 3,
            },
        );
        // Cold tenant: not cached.
        assert!(pc.insert(VpcId(1), Vip(1), Pip(1), Admission::All).is_none());
        // After enough gateway traffic, it earns a partition.
        for _ in 0..3 {
            pc.record_gateway_packet(VpcId(1));
        }
        assert!(pc.insert(VpcId(1), Vip(1), Pip(1), Admission::All).is_some());
        assert_eq!(pc.lookup(VpcId(1), Vip(1)).map(|(p, _)| p), Some(Pip(1)));
    }

    #[test]
    fn zero_lines_per_partition_degrades_gracefully() {
        let mut pc = PartitionedCache::new(1, 4, AdmissionPolicy::FirstComeFirstServed);
        assert!(pc.insert(VpcId(1), Vip(1), Pip(1), Admission::All).is_none());
        assert_eq!(pc.occupancy(), 0);
    }
}
