//! The in-switch direct-mapped cache (§3.2, "Cache structure").
//!
//! "Each cache entry includes a key (VIP), a value (PIP), and an access (A)
//! bit turned on upon a hit. The access bit is turned off when a lookup ends
//! up accessing that cache line but it is a miss." The P4 prototype realizes
//! this as three register arrays (keys, values, access bits); this model is
//! bit-for-bit the same state machine.

use sv2p_packet::{Pip, Vip};
use sv2p_vnet::CacheOp;

/// Admission policy for conflicting inserts (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Replace unconditionally (ToRs, gateway ToRs).
    All,
    /// Replace only if the resident entry's access bit is clear (spines,
    /// cores): a live entry is known-useful, the newcomer is speculative.
    AbitClear,
}

/// Result of an insertion attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// Stored in an empty line.
    Inserted,
    /// The key was already present; value refreshed (access bit untouched).
    Updated,
    /// A resident entry was replaced; the evictee is returned for spillover.
    Evicted {
        /// The replaced entry.
        vip: Vip,
        /// Its value.
        pip: Pip,
        /// Whether the evictee was recently useful (its access bit).
        abit: bool,
    },
    /// The admission policy kept the resident entry.
    Rejected,
}

/// Folds an [`InsertOutcome`] into telemetry [`CacheOp`]s. `accepted` is the
/// op to report when the new mapping actually entered the cache (`Insert`,
/// `Spill`, `Promote`, `Install`); an eviction is reported before it, an
/// in-place refresh becomes `Update`, and a rejection reports nothing.
///
/// Shared by every agent that owns a [`DirectMappedCache`] so all strategies
/// describe mutations with the same vocabulary.
pub fn push_insert_ops(ops: &mut Vec<CacheOp>, outcome: InsertOutcome, accepted: CacheOp) {
    match outcome {
        InsertOutcome::Inserted => ops.push(accepted),
        InsertOutcome::Updated => ops.push(CacheOp::Update {
            vip: accepted.vip(),
            pip: accepted.pip().expect("insert-style ops carry a pip"),
        }),
        InsertOutcome::Evicted { vip, pip, .. } => {
            ops.push(CacheOp::Evict { vip, pip });
            ops.push(accepted);
        }
        InsertOutcome::Rejected => {}
    }
}

/// A direct-mapped VIP → PIP cache with per-line access bits.
///
/// Lines are stored as packed parallel arrays — raw key and value words
/// plus one valid bit and one access bit per line — exactly the three
/// register arrays of the P4 prototype, and 8.25 bytes per line instead of
/// the 16 a `(Option<Vip>, Pip, bool)` struct padded to. A separate valid
/// bitmap is required because every `u32` is a legal VIP — there is no
/// sentinel key to steal.
#[derive(Debug, Clone)]
pub struct DirectMappedCache {
    keys: Vec<u32>,
    vals: Vec<u32>,
    /// Bit per line: the line holds a valid entry.
    valid: Vec<u64>,
    /// Bit per line: the access (A) bit.
    abit: Vec<u64>,
    /// Lookup attempts (hit-ratio diagnostics).
    pub lookups: u64,
    /// Successful lookups.
    pub hits: u64,
}

#[inline]
fn bit_get(bits: &[u64], i: usize) -> bool {
    bits[i >> 6] & (1u64 << (i & 63)) != 0
}

#[inline]
fn bit_put(bits: &mut [u64], i: usize, v: bool) {
    if v {
        bits[i >> 6] |= 1u64 << (i & 63);
    } else {
        bits[i >> 6] &= !(1u64 << (i & 63));
    }
}

impl DirectMappedCache {
    /// A cache with `lines` entries. Zero lines is a valid, always-missing
    /// cache (non-caching switches).
    pub fn new(lines: usize) -> Self {
        DirectMappedCache {
            keys: vec![0; lines],
            vals: vec![0; lines],
            valid: vec![0; lines.div_ceil(64)],
            abit: vec![0; lines.div_ceil(64)],
            lookups: 0,
            hits: 0,
        }
    }

    /// Capacity in lines.
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// Number of valid entries.
    pub fn occupancy(&self) -> usize {
        self.valid.iter().map(|w| w.count_ones() as usize).sum()
    }

    #[inline]
    fn index(&self, vip: Vip) -> usize {
        // The same avalanche the ASIC's hash unit would provide.
        let mut h = vip.0 as u64;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 29;
        (h % self.keys.len() as u64) as usize
    }

    /// Looks up `vip`. On a hit returns `(pip, abit_before_hit)` and sets the
    /// access bit; on a conflict miss clears the resident line's access bit
    /// (paper §3.2: an entry whose line keeps being probed for other keys is
    /// not earning its slot).
    pub fn lookup(&mut self, vip: Vip) -> Option<(Pip, bool)> {
        if self.keys.is_empty() {
            return None;
        }
        self.lookups += 1;
        let idx = self.index(vip);
        if !bit_get(&self.valid, idx) {
            return None;
        }
        if self.keys[idx] == vip.0 {
            let was_set = bit_get(&self.abit, idx);
            bit_put(&mut self.abit, idx, true);
            self.hits += 1;
            Some((Pip(self.vals[idx]), was_set))
        } else {
            bit_put(&mut self.abit, idx, false);
            None
        }
    }

    /// Reads without touching access bits (diagnostics).
    pub fn peek(&self, vip: Vip) -> Option<Pip> {
        if self.keys.is_empty() {
            return None;
        }
        let idx = self.index(vip);
        if bit_get(&self.valid, idx) && self.keys[idx] == vip.0 {
            Some(Pip(self.vals[idx]))
        } else {
            None
        }
    }

    /// Attempts to install `vip → pip` under `admission`. New entries start
    /// with a clear access bit ("turned on upon a hit").
    pub fn insert(&mut self, vip: Vip, pip: Pip, admission: Admission) -> InsertOutcome {
        if self.keys.is_empty() {
            return InsertOutcome::Rejected;
        }
        let idx = self.index(vip);
        let outcome = if !bit_get(&self.valid, idx) {
            InsertOutcome::Inserted
        } else if self.keys[idx] == vip.0 {
            self.vals[idx] = pip.0;
            return InsertOutcome::Updated;
        } else {
            let resident_abit = bit_get(&self.abit, idx);
            if admission == Admission::AbitClear && resident_abit {
                return InsertOutcome::Rejected;
            }
            InsertOutcome::Evicted {
                vip: Vip(self.keys[idx]),
                pip: Pip(self.vals[idx]),
                abit: resident_abit,
            }
        };
        self.keys[idx] = vip.0;
        self.vals[idx] = pip.0;
        bit_put(&mut self.valid, idx, true);
        bit_put(&mut self.abit, idx, false);
        outcome
    }

    /// Invalidates `vip`. With `only_if_pip`, the entry is removed only when
    /// it still maps to that (stale) value — a newer mapping survives, per
    /// §3.3. Returns true if an entry was removed.
    pub fn invalidate(&mut self, vip: Vip, only_if_pip: Option<Pip>) -> bool {
        if self.keys.is_empty() {
            return false;
        }
        let idx = self.index(vip);
        if !bit_get(&self.valid, idx) || self.keys[idx] != vip.0 {
            return false;
        }
        if let Some(stale) = only_if_pip {
            if self.vals[idx] != stale.0 {
                return false;
            }
        }
        bit_put(&mut self.valid, idx, false);
        bit_put(&mut self.abit, idx, false);
        true
    }

    /// All valid entries, in line order.
    pub fn entries(&self) -> Vec<(Vip, Pip)> {
        (0..self.keys.len())
            .filter(|&i| bit_get(&self.valid, i))
            .map(|i| (Vip(self.keys[i]), Pip(self.vals[i])))
            .collect()
    }

    /// Resident bytes of the packed line arrays at current capacity.
    pub fn resident_bytes(&self) -> usize {
        self.keys.capacity() * 4
            + self.vals.capacity() * 4
            + (self.valid.capacity() + self.abit.capacity()) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cache_misses_and_rejects() {
        let mut c = DirectMappedCache::new(0);
        assert_eq!(c.lookup(Vip(1)), None);
        assert_eq!(c.insert(Vip(1), Pip(2), Admission::All), InsertOutcome::Rejected);
        assert!(!c.invalidate(Vip(1), None));
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn insert_then_hit_sets_abit() {
        let mut c = DirectMappedCache::new(8);
        assert_eq!(c.insert(Vip(1), Pip(10), Admission::All), InsertOutcome::Inserted);
        // First hit reports the abit as it was before (clear).
        assert_eq!(c.lookup(Vip(1)), Some((Pip(10), false)));
        // Second hit sees it set.
        assert_eq!(c.lookup(Vip(1)), Some((Pip(10), true)));
        assert_eq!(c.occupancy(), 1);
        assert_eq!(c.hits, 2);
        assert_eq!(c.lookups, 2);
    }

    fn colliding_pair(c: &DirectMappedCache) -> (Vip, Vip) {
        // Find two VIPs mapping to the same line.
        let base = Vip(1);
        let idx = c.index(base);
        for x in 2..100_000 {
            if c.index(Vip(x)) == idx {
                return (base, Vip(x));
            }
        }
        panic!("no collision found");
    }

    #[test]
    fn conflict_miss_clears_abit_and_all_admission_evicts() {
        let mut c = DirectMappedCache::new(4);
        let (a, b) = colliding_pair(&c);
        c.insert(a, Pip(10), Admission::All);
        c.lookup(a); // abit set
        // A lookup of the colliding key is a miss and clears the abit.
        assert_eq!(c.lookup(b), None);
        assert_eq!(c.lookup(a), Some((Pip(10), false)), "abit was cleared");
        // Admission::All replaces regardless.
        c.lookup(a); // set abit again
        match c.insert(b, Pip(20), Admission::All) {
            InsertOutcome::Evicted { vip, pip, abit } => {
                assert_eq!((vip, pip, abit), (a, Pip(10), true));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(c.peek(b), Some(Pip(20)));
        assert_eq!(c.peek(a), None);
    }

    #[test]
    fn abit_clear_admission_protects_live_entries() {
        let mut c = DirectMappedCache::new(4);
        let (a, b) = colliding_pair(&c);
        c.insert(a, Pip(10), Admission::All);
        c.lookup(a); // live
        assert_eq!(c.insert(b, Pip(20), Admission::AbitClear), InsertOutcome::Rejected);
        assert_eq!(c.peek(a), Some(Pip(10)));
        // After a conflicting miss clears the bit, admission succeeds.
        c.lookup(b);
        assert!(matches!(
            c.insert(b, Pip(20), Admission::AbitClear),
            InsertOutcome::Evicted { .. }
        ));
    }

    #[test]
    fn update_refreshes_value_keeps_occupancy() {
        let mut c = DirectMappedCache::new(4);
        c.insert(Vip(1), Pip(10), Admission::All);
        assert_eq!(c.insert(Vip(1), Pip(11), Admission::AbitClear), InsertOutcome::Updated);
        assert_eq!(c.peek(Vip(1)), Some(Pip(11)));
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn conditional_invalidation_spares_newer_mappings() {
        let mut c = DirectMappedCache::new(4);
        c.insert(Vip(1), Pip(10), Admission::All);
        // Stale value mismatch: entry survives.
        assert!(!c.invalidate(Vip(1), Some(Pip(99))));
        assert_eq!(c.peek(Vip(1)), Some(Pip(10)));
        // Matching stale value: removed.
        assert!(c.invalidate(Vip(1), Some(Pip(10))));
        assert_eq!(c.peek(Vip(1)), None);
        // Unconditional removal.
        c.insert(Vip(2), Pip(20), Admission::All);
        assert!(c.invalidate(Vip(2), None));
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn entries_lists_valid_lines() {
        let mut c = DirectMappedCache::new(16);
        c.insert(Vip(1), Pip(10), Admission::All);
        c.insert(Vip(2), Pip(20), Admission::All);
        let mut e = c.entries();
        e.sort();
        assert!(e.contains(&(Vip(1), Pip(10))));
        assert!(e.len() <= 2); // 1 and 2 may collide in 16 lines
    }

    #[test]
    fn single_line_cache_works() {
        let mut c = DirectMappedCache::new(1);
        c.insert(Vip(1), Pip(10), Admission::All);
        assert!(matches!(
            c.insert(Vip(2), Pip(20), Admission::All),
            InsertOutcome::Evicted { .. }
        ));
        assert_eq!(c.lookup(Vip(2)), Some((Pip(20), false)));
    }
}
