//! The per-switch SwitchV2P protocol state machine (paper §3.2–§3.3).
//!
//! One agent instance runs in every switch. On each packet it applies, in
//! order:
//!
//! 1. **Misdelivery tagging** (ToRs): an unresolved packet forwarded up by an
//!    attached host that is not its original sender was delivered to a stale
//!    location. The ToR tags it (vip, stale pip), invalidates locally, and —
//!    if the packet carries the hit-switch identifier of the cache that
//!    served the stale entry — emits a targeted invalidation packet, subject
//!    to the timestamp vector's one-RTT suppression.
//! 2. **Tag-driven invalidation** (all switches): a riding misdelivery tag
//!    invalidates a matching stale entry; a *newer* local mapping survives
//!    and may still serve the packet.
//! 3. **Lookup** (all switches with cache): unresolved packets are
//!    translated on a hit; the switch writes its identifier into the packet
//!    and, for spines, may attach a *promotion* if the entry was already hot
//!    and the packet leaves the pod.
//! 4. **Promotion pickup** (cores): cores admit promoted entries if the
//!    resident line is cold.
//! 5. **Spillover pickup** (all): an entry evicted upstream is re-inserted
//!    here if admission allows.
//! 6. **Learning** (role-dependent, Table 1): gateway ToRs learn
//!    destinations and coin-flip learning packets toward the sender's ToR;
//!    ToRs learn sources and absorb learning packets; spines (and gateway
//!    spines) learn destinations under the access-bit-clear policy; cores
//!    learn only from promotions. Insertions that evict a live entry attach
//!    it as spillover.

use sv2p_packet::packet::Protocol;
use sv2p_packet::{
    InnerHeader, MappingOption, MisdeliveryTag, OuterHeader, Packet, PacketId, PacketKind, Pip,
    SwitchTag, TcpFlags, TunnelOptions, Vip,
};
use sv2p_simcore::{FxHashMap, SimTime};
use sv2p_topology::SwitchRole;
use sv2p_vnet::{AgentOutput, CacheOp, SwitchAgent, SwitchCtx};

use crate::cache::{push_insert_ops, Admission, DirectMappedCache, InsertOutcome};
use crate::config::{InvalidationMode, SwitchV2PConfig};

/// SwitchV2P behavior for one switch.
#[derive(Debug)]
pub struct SwitchV2PAgent {
    role: SwitchRole,
    cfg: SwitchV2PConfig,
    /// The in-switch mapping cache.
    pub cache: DirectMappedCache,
    /// ToRs' timestamp vector: last invalidation-packet send per target.
    ts_vector: FxHashMap<SwitchTag, SimTime>,
    /// Learning packets generated (gateway ToRs).
    pub learning_packets_sent: u64,
    /// Invalidation packets generated (ToRs).
    pub invalidations_sent: u64,
    /// Invalidation packets suppressed by the timestamp vector.
    pub invalidations_suppressed: u64,
}

impl SwitchV2PAgent {
    /// An agent for a switch of `role` with `lines` cache lines.
    pub fn new(role: SwitchRole, lines: usize, cfg: SwitchV2PConfig) -> Self {
        SwitchV2PAgent {
            role,
            cfg,
            cache: DirectMappedCache::new(lines),
            ts_vector: FxHashMap::default(),
            learning_packets_sent: 0,
            invalidations_sent: 0,
            invalidations_suppressed: 0,
        }
    }

    fn admission(&self) -> Admission {
        match self.role {
            SwitchRole::Tor | SwitchRole::GatewayTor => Admission::All,
            SwitchRole::Spine | SwitchRole::GatewaySpine | SwitchRole::Core => {
                Admission::AbitClear
            }
        }
    }

    fn is_tor(&self) -> bool {
        matches!(self.role, SwitchRole::Tor | SwitchRole::GatewayTor)
    }

    /// Inserts and, on a live eviction, attaches the evictee as spillover if
    /// the packet's slot is free (§3.2.2 "Cache spillover").
    fn insert_with_spill(
        &mut self,
        vip: Vip,
        pip: Pip,
        admission: Admission,
        pkt: &mut Packet,
    ) -> InsertOutcome {
        let outcome = self.cache.insert(vip, pip, admission);
        if let InsertOutcome::Evicted {
            vip: evip,
            pip: epip,
            abit,
        } = outcome
        {
            let worth_keeping = !self.cfg.spill_only_active || abit;
            if self.cfg.spillover && worth_keeping && pkt.opts.spillover.is_none() {
                pkt.opts.spillover = Some(MappingOption {
                    vip: evip,
                    pip: epip,
                });
            }
        }
        outcome
    }

    fn make_learning_packet(&self, ctx: &SwitchCtx<'_>, m: MappingOption, to: Pip) -> Packet {
        protocol_packet(PacketKind::Learning(m), ctx.switch_pip, to, m.vip)
    }

    fn make_invalidation_packet(
        &self,
        ctx: &SwitchCtx<'_>,
        tag: MisdeliveryTag,
        to: Pip,
    ) -> Packet {
        protocol_packet(PacketKind::Invalidation(tag), ctx.switch_pip, to, tag.vip)
    }

    fn handle_data(&mut self, ctx: &mut SwitchCtx<'_>, pkt: &mut Packet) -> AgentOutput {
        let mut out = AgentOutput::forward();
        let dst_vip = pkt.inner.dst_vip;

        // 1. Misdelivery tagging at ToRs (§3.3).
        if self.is_tor() && !pkt.outer.resolved {
            if let Some(host_pip) = ctx.ingress_host {
                if host_pip != pkt.outer.src_pip && pkt.opts.misdelivery.is_none() {
                    let tag = MisdeliveryTag {
                        vip: dst_vip,
                        stale_pip: host_pip,
                    };
                    pkt.opts.misdelivery = Some(tag);
                    if self.cache.invalidate(dst_vip, Some(host_pip)) && ctx.trace_cache_ops {
                        out.cache_ops.push(CacheOp::Invalidate { vip: dst_vip });
                    }
                    if self.cfg.invalidation != InvalidationMode::None {
                        if let Some(culprit) = pkt.opts.hit_switch.take() {
                            let allowed = match self.cfg.invalidation {
                                InvalidationMode::NoTimestampVector => true,
                                InvalidationMode::TimestampVector => {
                                    let last = self.ts_vector.get(&culprit).copied();
                                    match last {
                                        Some(t)
                                            if ctx.now.saturating_since(t) < ctx.base_rtt =>
                                        {
                                            false
                                        }
                                        _ => {
                                            self.ts_vector.insert(culprit, ctx.now);
                                            true
                                        }
                                    }
                                }
                                InvalidationMode::None => unreachable!(),
                            };
                            if allowed {
                                let to = (ctx.pip_of_tag)(culprit);
                                out.emit.push(self.make_invalidation_packet(ctx, tag, to));
                                self.invalidations_sent += 1;
                            } else {
                                self.invalidations_suppressed += 1;
                            }
                        }
                    }
                }
            }
        }

        // 2. Tag-driven invalidation en route.
        if let Some(tag) = pkt.opts.misdelivery {
            if self.cache.invalidate(tag.vip, Some(tag.stale_pip)) && ctx.trace_cache_ops {
                out.cache_ops.push(CacheOp::Invalidate { vip: tag.vip });
            }
        }

        // 3. Lookup.
        if !pkt.outer.resolved {
            if let Some((pip, was_hot)) = self.cache.lookup(dst_vip) {
                // Never re-serve the value the tag just told us is stale
                // (invalidation above removed it, but a *different* stale
                // value could still be the tag's pip after two migrations).
                let tag_stale = pkt
                    .opts
                    .misdelivery
                    .is_some_and(|t| t.vip == dst_vip && t.stale_pip == pip);
                if !tag_stale {
                    // Promotion (§3.2.2): only plain spines, only for
                    // already-hot entries, only when the packet leaves the
                    // pod.
                    if self.role == SwitchRole::Spine
                        && self.cfg.promotion
                        && was_hot
                        && pkt.opts.promotion.is_none()
                    {
                        let dst_pod = (ctx.pod_of)(pip);
                        if dst_pod != ctx.my_pod {
                            pkt.opts.promotion = Some(MappingOption { vip: dst_vip, pip });
                        }
                    }
                    pkt.outer.dst_pip = pip;
                    pkt.outer.resolved = true;
                    pkt.opts.hit_switch = Some(ctx.tag);
                    out.cache_hit = true;
                }
            }
        }

        // 4. Promotion pickup at cores.
        if self.role == SwitchRole::Core {
            if let Some(m) = pkt.opts.promotion {
                let outcome = self.cache.insert(m.vip, m.pip, Admission::AbitClear);
                match outcome {
                    InsertOutcome::Inserted | InsertOutcome::Evicted { .. } => {
                        pkt.opts.promotion = None;
                        out.promotion_inserted = true;
                    }
                    InsertOutcome::Updated => {
                        pkt.opts.promotion = None;
                    }
                    InsertOutcome::Rejected => {}
                }
                if ctx.trace_cache_ops {
                    let accepted = CacheOp::Promote {
                        vip: m.vip,
                        pip: m.pip,
                    };
                    push_insert_ops(&mut out.cache_ops, outcome, accepted);
                }
            }
        }

        // 5. Spillover pickup (entries evicted by an upstream switch).
        if self.cfg.spillover {
            if let Some(m) = pkt.opts.spillover {
                let outcome = self.cache.insert(m.vip, m.pip, self.admission());
                match outcome {
                    InsertOutcome::Inserted | InsertOutcome::Evicted { .. } => {
                        // Note: accepting a spill may itself evict; that
                        // evictee is not re-spilled (the slot is in use) —
                        // chains stop here, bounding header growth.
                        pkt.opts.spillover = None;
                        out.spill_inserted = true;
                    }
                    InsertOutcome::Updated => {
                        pkt.opts.spillover = None;
                    }
                    InsertOutcome::Rejected => {}
                }
                if ctx.trace_cache_ops {
                    let accepted = CacheOp::Spill {
                        vip: m.vip,
                        pip: m.pip,
                    };
                    push_insert_ops(&mut out.cache_ops, outcome, accepted);
                }
            }
        }

        // 6. Role-based learning (Table 1).
        match self.role {
            SwitchRole::GatewayTor => {
                if pkt.outer.resolved {
                    let pip = pkt.outer.dst_pip;
                    let outcome = self.insert_with_spill(dst_vip, pip, Admission::All, pkt);
                    if ctx.trace_cache_ops {
                        let accepted = CacheOp::Insert { vip: dst_vip, pip };
                        push_insert_ops(&mut out.cache_ops, outcome, accepted);
                    }
                    if self.cfg.learning_packets && ctx.rng.chance(self.cfg.p_learn) {
                        let m = MappingOption {
                            vip: dst_vip,
                            pip: pkt.outer.dst_pip,
                        };
                        let to = pkt.outer.src_pip;
                        out.emit.push(self.make_learning_packet(ctx, m, to));
                        self.learning_packets_sent += 1;
                    }
                }
            }
            SwitchRole::Tor => {
                // Source learning: the sender's own mapping, useful when the
                // rack's receivers reply.
                let (vip, pip) = (pkt.inner.src_vip, pkt.outer.src_pip);
                let outcome = self.insert_with_spill(vip, pip, Admission::All, pkt);
                if ctx.trace_cache_ops {
                    push_insert_ops(&mut out.cache_ops, outcome, CacheOp::Insert { vip, pip });
                }
            }
            SwitchRole::Spine | SwitchRole::GatewaySpine => {
                if pkt.outer.resolved {
                    let pip = pkt.outer.dst_pip;
                    let outcome =
                        self.insert_with_spill(dst_vip, pip, Admission::AbitClear, pkt);
                    if ctx.trace_cache_ops {
                        let accepted = CacheOp::Insert { vip: dst_vip, pip };
                        push_insert_ops(&mut out.cache_ops, outcome, accepted);
                    }
                }
            }
            SwitchRole::Core => {} // cores learn only from promotions (step 4)
        }

        out
    }
}

impl SwitchAgent for SwitchV2PAgent {
    fn on_packet(&mut self, ctx: &mut SwitchCtx<'_>, pkt: &mut Packet) -> AgentOutput {
        match pkt.kind {
            PacketKind::Data => self.handle_data(ctx, pkt),
            PacketKind::Learning(m) => {
                if self.is_tor() && ctx.dst_attached {
                    let outcome = self.cache.insert(m.vip, m.pip, Admission::All);
                    let mut out = AgentOutput::consume();
                    if ctx.trace_cache_ops {
                        let accepted = CacheOp::Insert {
                            vip: m.vip,
                            pip: m.pip,
                        };
                        push_insert_ops(&mut out.cache_ops, outcome, accepted);
                    }
                    out
                } else {
                    AgentOutput::forward()
                }
            }
            PacketKind::Invalidation(tag) => {
                // Invalidate here and at every switch en route (§3.3: "all
                // the caches along the path to the destination are
                // invalidated as well").
                let removed = self.cache.invalidate(tag.vip, Some(tag.stale_pip));
                let mut out = if pkt.outer.dst_pip == ctx.switch_pip {
                    AgentOutput::consume()
                } else {
                    AgentOutput::forward()
                };
                if removed && ctx.trace_cache_ops {
                    out.cache_ops.push(CacheOp::Invalidate { vip: tag.vip });
                }
                out
            }
        }
    }

    fn occupancy(&self) -> usize {
        self.cache.occupancy()
    }

    fn entries(&self) -> Vec<(Vip, Pip)> {
        self.cache.entries()
    }

    fn reset(&mut self) {
        let lines = self.cache.capacity();
        self.cache = DirectMappedCache::new(lines);
        self.ts_vector.clear();
    }
}

/// Builds a protocol (learning/invalidation) packet skeleton.
fn protocol_packet(kind: PacketKind, from: Pip, to: Pip, about: Vip) -> Packet {
    Packet {
        id: PacketId(0), // assigned by the simulator
        flow: Default::default(),
        kind,
        outer: OuterHeader {
            src_pip: from,
            dst_pip: to,
            resolved: true,
        },
        inner: InnerHeader {
            src_vip: about,
            dst_vip: about,
            src_port: 0,
            dst_port: 0,
            protocol: Protocol::Udp,
            seq: 0,
            ack: 0,
            flags: TcpFlags::default(),
        },
        opts: TunnelOptions::default(),
        payload: 0,
        switch_hops: 0,
        sent_ns: 0,
        first_of_flow: false,
        visited_gateway: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv2p_simcore::{SimDuration, SimRng};
    use sv2p_vnet::PacketAction;
    use sv2p_topology::NodeId;
    use sv2p_vnet::MappingDb;

    /// Test fixture: a context whose pod lookup says "VIPs below 100 are in
    /// pod 0, others pod 1" and whose switch tags map to PIP 5000+tag.
    struct Fixture {
        db: MappingDb,
        rng: SimRng,
        now: SimTime,
        trace: bool,
    }

    fn pod_of(pip: Pip) -> Option<u16> {
        Some(if pip.0 < 100 { 0 } else { 1 })
    }

    fn pip_of_tag(tag: SwitchTag) -> Pip {
        Pip(5000 + tag.0 as u32)
    }

    impl Fixture {
        fn new() -> Self {
            Fixture {
                db: MappingDb::new(),
                rng: SimRng::new(7),
                now: SimTime::from_micros(100),
                trace: false,
            }
        }

        fn ctx<'a>(
            &'a mut self,
            role: SwitchRole,
            ingress_host: Option<Pip>,
            dst_attached: bool,
        ) -> SwitchCtx<'a> {
            SwitchCtx {
                now: self.now,
                node: NodeId(1),
                tag: SwitchTag(9),
                switch_pip: Pip(5009),
                role,
                my_pod: Some(0),
                ingress_host,
                dst_attached,
                db: &self.db,
                rng: &mut self.rng,
                base_rtt: SimDuration::from_micros(12),
                pod_of: &pod_of,
                pip_of_tag: &pip_of_tag,
                trace_cache_ops: self.trace,
            }
        }
    }

    fn data_packet(src_vip: u32, dst_vip: u32, src_pip: u32, dst_pip: u32, resolved: bool) -> Packet {
        Packet {
            id: PacketId(1),
            flow: Default::default(),
            kind: PacketKind::Data,
            outer: OuterHeader {
                src_pip: Pip(src_pip),
                dst_pip: Pip(dst_pip),
                resolved,
            },
            inner: InnerHeader {
                src_vip: Vip(src_vip),
                dst_vip: Vip(dst_vip),
                src_port: 10,
                dst_port: 80,
                protocol: Protocol::Tcp,
                seq: 0,
                ack: 0,
                flags: TcpFlags::default(),
            },
            opts: TunnelOptions::default(),
            payload: 100,
            switch_hops: 0,
            sent_ns: 0,
            first_of_flow: false,
            visited_gateway: false,
        }
    }

    #[test]
    fn tor_source_learns() {
        let mut fx = Fixture::new();
        let mut agent = SwitchV2PAgent::new(SwitchRole::Tor, 16, SwitchV2PConfig::default());
        let mut pkt = data_packet(1, 2, 11, 999, false);
        let mut ctx = fx.ctx(SwitchRole::Tor, Some(Pip(11)), false);
        let out = agent.on_packet(&mut ctx, &mut pkt);
        assert_eq!(out.action, PacketAction::Forward);
        assert!(!out.cache_hit);
        assert_eq!(agent.cache.peek(Vip(1)), Some(Pip(11)), "source learned");
        assert_eq!(agent.cache.peek(Vip(2)), None, "ToRs do not dest-learn");
    }

    #[test]
    fn gateway_tor_destination_learns_resolved_only() {
        let mut fx = Fixture::new();
        let mut agent =
            SwitchV2PAgent::new(SwitchRole::GatewayTor, 16, SwitchV2PConfig::default());
        // Unresolved (toward gateway): no learning.
        let mut up = data_packet(1, 2, 11, 999, false);
        agent.on_packet(&mut fx.ctx(SwitchRole::GatewayTor, None, false), &mut up);
        assert_eq!(agent.cache.peek(Vip(2)), None);
        // Resolved (leaving gateway): destination learned.
        let mut down = data_packet(1, 2, 11, 22, true);
        agent.on_packet(&mut fx.ctx(SwitchRole::GatewayTor, None, false), &mut down);
        assert_eq!(agent.cache.peek(Vip(2)), Some(Pip(22)));
        assert_eq!(agent.cache.peek(Vip(1)), None, "no source learning here");
    }

    #[test]
    fn cache_hit_translates_and_tags_switch() {
        let mut fx = Fixture::new();
        let mut agent = SwitchV2PAgent::new(SwitchRole::Tor, 16, SwitchV2PConfig::default());
        agent.cache.insert(Vip(2), Pip(22), Admission::All);
        let mut pkt = data_packet(1, 2, 11, 999, false);
        let out = agent.on_packet(&mut fx.ctx(SwitchRole::Tor, None, false), &mut pkt);
        assert!(out.cache_hit);
        assert!(pkt.outer.resolved);
        assert_eq!(pkt.outer.dst_pip, Pip(22));
        assert_eq!(pkt.opts.hit_switch, Some(SwitchTag(9)));
    }

    #[test]
    fn spine_promotes_hot_entries_leaving_the_pod() {
        let mut fx = Fixture::new();
        let mut agent = SwitchV2PAgent::new(SwitchRole::Spine, 16, SwitchV2PConfig::default());
        // Dst pip 200 => pod 1 (fixture), our pod is 0: leaves the pod.
        agent.cache.insert(Vip(2), Pip(200), Admission::All);
        let mut first = data_packet(1, 2, 11, 999, false);
        let out1 = agent.on_packet(&mut fx.ctx(SwitchRole::Spine, None, false), &mut first);
        assert!(out1.cache_hit);
        assert_eq!(first.opts.promotion, None, "first hit: abit was cold");
        let mut second = data_packet(1, 2, 11, 999, false);
        let out2 = agent.on_packet(&mut fx.ctx(SwitchRole::Spine, None, false), &mut second);
        assert!(out2.cache_hit);
        assert_eq!(
            second.opts.promotion,
            Some(MappingOption {
                vip: Vip(2),
                pip: Pip(200)
            }),
            "second hit: entry was hot, promotion attached"
        );
    }

    #[test]
    fn spine_does_not_promote_intra_pod_or_when_gateway_spine() {
        let mut fx = Fixture::new();
        // Intra-pod destination (pip 50 => pod 0 == our pod).
        let mut agent = SwitchV2PAgent::new(SwitchRole::Spine, 16, SwitchV2PConfig::default());
        agent.cache.insert(Vip(2), Pip(50), Admission::All);
        let mut p = data_packet(1, 2, 11, 999, false);
        agent.on_packet(&mut fx.ctx(SwitchRole::Spine, None, false), &mut p);
        let mut p2 = data_packet(1, 2, 11, 999, false);
        agent.on_packet(&mut fx.ctx(SwitchRole::Spine, None, false), &mut p2);
        assert_eq!(p2.opts.promotion, None, "intra-pod hit must not promote");

        // Gateway spines never promote.
        let mut gw =
            SwitchV2PAgent::new(SwitchRole::GatewaySpine, 16, SwitchV2PConfig::default());
        gw.cache.insert(Vip(2), Pip(200), Admission::All);
        let mut q1 = data_packet(1, 2, 11, 999, false);
        gw.on_packet(&mut fx.ctx(SwitchRole::GatewaySpine, None, false), &mut q1);
        let mut q2 = data_packet(1, 2, 11, 999, false);
        gw.on_packet(&mut fx.ctx(SwitchRole::GatewaySpine, None, false), &mut q2);
        assert_eq!(q2.opts.promotion, None);
    }

    #[test]
    fn core_learns_only_from_promotions() {
        let mut fx = Fixture::new();
        let mut agent = SwitchV2PAgent::new(SwitchRole::Core, 16, SwitchV2PConfig::default());
        // Plain resolved traffic: no learning.
        let mut plain = data_packet(1, 2, 11, 22, true);
        agent.on_packet(&mut fx.ctx(SwitchRole::Core, None, false), &mut plain);
        assert_eq!(agent.occupancy(), 0);
        // Promoted mapping: learned, option stripped.
        let mut promoted = data_packet(1, 2, 11, 999, false);
        promoted.opts.promotion = Some(MappingOption {
            vip: Vip(7),
            pip: Pip(70),
        });
        let out = agent.on_packet(&mut fx.ctx(SwitchRole::Core, None, false), &mut promoted);
        assert!(out.promotion_inserted);
        assert_eq!(promoted.opts.promotion, None);
        assert_eq!(agent.cache.peek(Vip(7)), Some(Pip(70)));
    }

    #[test]
    fn spillover_rides_until_inserted() {
        let mut fx = Fixture::new();
        let mut agent = SwitchV2PAgent::new(SwitchRole::Spine, 16, SwitchV2PConfig::default());
        let mut pkt = data_packet(1, 2, 11, 22, true);
        pkt.opts.spillover = Some(MappingOption {
            vip: Vip(7),
            pip: Pip(70),
        });
        let out = agent.on_packet(&mut fx.ctx(SwitchRole::Spine, None, false), &mut pkt);
        assert!(out.spill_inserted);
        assert_eq!(pkt.opts.spillover, None);
        assert_eq!(agent.cache.peek(Vip(7)), Some(Pip(70)));
    }

    #[test]
    fn eviction_attaches_spillover() {
        let mut fx = Fixture::new();
        let mut agent = SwitchV2PAgent::new(SwitchRole::Tor, 1, SwitchV2PConfig::default());
        // Fill the single line via source learning.
        let mut p1 = data_packet(1, 2, 11, 999, false);
        agent.on_packet(&mut fx.ctx(SwitchRole::Tor, Some(Pip(11)), false), &mut p1);
        assert_eq!(agent.cache.peek(Vip(1)), Some(Pip(11)));
        // A different source evicts it; the evictee spills onto the packet.
        let mut p2 = data_packet(3, 2, 33, 999, false);
        agent.on_packet(&mut fx.ctx(SwitchRole::Tor, Some(Pip(33)), false), &mut p2);
        assert_eq!(
            p2.opts.spillover,
            Some(MappingOption {
                vip: Vip(1),
                pip: Pip(11)
            })
        );
        assert_eq!(agent.cache.peek(Vip(3)), Some(Pip(33)));
    }

    #[test]
    fn gateway_tor_emits_learning_packets_at_p_learn() {
        let mut fx = Fixture::new();
        let cfg = SwitchV2PConfig {
            p_learn: 0.5,
            ..SwitchV2PConfig::default()
        };
        let mut agent = SwitchV2PAgent::new(SwitchRole::GatewayTor, 64, cfg);
        let mut emitted = 0;
        let n = 2000;
        for i in 0..n {
            let mut pkt = data_packet(1, 2 + (i % 8), 11, 22, true);
            let out = agent.on_packet(&mut fx.ctx(SwitchRole::GatewayTor, None, false), &mut pkt);
            emitted += out.emit.len();
        }
        let rate = emitted as f64 / n as f64;
        assert!((rate - 0.5).abs() < 0.05, "learning rate {rate}");
        // The learning packet targets the sender and carries the mapping.
        let mut pkt = data_packet(1, 2, 11, 22, true);
        let out = loop {
            let o = agent.on_packet(&mut fx.ctx(SwitchRole::GatewayTor, None, false), &mut pkt);
            if !o.emit.is_empty() {
                break o;
            }
        };
        let lp = &out.emit[0];
        assert_eq!(lp.outer.dst_pip, Pip(11));
        assert!(matches!(
            lp.kind,
            PacketKind::Learning(MappingOption {
                vip: Vip(2),
                pip: Pip(22)
            })
        ));
    }

    #[test]
    fn tor_consumes_learning_packets_for_attached_hosts() {
        let mut fx = Fixture::new();
        let mut agent = SwitchV2PAgent::new(SwitchRole::Tor, 16, SwitchV2PConfig::default());
        let m = MappingOption {
            vip: Vip(4),
            pip: Pip(40),
        };
        let mut lp = protocol_packet(PacketKind::Learning(m), Pip(5000), Pip(11), Vip(4));
        // Not attached: forwarded untouched.
        let out = agent.on_packet(&mut fx.ctx(SwitchRole::Tor, None, false), &mut lp);
        assert_eq!(out.action, PacketAction::Forward);
        assert_eq!(agent.occupancy(), 0);
        // Attached: learned and consumed.
        let out = agent.on_packet(&mut fx.ctx(SwitchRole::Tor, None, true), &mut lp);
        assert_eq!(out.action, PacketAction::Consume);
        assert_eq!(agent.cache.peek(Vip(4)), Some(Pip(40)));
        // Spines never consume learning packets.
        let mut spine = SwitchV2PAgent::new(SwitchRole::Spine, 16, SwitchV2PConfig::default());
        let out = spine.on_packet(&mut fx.ctx(SwitchRole::Spine, None, true), &mut lp);
        assert_eq!(out.action, PacketAction::Forward);
    }

    #[test]
    fn misdelivery_tagging_and_invalidation_emission() {
        let mut fx = Fixture::new();
        let mut agent = SwitchV2PAgent::new(SwitchRole::Tor, 16, SwitchV2PConfig::default());
        // The ToR holds the stale mapping too.
        agent.cache.insert(Vip(2), Pip(55), Admission::All);
        // Packet forwarded up by attached host 55, original sender 11:
        // a misdelivered forward. It carries the culprit's hit-switch tag.
        let mut pkt = data_packet(1, 2, 11, 999, false);
        pkt.opts.hit_switch = Some(SwitchTag(3));
        let out = agent.on_packet(&mut fx.ctx(SwitchRole::Tor, Some(Pip(55)), false), &mut pkt);
        // Tagged, local stale entry invalidated, invalidation packet sent to
        // switch 3's PIP.
        assert_eq!(
            pkt.opts.misdelivery,
            Some(MisdeliveryTag {
                vip: Vip(2),
                stale_pip: Pip(55)
            })
        );
        assert_eq!(agent.cache.peek(Vip(2)), None);
        assert_eq!(out.emit.len(), 1);
        assert_eq!(out.emit[0].outer.dst_pip, pip_of_tag(SwitchTag(3)));
        assert!(matches!(out.emit[0].kind, PacketKind::Invalidation(_)));
        assert_eq!(pkt.opts.hit_switch, None, "culprit tag consumed");
    }

    #[test]
    fn timestamp_vector_suppresses_repeat_invalidations() {
        let mut fx = Fixture::new();
        let mut agent = SwitchV2PAgent::new(SwitchRole::Tor, 16, SwitchV2PConfig::default());
        let mk = |fx: &mut Fixture, agent: &mut SwitchV2PAgent| {
            let mut pkt = data_packet(1, 2, 11, 999, false);
            pkt.opts.hit_switch = Some(SwitchTag(3));
            let out =
                agent.on_packet(&mut fx.ctx(SwitchRole::Tor, Some(Pip(55)), false), &mut pkt);
            out.emit.len()
        };
        assert_eq!(mk(&mut fx, &mut agent), 1, "first fires");
        assert_eq!(mk(&mut fx, &mut agent), 0, "suppressed within base RTT");
        assert_eq!(agent.invalidations_suppressed, 1);
        // After one base RTT it may fire again (retransmission).
        fx.now += SimDuration::from_micros(13);
        assert_eq!(mk(&mut fx, &mut agent), 1, "re-armed after base RTT");
        assert_eq!(agent.invalidations_sent, 2);
    }

    #[test]
    fn no_timestamp_vector_fires_every_time() {
        let mut fx = Fixture::new();
        let mut agent = SwitchV2PAgent::new(
            SwitchRole::Tor,
            16,
            SwitchV2PConfig::without_timestamp_vector(),
        );
        for _ in 0..5 {
            let mut pkt = data_packet(1, 2, 11, 999, false);
            pkt.opts.hit_switch = Some(SwitchTag(3));
            let out =
                agent.on_packet(&mut fx.ctx(SwitchRole::Tor, Some(Pip(55)), false), &mut pkt);
            assert_eq!(out.emit.len(), 1);
        }
        assert_eq!(agent.invalidations_sent, 5);
    }

    #[test]
    fn invalidation_mode_none_sends_nothing_but_still_tags() {
        let mut fx = Fixture::new();
        let mut agent =
            SwitchV2PAgent::new(SwitchRole::Tor, 16, SwitchV2PConfig::without_invalidations());
        let mut pkt = data_packet(1, 2, 11, 999, false);
        pkt.opts.hit_switch = Some(SwitchTag(3));
        let out = agent.on_packet(&mut fx.ctx(SwitchRole::Tor, Some(Pip(55)), false), &mut pkt);
        assert!(out.emit.is_empty());
        assert!(pkt.opts.misdelivery.is_some());
    }

    #[test]
    fn invalidation_packets_clean_en_route_and_at_target() {
        let mut fx = Fixture::new();
        let tag = MisdeliveryTag {
            vip: Vip(2),
            stale_pip: Pip(55),
        };
        // Addressed to switch 3 — NOT the fixture's own switch (tag 9) —
        // so en-route switches forward it.
        let mut inval = protocol_packet(
            PacketKind::Invalidation(tag),
            Pip(5001),
            pip_of_tag(SwitchTag(3)),
            Vip(2),
        );
        // En-route switch with the stale entry: invalidates and forwards.
        let mut mid = SwitchV2PAgent::new(SwitchRole::Spine, 16, SwitchV2PConfig::default());
        mid.cache.insert(Vip(2), Pip(55), Admission::All);
        let out = mid.on_packet(&mut fx.ctx(SwitchRole::Spine, None, false), &mut inval);
        assert_eq!(out.action, PacketAction::Forward);
        assert_eq!(mid.cache.peek(Vip(2)), None);
        // A newer mapping survives.
        let mut newer = SwitchV2PAgent::new(SwitchRole::Spine, 16, SwitchV2PConfig::default());
        newer.cache.insert(Vip(2), Pip(77), Admission::All);
        newer.on_packet(&mut fx.ctx(SwitchRole::Spine, None, false), &mut inval);
        assert_eq!(newer.cache.peek(Vip(2)), Some(Pip(77)));
        // The addressed switch consumes (readdress to the fixture's tag 9).
        inval.outer.dst_pip = pip_of_tag(SwitchTag(9));
        let mut target = SwitchV2PAgent::new(SwitchRole::Tor, 16, SwitchV2PConfig::default());
        target.cache.insert(Vip(2), Pip(55), Admission::All);
        let out = target.on_packet(&mut fx.ctx(SwitchRole::Tor, None, false), &mut inval);
        assert_eq!(out.action, PacketAction::Consume);
        assert_eq!(target.cache.peek(Vip(2)), None);
    }

    #[test]
    fn riding_tag_invalidates_matching_entries_but_newer_survive_and_serve() {
        let mut fx = Fixture::new();
        let mut agent = SwitchV2PAgent::new(SwitchRole::Spine, 16, SwitchV2PConfig::default());
        agent.cache.insert(Vip(2), Pip(77), Admission::All); // newer mapping
        let mut pkt = data_packet(1, 2, 11, 999, false);
        pkt.opts.misdelivery = Some(MisdeliveryTag {
            vip: Vip(2),
            stale_pip: Pip(55),
        });
        let out = agent.on_packet(&mut fx.ctx(SwitchRole::Spine, None, false), &mut pkt);
        // The newer entry serves the packet (§3.3: "allows the packet to use
        // the cached value since it has already learned the new PIP").
        assert!(out.cache_hit);
        assert_eq!(pkt.outer.dst_pip, Pip(77));
        assert_eq!(agent.cache.peek(Vip(2)), Some(Pip(77)));
    }

    #[test]
    fn cache_ops_reported_only_when_traced() {
        // Untraced: mutations happen but cache_ops stays empty.
        let mut fx = Fixture::new();
        let mut agent = SwitchV2PAgent::new(SwitchRole::Tor, 16, SwitchV2PConfig::default());
        let mut pkt = data_packet(1, 2, 11, 999, false);
        let out = agent.on_packet(&mut fx.ctx(SwitchRole::Tor, Some(Pip(11)), false), &mut pkt);
        assert!(out.cache_ops.is_empty());
        assert_eq!(agent.cache.peek(Vip(1)), Some(Pip(11)));

        // Traced: the same source-learning insert is reported.
        let mut fx = Fixture::new();
        fx.trace = true;
        let mut agent = SwitchV2PAgent::new(SwitchRole::Tor, 16, SwitchV2PConfig::default());
        let mut pkt = data_packet(1, 2, 11, 999, false);
        let out = agent.on_packet(&mut fx.ctx(SwitchRole::Tor, Some(Pip(11)), false), &mut pkt);
        assert_eq!(
            out.cache_ops,
            vec![CacheOp::Insert {
                vip: Vip(1),
                pip: Pip(11)
            }]
        );

        // Traced eviction on a 1-line cache: evictee then newcomer.
        let mut one = SwitchV2PAgent::new(SwitchRole::Tor, 1, SwitchV2PConfig::default());
        let mut p1 = data_packet(1, 2, 11, 999, false);
        one.on_packet(&mut fx.ctx(SwitchRole::Tor, Some(Pip(11)), false), &mut p1);
        let mut p2 = data_packet(3, 2, 33, 999, false);
        let out = one.on_packet(&mut fx.ctx(SwitchRole::Tor, Some(Pip(33)), false), &mut p2);
        assert_eq!(
            out.cache_ops,
            vec![
                CacheOp::Evict {
                    vip: Vip(1),
                    pip: Pip(11)
                },
                CacheOp::Insert {
                    vip: Vip(3),
                    pip: Pip(33)
                }
            ]
        );

        // Traced misdelivery: the stale entry's invalidation is reported.
        let mut tor = SwitchV2PAgent::new(SwitchRole::Tor, 16, SwitchV2PConfig::default());
        tor.cache.insert(Vip(2), Pip(55), Admission::All);
        let mut pkt = data_packet(1, 2, 11, 999, false);
        let out = tor.on_packet(&mut fx.ctx(SwitchRole::Tor, Some(Pip(55)), false), &mut pkt);
        assert!(out.cache_ops.contains(&CacheOp::Invalidate { vip: Vip(2) }));
    }

    #[test]
    fn ablations_disable_their_mechanisms() {
        let mut fx = Fixture::new();
        // No spillover: evictions disappear silently.
        let mut agent =
            SwitchV2PAgent::new(SwitchRole::Tor, 1, SwitchV2PConfig::without_spillover());
        let mut p1 = data_packet(1, 2, 11, 999, false);
        agent.on_packet(&mut fx.ctx(SwitchRole::Tor, Some(Pip(11)), false), &mut p1);
        let mut p2 = data_packet(3, 2, 33, 999, false);
        agent.on_packet(&mut fx.ctx(SwitchRole::Tor, Some(Pip(33)), false), &mut p2);
        assert_eq!(p2.opts.spillover, None);

        // No promotion: hot spine hits attach nothing.
        let mut spine =
            SwitchV2PAgent::new(SwitchRole::Spine, 16, SwitchV2PConfig::without_promotion());
        spine.cache.insert(Vip(2), Pip(200), Admission::All);
        let mut q1 = data_packet(1, 2, 11, 999, false);
        spine.on_packet(&mut fx.ctx(SwitchRole::Spine, None, false), &mut q1);
        let mut q2 = data_packet(1, 2, 11, 999, false);
        spine.on_packet(&mut fx.ctx(SwitchRole::Spine, None, false), &mut q2);
        assert_eq!(q2.opts.promotion, None);

        // No learning packets: gateway ToR stays quiet even at p=1.
        let mut gt = SwitchV2PAgent::new(
            SwitchRole::GatewayTor,
            16,
            SwitchV2PConfig {
                p_learn: 1.0,
                learning_packets: false,
                ..SwitchV2PConfig::default()
            },
        );
        let mut r = data_packet(1, 2, 11, 22, true);
        let out = gt.on_packet(&mut fx.ctx(SwitchRole::GatewayTor, None, false), &mut r);
        assert!(out.emit.is_empty());
    }
}
