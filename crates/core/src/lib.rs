//! **SwitchV2P** — topology-aware in-network caching of virtual-to-physical
//! address mappings (Zeno, Chen, Silberstein; ACM SIGCOMM 2024).
//!
//! Virtual networks translate every tenant packet's virtual destination into
//! a physical address. Gateway-driven designs update mappings cheaply but add
//! a gateway detour to the data path; host-driven designs forward fast but
//! make updates expensive. SwitchV2P escapes the tradeoff by letting the
//! network switches *transparently cache* the mappings they observe in
//! passing traffic, entirely in the data plane:
//!
//! * every switch holds a small direct-mapped cache of `VIP → PIP` entries
//!   with one access bit per line ([`cache`]);
//! * switches behave by topology role (paper Table 1): gateway ToRs learn
//!   destinations and emit *learning packets* toward senders' ToRs; ToRs
//!   learn sources; spines learn destinations conservatively and *promote*
//!   hot entries to cores; cores admit only promotions ([`agent`]);
//! * evicted entries *spill over* onto passing packets so another switch can
//!   keep them;
//! * after a VM migration, *misdelivery tags* and targeted *invalidation
//!   packets* (rate-limited by a timestamp vector) lazily repair stale
//!   entries (§3.3).
//!
//! The [`SwitchV2P`] type implements `sv2p_vnet::Strategy`, pluggable into
//! the `sv2p-netsim` simulator next to the baselines in `sv2p-baselines`.
//!
//! ```
//! use switchv2p::{SwitchV2P, SwitchV2PConfig};
//! use sv2p_vnet::Strategy;
//!
//! let scheme = SwitchV2P::new(SwitchV2PConfig::default());
//! assert_eq!(scheme.name(), "SwitchV2P");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod cache;
pub mod config;
pub mod multitenant;
pub mod strategy;

pub use agent::SwitchV2PAgent;
pub use cache::{Admission, DirectMappedCache, InsertOutcome};
pub use config::{InvalidationMode, SwitchV2PConfig};
pub use multitenant::{AdmissionPolicy, PartitionedCache, VpcId};
pub use strategy::SwitchV2P;
