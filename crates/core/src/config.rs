//! SwitchV2P protocol configuration and ablation switches.

/// How stale entries are repaired after a migration (§3.3, Table 4 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvalidationMode {
    /// Misdelivery tags only; no invalidation packets ("SwitchV2P w/o
    /// invalidations").
    None,
    /// Invalidation packets on every tagged misdelivery ("w/o timestamp
    /// vector") — correct but bursty.
    NoTimestampVector,
    /// Full design: per-target timestamps suppress duplicates within one
    /// base RTT ("w/ timestamp vector").
    TimestampVector,
}

/// Protocol knobs. Defaults are the paper's evaluation configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchV2PConfig {
    /// Probability that a gateway ToR turns a processed packet into a
    /// learning packet ("0.5% of all the traffic passing through the gateway
    /// switch", §5).
    pub p_learn: f64,
    /// Generate learning packets at gateway ToRs.
    pub learning_packets: bool,
    /// Piggyback evicted entries for downstream reinsertion (§3.2.2).
    pub spillover: bool,
    /// Only spill evictees whose access bit was set (stricter variant; the
    /// default spills every valid evictee, matching the paper's Figure 4b
    /// example).
    pub spill_only_active: bool,
    /// Spines promote hot entries to cores (§3.2.2).
    pub promotion: bool,
    /// Invalidation machinery (§3.3).
    pub invalidation: InvalidationMode,
    /// Ablation (§4 "Heterogeneous memory allocation"): cache only at ToRs.
    pub tor_only: bool,
    /// Relative memory shares per layer (ToR, spine, core); the paper's
    /// default is homogeneous (1, 1, 1). §4 leaves layer-aware allocation
    /// to future work — these weights implement the mechanism.
    pub layer_weights: (f64, f64, f64),
}

impl Default for SwitchV2PConfig {
    fn default() -> Self {
        SwitchV2PConfig {
            p_learn: 0.005,
            learning_packets: true,
            spillover: true,
            spill_only_active: false,
            promotion: true,
            invalidation: InvalidationMode::TimestampVector,
            tor_only: false,
            layer_weights: (1.0, 1.0, 1.0),
        }
    }
}

impl SwitchV2PConfig {
    /// The ablation with learning packets disabled.
    pub fn without_learning_packets() -> Self {
        SwitchV2PConfig {
            learning_packets: false,
            ..Default::default()
        }
    }

    /// The ablation with spillover disabled.
    pub fn without_spillover() -> Self {
        SwitchV2PConfig {
            spillover: false,
            ..Default::default()
        }
    }

    /// The ablation with promotion disabled.
    pub fn without_promotion() -> Self {
        SwitchV2PConfig {
            promotion: false,
            ..Default::default()
        }
    }

    /// Table 4's "w/o invalidations" variant.
    pub fn without_invalidations() -> Self {
        SwitchV2PConfig {
            invalidation: InvalidationMode::None,
            ..Default::default()
        }
    }

    /// Table 4's "w/o timestamp vector" variant.
    pub fn without_timestamp_vector() -> Self {
        SwitchV2PConfig {
            invalidation: InvalidationMode::NoTimestampVector,
            ..Default::default()
        }
    }

    /// §4's ToR-only memory allocation.
    pub fn tor_only() -> Self {
        SwitchV2PConfig {
            tor_only: true,
            ..Default::default()
        }
    }

    /// A ToR-heavy heterogeneous allocation (edge switches see the most
    /// reuse in TCP traces, Table 5).
    pub fn tor_heavy() -> Self {
        SwitchV2PConfig {
            layer_weights: (4.0, 1.0, 1.0),
            ..Default::default()
        }
    }

    /// A core-heavy allocation (sharing across pods, the Microbursts
    /// regime of Table 5).
    pub fn core_heavy() -> Self {
        SwitchV2PConfig {
            layer_weights: (1.0, 1.0, 4.0),
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_setup() {
        let c = SwitchV2PConfig::default();
        assert_eq!(c.p_learn, 0.005);
        assert!(c.learning_packets && c.spillover && c.promotion);
        assert_eq!(c.invalidation, InvalidationMode::TimestampVector);
        assert!(!c.tor_only);
    }

    #[test]
    fn ablation_constructors_flip_one_knob() {
        assert!(!SwitchV2PConfig::without_learning_packets().learning_packets);
        assert!(!SwitchV2PConfig::without_spillover().spillover);
        assert!(!SwitchV2PConfig::without_promotion().promotion);
        assert_eq!(
            SwitchV2PConfig::without_invalidations().invalidation,
            InvalidationMode::None
        );
        assert_eq!(
            SwitchV2PConfig::without_timestamp_vector().invalidation,
            InvalidationMode::NoTimestampVector
        );
        assert!(SwitchV2PConfig::tor_only().tor_only);
        assert_eq!(SwitchV2PConfig::tor_heavy().layer_weights, (4.0, 1.0, 1.0));
        assert_eq!(SwitchV2PConfig::core_heavy().layer_weights, (1.0, 1.0, 4.0));
    }

    #[test]
    fn default_weights_are_homogeneous() {
        assert_eq!(SwitchV2PConfig::default().layer_weights, (1.0, 1.0, 1.0));
    }
}
