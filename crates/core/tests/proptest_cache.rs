//! Property tests: the direct-mapped cache against a reference model.
//!
//! The reference model is a plain map from line index to (key, value,
//! access bit), recomputing the hash the same way; any divergence between
//! model and implementation across random operation sequences is a bug.

use std::collections::HashMap;

use proptest::prelude::*;
use sv2p_packet::{Pip, Vip};
use switchv2p::cache::{Admission, DirectMappedCache, InsertOutcome};

#[derive(Debug, Clone)]
enum Op {
    Lookup(u32),
    InsertAll(u32, u32),
    InsertAbit(u32, u32),
    Invalidate(u32),
    InvalidateIf(u32, u32),
}

fn arb_op() -> impl Strategy<Value = Op> {
    // Keys drawn from a small space to force collisions.
    let key = 0u32..64;
    prop_oneof![
        key.clone().prop_map(Op::Lookup),
        (key.clone(), any::<u32>()).prop_map(|(k, v)| Op::InsertAll(k, v)),
        (key.clone(), any::<u32>()).prop_map(|(k, v)| Op::InsertAbit(k, v)),
        key.clone().prop_map(Op::Invalidate),
        (key, any::<u32>()).prop_map(|(k, v)| Op::InvalidateIf(k, v)),
    ]
}

/// The reference: same hash, explicit line map.
#[derive(Default)]
struct Model {
    lines: HashMap<usize, (u32, u32, bool)>,
    capacity: usize,
}

impl Model {
    fn index(&self, vip: u32) -> usize {
        let mut h = vip as u64;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 29;
        (h % self.capacity as u64) as usize
    }

    fn lookup(&mut self, k: u32) -> Option<(u32, bool)> {
        let idx = self.index(k);
        match self.lines.get_mut(&idx) {
            Some((key, val, abit)) if *key == k => {
                let was = *abit;
                *abit = true;
                Some((*val, was))
            }
            Some((_, _, abit)) => {
                *abit = false;
                None
            }
            None => None,
        }
    }

    fn insert(&mut self, k: u32, v: u32, admission: Admission) {
        let idx = self.index(k);
        match self.lines.get_mut(&idx) {
            None => {
                self.lines.insert(idx, (k, v, false));
            }
            Some((key, val, _)) if *key == k => *val = v,
            Some((_, _, abit)) => {
                if admission == Admission::All || !*abit {
                    self.lines.insert(idx, (k, v, false));
                }
            }
        }
    }

    fn invalidate(&mut self, k: u32, only_if: Option<u32>) {
        let idx = self.index(k);
        if let Some((key, val, _)) = self.lines.get(&idx) {
            if *key == k && only_if.is_none_or(|v| v == *val) {
                self.lines.remove(&idx);
            }
        }
    }
}

proptest! {
    #[test]
    fn cache_matches_reference_model(
        capacity in 1usize..32,
        ops in proptest::collection::vec(arb_op(), 0..200),
    ) {
        let mut cache = DirectMappedCache::new(capacity);
        let mut model = Model {
            capacity,
            ..Default::default()
        };
        for op in ops {
            match op {
                Op::Lookup(k) => {
                    let got = cache.lookup(Vip(k)).map(|(p, a)| (p.0, a));
                    let want = model.lookup(k);
                    prop_assert_eq!(got, want, "lookup({})", k);
                }
                Op::InsertAll(k, v) => {
                    cache.insert(Vip(k), Pip(v), Admission::All);
                    model.insert(k, v, Admission::All);
                }
                Op::InsertAbit(k, v) => {
                    cache.insert(Vip(k), Pip(v), Admission::AbitClear);
                    model.insert(k, v, Admission::AbitClear);
                }
                Op::Invalidate(k) => {
                    cache.invalidate(Vip(k), None);
                    model.invalidate(k, None);
                }
                Op::InvalidateIf(k, v) => {
                    cache.invalidate(Vip(k), Some(Pip(v)));
                    model.invalidate(k, Some(v));
                }
            }
            prop_assert_eq!(cache.occupancy(), model.lines.len());
            prop_assert!(cache.occupancy() <= capacity);
        }
    }

    #[test]
    fn eviction_reports_are_accurate(
        capacity in 1usize..8,
        inserts in proptest::collection::vec((0u32..32, any::<u32>()), 1..100),
    ) {
        // Whatever the sequence, an Evicted outcome must name exactly the
        // entry that was resident, and the new entry must be present after.
        let mut cache = DirectMappedCache::new(capacity);
        let mut present: HashMap<u32, u32> = HashMap::new();
        for (k, v) in inserts {
            match cache.insert(Vip(k), Pip(v), Admission::All) {
                InsertOutcome::Evicted { vip, pip, .. } => {
                    prop_assert_eq!(present.remove(&vip.0), Some(pip.0));
                }
                InsertOutcome::Inserted => {}
                InsertOutcome::Updated => {
                    prop_assert!(present.contains_key(&k));
                }
                InsertOutcome::Rejected => unreachable!("All admission never rejects"),
            }
            present.insert(k, v);
            prop_assert_eq!(cache.peek(Vip(k)), Some(Pip(v)));
        }
    }
}
