//! Metrics collection for simulation runs.
//!
//! Records every quantity the paper's evaluation reports (Table 2's rows):
//! flow completion times, first-packet latency, cache hit rate and its
//! per-layer distribution (Table 5), per-switch and per-pod byte counts
//! (Figures 7–8), packet stretch, gateway load, misdelivery and
//! invalidation accounting for the migration study (Table 4), and
//! reordering (§4).
//!
//! [`Metrics`] is the recording surface the simulator writes into;
//! [`RunSummary`] is the derived, serializable result the harness consumes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::Serialize;
use sv2p_packet::{FlowId, SwitchTag};
use sv2p_simcore::stats::{Percentiles, Running};
use sv2p_simcore::{FxHashMap, SimTime};

/// Default recovery-series window: 100 µs of virtual time.
pub const DEFAULT_WINDOW_NS: u64 = 100_000;

/// Topology layer of a switch, for Table 5 breakdowns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Layer {
    /// Top-of-rack switches (including gateway ToRs).
    Tor,
    /// Pod switches (including gateway spines).
    Spine,
    /// Core switches.
    Core,
}

/// Static description of one switch, registered up front.
#[derive(Debug, Clone, Copy)]
pub struct SwitchInfo {
    /// Its layer.
    pub layer: Layer,
    /// Its pod (`None` for cores).
    pub pod: Option<u16>,
}

/// Per-flow in-progress record.
#[derive(Debug, Clone, Copy)]
struct FlowRecord {
    started: SimTime,
    completed: Option<SimTime>,
    first_pkt_latency: Option<f64>,
}

/// Why a tenant data packet was dropped (per-cause breakdown of
/// [`Metrics::packets_dropped`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum DropCause {
    /// Drop-tail queue overflow (link buffer or an agent's control-plane
    /// queue).
    Queue,
    /// No usable route to the destination (null translation, missing
    /// follow-me rule, or every ECMP next-hop down).
    Unroutable,
    /// The packet traversed a switch or gateway during its blackout window.
    Blackout,
    /// Stochastic loss injected by a `LossRate` fault.
    Loss,
    /// Shed by an overloaded gateway whose bounded ingress queue was full.
    GatewayShed,
}

/// One VM migration and the stale-cache exposure it caused, in migration
/// order. `last_stale_ns` starts at the migration instant, so a migration
/// nobody's cache was stale for reports a recovery time of zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct MigrationEvent {
    /// Raw VIP key of the migrated VM.
    pub vip: u32,
    /// When the mapping changed, virtual nanoseconds.
    pub at_ns: u64,
    /// Cache hits served from a stale entry for this VIP after this
    /// migration (and before any later migration of the same VIP).
    pub stale_hits: u64,
    /// Virtual time of the last such stale hit — `last_stale_ns - at_ns`
    /// is the recovery time: how long the network kept acting on the old
    /// mapping.
    pub last_stale_ns: u64,
}

/// One injected fault, timestamped so experiments can align time series to
/// it.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FaultAnnotation {
    /// Virtual time of the event, microseconds.
    pub at_us: f64,
    /// Human-readable description ("switch_reboot_start node=12" …).
    pub label: String,
}

/// Per-window counters backing the recovery metrics.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct WindowStat {
    /// Data packets handed to the network in this window.
    pub data_sent: u64,
    /// Data packets that reached a gateway in this window.
    pub gateway: u64,
    /// Sum of FCTs (µs) of flows completing in this window.
    pub fct_sum_us: f64,
    /// Flows completing in this window.
    pub fct_count: u64,
}

impl WindowStat {
    /// Window-local hit rate (1 − gateway share); `None` with no traffic.
    pub fn hit_rate(&self) -> Option<f64> {
        if self.data_sent == 0 {
            None
        } else {
            Some(1.0 - self.gateway as f64 / self.data_sent as f64)
        }
    }
}

/// Fault-recovery analysis over the windowed series, relative to one fault
/// window `[fault_at, fault_end)`.
#[derive(Debug, Clone, Serialize)]
pub struct RecoveryReport {
    /// Mean hit rate over complete windows before the fault.
    pub pre_fault_hit_rate: f64,
    /// Mean hit rate over windows overlapping the fault.
    pub during_fault_hit_rate: f64,
    /// Mean hit rate over windows after the fault cleared.
    pub post_fault_hit_rate: f64,
    /// Mean FCT (µs) of flows completing before the fault.
    pub pre_fault_avg_fct_us: f64,
    /// Mean FCT (µs) of flows completing during the fault.
    pub during_fault_avg_fct_us: f64,
    /// Mean FCT (µs) of flows completing after the fault cleared.
    pub post_fault_avg_fct_us: f64,
    /// `during_fault_avg_fct_us / pre_fault_avg_fct_us` (1.0 when either
    /// side has no samples).
    pub fct_degradation: f64,
    /// Virtual time from fault end until the first window whose hit rate
    /// reaches 95 % of the pre-fault rate; `None` if it never recovers
    /// within the run.
    pub time_to_recover_us: Option<f64>,
}

/// The recording surface.
#[derive(Debug, Default)]
pub struct Metrics {
    switches: Vec<SwitchInfo>,
    /// Bytes processed per switch (a packet counts at every switch it
    /// traverses, matching Figure 7's counting rule).
    pub bytes_by_switch: Vec<u64>,
    flows: FxHashMap<FlowId, FlowRecord>,

    /// Tenant data packets handed to the network by senders.
    pub data_packets_sent: u64,
    /// Tenant data packets delivered to their (correct) destination VM.
    pub data_packets_delivered: u64,
    /// Tenant data packets dropped anywhere (sum of the per-cause counters).
    pub packets_dropped: u64,
    /// Drops from full queues (link buffers, agent control-plane queues).
    pub drops_queue: u64,
    /// Drops for lack of a usable route.
    pub drops_unroutable: u64,
    /// Drops inside a switch/gateway blackout window.
    pub drops_blackout: u64,
    /// Drops from injected stochastic loss.
    pub drops_loss: u64,
    /// Drops shed by overloaded gateways (bounded ingress queue full).
    pub drops_shed: u64,
    /// Tenant data packets that were processed by a translation gateway.
    pub gateway_packets: u64,
    /// Tenant data packets that a switch cache resolved.
    pub cache_hits: u64,
    /// Cache hits by switch layer.
    pub hits_by_layer: FxHashMap<Layer, u64>,
    /// Cache hits of flow-first packets, by layer.
    pub first_hits_by_layer: FxHashMap<Layer, u64>,
    /// First packets sent (denominator for first-packet hit shares).
    pub first_packets_sent: u64,

    /// Switch hops per delivered packet (packet stretch, §5.3).
    pub stretch: Running,
    /// End-to-end latency per delivered data packet, microseconds.
    pub packet_latency_us: Running,
    /// Flow-first-packet end-to-end latency, microseconds.
    pub first_packet_latency_us: Percentiles,
    /// Completed-flow FCTs, microseconds.
    pub fct_us: Percentiles,

    /// Packets that arrived at a host that no longer hosts the VM.
    pub misdelivered_packets: u64,
    /// Arrival time of the last misdelivered packet (Table 4).
    pub last_misdelivery: Option<SimTime>,
    /// Invalidation packets generated.
    pub invalidation_packets: u64,
    /// Learning packets generated.
    pub learning_packets: u64,
    /// Spillover options successfully reinserted at another switch.
    pub spillover_inserts: u64,
    /// Promotions accepted at core switches.
    pub promotion_inserts: u64,
    /// Reordered segment observations summed over receivers.
    pub reordered_segments: u64,
    /// TCP retransmissions summed over senders.
    pub retransmissions: u64,

    /// Cache hits that served a mapping disagreeing with the ground-truth
    /// database (misdelivery exposure).
    pub stale_cache_hits: u64,
    /// Age of the stale entry at each attributable stale hit, nanoseconds
    /// since the migration that invalidated it. Sorted lazily by
    /// [`Metrics::summary`] for the exposure percentiles.
    pub stale_age_ns: Vec<u64>,
    /// Every migration with its stale-exposure accounting, in registration
    /// order (index-aligned across sharded replicas so the driver can
    /// zip-merge them).
    pub migration_events: Vec<MigrationEvent>,
    /// VIP key → index of its latest entry in `migration_events`, for
    /// attributing stale hits.
    stale_attr: FxHashMap<u32, usize>,
    /// Churn tenants that arrived (master-only: churn marks execute on the
    /// driver and are never broadcast).
    pub churn_arrivals: u64,
    /// Churn tenants that departed (master-only).
    pub churn_departures: u64,
    /// Rolling migration waves that started (master-only).
    pub migration_waves: u64,

    /// Injected faults, in injection order.
    pub fault_events: Vec<FaultAnnotation>,
    /// Windowed traffic series feeding [`Metrics::recovery_report`];
    /// window `i` covers `[i*window_ns, (i+1)*window_ns)`.
    pub windows: Vec<WindowStat>,
    /// Recovery-series window length in nanoseconds (0 ⇒
    /// [`DEFAULT_WINDOW_NS`]).
    pub window_ns: u64,
}

impl Metrics {
    /// Creates the recorder; switches must be registered before use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers switch `tag` (tags must be dense, registered in order).
    pub fn register_switch(&mut self, tag: SwitchTag, info: SwitchInfo) {
        assert_eq!(tag.0 as usize, self.switches.len(), "tags must be dense");
        self.switches.push(info);
        self.bytes_by_switch.push(0);
    }

    /// Number of registered switches.
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// A packet of `bytes` traversed switch `tag`.
    pub fn record_switch_bytes(&mut self, tag: SwitchTag, bytes: u32) {
        self.bytes_by_switch[tag.0 as usize] += bytes as u64;
    }

    /// A switch cache resolved a packet.
    pub fn record_cache_hit(&mut self, tag: SwitchTag, first_of_flow: bool) {
        self.cache_hits += 1;
        let layer = self.switches[tag.0 as usize].layer;
        *self.hits_by_layer.entry(layer).or_insert(0) += 1;
        if first_of_flow {
            *self.first_hits_by_layer.entry(layer).or_insert(0) += 1;
        }
    }

    /// A flow's first packet entered the network.
    pub fn flow_started(&mut self, flow: FlowId, now: SimTime) {
        self.flows.insert(
            flow,
            FlowRecord {
                started: now,
                completed: None,
                first_pkt_latency: None,
            },
        );
        self.first_packets_sent += 1;
    }

    /// A flow's first packet reached its destination.
    pub fn first_packet_delivered(&mut self, flow: FlowId, now: SimTime) {
        if let Some(rec) = self.flows.get_mut(&flow) {
            if rec.first_pkt_latency.is_none() {
                let lat = now.saturating_since(rec.started).as_micros_f64();
                rec.first_pkt_latency = Some(lat);
                self.first_packet_latency_us.push(lat);
            }
        }
    }

    /// A flow finished (all bytes acked / last datagram delivered).
    pub fn flow_completed(&mut self, flow: FlowId, now: SimTime) {
        let fct = match self.flows.get_mut(&flow) {
            Some(rec) if rec.completed.is_none() => {
                rec.completed = Some(now);
                now.saturating_since(rec.started).as_micros_f64()
            }
            _ => return,
        };
        self.fct_us.push(fct);
        let win = self.window_mut(now);
        win.fct_sum_us += fct;
        win.fct_count += 1;
    }

    /// A data packet was delivered; records latency and stretch.
    pub fn record_delivery(&mut self, sent_at: SimTime, now: SimTime, switch_hops: u16) {
        self.data_packets_delivered += 1;
        self.packet_latency_us
            .push(now.saturating_since(sent_at).as_micros_f64());
        self.stretch.push(switch_hops as f64);
    }

    /// Effective recovery-series window length in nanoseconds.
    pub fn window_len_ns(&self) -> u64 {
        if self.window_ns == 0 {
            DEFAULT_WINDOW_NS
        } else {
            self.window_ns
        }
    }

    fn window_mut(&mut self, now: SimTime) -> &mut WindowStat {
        let idx = (now.as_nanos() / self.window_len_ns()) as usize;
        if idx >= self.windows.len() {
            self.windows.resize(idx + 1, WindowStat::default());
        }
        &mut self.windows[idx]
    }

    /// A tenant data packet entered the network.
    pub fn record_data_sent(&mut self, now: SimTime) {
        self.data_packets_sent += 1;
        self.window_mut(now).data_sent += 1;
    }

    /// A tenant data packet reached a translation gateway.
    pub fn record_gateway_packet(&mut self, now: SimTime) {
        self.gateway_packets += 1;
        self.window_mut(now).gateway += 1;
    }

    /// A tenant data packet was dropped for `cause`.
    pub fn record_drop(&mut self, cause: DropCause) {
        self.packets_dropped += 1;
        match cause {
            DropCause::Queue => self.drops_queue += 1,
            DropCause::Unroutable => self.drops_unroutable += 1,
            DropCause::Blackout => self.drops_blackout += 1,
            DropCause::Loss => self.drops_loss += 1,
            DropCause::GatewayShed => self.drops_shed += 1,
        }
    }

    /// Records that `vip_key` migrated at `at` (its scheduled instant, so
    /// sharded replicas and the single-threaded oracle agree on the
    /// timestamp). Later stale hits on the VIP attribute to this entry.
    pub fn record_migration(&mut self, vip_key: u32, at: SimTime) {
        let idx = self.migration_events.len();
        self.migration_events.push(MigrationEvent {
            vip: vip_key,
            at_ns: at.as_nanos(),
            stale_hits: 0,
            last_stale_ns: at.as_nanos(),
        });
        self.stale_attr.insert(vip_key, idx);
    }

    /// A cache hit served a stale mapping for `vip_key` at `now`. Returns
    /// the stale entry's age (ns since the migration that invalidated it)
    /// when the hit attributes to a recorded migration.
    pub fn record_stale_hit(&mut self, vip_key: u32, now: SimTime) -> Option<u64> {
        self.stale_cache_hits += 1;
        let &idx = self.stale_attr.get(&vip_key)?;
        let ev = &mut self.migration_events[idx];
        let age = now.as_nanos().saturating_sub(ev.at_ns);
        ev.stale_hits += 1;
        ev.last_stale_ns = ev.last_stale_ns.max(now.as_nanos());
        self.stale_age_ns.push(age);
        Some(age)
    }

    /// Records an injected fault so time series can be aligned to it.
    pub fn record_fault(&mut self, now: SimTime, label: impl Into<String>) {
        self.fault_events.push(FaultAnnotation {
            at_us: now.as_micros_f64(),
            label: label.into(),
        });
    }

    /// Analyzes recovery relative to the fault window `[fault_at,
    /// fault_end)` using the windowed series.
    pub fn recovery_report(&self, fault_at: SimTime, fault_end: SimTime) -> RecoveryReport {
        let w = self.window_len_ns();
        // Complete windows strictly before the fault.
        let pre_end = (fault_at.as_nanos() / w) as usize;
        // First window entirely after the fault cleared.
        let post_start = (fault_end.as_nanos().div_ceil(w)) as usize;

        let mean_hit = |range: &[WindowStat]| -> f64 {
            let (mut sent, mut gw) = (0u64, 0u64);
            for s in range {
                sent += s.data_sent;
                gw += s.gateway;
            }
            if sent == 0 {
                0.0
            } else {
                1.0 - gw as f64 / sent as f64
            }
        };
        let mean_fct = |range: &[WindowStat]| -> f64 {
            let (mut sum, mut n) = (0.0f64, 0u64);
            for s in range {
                sum += s.fct_sum_us;
                n += s.fct_count;
            }
            if n == 0 {
                0.0
            } else {
                sum / n as f64
            }
        };

        let all = &self.windows[..];
        let pre = &all[..pre_end.min(all.len())];
        let during = &all[pre_end.min(all.len())..post_start.min(all.len())];
        let post = &all[post_start.min(all.len())..];

        let pre_hit = mean_hit(pre);
        let pre_fct = mean_fct(pre);
        let during_fct = mean_fct(during);
        let fct_degradation = if pre_fct > 0.0 && during_fct > 0.0 {
            during_fct / pre_fct
        } else {
            1.0
        };

        // Time to recover: first post-fault window with traffic whose hit
        // rate reaches 95 % of the pre-fault rate.
        let threshold = 0.95 * pre_hit;
        let mut time_to_recover_us = None;
        for (i, s) in all.iter().enumerate().skip(post_start) {
            if let Some(h) = s.hit_rate() {
                if h >= threshold {
                    let win_start_ns = i as u64 * w;
                    let delta_ns = win_start_ns.saturating_sub(fault_end.as_nanos());
                    time_to_recover_us = Some(delta_ns as f64 / 1_000.0);
                    break;
                }
            }
        }

        RecoveryReport {
            pre_fault_hit_rate: pre_hit,
            during_fault_hit_rate: mean_hit(during),
            post_fault_hit_rate: mean_hit(post),
            pre_fault_avg_fct_us: pre_fct,
            during_fault_avg_fct_us: during_fct,
            post_fault_avg_fct_us: mean_fct(post),
            fct_degradation,
            time_to_recover_us,
        }
    }

    /// A packet arrived at a host that no longer hosts the destination VM.
    pub fn record_misdelivery(&mut self, now: SimTime) {
        self.misdelivered_packets += 1;
        self.last_misdelivery = Some(match self.last_misdelivery {
            Some(t) => t.max(now),
            None => now,
        });
    }

    /// Folds a shard-local recorder into this master recorder.
    ///
    /// The sharded engine splits metrics in two: order-sensitive streams
    /// (deliveries, flow lifecycle, faults) replay on the master in exact
    /// global order, while order-free counters accumulate shard-locally
    /// and are summed here at finalization. This method therefore touches
    /// **only** commutative fields; everything order-sensitive on `other`
    /// (the flows map, latency/stretch accumulators, fct windows, fault
    /// annotations) is intentionally ignored — the master already holds
    /// the authoritative copy.
    pub fn absorb_shard(&mut self, other: &Metrics) {
        for (b, &o) in self.bytes_by_switch.iter_mut().zip(&other.bytes_by_switch) {
            *b += o;
        }
        self.data_packets_sent += other.data_packets_sent;
        self.packets_dropped += other.packets_dropped;
        self.drops_queue += other.drops_queue;
        self.drops_unroutable += other.drops_unroutable;
        self.drops_blackout += other.drops_blackout;
        self.drops_loss += other.drops_loss;
        self.drops_shed += other.drops_shed;
        self.gateway_packets += other.gateway_packets;
        self.cache_hits += other.cache_hits;
        for (&l, &n) in &other.hits_by_layer {
            *self.hits_by_layer.entry(l).or_insert(0) += n;
        }
        for (&l, &n) in &other.first_hits_by_layer {
            *self.first_hits_by_layer.entry(l).or_insert(0) += n;
        }
        self.misdelivered_packets += other.misdelivered_packets;
        self.last_misdelivery = match (self.last_misdelivery, other.last_misdelivery) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        self.invalidation_packets += other.invalidation_packets;
        self.learning_packets += other.learning_packets;
        self.spillover_inserts += other.spillover_inserts;
        self.promotion_inserts += other.promotion_inserts;
        self.stale_cache_hits += other.stale_cache_hits;
        self.stale_age_ns.extend_from_slice(&other.stale_age_ns);
        // Migration tables are mirrored into every replica in the same
        // order, so per-migration exposure merges index-wise.
        debug_assert!(other.migration_events.len() <= self.migration_events.len());
        for (ev, o) in self.migration_events.iter_mut().zip(&other.migration_events) {
            ev.stale_hits += o.stale_hits;
            ev.last_stale_ns = ev.last_stale_ns.max(o.last_stale_ns);
        }
        if other.windows.len() > self.windows.len() {
            self.windows
                .resize(other.windows.len(), WindowStat::default());
        }
        for (w, o) in self.windows.iter_mut().zip(&other.windows) {
            w.data_sent += o.data_sent;
            w.gateway += o.gateway;
        }
    }

    /// Fraction of data packets that avoided the gateways ("the fraction of
    /// all sent packets that do not reach the gateways", §5.1).
    pub fn hit_rate(&self) -> f64 {
        if self.data_packets_sent == 0 {
            return 0.0;
        }
        1.0 - self.gateway_packets as f64 / self.data_packets_sent as f64
    }

    /// Total bytes processed by all switches in `pod`.
    pub fn pod_bytes(&self, pod: u16) -> u64 {
        self.switches
            .iter()
            .zip(&self.bytes_by_switch)
            .filter(|(s, _)| s.pod == Some(pod))
            .map(|(_, &b)| b)
            .sum()
    }

    /// Total bytes processed by all switches (network load proxy, §5.3).
    pub fn total_switch_bytes(&self) -> u64 {
        self.bytes_by_switch.iter().sum()
    }

    /// Completed flow count.
    pub fn flows_completed(&self) -> usize {
        self.flows.values().filter(|f| f.completed.is_some()).count()
    }

    /// Derives the serializable summary.
    pub fn summary(&mut self, name: &str) -> RunSummary {
        let layer_share = |map: &FxHashMap<Layer, u64>| {
            let total: u64 = map.values().sum();
            let pct = |l: Layer| {
                if total == 0 {
                    0.0
                } else {
                    *map.get(&l).unwrap_or(&0) as f64 / total as f64
                }
            };
            (pct(Layer::Core), pct(Layer::Spine), pct(Layer::Tor))
        };
        let (hit_core, hit_spine, hit_tor) = layer_share(&self.hits_by_layer);
        let (fhit_core, fhit_spine, fhit_tor) = layer_share(&self.first_hits_by_layer);
        self.stale_age_ns.sort_unstable();
        let age_q = |q: f64| -> f64 {
            if self.stale_age_ns.is_empty() {
                return 0.0;
            }
            let idx = ((self.stale_age_ns.len() - 1) as f64 * q).round() as usize;
            self.stale_age_ns[idx] as f64 / 1_000.0
        };
        let recoveries = self
            .migration_events
            .iter()
            .map(|ev| ev.last_stale_ns.saturating_sub(ev.at_ns) as f64 / 1_000.0);
        let recovery_max_us = recoveries.clone().fold(0.0f64, f64::max);
        let recovery_avg_us = if self.migration_events.is_empty() {
            0.0
        } else {
            recoveries.sum::<f64>() / self.migration_events.len() as f64
        };
        RunSummary {
            name: name.to_string(),
            flows: self.flows.len() as u64,
            flows_completed: self.flows_completed() as u64,
            data_packets_sent: self.data_packets_sent,
            data_packets_delivered: self.data_packets_delivered,
            packets_dropped: self.packets_dropped,
            drops_queue: self.drops_queue,
            drops_unroutable: self.drops_unroutable,
            drops_blackout: self.drops_blackout,
            drops_loss: self.drops_loss,
            drops_shed: self.drops_shed,
            fault_count: self.fault_events.len() as u64,
            gateway_packets: self.gateway_packets,
            hit_rate: self.hit_rate(),
            avg_fct_us: self.fct_us.mean(),
            p99_fct_us: self.fct_us.quantile(0.99),
            avg_first_packet_latency_us: self.first_packet_latency_us.mean(),
            p99_first_packet_latency_us: self.first_packet_latency_us.quantile(0.99),
            avg_packet_latency_us: self.packet_latency_us.mean(),
            avg_stretch: self.stretch.mean(),
            total_switch_bytes: self.total_switch_bytes(),
            misdelivered_packets: self.misdelivered_packets,
            last_misdelivery_us: self.last_misdelivery.map(|t| t.as_micros_f64()),
            invalidation_packets: self.invalidation_packets,
            learning_packets: self.learning_packets,
            reordered_segments: self.reordered_segments,
            retransmissions: self.retransmissions,
            hit_share_core: hit_core,
            hit_share_spine: hit_spine,
            hit_share_tor: hit_tor,
            first_hit_share_core: fhit_core,
            first_hit_share_spine: fhit_spine,
            first_hit_share_tor: fhit_tor,
            migrations: self.migration_events.len() as u64,
            churn_arrivals: self.churn_arrivals,
            churn_departures: self.churn_departures,
            migration_waves: self.migration_waves,
            stale_cache_hits: self.stale_cache_hits,
            stale_age_p50_us: age_q(0.50),
            stale_age_p99_us: age_q(0.99),
            recovery_avg_us,
            recovery_max_us,
        }
    }
}

/// Derived results of one simulation run.
#[derive(Debug, Clone, Serialize)]
pub struct RunSummary {
    /// Scheme/run label.
    pub name: String,
    /// Flows started.
    pub flows: u64,
    /// Flows that completed.
    pub flows_completed: u64,
    /// Data packets handed to the network.
    pub data_packets_sent: u64,
    /// Data packets delivered.
    pub data_packets_delivered: u64,
    /// Data packets dropped.
    pub packets_dropped: u64,
    /// Drops from full queues.
    pub drops_queue: u64,
    /// Drops for lack of a usable route.
    pub drops_unroutable: u64,
    /// Drops inside a blackout window.
    pub drops_blackout: u64,
    /// Drops from injected stochastic loss.
    pub drops_loss: u64,
    /// Drops shed by overloaded gateways.
    pub drops_shed: u64,
    /// Fault events injected during the run.
    pub fault_count: u64,
    /// Data packets processed by gateways.
    pub gateway_packets: u64,
    /// 1 − gateway share.
    pub hit_rate: f64,
    /// Mean flow completion time.
    pub avg_fct_us: f64,
    /// 99th-percentile FCT.
    pub p99_fct_us: f64,
    /// Mean first-packet latency.
    pub avg_first_packet_latency_us: f64,
    /// 99th-percentile first-packet latency.
    pub p99_first_packet_latency_us: f64,
    /// Mean per-packet latency.
    pub avg_packet_latency_us: f64,
    /// Mean switches traversed per delivered packet.
    pub avg_stretch: f64,
    /// Total bytes processed across all switches.
    pub total_switch_bytes: u64,
    /// Misdelivered packet count (Table 4).
    pub misdelivered_packets: u64,
    /// Arrival time of the last misdelivered packet, µs (Table 4).
    pub last_misdelivery_us: Option<f64>,
    /// Invalidation packets generated (Table 4).
    pub invalidation_packets: u64,
    /// Learning packets generated.
    pub learning_packets: u64,
    /// Reordered segments observed by receivers.
    pub reordered_segments: u64,
    /// TCP retransmissions.
    pub retransmissions: u64,
    /// Share of cache hits at each layer (Table 5, "Total").
    pub hit_share_core: f64,
    /// See `hit_share_core`.
    pub hit_share_spine: f64,
    /// See `hit_share_core`.
    pub hit_share_tor: f64,
    /// Share of first-packet hits at each layer (Table 5, "First packet").
    pub first_hit_share_core: f64,
    /// See `first_hit_share_core`.
    pub first_hit_share_spine: f64,
    /// See `first_hit_share_core`.
    pub first_hit_share_tor: f64,
    /// VM migrations executed.
    pub migrations: u64,
    /// Churn tenants that arrived.
    pub churn_arrivals: u64,
    /// Churn tenants that departed.
    pub churn_departures: u64,
    /// Rolling migration waves.
    pub migration_waves: u64,
    /// Cache hits served from a stale mapping (misdelivery exposure).
    pub stale_cache_hits: u64,
    /// Median stale-entry age at hit time, µs since the migration.
    pub stale_age_p50_us: f64,
    /// 99th-percentile stale-entry age, µs.
    pub stale_age_p99_us: f64,
    /// Mean time from a migration to its last stale-cache hit, µs
    /// (migrations with no stale exposure count as zero).
    pub recovery_avg_us: f64,
    /// Worst-case recovery time over all migrations, µs.
    pub recovery_max_us: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv2p_simcore::SimDuration;

    fn recorder_with_switches() -> Metrics {
        let mut m = Metrics::new();
        m.register_switch(
            SwitchTag(0),
            SwitchInfo {
                layer: Layer::Tor,
                pod: Some(0),
            },
        );
        m.register_switch(
            SwitchTag(1),
            SwitchInfo {
                layer: Layer::Spine,
                pod: Some(0),
            },
        );
        m.register_switch(
            SwitchTag(2),
            SwitchInfo {
                layer: Layer::Core,
                pod: None,
            },
        );
        m
    }

    #[test]
    fn hit_rate_is_one_minus_gateway_share() {
        let mut m = Metrics::new();
        m.data_packets_sent = 100;
        m.gateway_packets = 25;
        assert!((m.hit_rate() - 0.75).abs() < 1e-12);
        let empty = Metrics::new();
        assert_eq!(empty.hit_rate(), 0.0);
    }

    #[test]
    fn pod_bytes_filters_by_pod() {
        let mut m = recorder_with_switches();
        m.record_switch_bytes(SwitchTag(0), 100);
        m.record_switch_bytes(SwitchTag(1), 200);
        m.record_switch_bytes(SwitchTag(2), 400);
        assert_eq!(m.pod_bytes(0), 300);
        assert_eq!(m.pod_bytes(1), 0);
        assert_eq!(m.total_switch_bytes(), 700);
    }

    #[test]
    fn fct_and_first_packet_flow_accounting() {
        let mut m = Metrics::new();
        let f = FlowId(1);
        m.flow_started(f, SimTime::from_micros(10));
        m.first_packet_delivered(f, SimTime::from_micros(25));
        // A second "first delivery" (retransmitted first segment) is ignored.
        m.first_packet_delivered(f, SimTime::from_micros(60));
        m.flow_completed(f, SimTime::from_micros(110));
        m.flow_completed(f, SimTime::from_micros(500)); // duplicate ignored
        let s = m.summary("x");
        assert_eq!(s.flows, 1);
        assert_eq!(s.flows_completed, 1);
        assert!((s.avg_first_packet_latency_us - 15.0).abs() < 1e-9);
        assert!((s.avg_fct_us - 100.0).abs() < 1e-9);
    }

    #[test]
    fn layer_shares_sum_to_one() {
        let mut m = recorder_with_switches();
        for _ in 0..7 {
            m.record_cache_hit(SwitchTag(0), false);
        }
        for _ in 0..2 {
            m.record_cache_hit(SwitchTag(1), true);
        }
        m.record_cache_hit(SwitchTag(2), true);
        let s = m.summary("x");
        assert!((s.hit_share_tor + s.hit_share_spine + s.hit_share_core - 1.0).abs() < 1e-12);
        assert!((s.hit_share_tor - 0.7).abs() < 1e-12);
        assert!((s.first_hit_share_spine - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.hit_share_core, 0.1);
    }

    #[test]
    fn misdelivery_tracks_latest_arrival() {
        let mut m = Metrics::new();
        m.record_misdelivery(SimTime::from_micros(100));
        m.record_misdelivery(SimTime::from_micros(50));
        assert_eq!(m.misdelivered_packets, 2);
        assert_eq!(m.last_misdelivery, Some(SimTime::from_micros(100)));
    }

    #[test]
    fn delivery_records_latency_and_stretch() {
        let mut m = Metrics::new();
        let t0 = SimTime::from_micros(5);
        m.record_delivery(t0, t0 + SimDuration::from_micros(20), 5);
        m.record_delivery(t0, t0 + SimDuration::from_micros(10), 9);
        assert_eq!(m.data_packets_delivered, 2);
        assert!((m.packet_latency_us.mean() - 15.0).abs() < 1e-9);
        assert!((m.stretch.mean() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn per_cause_drops_sum_to_total() {
        let mut m = Metrics::new();
        m.record_drop(DropCause::Queue);
        m.record_drop(DropCause::Queue);
        m.record_drop(DropCause::Unroutable);
        m.record_drop(DropCause::Blackout);
        m.record_drop(DropCause::Loss);
        m.record_drop(DropCause::GatewayShed);
        assert_eq!(m.packets_dropped, 6);
        assert_eq!(m.drops_queue, 2);
        assert_eq!(m.drops_unroutable, 1);
        assert_eq!(m.drops_blackout, 1);
        assert_eq!(m.drops_loss, 1);
        assert_eq!(m.drops_shed, 1);
        let s = m.summary("x");
        assert_eq!(
            s.packets_dropped,
            s.drops_queue + s.drops_unroutable + s.drops_blackout + s.drops_loss + s.drops_shed
        );
    }

    #[test]
    fn stale_hits_attribute_to_latest_migration() {
        let mut m = Metrics::new();
        let us = SimTime::from_micros;
        m.record_migration(7, us(100));
        assert_eq!(m.record_stale_hit(7, us(130)), Some(30_000));
        assert_eq!(m.record_stale_hit(7, us(110)), Some(10_000));
        // A hit on a VIP that never migrated counts but has no age.
        assert_eq!(m.record_stale_hit(9, us(140)), None);
        // A second migration of the same VIP takes over attribution.
        m.record_migration(7, us(200));
        assert_eq!(m.record_stale_hit(7, us(250)), Some(50_000));
        assert_eq!(m.stale_cache_hits, 4);
        assert_eq!(m.migration_events[0].stale_hits, 2);
        assert_eq!(m.migration_events[0].last_stale_ns, 130_000);
        assert_eq!(m.migration_events[1].stale_hits, 1);
        let s = m.summary("x");
        assert_eq!(s.migrations, 2);
        assert_eq!(s.stale_cache_hits, 4);
        // Ages sorted: [10, 30, 50] µs → p50 = 30.
        assert!((s.stale_age_p50_us - 30.0).abs() < 1e-9);
        assert!((s.stale_age_p99_us - 50.0).abs() < 1e-9);
        // Recoveries: 30 µs and 50 µs.
        assert!((s.recovery_avg_us - 40.0).abs() < 1e-9);
        assert!((s.recovery_max_us - 50.0).abs() < 1e-9);
    }

    #[test]
    fn clean_migration_reports_zero_recovery() {
        let mut m = Metrics::new();
        m.record_migration(1, SimTime::from_micros(50));
        let s = m.summary("x");
        assert_eq!(s.migrations, 1);
        assert_eq!(s.stale_cache_hits, 0);
        assert_eq!(s.recovery_avg_us, 0.0);
        assert_eq!(s.recovery_max_us, 0.0);
    }

    #[test]
    fn absorb_shard_merges_stale_exposure() {
        let mut master = Metrics::new();
        let us = SimTime::from_micros;
        master.record_migration(7, us(100));
        let mut shard = Metrics::new();
        shard.record_migration(7, us(100));
        shard.record_stale_hit(7, us(160));
        shard.record_drop(DropCause::GatewayShed);
        master.absorb_shard(&shard);
        assert_eq!(master.stale_cache_hits, 1);
        assert_eq!(master.stale_age_ns, vec![60_000]);
        assert_eq!(master.migration_events[0].stale_hits, 1);
        assert_eq!(master.migration_events[0].last_stale_ns, 160_000);
        assert_eq!(master.drops_shed, 1);
    }

    #[test]
    fn fault_annotations_record_time_and_label() {
        let mut m = Metrics::new();
        m.record_fault(SimTime::from_micros(250), "link_down link=3");
        m.record_fault(SimTime::from_micros(900), "link_up link=3");
        assert_eq!(m.fault_events.len(), 2);
        assert!((m.fault_events[0].at_us - 250.0).abs() < 1e-9);
        assert_eq!(m.fault_events[1].label, "link_up link=3");
        assert_eq!(m.summary("x").fault_count, 2);
    }

    #[test]
    fn windowed_series_buckets_by_time() {
        let mut m = Metrics::new(); // 100us default window
        m.record_data_sent(SimTime::from_micros(10));
        m.record_data_sent(SimTime::from_micros(20));
        m.record_gateway_packet(SimTime::from_micros(30));
        m.record_data_sent(SimTime::from_micros(150));
        assert_eq!(m.windows.len(), 2);
        assert_eq!(m.windows[0].data_sent, 2);
        assert_eq!(m.windows[0].gateway, 1);
        assert_eq!(m.windows[0].hit_rate(), Some(0.5));
        assert_eq!(m.windows[1].data_sent, 1);
        assert_eq!(m.windows[1].hit_rate(), Some(1.0));
        // Totals stay in sync with the windowed series.
        assert_eq!(m.data_packets_sent, 3);
        assert_eq!(m.gateway_packets, 1);
    }

    #[test]
    fn recovery_report_finds_recovery_window() {
        let mut m = Metrics::new();
        let us = SimTime::from_micros;
        // Pre-fault: two windows at hit rate 1.0.
        for t in [10u64, 110] {
            for _ in 0..10 {
                m.record_data_sent(us(t));
            }
        }
        // Fault [200us, 400us): everything falls back to the gateway.
        for t in [210u64, 310] {
            for _ in 0..10 {
                m.record_data_sent(us(t));
                m.record_gateway_packet(us(t));
            }
        }
        // Post-fault: one degraded window, then recovered.
        for _ in 0..10 {
            m.record_data_sent(us(410));
        }
        for _ in 0..5 {
            m.record_gateway_packet(us(410));
        }
        for _ in 0..10 {
            m.record_data_sent(us(510));
        }
        let r = m.recovery_report(us(200), us(400));
        assert!((r.pre_fault_hit_rate - 1.0).abs() < 1e-12);
        assert!((r.during_fault_hit_rate - 0.0).abs() < 1e-12);
        // Window [400,500) has hit rate 0.5 < 0.95; window [500,600) hits
        // 1.0, i.e. 100us after the fault cleared.
        assert_eq!(r.time_to_recover_us, Some(100.0));
    }

    #[test]
    fn recovery_report_fct_degradation() {
        let mut m = Metrics::new();
        let us = SimTime::from_micros;
        m.flow_started(FlowId(0), us(0));
        m.flow_completed(FlowId(0), us(50)); // pre: FCT 50us
        m.flow_started(FlowId(1), us(200));
        m.flow_completed(FlowId(1), us(350)); // during: FCT 150us
        let r = m.recovery_report(us(300), us(400));
        assert!((r.pre_fault_avg_fct_us - 50.0).abs() < 1e-9);
        assert!((r.during_fault_avg_fct_us - 150.0).abs() < 1e-9);
        assert!((r.fct_degradation - 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn sparse_switch_tags_panic() {
        let mut m = Metrics::new();
        m.register_switch(
            SwitchTag(3),
            SwitchInfo {
                layer: Layer::Tor,
                pod: None,
            },
        );
    }
}
