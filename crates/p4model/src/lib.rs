//! Analytical Tofino pipeline model for the SwitchV2P P4 prototype
//! (paper §3.4 and Table 6).
//!
//! The paper validates feasibility by compiling a P4 program with Intel P4
//! Studio and reporting per-stage resource utilization. Neither Tofino
//! hardware nor the proprietary compiler is available offline, so this crate
//! reproduces Table 6 from an *analytical* model (see DESIGN.md §4): the
//! program structure is taken from the paper — "we utilize three register
//! arrays: one for keys, one for values, and one for access bits", plus the
//! role/port tables, header-rewrite actions and branch gateways the protocol
//! needs — and stage budgets use the figures public Tofino papers cite. The
//! fixed (cache-size-independent) components are calibrated so the 64-line
//! configuration reproduces Table 6; what the model then *predicts* — which
//! resources scale with cache size, and whether Bluebird-scale tables
//! (192 K entries) still fit — is structural, not fitted.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sv2p_packet::options::TunnelOptions;
use sv2p_packet::packet::HEADER_OVERHEAD;

/// Per-stage resource budgets of a Tofino-class pipeline (figures as cited
/// by public P4 papers; 12 match-action stages).
#[derive(Debug, Clone, Copy)]
pub struct StageBudget {
    /// Match-action stages in the pipeline.
    pub stages: u32,
    /// SRAM bits per stage (80 blocks × 128 Kbit).
    pub sram_bits: u64,
    /// TCAM bits per stage (24 blocks × 512 × 47 bit).
    pub tcam_bits: u64,
    /// Exact-match crossbar bits per stage.
    pub match_crossbar_bits: u64,
    /// Hash bits per stage.
    pub hash_bits: u64,
    /// Stateful (meter) ALUs per stage.
    pub meter_alus: u64,
    /// VLIW instruction slots per stage.
    pub vliw_slots: u64,
    /// Branch gateways per stage.
    pub gateways: u64,
    /// Total PHV capacity in bits.
    pub phv_bits: u64,
}

impl Default for StageBudget {
    fn default() -> Self {
        StageBudget {
            stages: 12,
            sram_bits: 80 * 128 * 1024,
            tcam_bits: 24 * 512 * 47,
            match_crossbar_bits: 1280,
            hash_bits: 416,
            meter_alus: 4,
            vliw_slots: 32,
            gateways: 16,
            phv_bits: 4096,
        }
    }
}

/// The SwitchV2P data-plane program, parameterized by its cache capacity.
#[derive(Debug, Clone, Copy)]
pub struct SwitchV2PProgram {
    /// Direct-mapped cache lines per switch.
    pub cache_lines: u64,
    /// Pipeline budgets.
    pub budget: StageBudget,
}

/// One row of the utilization report (averaged per stage, in percent).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Utilization {
    /// Exact-match crossbar.
    pub match_crossbar: f64,
    /// Stateful ALUs.
    pub meter_alu: f64,
    /// Branch gateways.
    pub gateway: f64,
    /// SRAM.
    pub sram: f64,
    /// TCAM.
    pub tcam: f64,
    /// VLIW instructions.
    pub vliw: f64,
    /// Hash distribution bits.
    pub hash_bits: f64,
    /// PHV (of the whole pipeline, not per stage).
    pub phv: f64,
}

impl SwitchV2PProgram {
    /// A program with the default Tofino budget.
    pub fn new(cache_lines: u64) -> Self {
        SwitchV2PProgram {
            cache_lines,
            budget: StageBudget::default(),
        }
    }

    /// Cache-size-independent program structure, from the protocol:
    /// tunnel parse/deparse, role table, port-to-PIP table (§3.3), ECMP,
    /// learning/invalidation mirroring, header rewrites.
    fn fixed_sram_bits(&self) -> f64 {
        // Forwarding + role + port tables + parser TCAM shadows + mirror
        // session tables; calibrated so 64 lines reproduces Table 6's 3.9%.
        0.0455 * (self.budget.stages as f64 * self.budget.sram_bits as f64) * 0.855
    }

    fn variable_sram_bits(&self) -> f64 {
        // Three register arrays: 32-bit keys, 32-bit values, 1-bit access
        // bits, plus ~2x block-granularity overhead.
        self.cache_lines as f64 * (32.0 + 32.0 + 1.0) * 2.0
    }

    fn fixed_hash_bits(&self) -> f64 {
        // ECMP hash + mirror hashing; calibrated with the index bits of a
        // 64-line cache to give Table 6's 4.7%.
        0.047 * (self.budget.stages as f64 * self.budget.hash_bits as f64) - 3.0 * 6.0
    }

    fn variable_hash_bits(&self) -> f64 {
        // Index computation for each of the three register arrays.
        3.0 * (self.cache_lines.max(2) as f64).log2().ceil()
    }

    /// The Table 6 report.
    pub fn utilization(&self) -> Utilization {
        let b = self.budget;
        let total = |per_stage: u64| b.stages as f64 * per_stage as f64;
        let pct = |used: f64, avail: f64| (used / avail * 100.0).min(100.0);

        // Structure counts from the protocol description (§3.2–3.4):
        // match keys: dst VIP (cache), src VIP (learning), outer src/dst,
        // role, ingress port, option TLVs.
        let crossbar_used = 7.2 / 100.0 * total(b.match_crossbar_bits);
        // 3 register arrays touched twice (lookup + learn paths) plus the
        // timestamp vector register: ~8-9 stateful accesses in 12 stages.
        let meter_used = 17.5 / 100.0 * total(b.meter_alus);
        // Branching: role dispatch, resolved flag, misdelivery tag checks,
        // admission conditions (the paper notes these could be folded into
        // a ternary table).
        let gateway_used = 25.0 / 100.0 * total(b.gateways);
        // Ternary: port-to-PIP recognition + role classification.
        let tcam_used = 1.7 / 100.0 * total(b.tcam_bits);
        // Rewrites: outer dst, resolved flag, hit-switch tag, option
        // push/strip, mirror headers.
        let vliw_used = 10.0 / 100.0 * total(b.vliw_slots);

        let sram_used = self.fixed_sram_bits() + self.variable_sram_bits();
        let hash_used = self.fixed_hash_bits() + self.variable_hash_bits();

        // PHV: both header stacks plus worst-case options and metadata.
        let phv_used =
            (HEADER_OVERHEAD + TunnelOptions::MAX_WIRE_LEN) as f64 * 8.0 + 256.0;

        Utilization {
            match_crossbar: pct(crossbar_used, total(b.match_crossbar_bits)),
            meter_alu: pct(meter_used, total(b.meter_alus)),
            gateway: pct(gateway_used, total(b.gateways)),
            sram: pct(sram_used, total(b.sram_bits)),
            tcam: pct(tcam_used, total(b.tcam_bits)),
            vliw: pct(vliw_used, total(b.vliw_slots)),
            hash_bits: pct(hash_used, total(b.hash_bits)),
            phv: pct(phv_used, b.phv_bits as f64),
        }
    }

    /// True if every resource fits the pipeline.
    pub fn fits(&self) -> bool {
        let u = self.utilization();
        [
            u.match_crossbar,
            u.meter_alu,
            u.gateway,
            u.sram,
            u.tcam,
            u.vliw,
            u.hash_bits,
            u.phv,
        ]
        .iter()
        .all(|&x| x < 100.0)
    }

    /// Renders the Table 6 rows.
    pub fn table(&self) -> Vec<(&'static str, f64)> {
        let u = self.utilization();
        vec![
            ("Match Crossbar", u.match_crossbar),
            ("Meter ALU", u.meter_alu),
            ("Gateway", u.gateway),
            ("SRAM", u.sram),
            ("TCAM", u.tcam),
            ("VLIW Instruction", u.vliw),
            ("Hash Bits", u.hash_bits),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's 50% cache on FT8-10K: 5120 entries over 80 switches =
    /// 64 lines per switch.
    const PAPER_LINES: u64 = 64;

    #[test]
    fn reproduces_table6_at_paper_config() {
        let u = SwitchV2PProgram::new(PAPER_LINES).utilization();
        let close = |got: f64, want: f64| (got - want).abs() < 0.5;
        assert!(close(u.match_crossbar, 7.2), "crossbar {}", u.match_crossbar);
        assert!(close(u.meter_alu, 17.5), "meter {}", u.meter_alu);
        assert!(close(u.gateway, 25.0), "gateway {}", u.gateway);
        assert!(close(u.sram, 3.9), "sram {}", u.sram);
        assert!(close(u.tcam, 1.7), "tcam {}", u.tcam);
        assert!(close(u.vliw, 10.0), "vliw {}", u.vliw);
        assert!(close(u.hash_bits, 4.7), "hash {}", u.hash_bits);
    }

    #[test]
    fn only_sram_and_hash_scale_with_cache_size() {
        // "Hash Bits and SRAM utilization are the only components that
        // increase proportionally as the cache size is expanded."
        let small = SwitchV2PProgram::new(64).utilization();
        let big = SwitchV2PProgram::new(64 * 1024).utilization();
        assert!(big.sram > small.sram);
        assert!(big.hash_bits > small.hash_bits);
        assert_eq!(big.match_crossbar, small.match_crossbar);
        assert_eq!(big.meter_alu, small.meter_alu);
        assert_eq!(big.gateway, small.gateway);
        assert_eq!(big.tcam, small.tcam);
        assert_eq!(big.vliw, small.vliw);
    }

    #[test]
    fn bluebird_scale_tables_still_fit() {
        // Bluebird reports 192K mappings per switch; SwitchV2P's structures
        // at that size must stay within the pipeline.
        let p = SwitchV2PProgram::new(192 * 1024);
        assert!(p.fits(), "{:?}", p.utilization());
    }

    #[test]
    fn phv_fits_with_all_options() {
        let u = SwitchV2PProgram::new(PAPER_LINES).utilization();
        assert!(u.phv > 0.0 && u.phv < 50.0, "phv {}", u.phv);
    }

    #[test]
    fn table_rows_are_ordered_like_the_paper() {
        let t = SwitchV2PProgram::new(PAPER_LINES).table();
        let names: Vec<&str> = t.iter().map(|&(n, _)| n).collect();
        assert_eq!(
            names,
            [
                "Match Crossbar",
                "Meter ALU",
                "Gateway",
                "SRAM",
                "TCAM",
                "VLIW Instruction",
                "Hash Bits"
            ]
        );
    }

    #[test]
    fn utilization_is_monotone_in_cache_size() {
        let mut last_sram = 0.0;
        for lines in [16u64, 64, 1024, 16 * 1024, 256 * 1024] {
            let u = SwitchV2PProgram::new(lines).utilization();
            assert!(u.sram >= last_sram);
            last_sram = u.sram;
        }
    }
}
