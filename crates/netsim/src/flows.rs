//! Flow specifications and runtime flow state.

use sv2p_packet::FlowId;
use sv2p_simcore::SimTime;
use sv2p_transport::{TcpReceiver, TcpSender, UdpSchedule};

/// What kind of traffic a flow carries.
#[derive(Debug, Clone)]
pub enum FlowKind {
    /// A TCP transfer of `bytes` (Hadoop / WebSearch / Alibaba RPCs).
    Tcp {
        /// Flow size in bytes.
        bytes: u64,
    },
    /// A UDP flow following a precomputed schedule (Video / Microbursts /
    /// incast).
    Udp {
        /// When each datagram leaves the sender.
        schedule: UdpSchedule,
    },
}

/// One flow of the workload, as produced by the trace generators.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Sending VM (index into the placement).
    pub src_vm: usize,
    /// Destination VM (index into the placement).
    pub dst_vm: usize,
    /// When the flow starts.
    pub start: SimTime,
    /// Payload profile.
    pub kind: FlowKind,
}

/// Runtime state of a flow inside the simulator.
#[derive(Debug)]
pub(crate) struct FlowState {
    pub id: FlowId,
    pub spec: FlowSpec,
    /// TCP sender machine (None for UDP flows).
    pub tcp_tx: Option<TcpSender>,
    /// TCP receiver machine.
    pub tcp_rx: TcpReceiver,
    /// Retransmission-timer generation: each arm bumps it, and a pending
    /// `RtoTimer` event only fires if it still carries the current value.
    /// A plain counter (rather than a `TimerWheel` handle) so the whole
    /// timer state travels with the flow when a migration moves it to
    /// another shard's replica.
    pub rto_gen: u64,
    /// Datagrams delivered so far (UDP completion tracking).
    pub udp_delivered: usize,
    /// Total datagrams in the UDP schedule.
    pub udp_total: usize,
    pub completed: bool,
    /// Source port (gives distinct ECMP keys per flow).
    pub src_port: u16,
}

impl FlowState {
    pub fn new(id: FlowId, spec: FlowSpec) -> Self {
        let udp_total = match &spec.kind {
            FlowKind::Udp { schedule } => schedule.len(),
            FlowKind::Tcp { .. } => 0,
        };
        FlowState {
            id,
            spec,
            tcp_tx: None,
            tcp_rx: TcpReceiver::new(),
            rto_gen: 0,
            udp_delivered: 0,
            udp_total,
            completed: false,
            src_port: 1024 + (id.0 % 50_000) as u16,
        }
    }

    pub fn is_tcp(&self) -> bool {
        matches!(self.spec.kind, FlowKind::Tcp { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv2p_simcore::SimDuration;

    #[test]
    fn udp_flow_tracks_schedule_length() {
        let schedule = UdpSchedule::cbr(
            SimTime::ZERO,
            SimDuration::from_micros(500),
            48_000_000,
            1000,
        );
        let n = schedule.len();
        let f = FlowState::new(
            FlowId(3),
            FlowSpec {
                src_vm: 0,
                dst_vm: 1,
                start: SimTime::ZERO,
                kind: FlowKind::Udp { schedule },
            },
        );
        assert!(!f.is_tcp());
        assert_eq!(f.udp_total, n);
    }

    #[test]
    fn ports_are_flow_distinct() {
        let mk = |id| {
            FlowState::new(
                FlowId(id),
                FlowSpec {
                    src_vm: 0,
                    dst_vm: 1,
                    start: SimTime::ZERO,
                    kind: FlowKind::Tcp { bytes: 1 },
                },
            )
        };
        assert_ne!(mk(1).src_port, mk(2).src_port);
    }
}
