//! Simulation-wide knobs.

use sv2p_simcore::{SimDuration, SimTime};
use sv2p_telemetry::TelemetryConfig;
use sv2p_transport::TcpConfig;
use sv2p_vnet::GatewayConfig;

/// Parameters shared by every experiment, defaulted to the paper's §5 setup.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Experiment seed; forked into independent per-component streams.
    pub seed: u64,
    /// TCP profile. Defaults to the reordering-tolerant profile the paper
    /// assumes of modern stacks (§4).
    pub tcp: TcpConfig,
    /// Gateway translation latency (40 µs).
    pub gateway: GatewayConfig,
    /// Drop-tail buffer per egress port ("we set the switch buffer size to
    /// 32 MB").
    pub port_buffer_bytes: u64,
    /// Old-host processing per misdelivered packet (10 µs, §5.2).
    pub misdelivery_penalty: SimDuration,
    /// Base network RTT (12 µs) — the invalidation timestamp-vector window.
    pub base_rtt: SimDuration,
    /// Record the per-(src,dst) packet matrix (Controller baseline input).
    pub record_traffic_matrix: bool,
    /// Hard stop; events after this instant are not executed.
    pub end_of_time: Option<SimTime>,
    /// Structured tracing and time-series sampling (off by default; when
    /// off the layer costs one branch per emission point).
    pub telemetry: TelemetryConfig,
    /// Engine self-profiling: wall-clock phase timers + occupancy
    /// histograms (off by default; when off the profiler costs one branch
    /// per phase boundary and the engines never read the host clock).
    /// Profiling never alters simulation state — a profiled run's traces
    /// and summaries are byte-identical to an unprofiled run's.
    pub profile: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 1,
            tcp: TcpConfig::reorder_tolerant(),
            gateway: GatewayConfig::default(),
            port_buffer_bytes: 32 * 1024 * 1024,
            misdelivery_penalty: SimDuration::from_micros(10),
            base_rtt: SimDuration::from_micros(12),
            record_traffic_matrix: false,
            end_of_time: None,
            telemetry: TelemetryConfig::disabled(),
            profile: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = SimConfig::default();
        assert_eq!(c.gateway.processing(), SimDuration::from_micros(40));
        assert_eq!(c.port_buffer_bytes, 32 * 1024 * 1024);
        assert_eq!(c.base_rtt, SimDuration::from_micros(12));
        assert_eq!(c.misdelivery_penalty, SimDuration::from_micros(10));
        assert_eq!(c.tcp.dupack_threshold, 300);
    }
}
