//! The simulation driver: event dispatch, node logic, flow driving.

use std::collections::VecDeque;

use sv2p_metrics::{DropCause, Layer, Metrics, SwitchInfo};
use sv2p_packet::packet::Protocol;
use sv2p_packet::{
    FlowId, InnerHeader, OuterHeader, Packet, PacketId, PacketKind, Pip, SwitchTag, TcpFlags,
    TunnelOptions, Vip,
};
use sv2p_simcore::{EventQueue, FxHashMap, ShardState, SimDuration, SimRng, SimTime};
use sv2p_telemetry::profile::{HistKind, Phase, Profiler};
use sv2p_telemetry::{EventKind, LayerName, Sample, TraceEvent, Tracer};
use sv2p_topology::{
    FatTreeConfig, LinkId, NodeId, NodeKind, RoleMap, Routing, Topology,
};
use sv2p_transport::{SenderOps, TcpSender};
use sv2p_vnet::{
    AgentOutput, GatewayDirectory, HostAgent, HostResolution, MappingDb, MappingOp,
    Migration, MisdeliveryPolicy, PacketAction, Placement, Strategy, SwitchAgent,
    SwitchCtx,
};
use v2p_controlplane::LocalControlPlane;

use crate::arena::{PacketArena, PacketRef};
use crate::churn::{ChurnMark, ChurnPlan};
use crate::config::SimConfig;
use crate::faults::{FaultEvent, FaultPlan};
use crate::flows::{FlowKind, FlowSpec, FlowState};
use crate::link::{EnqueueOutcome, LinkState};
use crate::wire::{
    CutEvent, ExecBlock, FlowXfer, GlobalEvent, JournalOp, MetricOp, MovedEvent, ShardSnapshot,
    WindowReport, WireEvent, WorkerCtx,
};

/// Simulator events. Packet-carrying events hold an arena handle, so an
/// event is a few machine words no matter how fat `TunnelOptions` get.
#[derive(Debug)]
pub(crate) enum Event {
    FlowStart(usize),
    UdpSend { flow: usize, idx: usize },
    LinkFree(LinkId),
    LinkArrival { link: LinkId, pkt: PacketRef },
    RtoTimer { flow: usize, gen: u64 },
    GatewayDone { node: NodeId, pkt: PacketRef },
    ReInject { node: NodeId, pkt: PacketRef },
    HostForward { node: NodeId, pkt: PacketRef },
    Migrate(usize),
    FaultStart(usize),
    FaultEnd(usize),
    /// A churn-timeline annotation (tenant arrival/departure, migration
    /// wave): counters and telemetry only, no simulation state change.
    ChurnMark(usize),
    /// Periodic telemetry snapshot; reschedules itself while other events
    /// remain pending (so it never keeps an otherwise-finished run alive).
    TelemetrySample,
}

/// A complete, runnable experiment instance.
pub struct Simulation {
    pub(crate) cfg: SimConfig,
    topo: Topology,
    routing: Routing,
    roles: RoleMap,
    /// The embedded control plane owning the ground-truth V2P database
    /// (the simulator is one in-process client of `v2p-controlplane`;
    /// reads go through [`Simulation::db`], writes through `ctl.apply`).
    ctl: LocalControlPlane,
    dir: GatewayDirectory,
    /// VM placement (kept in sync with `db` across migrations).
    pub placement: Placement,
    /// Follow-me rules at old hosts: (old node, vip) -> new pip.
    follow_me: FxHashMap<(NodeId, Vip), Pip>,
    agents: Vec<Option<Box<dyn SwitchAgent>>>,
    agent_rngs: Vec<SimRng>,
    host_agents: Vec<Option<Box<dyn HostAgent>>>,
    /// Dense switch tags; `tags[node] == None` for hosts.
    tags: Vec<Option<SwitchTag>>,
    tag_pips: Vec<Pip>,
    links: Vec<LinkState>,
    /// In-flight packet bodies; events and link queues hold handles.
    arena: PacketArena,
    /// Reusable ECMP candidate buffer (avoids a per-hop allocation).
    route_scratch: Vec<LinkId>,
    pub(crate) events: EventQueue<Event>,
    pub(crate) flows: Vec<FlowState>,
    migrations: Vec<Migration>,
    /// Churn-timeline marks, indexed by `Event::ChurnMark`.
    churn_marks: Vec<ChurnMark>,
    /// Per-gateway busy flag for the bounded-queue overload model
    /// (`GatewayConfig::queue_cap > 0`; legacy unbounded mode otherwise).
    gw_busy: Vec<bool>,
    /// Per-gateway bounded packet queue (overload model only).
    gw_queue: Vec<VecDeque<PacketRef>>,
    /// Scheduled faults, indexed by `Event::FaultStart`/`FaultEnd`.
    fault_plan: Vec<FaultEvent>,
    /// Per-node blackout flag (rebooting switches, out gateways).
    blackout: Vec<bool>,
    /// Per-link up flag; downed links are masked out of ECMP.
    link_up: Vec<bool>,
    /// Per-link RNG streams for stochastic-loss draws, forked off the seed
    /// so fault draws never perturb agent randomness. One stream per link
    /// makes the draw sequence a function of that link's enqueue order
    /// alone — required for the sharded engine to reproduce the oracle's
    /// draws no matter how execution interleaves across shards.
    fault_rngs: Vec<SimRng>,
    /// All recorded measurements.
    pub metrics: Metrics,
    /// Structured event tracing and time-series sampling.
    tracer: Tracer,
    /// Engine self-profiling (wall-clock side channel; never feeds back
    /// into simulation state).
    pub(crate) profiler: Profiler,
    /// Per-node flag: a switch that actually holds cache lines (gates
    /// `CacheLookup` trace events, so non-caching switches stay silent).
    caching: Vec<bool>,
    pub(crate) next_pkt_id: u64,
    traffic_matrix: FxHashMap<(u32, u32), u64>,
    misdelivery_policy: MisdeliveryPolicy,
    finalized: bool,
    strategy_name: String,
    /// `Some` when this instance executes as one shard of a
    /// `ShardedSimulation`: side effects are journaled instead of applied
    /// globally. `None` (the default) is the single-threaded oracle path.
    pub(crate) worker: Option<WorkerCtx>,
}

impl Simulation {
    /// Builds an experiment: topology, placement, per-switch agents with the
    /// aggregate `total_cache_entries` split evenly among caching switches,
    /// and per-server host agents.
    pub fn new(
        cfg: SimConfig,
        ft: &FatTreeConfig,
        strategy: &dyn Strategy,
        total_cache_entries: usize,
        vms_per_server: u32,
    ) -> Self {
        let topo = ft.build();
        let routing = Routing::new(ft, &topo);
        let roles = RoleMap::classify(&topo);
        let placement = Placement::uniform(&topo, vms_per_server);
        let ctl = LocalControlPlane::with_db(placement.seed_db());
        let dir = GatewayDirectory::from_topology(&topo);

        // Dense switch tags + metrics registration.
        let mut metrics = Metrics::new();
        let mut tags = vec![None; topo.nodes.len()];
        let mut tag_pips = Vec::new();
        let mut caching_switches = 0usize;
        let mut total_weight = 0.0f64;
        for sw in topo.switches() {
            let tag = SwitchTag(tag_pips.len() as u16);
            tags[sw.id.0 as usize] = Some(tag);
            tag_pips.push(sw.pip);
            let role = roles.role(sw.id).expect("switch role");
            let layer = match role.layer() {
                "ToR" => Layer::Tor,
                "Spine" => Layer::Spine,
                _ => Layer::Core,
            };
            metrics.register_switch(
                tag,
                SwitchInfo {
                    layer,
                    pod: sw.kind.pod(),
                },
            );
            if strategy.caches_at(role) {
                caching_switches += 1;
                total_weight += strategy.cache_weight(role);
            }
        }
        // Budget split: switch i gets total * w_i / sum(w) lines (the
        // homogeneous default reduces to total / #switches, §5).
        let lines_for = |role: sv2p_topology::SwitchRole| -> usize {
            if total_cache_entries == 0 || caching_switches == 0 || !strategy.caches_at(role) {
                return 0;
            }
            let w = strategy.cache_weight(role);
            if total_weight <= 0.0 || w <= 0.0 {
                return 0;
            }
            ((total_cache_entries as f64 * w / total_weight) as usize).max(1)
        };

        let base_rng = SimRng::new(cfg.seed);
        let mut agents: Vec<Option<Box<dyn SwitchAgent>>> = Vec::new();
        let mut agent_rngs = Vec::new();
        let mut host_agents: Vec<Option<Box<dyn HostAgent>>> = Vec::new();
        let mut caching = vec![false; topo.nodes.len()];
        for node in &topo.nodes {
            agent_rngs.push(base_rng.fork(node.id.0 as u64));
            match node.kind {
                k if k.is_switch() => {
                    let role = roles.role(node.id).expect("switch role");
                    let tag = tags[node.id.0 as usize].expect("switch tag");
                    let lines = lines_for(role);
                    caching[node.id.0 as usize] = lines > 0;
                    agents.push(Some(strategy.make_switch_agent(node.id, role, tag, lines)));
                    host_agents.push(None);
                }
                NodeKind::Server { .. } => {
                    agents.push(None);
                    host_agents.push(Some(strategy.make_host_agent(node.id, node.pip)));
                }
                _ => {
                    agents.push(None);
                    host_agents.push(None);
                }
            }
        }

        let links = topo
            .links
            .iter()
            .map(|l| {
                LinkState::new(
                    l.bandwidth_bps,
                    sv2p_simcore::SimDuration::from_nanos(l.delay_ns),
                    cfg.port_buffer_bytes,
                )
            })
            .collect();

        let blackout = vec![false; topo.nodes.len()];
        let gw_busy = vec![false; topo.nodes.len()];
        let gw_queue = vec![VecDeque::new(); topo.nodes.len()];
        let link_up = vec![true; topo.links.len()];
        // Labels far outside the node-id space keep the fault streams
        // disjoint from every per-agent fork.
        let fault_rngs = (0..topo.links.len())
            .map(|i| base_rng.fork((1u64 << 32) + i as u64))
            .collect();

        let tracer = Tracer::new(cfg.telemetry);
        let mut sim = Simulation {
            cfg,
            topo,
            routing,
            roles,
            ctl,
            dir,
            placement,
            follow_me: FxHashMap::default(),
            agents,
            agent_rngs,
            host_agents,
            tags,
            tag_pips,
            links,
            arena: PacketArena::new(),
            route_scratch: Vec::new(),
            events: EventQueue::with_capacity(1 << 16),
            flows: Vec::new(),
            migrations: Vec::new(),
            churn_marks: Vec::new(),
            gw_busy,
            gw_queue,
            fault_plan: Vec::new(),
            blackout,
            link_up,
            fault_rngs,
            metrics,
            tracer,
            profiler: Profiler::new(cfg.profile),
            caching,
            next_pkt_id: 0,
            traffic_matrix: FxHashMap::default(),
            misdelivery_policy: strategy.misdelivery_policy(),
            finalized: false,
            strategy_name: strategy.name().to_string(),
            worker: None,
        };
        if sim.tracer.enabled() && sim.tracer.config().sample_every_ns > 0 {
            // First snapshot at t = 0; workload events scheduled later at the
            // same instant run after it (the calendar is FIFO at equal times).
            sim.events.schedule_at(SimTime::ZERO, Event::TelemetrySample);
        }
        sim
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.events.now()
    }

    /// Read view of the ground-truth V2P database (served by the embedded
    /// control plane; all writes go through `v2p-controlplane`).
    pub fn db(&self) -> &MappingDb {
        self.ctl.db()
    }

    /// The embedded control plane's cumulative op counters.
    pub fn ctl_stats(&self) -> v2p_controlplane::ServiceStats {
        self.ctl.stats()
    }

    /// Events executed by the calendar so far (run manifests).
    pub fn events_executed(&self) -> u64 {
        self.events.events_executed()
    }

    /// The calendar's pending-event high-water mark (run manifests).
    pub fn peak_queue(&self) -> usize {
        self.events.peak_len()
    }

    /// The packet arena's in-flight high-water mark — a proxy for what the
    /// run would have allocated per-packet without the arena (run
    /// manifests).
    pub fn peak_arena(&self) -> usize {
        self.arena.peak()
    }

    /// Packets currently in flight in the arena (profiler occupancy
    /// samples).
    pub(crate) fn arena_live(&self) -> usize {
        self.arena.live()
    }

    /// The telemetry tracer (read events/samples after a run).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Mutable tracer access (harnesses that write trace files).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// The engine self-profiler (disabled unless `SimConfig::profile`).
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Read-only topology access.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Read-only routing access.
    pub fn routing(&self) -> &Routing {
        &self.routing
    }

    /// Read-only role access.
    pub fn roles(&self) -> &RoleMap {
        &self.roles
    }

    /// The gateway directory in use.
    pub fn gateway_directory(&self) -> &GatewayDirectory {
        &self.dir
    }

    /// Registers the workload. Flow ids are assigned densely in call order.
    pub fn add_flows(&mut self, specs: impl IntoIterator<Item = FlowSpec>) {
        for spec in specs {
            let idx = self.flows.len();
            let start = spec.start;
            self.flows.push(FlowState::new(FlowId(idx as u64), spec));
            self.events.schedule_at(start, Event::FlowStart(idx));
        }
    }

    /// Registers a VM migration.
    pub fn add_migration(&mut self, m: Migration) {
        let idx = self.migrations.len();
        self.events.schedule_at(m.at, Event::Migrate(idx));
        self.migrations.push(m);
    }

    /// Registers a generated churn plan: its tenant flows, its migration
    /// schedule, and the timeline marks that feed telemetry and the churn
    /// counters.
    pub fn apply_churn_plan(&mut self, plan: &ChurnPlan) {
        self.add_flows(plan.flows.iter().cloned());
        for &m in &plan.migrations {
            self.add_migration(m);
        }
        self.add_churn_marks(plan.marks.iter().copied());
    }

    /// Schedules churn-timeline marks. Split out of [`Self::apply_churn_plan`]
    /// so the sharded engine can register marks on the driver calendar while
    /// routing the plan's flows to their owner shards.
    pub(crate) fn add_churn_marks(&mut self, marks: impl IntoIterator<Item = ChurnMark>) {
        for mark in marks {
            let idx = self.churn_marks.len();
            self.events.schedule_at(mark.at(), Event::ChurnMark(idx));
            self.churn_marks.push(mark);
        }
    }

    /// The migration table entry scheduled as `Event::Migrate(idx)`.
    pub(crate) fn migration(&self, idx: usize) -> Migration {
        self.migrations[idx]
    }

    /// Runs until the event queue drains (or `end_of_time`).
    pub fn run(&mut self) {
        let horizon = self.cfg.end_of_time.unwrap_or(SimTime::MAX);
        self.run_until(horizon);
    }

    /// Runs all events up to and including instant `t`.
    pub fn run_until(&mut self, t: SimTime) {
        let horizon = match self.cfg.end_of_time {
            Some(h) => h.min(t),
            None => t,
        };
        if self.profiler.enabled() {
            return self.run_until_profiled(horizon);
        }
        while let Some(next) = self.events.peek_time() {
            if next > horizon {
                break;
            }
            let ev = self.events.pop().expect("peeked event");
            self.dispatch(ev.payload);
        }
    }

    /// The profiled twin of the `run_until` loop: identical event order
    /// and dispatch, plus wall-clock attribution per event class and
    /// deterministic occupancy samples every 1024 executed events (keyed
    /// off the calendar's event counter, so two same-seed profiled runs
    /// sample at identical points).
    fn run_until_profiled(&mut self, horizon: SimTime) {
        let run_t0 = std::time::Instant::now();
        while let Some(next) = self.events.peek_time() {
            if next > horizon {
                break;
            }
            let t0 = std::time::Instant::now();
            let ev = self.events.pop().expect("peeked event");
            let t1 = std::time::Instant::now();
            let phase = Self::phase_of(&ev.payload);
            self.dispatch(ev.payload);
            let dispatch_ns = t1.elapsed().as_nanos() as u64;
            self.profiler.phase_add(Phase::Pop, (t1 - t0).as_nanos() as u64);
            self.profiler.phase_add(phase, dispatch_ns);
            if self.events.events_executed() & 1023 == 0 {
                let (ready, wheel, overflow) = self.events.occupancy_breakdown();
                self.profiler
                    .record(HistKind::CalendarLen, (ready + wheel + overflow) as u64);
                self.profiler
                    .record(HistKind::CalendarOverflow, overflow as u64);
                self.profiler
                    .record(HistKind::ArenaLive, self.arena.live() as u64);
            }
        }
        self.profiler.add_run_ns(run_t0.elapsed().as_nanos() as u64);
    }

    /// The profiling phase charged with an event's handler dispatch.
    fn phase_of(ev: &Event) -> Phase {
        match ev {
            Event::FlowStart(_) => Phase::FlowStart,
            Event::UdpSend { .. } => Phase::UdpSend,
            Event::LinkFree(_) => Phase::LinkFree,
            Event::LinkArrival { .. } => Phase::LinkArrival,
            Event::RtoTimer { .. } => Phase::RtoTimer,
            Event::GatewayDone { .. } => Phase::Gateway,
            Event::ReInject { .. } => Phase::ReInject,
            Event::HostForward { .. } => Phase::HostForward,
            Event::Migrate(_) => Phase::Migrate,
            Event::FaultStart(_) | Event::FaultEnd(_) => Phase::Fault,
            Event::ChurnMark(_) => Phase::ChurnMark,
            Event::TelemetrySample => Phase::TelemetrySample,
        }
    }

    /// Per-(src_vm, dst_vm) data-packet counts since the last
    /// [`Self::clear_traffic_matrix`] (requires
    /// `SimConfig::record_traffic_matrix`).
    pub fn traffic_matrix(&self) -> &FxHashMap<(u32, u32), u64> {
        &self.traffic_matrix
    }

    /// Resets traffic-matrix counters (Controller epochs).
    pub fn clear_traffic_matrix(&mut self) {
        self.traffic_matrix.clear();
    }

    /// Installs `entries` into the switch agent at `node` (Controller
    /// baseline; clears previously installed state first when `clear`).
    pub fn install_cache_entries(
        &mut self,
        node: NodeId,
        clear: bool,
        entries: &[(Vip, Pip)],
    ) {
        if !self.install_entries_silent(node, clear, entries) {
            return;
        }
        if self.tracer.enabled() {
            let t = self.events.now().as_nanos();
            let layer = self.layer_name(node);
            for &(vip, pip) in entries {
                let mut ev = TraceEvent::new(t, EventKind::CacheOp).at_node(node.0);
                ev.op = Some("install");
                ev.vip = Some(vip.0);
                ev.pip = Some(pip.0);
                ev.layer = Some(layer);
                self.tracer.record(ev);
            }
        }
    }

    /// The agent-mutation half of [`Self::install_cache_entries`], shared
    /// with the sharded engine (which installs silently on the owning shard
    /// and traces once on the master). Returns false if `node` has no
    /// switch agent.
    pub(crate) fn install_entries_silent(
        &mut self,
        node: NodeId,
        clear: bool,
        entries: &[(Vip, Pip)],
    ) -> bool {
        let Some(agent) = self.agents[node.0 as usize].as_mut() else {
            return false;
        };
        if clear {
            agent.clear_installed();
        }
        for &(vip, pip) in entries {
            agent.install(vip, pip);
        }
        true
    }

    /// Control-plane role reassignment (§4 "Gateway migration"): the switch
    /// keeps its cache ("the cache state does not require migration") but
    /// from now on behaves per the new role's Table-1 policies.
    pub fn reassign_switch_role(&mut self, node: NodeId, role: sv2p_topology::SwitchRole) {
        self.roles.set_role(node, role);
    }

    /// Replaces a switch's agent outright (role migration where the
    /// operator prefers a cold cache "rebuilt at the destination").
    pub fn replace_switch_agent(&mut self, node: NodeId, agent: Box<dyn SwitchAgent>) {
        assert!(
            self.agents[node.0 as usize].is_some(),
            "node {node:?} is not a switch"
        );
        self.agents[node.0 as usize] = Some(agent);
    }

    /// Registers a fault plan: every event's start and end are pushed onto
    /// the queue up front, in plan order, so same-instant faults and packet
    /// events tie-break deterministically (the queue is FIFO at equal
    /// times). May be called mid-run; instants already in the past take
    /// effect immediately.
    pub fn apply_fault_plan(&mut self, plan: FaultPlan) {
        let now = self.now();
        for ev in plan.events() {
            let idx = self.fault_plan.len();
            self.events
                .schedule_at(ev.at().max(now), Event::FaultStart(idx));
            self.events
                .schedule_at(ev.end().max(now), Event::FaultEnd(idx));
            self.fault_plan.push(ev.clone());
        }
    }

    /// Injects a switch failure: the switch's volatile state (its cache) is
    /// lost, as after a reboot. Forwarding continues — SwitchV2P's caches
    /// are opportunistic, so correctness must not depend on them (§2.1).
    pub fn fail_switch(&mut self, node: NodeId) {
        let now = self.now();
        self.metrics.record_fault(now, format!("reboot sw{}", node.0));
        self.cold_reset_switch(node);
    }

    /// Fails every switch at once (the harshest reboot storm).
    pub fn fail_all_switches(&mut self) {
        let now = self.now();
        self.metrics.record_fault(now, "reboot storm: all switches");
        for sw in 0..self.agents.len() {
            if self.agents[sw].is_some() {
                self.cold_reset_switch(NodeId(sw as u32));
            }
        }
    }

    /// Cold-starts one switch: its agent loses all volatile state, and if it
    /// is a ToR the attached servers' host agents reset with it (their
    /// vswitches restart when the rack's uplink switch reboots). Shared by
    /// [`Self::fail_switch`], [`Self::fail_all_switches`] and scheduled
    /// [`FaultEvent::SwitchReboot`]s so every reboot path clears per-switch
    /// state uniformly.
    pub(crate) fn cold_reset_switch(&mut self, node: NodeId) {
        if let Some(agent) = self.agents[node.0 as usize].as_mut() {
            agent.reset();
        }
        let is_tor = self
            .roles
            .role(node)
            .is_some_and(|r| r.layer() == "ToR");
        if is_tor {
            for &link in &self.topo.out_links[node.0 as usize] {
                let peer = self.topo.link(link).to;
                if let Some(host) = self.host_agents[peer.0 as usize].as_mut() {
                    host.reset();
                }
            }
        }
    }

    /// Bytes processed by each switch, with its identity (Figures 7-8).
    ///
    /// Rows follow `topology().switches()` enumeration order — ascending
    /// `NodeId` — which is what makes figure output and the sharded
    /// engine's element-wise merge deterministic across engines, shard
    /// counts, and runs.
    pub fn per_switch_bytes(&self) -> Vec<(NodeId, NodeKind, u64)> {
        self.topo
            .switches()
            .map(|sw| {
                let tag = self.tags[sw.id.0 as usize].expect("tag");
                (sw.id, sw.kind, self.metrics.bytes_by_switch[tag.0 as usize])
            })
            .collect()
    }

    /// Per-switch cache occupancy keyed by tag (capacity audits).
    ///
    /// Same ordering contract as [`Simulation::per_switch_bytes`]: rows
    /// follow `topology().switches()` enumeration order (ascending
    /// `NodeId`), so the sharded engine can splice owner-shard occupancies
    /// positionally.
    pub fn cache_occupancy(&self) -> Vec<(SwitchTag, usize)> {
        self.topo
            .switches()
            .map(|sw| {
                let tag = self.tags[sw.id.0 as usize].expect("tag");
                let occ = self.agents[sw.id.0 as usize]
                    .as_ref()
                    .map_or(0, |a| a.occupancy());
                (tag, occ)
            })
            .collect()
    }

    /// Every cached `(switch, vip, pip)` line that disagrees with the
    /// ground-truth mapping database — the stale leftovers of migrations.
    /// Rows follow `topology().switches()` order (same contract as
    /// [`Self::cache_occupancy`]).
    pub fn stale_cache_entries(&self) -> Vec<(NodeId, Vip, Pip)> {
        let mut out = Vec::new();
        for sw in self.topo.switches() {
            if let Some(agent) = self.agents[sw.id.0 as usize].as_ref() {
                for (vip, pip) in agent.entries() {
                    if self.ctl.db().lookup(vip) != Some(pip) {
                        out.push((sw.id, vip, pip));
                    }
                }
            }
        }
        out
    }

    /// Folds receiver/sender statistics into the metrics and returns the
    /// summary. Safe to call repeatedly; the fold happens once.
    pub fn summary(&mut self) -> sv2p_metrics::RunSummary {
        if !self.finalized {
            self.finalized = true;
            for f in &self.flows {
                self.metrics.reordered_segments += f.tcp_rx.reordered_segments;
                if let Some(tx) = &f.tcp_tx {
                    self.metrics.retransmissions += tx.retransmits;
                }
            }
            for l in &self.links {
                // Link-level drops of data packets were recorded at enqueue
                // time; this asserts the two counts agree.
                let _ = l;
            }
        }
        let name = self.strategy_name.clone();
        self.metrics.summary(&name)
    }

    // ------------------------------------------------------------------
    // Event dispatch
    // ------------------------------------------------------------------

    fn dispatch(&mut self, ev: Event) {
        match ev {
            Event::FlowStart(idx) => self.on_flow_start(idx),
            Event::UdpSend { flow, idx } => self.on_udp_send(flow, idx),
            Event::LinkFree(link) => self.on_link_free(link),
            Event::LinkArrival { link, pkt } => self.on_link_arrival(link, pkt),
            Event::RtoTimer { flow, gen } => self.on_rto_timer(flow, gen),
            Event::GatewayDone { node, pkt } => self.on_gateway_done(node, pkt),
            Event::ReInject { node, pkt } => self.handle_at_switch(node, pkt, None, false),
            Event::HostForward { node, pkt } => self.on_host_forward(node, pkt),
            Event::Migrate(idx) => self.on_migrate(idx),
            Event::FaultStart(idx) => self.on_fault_start(idx),
            Event::FaultEnd(idx) => self.on_fault_end(idx),
            Event::ChurnMark(idx) => self.on_churn_mark(idx),
            Event::TelemetrySample => self.on_telemetry_sample(),
        }
    }

    // ------------------------------------------------------------------
    // Telemetry
    // ------------------------------------------------------------------

    /// Ends a packet's life as a drop: records the metrics counter and a
    /// trace event (data packets only — protocol packets vanish silently,
    /// as before) and frees the arena slot.
    fn drop_packet(
        &mut self,
        h: PacketRef,
        node: NodeId,
        cause: DropCause,
        label: &'static str,
    ) {
        let (is_data, flow, id) = {
            let p = self.arena.get(h);
            (matches!(p.kind, PacketKind::Data), p.flow.0, p.id.0)
        };
        if is_data {
            self.metrics.record_drop(cause);
            if self.tracer.enabled() {
                self.trace_drop_ids(flow, id, node, label);
            }
        }
        self.arena.free(h);
    }

    /// Drop tracing from already-captured packet ids.
    fn trace_drop_ids(&mut self, flow: u64, pkt: u64, node: NodeId, cause: &'static str) {
        let mut ev = TraceEvent::new(self.events.now().as_nanos(), EventKind::Drop)
            .packet(flow, pkt)
            .at_node(node.0);
        ev.cause = Some(cause);
        self.trace(ev);
    }

    /// Lowercase wire name of a switch's layer.
    fn layer_name(&self, node: NodeId) -> LayerName {
        match self.roles.role(node).map(|r| r.layer()) {
            Some("ToR") => "tor",
            Some("Spine") => "spine",
            _ => "core",
        }
    }

    /// Takes one time-series snapshot and re-arms the sampler while any
    /// other event remains pending.
    fn on_telemetry_sample(&mut self) {
        let now = self.events.now();
        let (mut q_total, mut q_max) = (0u64, 0u64);
        for l in &self.links {
            let q = l.queue_len() as u64;
            q_total += q;
            q_max = q_max.max(q);
        }
        let (mut occ_tor, mut occ_spine, mut occ_core) = (0u64, 0u64, 0u64);
        for sw in self.topo.switches() {
            let occ = self.agents[sw.id.0 as usize]
                .as_ref()
                .map_or(0, |a| a.occupancy()) as u64;
            match self.roles.role(sw.id).map(|r| r.layer()) {
                Some("ToR") => occ_tor += occ,
                Some("Spine") => occ_spine += occ,
                _ => occ_core += occ,
            }
        }
        let widx = (now.as_nanos() / self.metrics.window_len_ns()) as usize;
        let hit_rate_window = self.metrics.windows.get(widx).and_then(|w| w.hit_rate());
        self.tracer.samples.push(Sample {
            t_ns: now.as_nanos(),
            events_executed: self.events.events_executed(),
            pending_events: self.events.len() as u64,
            queue_pkts_total: q_total,
            queue_pkts_max: q_max,
            occ_tor,
            occ_spine,
            occ_core,
            hit_rate_window,
            hit_rate_cum: self.metrics.hit_rate(),
            gateway_pkts_cum: self.metrics.gateway_packets,
        });
        if !self.events.is_empty() {
            let period = SimDuration::from_nanos(self.tracer.config().sample_every_ns);
            self.events.schedule_in(period, Event::TelemetrySample);
        }
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    fn on_fault_start(&mut self, idx: usize) {
        let now = self.now();
        let ev = self.fault_plan[idx].clone();
        self.metrics.record_fault(now, ev.label());
        match ev {
            FaultEvent::SwitchReboot { node, .. } | FaultEvent::GatewayOutage { node, .. } => {
                self.blackout[node.0 as usize] = true;
            }
            FaultEvent::LinkDown { link, .. } => {
                self.link_up[link.0 as usize] = false;
            }
            FaultEvent::LossRate { link, rate, .. } => match link {
                Some(l) => self.links[l.0 as usize].loss_rate += rate,
                None => {
                    for l in &mut self.links {
                        l.loss_rate += rate;
                    }
                }
            },
        }
    }

    fn on_fault_end(&mut self, idx: usize) {
        let now = self.now();
        let ev = self.fault_plan[idx].clone();
        self.metrics
            .record_fault(now, format!("{} cleared", ev.label()));
        match ev {
            FaultEvent::SwitchReboot { node, .. } => {
                self.blackout[node.0 as usize] = false;
                // Back up, but cold: the reboot lost all volatile state.
                self.cold_reset_switch(node);
            }
            FaultEvent::GatewayOutage { node, .. } => {
                self.blackout[node.0 as usize] = false;
            }
            FaultEvent::LinkDown { link, .. } => {
                self.link_up[link.0 as usize] = true;
            }
            FaultEvent::LossRate { link, rate, .. } => {
                // Subtract rather than zero so overlapping windows compose.
                match link {
                    Some(l) => {
                        let lr = &mut self.links[l.0 as usize].loss_rate;
                        *lr = (*lr - rate).max(0.0);
                    }
                    None => {
                        for l in &mut self.links {
                            l.loss_rate = (l.loss_rate - rate).max(0.0);
                        }
                    }
                }
            }
        }
    }

    fn on_flow_start(&mut self, idx: usize) {
        let now = self.now();
        let id = self.flows[idx].id;
        self.m_flow_started(id);
        match self.flows[idx].spec.kind.clone() {
            FlowKind::Tcp { bytes } => {
                let mut tx = TcpSender::new(self.cfg.tcp, bytes);
                let ops = tx.start(now);
                self.flows[idx].tcp_tx = Some(tx);
                self.apply_sender_ops(idx, ops);
            }
            FlowKind::Udp { schedule } => {
                for (i, &(t, _)) in schedule.sends.iter().enumerate() {
                    self.sched_at(t.max(now), Event::UdpSend { flow: idx, idx: i });
                }
            }
        }
    }

    fn on_udp_send(&mut self, flow: usize, idx: usize) {
        let (len, first) = match &self.flows[flow].spec.kind {
            FlowKind::Udp { schedule } => (schedule.sends[idx].1, idx == 0),
            FlowKind::Tcp { .. } => unreachable!("UdpSend on TCP flow"),
        };
        self.send_flow_packet(flow, idx as u32, len, TcpFlags::default(), first, false);
    }

    fn on_rto_timer(&mut self, flow: usize, gen: u64) {
        // Lazy cancellation: every re-arm bumps the flow's generation, so
        // a superseded timer event fires as a no-op.
        if gen != self.flows[flow].rto_gen || self.flows[flow].completed {
            return;
        }
        let now = self.now();
        let ops = match self.flows[flow].tcp_tx.as_mut() {
            Some(tx) => tx.on_rto(now),
            None => return,
        };
        self.apply_sender_ops(flow, ops);
    }

    fn apply_sender_ops(&mut self, flow: usize, ops: SenderOps) {
        for seg in &ops.segments {
            let first = seg.seq == 0 && !seg.retransmit;
            self.send_flow_packet(
                flow,
                seg.seq as u32,
                seg.len,
                TcpFlags::default(),
                first,
                false,
            );
        }
        let f = &mut self.flows[flow];
        let complete = f.tcp_tx.as_ref().is_some_and(|tx| tx.is_complete());
        if complete && !f.completed {
            f.completed = true;
            let id = f.id;
            // Invalidate any pending retransmission timer.
            f.rto_gen += 1;
            self.m_flow_completed(id);
        } else if let Some(deadline) = ops.arm_rto {
            f.rto_gen += 1;
            let gen = f.rto_gen;
            self.sched_at(deadline, Event::RtoTimer { flow, gen });
        }
    }

    /// Builds and transmits one tenant packet for `flow`. `reverse` sends
    /// from the flow's destination back to its source (ACKs).
    #[allow(clippy::too_many_arguments)]
    fn send_flow_packet(
        &mut self,
        flow: usize,
        seq: u32,
        payload: u32,
        flags: TcpFlags,
        first_of_flow: bool,
        reverse: bool,
    ) {
        let now = self.now();
        let f = &self.flows[flow];
        let (src_vm, dst_vm) = if reverse {
            (f.spec.dst_vm, f.spec.src_vm)
        } else {
            (f.spec.src_vm, f.spec.dst_vm)
        };
        let src_vip = self.placement.vips[src_vm];
        let dst_vip = self.placement.vips[dst_vm];
        let src_node = self.placement.node_of(src_vm);
        let src_pip = self.placement.pip_of(src_vm);
        let proto = if f.is_tcp() {
            Protocol::Tcp
        } else {
            Protocol::Udp
        };
        let (src_port, dst_port) = if reverse {
            (80, f.src_port)
        } else {
            (f.src_port, 80)
        };
        let flow_id = f.id;
        // Per-flow, per-direction gateway stickiness.
        let gw_key = flow_id.0 * 2 + reverse as u64;

        let resolution = {
            let agent = self.host_agents[src_node.0 as usize]
                .as_mut()
                .expect("sending node has a host agent");
            agent.resolve(now, self.ctl.db(), dst_vip, gw_key)
        };
        let (dst_pip, resolved) = match resolution {
            HostResolution::Direct(pip) => (pip, true),
            HostResolution::Gateway => (self.dir.pick(gw_key), false),
            HostResolution::FirstHopTor => (Pip(0), false),
        };

        let pkt = Packet {
            id: self.alloc_pkt_id(),
            flow: flow_id,
            kind: PacketKind::Data,
            outer: OuterHeader {
                src_pip,
                dst_pip,
                resolved,
            },
            inner: InnerHeader {
                src_vip,
                dst_vip,
                src_port,
                dst_port,
                protocol: proto,
                seq,
                ack: if flags.ack { seq } else { 0 },
                flags,
            },
            opts: TunnelOptions::default(),
            payload,
            switch_hops: 0,
            sent_ns: now.as_nanos(),
            first_of_flow,
            visited_gateway: false,
        };

        self.metrics.record_data_sent(now);
        if self.tracer.enabled() {
            let mut ev = TraceEvent::new(now.as_nanos(), EventKind::PacketSent)
                .packet(flow_id.0, pkt.id.0)
                .at_node(src_node.0);
            ev.resolved = Some(resolved);
            ev.vip = Some(dst_vip.0);
            self.trace(ev);
        }
        if self.cfg.record_traffic_matrix {
            *self
                .traffic_matrix
                .entry((src_vm as u32, dst_vm as u32))
                .or_insert(0) += 1;
        }
        let h = self.arena.alloc(pkt);
        self.transmit_from_host(src_node, h);
    }

    fn alloc_pkt_id(&mut self) -> PacketId {
        match self.worker.as_mut() {
            None => {
                let id = PacketId(self.next_pkt_id);
                self.next_pkt_id += 1;
                id
            }
            Some(w) => {
                // Shards hand out provisional ids; with tracing on, the
                // allocation is journaled so the driver can assign the
                // global id and rewrite trace events to it.
                let id = PacketId(w.provisional_pkt_id());
                if self.tracer.enabled() {
                    w.cur_ops.push(JournalOp::PktAlloc(id.0));
                }
                id
            }
        }
    }

    /// Sends the packet out of host `node`'s NIC.
    fn transmit_from_host(&mut self, node: NodeId, pkt: PacketRef) {
        let uplink = self.topo.out_links[node.0 as usize]
            .first()
            .copied()
            .expect("host has an uplink");
        if !self.link_up[uplink.0 as usize] {
            // The host's only uplink is down: nowhere to go.
            self.drop_packet(pkt, node, DropCause::Unroutable, "unroutable");
            return;
        }
        self.enqueue_on_link(uplink, pkt);
    }

    fn enqueue_on_link(&mut self, link: LinkId, pkt: PacketRef) {
        let wire = self.arena.get(pkt).wire_size();
        let from_node = self.topo.link(link).from;
        let l = &mut self.links[link.0 as usize];
        // Draw from the dedicated fault stream only while loss is active, so
        // a healthy run consumes no fault randomness at all.
        let outcome = if l.loss_rate > 0.0 {
            let draw = self.fault_rngs[link.0 as usize].uniform();
            l.enqueue_with_loss(pkt, wire, draw)
        } else {
            l.enqueue(pkt, wire)
        };
        match outcome {
            EnqueueOutcome::StartTx(ser) => {
                self.sched_in(ser, Event::LinkFree(link));
            }
            EnqueueOutcome::Queued => {}
            EnqueueOutcome::Dropped => {
                self.drop_packet(pkt, from_node, DropCause::Queue, "queue");
            }
            EnqueueOutcome::Lost => {
                self.drop_packet(pkt, from_node, DropCause::Loss, "loss");
            }
        }
    }

    fn on_link_free(&mut self, link: LinkId) {
        let l = &mut self.links[link.0 as usize];
        let (sent, next_ser) = l.tx_done();
        let delay = l.delay;
        if let Some(ser) = next_ser {
            self.sched_in(ser, Event::LinkFree(link));
        }
        self.sched_in(delay, Event::LinkArrival { link, pkt: sent });
    }

    fn on_link_arrival(&mut self, link: LinkId, pkt: PacketRef) {
        let dl = self.topo.link(link);
        let node = dl.to;
        let from = dl.from;
        match self.topo.node(node).kind {
            k if k.is_switch() => {
                let ingress = match self.topo.node(from).kind {
                    fk if fk.is_host() => Some(self.topo.node(from).pip),
                    _ => None,
                };
                self.handle_at_switch(node, pkt, ingress, true);
            }
            NodeKind::Server { .. } => self.handle_at_server(node, pkt),
            NodeKind::Gateway { .. } => self.handle_at_gateway(node, pkt),
            _ => unreachable!(),
        }
    }

    // ------------------------------------------------------------------
    // Switch logic
    // ------------------------------------------------------------------

    fn handle_at_switch(
        &mut self,
        node: NodeId,
        pkt: PacketRef,
        ingress: Option<Pip>,
        count: bool,
    ) {
        let idx = node.0 as usize;
        let now = self.events.now();
        if self.blackout[idx] {
            // A rebooting switch drops everything that traverses it.
            self.drop_packet(pkt, node, DropCause::Blackout, "blackout");
            return;
        }
        let tag = self.tags[idx].expect("switch tag");
        let (is_data, wire, flow_id, pkt_id, was_unresolved, first_of_flow, dst_pip) = {
            let p = self.arena.get_mut(pkt);
            if count {
                p.switch_hops = p.switch_hops.saturating_add(1);
            }
            (
                matches!(p.kind, PacketKind::Data),
                p.wire_size(),
                p.flow.0,
                p.id.0,
                !p.outer.resolved,
                p.first_of_flow,
                p.outer.dst_pip,
            )
        };
        if count {
            self.metrics.record_switch_bytes(tag, wire);
        }
        let trace = self.tracer.enabled();
        // Protocol packets carry the default FlowId(0); tracing them would
        // pollute flow 0's packet trace, so lifecycle events are data-only.
        if trace && count && is_data {
            self.trace(
                TraceEvent::new(now.as_nanos(), EventKind::SwitchIngress)
                    .packet(flow_id, pkt_id)
                    .at_node(node.0),
            );
        }
        let was_unresolved = is_data && was_unresolved;
        let role = self.roles.role(node).expect("switch role");
        let dst_attached = self.dst_attached(node, dst_pip);

        let output = {
            let topo = &self.topo;
            let tag_pips = &self.tag_pips;
            let pod_of =
                move |pip: Pip| -> Option<u16> { topo.node_by_pip(pip).and_then(|n| topo.node(n).kind.pod()) };
            let pip_of_tag = move |t: SwitchTag| tag_pips[t.0 as usize];
            let node_info = topo.node(node);
            let mut ctx = SwitchCtx {
                now,
                node,
                tag,
                switch_pip: node_info.pip,
                role,
                my_pod: node_info.kind.pod(),
                ingress_host: ingress,
                dst_attached,
                db: self.ctl.db(),
                rng: &mut self.agent_rngs[idx],
                base_rtt: self.cfg.base_rtt,
                pod_of: &pod_of,
                pip_of_tag: &pip_of_tag,
                trace_cache_ops: trace,
            };
            match self.agents[idx].as_mut() {
                Some(agent) => agent.on_packet(&mut ctx, self.arena.get_mut(pkt)),
                None => AgentOutput::forward(),
            }
        };

        if output.cache_hit {
            self.metrics.record_cache_hit(tag, first_of_flow);
            if is_data {
                // A hit that rewrote the packet to a PIP the control plane
                // has since migrated away from is a *stale* hit: this packet
                // is headed for a misdelivery. The gap between the migration
                // and the last stale hit is the strategy's recovery time.
                let (vip, cur_dst) = {
                    let p = self.arena.get(pkt);
                    (p.inner.dst_vip, p.outer.dst_pip)
                };
                if self.ctl.db().lookup(vip) != Some(cur_dst) {
                    let age = self.metrics.record_stale_hit(vip.0, now);
                    if trace {
                        let mut ev = TraceEvent::new(now.as_nanos(), EventKind::StaleHit)
                            .packet(flow_id, pkt_id)
                            .at_node(node.0);
                        ev.vip = Some(vip.0);
                        ev.pip = Some(cur_dst.0);
                        ev.layer = Some(self.layer_name(node));
                        ev.latency_ns = age;
                        self.trace(ev);
                    }
                }
            }
        }
        if output.spill_inserted {
            self.metrics.spillover_inserts += 1;
        }
        if output.promotion_inserted {
            self.metrics.promotion_inserts += 1;
        }
        if trace {
            // A data packet that arrived unresolved at a switch holding cache
            // lines probed that cache; the agent reported hit/miss.
            if was_unresolved && self.caching[idx] {
                let mut ev = TraceEvent::new(now.as_nanos(), EventKind::CacheLookup)
                    .packet(flow_id, pkt_id)
                    .at_node(node.0);
                ev.hit = Some(output.cache_hit);
                ev.layer = Some(self.layer_name(node));
                self.trace(ev);
            }
            if !output.cache_ops.is_empty() {
                let layer = self.layer_name(node);
                for op in &output.cache_ops {
                    let mut ev = TraceEvent::new(now.as_nanos(), EventKind::CacheOp)
                        .at_node(node.0);
                    if is_data {
                        ev = ev.packet(flow_id, pkt_id);
                    }
                    ev.op = Some(op.name());
                    ev.vip = Some(op.vip().0);
                    ev.pip = op.pip().map(|p| p.0);
                    ev.layer = Some(layer);
                    self.trace(ev);
                }
            }
        }
        for mut extra in output.emit {
            extra.id = self.alloc_pkt_id();
            extra.sent_ns = now.as_nanos();
            match extra.kind {
                PacketKind::Learning(_) => self.metrics.learning_packets += 1,
                PacketKind::Invalidation(_) => self.metrics.invalidation_packets += 1,
                PacketKind::Data => {}
            }
            let eh = self.arena.alloc(extra);
            self.route_from_switch(node, eh);
        }
        match output.action {
            PacketAction::Forward => self.route_from_switch(node, pkt),
            PacketAction::Delay(d) => {
                self.sched_in(d, Event::ReInject { node, pkt });
            }
            PacketAction::Drop => {
                self.drop_packet(pkt, node, DropCause::Queue, "queue");
            }
            PacketAction::Consume => {
                self.arena.free(pkt);
            }
        }
    }

    fn route_from_switch(&mut self, node: NodeId, pkt: PacketRef) {
        let (dst_pip, key) = {
            let p = self.arena.get(pkt);
            (p.outer.dst_pip, p.ecmp_key())
        };
        let Some(dst_node) = self.topo.node_by_pip(dst_pip) else {
            // Unroutable (e.g. a Bluebird packet no ToR translated): drop.
            self.drop_packet(pkt, node, DropCause::Unroutable, "unroutable");
            return;
        };
        if dst_node == node {
            // Addressed to this switch but the agent chose not to consume it.
            self.arena.free(pkt);
            return;
        }
        let next = {
            let link_up = &self.link_up;
            let usable = |l: LinkId| link_up[l.0 as usize];
            self.routing.next_link_filtered_into(
                &self.topo,
                node,
                dst_node,
                key,
                &usable,
                &mut self.route_scratch,
            )
        };
        match next {
            Some(link) => self.enqueue_on_link(link, pkt),
            None => {
                // No route, or every candidate port is down.
                self.drop_packet(pkt, node, DropCause::Unroutable, "unroutable");
            }
        }
    }

    fn dst_attached(&self, node: NodeId, dst_pip: Pip) -> bool {
        match self.topo.node_by_pip(dst_pip) {
            Some(dst_node) if self.topo.node(dst_node).kind.is_host() => {
                self.routing.tor_of(&self.topo, dst_node) == node
            }
            _ => false,
        }
    }

    // ------------------------------------------------------------------
    // Gateway logic
    // ------------------------------------------------------------------

    fn handle_at_gateway(&mut self, node: NodeId, pkt: PacketRef) {
        let now = self.now();
        if self.blackout[node.0 as usize] {
            // An out gateway answers nothing; senders ride their RTO.
            self.drop_packet(pkt, node, DropCause::Blackout, "blackout");
            return;
        }
        let translatable = {
            let p = self.arena.get(pkt);
            matches!(p.kind, PacketKind::Data) && !p.outer.resolved
        };
        if translatable {
            self.metrics.record_gateway_packet(now);
            if self.tracer.enabled() {
                let (flow, id) = {
                    let p = self.arena.get(pkt);
                    (p.flow.0, p.id.0)
                };
                self.trace(
                    TraceEvent::new(now.as_nanos(), EventKind::GatewayIngress)
                        .packet(flow, id)
                        .at_node(node.0),
                );
            }
            let cap = self.cfg.gateway.queue_cap as usize;
            if cap == 0 {
                // Legacy unbounded model: every packet is processed
                // concurrently after the fixed service delay.
                let delay = self.cfg.gateway.processing();
                self.sched_in(delay, Event::GatewayDone { node, pkt });
            } else if !self.gw_busy[node.0 as usize] {
                self.gw_busy[node.0 as usize] = true;
                let delay = self.cfg.gateway.processing();
                self.sched_in(delay, Event::GatewayDone { node, pkt });
            } else if self.gw_queue[node.0 as usize].len() < cap {
                self.gw_queue[node.0 as usize].push_back(pkt);
            } else {
                // Overloaded: the bounded queue sheds the arrival.
                self.drop_packet(pkt, node, DropCause::GatewayShed, "gateway-shed");
            }
        } else {
            // Resolved tenant traffic or protocol packets have no business
            // at a gateway.
            self.drop_packet(pkt, node, DropCause::Unroutable, "unroutable");
        }
    }

    /// Bounded-queue service discipline: each completed translation pulls
    /// the next queued packet into processing (or clears the busy flag).
    /// No-op in the legacy unbounded model.
    fn gateway_pop_next(&mut self, node: NodeId) {
        if self.cfg.gateway.queue_cap == 0 {
            return;
        }
        if let Some(next) = self.gw_queue[node.0 as usize].pop_front() {
            let delay = self.cfg.gateway.processing();
            self.sched_in(delay, Event::GatewayDone { node, pkt: next });
        } else {
            self.gw_busy[node.0 as usize] = false;
        }
    }

    fn on_gateway_done(&mut self, node: NodeId, pkt: PacketRef) {
        if self.blackout[node.0 as usize] {
            // The outage began while this packet was in processing.
            self.drop_packet(pkt, node, DropCause::Blackout, "blackout");
            self.gateway_pop_next(node);
            return;
        }
        let dst_vip = self.arena.get(pkt).inner.dst_vip;
        match self.ctl.db().lookup(dst_vip) {
            Some(pip) => {
                let (flow, id) = {
                    let p = self.arena.get_mut(pkt);
                    p.outer.dst_pip = pip;
                    p.outer.resolved = true;
                    p.visited_gateway = true;
                    // The gateway translated from ground truth; any
                    // stale-route markings are now moot.
                    p.opts.misdelivery = None;
                    p.opts.hit_switch = None;
                    (p.flow.0, p.id.0)
                };
                if self.tracer.enabled() {
                    let mut ev =
                        TraceEvent::new(self.now().as_nanos(), EventKind::GatewayDone)
                            .packet(flow, id)
                            .at_node(node.0);
                    ev.vip = Some(dst_vip.0);
                    ev.pip = Some(pip.0);
                    self.trace(ev);
                }
                self.transmit_from_host(node, pkt);
            }
            None => {
                self.drop_packet(pkt, node, DropCause::Unroutable, "unroutable");
            }
        }
        self.gateway_pop_next(node);
    }

    // ------------------------------------------------------------------
    // Server logic
    // ------------------------------------------------------------------

    fn handle_at_server(&mut self, node: NodeId, pkt: PacketRef) {
        if !matches!(self.arena.get(pkt).kind, PacketKind::Data) {
            // A learning packet that no ToR consumed: harmlessly absorbed.
            self.arena.free(pkt);
            return;
        }
        let vip = self.arena.get(pkt).inner.dst_vip;
        // Hosting is derived straight from the placement (the per-node
        // VIP-set map it replaced was ~O(VMs) of HashSet overhead at
        // million-VM scale, and `relocate` already keeps placement current).
        let is_hosted = self
            .placement
            .index_of(vip)
            .is_some_and(|vm| self.placement.node_of(vm) == node);
        if !is_hosted {
            self.on_misdelivery(node, pkt);
            return;
        }

        // The packet's life ends here: capture everything delivery needs,
        // then release the slot before the transport reacts (its reaction
        // may allocate ACKs or retransmits into the arena).
        let (flow_id, pkt_id, is_ack, ack_no, seq, payload, sent_ns, hops, first) = {
            let p = self.arena.get(pkt);
            (
                p.flow,
                p.id.0,
                p.inner.flags.ack,
                p.inner.ack,
                p.inner.seq,
                p.payload,
                p.sent_ns,
                p.switch_hops,
                p.first_of_flow,
            )
        };
        self.arena.free(pkt);

        let now = self.now();
        let flow = flow_id.0 as usize;
        debug_assert!(flow < self.flows.len(), "unknown flow id");

        if is_ack {
            // ACK back at the sender.
            let ops = match self.flows[flow].tcp_tx.as_mut() {
                Some(tx) => tx.on_ack(now, ack_no as u64),
                None => return,
            };
            self.apply_sender_ops(flow, ops);
            return;
        }

        // Forward-direction data.
        self.m_delivery(sent_ns, hops);
        if self.tracer.enabled() {
            let mut ev = TraceEvent::new(now.as_nanos(), EventKind::Delivery)
                .packet(flow_id.0, pkt_id)
                .at_node(node.0);
            ev.hops = Some(hops);
            ev.latency_ns = Some(now.as_nanos().saturating_sub(sent_ns));
            self.trace(ev);
        }
        if first {
            self.m_first_packet_delivered(flow_id);
        }
        if self.flows[flow].is_tcp() {
            let ack = self.flows[flow].tcp_rx.on_data(seq as u64, payload);
            // Emit a pure ACK back to the sender.
            self.send_flow_packet(
                flow,
                ack as u32,
                0,
                TcpFlags {
                    ack: true,
                    ..TcpFlags::default()
                },
                false,
                true,
            );
        } else {
            let f = &mut self.flows[flow];
            f.udp_delivered += 1;
            if f.udp_delivered >= f.udp_total && !f.completed {
                f.completed = true;
                let id = f.id;
                self.m_flow_completed(id);
            }
        }
    }

    fn on_misdelivery(&mut self, node: NodeId, pkt: PacketRef) {
        let now = self.now();
        self.metrics.record_misdelivery(now);
        if self.tracer.enabled() {
            let (flow, id) = {
                let p = self.arena.get(pkt);
                (p.flow.0, p.id.0)
            };
            self.trace(
                TraceEvent::new(now.as_nanos(), EventKind::Misdelivery)
                    .packet(flow, id)
                    .at_node(node.0),
            );
        }
        self.sched_in(
            self.cfg.misdelivery_penalty,
            Event::HostForward { node, pkt },
        );
    }

    fn on_host_forward(&mut self, node: NodeId, pkt: PacketRef) {
        let vip = self.arena.get(pkt).inner.dst_vip;
        match self.misdelivery_policy {
            MisdeliveryPolicy::FollowMe => {
                match self.follow_me.get(&(node, vip)) {
                    Some(&new_pip) => {
                        let p = self.arena.get_mut(pkt);
                        p.outer.dst_pip = new_pip;
                        p.outer.resolved = true;
                    }
                    None => {
                        // No rule: the VM is simply gone; drop.
                        self.drop_packet(pkt, node, DropCause::Unroutable, "unroutable");
                        return;
                    }
                }
            }
            MisdeliveryPolicy::ToGateway => {
                let gw = self.dir.pick(self.arena.get(pkt).flow.0 * 2);
                // Keep the original outer source so the ToR can recognize
                // the forward as a misdelivery and tag it (§3.3), and keep
                // the hit-switch option so it can target invalidations.
                let p = self.arena.get_mut(pkt);
                p.outer.dst_pip = gw;
                p.outer.resolved = false;
            }
        }
        self.transmit_from_host(node, pkt);
    }

    // ------------------------------------------------------------------
    // Migration
    // ------------------------------------------------------------------

    fn on_migrate(&mut self, idx: usize) {
        let m = self.migrations[idx];
        let vm = self
            .placement
            .index_of(m.vip)
            .expect("migrating unknown VIP");
        let old_node = self.placement.node_of(vm);
        let delta = self.ctl.apply(MappingOp::Migrate {
            vip: m.vip,
            to_pip: m.to_pip,
            at_ns: Some(m.at.as_nanos()),
        });
        debug_assert_eq!(delta.old, Some(self.placement.pip_of(vm)));
        self.placement.relocate(vm, m.to_node, m.to_pip);
        // Andromeda-style follow-me rule at the old host.
        self.follow_me.insert((old_node, m.vip), m.to_pip);
        // Every replica records the migration (sharded mode applies this
        // handler as a broadcast global event) so per-migration recovery
        // entries stay index-aligned for the engine's end-of-run fold. The
        // timestamp is the scheduled instant: worker-replica clocks lag the
        // global event's true time.
        self.metrics.record_migration(m.vip.0, m.at);
    }

    /// Records a churn-timeline mark: counters plus a telemetry event.
    /// Driver/oracle only — marks carry no simulation state change, so the
    /// sharded engine never broadcasts them to workers.
    pub(crate) fn on_churn_mark(&mut self, idx: usize) {
        let now = self.now();
        let mark = self.churn_marks[idx];
        let (kind, tenant, n) = match mark {
            ChurnMark::Arrival { tenant, vms, .. } => {
                self.metrics.churn_arrivals += 1;
                (EventKind::ChurnArrival, tenant, vms)
            }
            ChurnMark::Departure { tenant, vms, .. } => {
                self.metrics.churn_departures += 1;
                (EventKind::ChurnDeparture, tenant, vms)
            }
            ChurnMark::Wave { migrations, .. } => {
                self.metrics.migration_waves += 1;
                (EventKind::MigrationWave, 0, migrations)
            }
        };
        if self.tracer.enabled() {
            // Field reuse on the fixed-layout trace record: `vip` carries
            // the tenant id, `hops` the VM (or migration) count.
            let mut ev = TraceEvent::new(now.as_nanos(), kind);
            ev.vip = Some(tenant);
            ev.hops = Some(n.min(u16::MAX as u32) as u16);
            self.trace(ev);
        }
    }

    // ------------------------------------------------------------------
    // Sharded execution (worker side)
    //
    // A `ShardedSimulation` runs one `Simulation` replica per shard plus a
    // thin driver replica whose calendar holds only global events and
    // whose sequence counter is the global `(time, seq)` authority. Each
    // worker owns the persistent calendar of its partition and executes
    // its events directly, window by window. The hooks below make one
    // handler body serve both modes: on the single-threaded path they
    // apply side effects directly; in worker mode they keep scheduling
    // local and journal only the order-sensitive observables for the
    // driver to replay.
    // ------------------------------------------------------------------

    /// Mode-aware scheduling at an absolute time. A worker keeps every
    /// follow-up event it owns: inside the window it goes straight onto
    /// the shard calendar under a provisional key; at or past the boundary
    /// it parks (arena handles intact) until the merge grants its real
    /// global seq. Only packets crossing the pod cut leave the shard, by
    /// value. Every scheduling burns one window ordinal so the driver's
    /// sequence counter stays in lockstep with the single-threaded
    /// calendar.
    fn sched_at(&mut self, at: SimTime, ev: Event) {
        if self.worker.is_none() {
            self.events.schedule_at(at, ev);
            return;
        }
        let (shard, window_end) = {
            let w = self.worker.as_ref().expect("worker mode");
            (w.shard, w.window_end)
        };
        let owner = {
            let w = self.worker.as_ref().expect("worker mode");
            self.owner_of_event(&ev, &w.shard_map)
                .expect("shard handlers never schedule global events")
        };
        if owner == shard {
            let w = self.worker.as_mut().expect("worker mode");
            w.cur_scheds += 1;
            if at < window_end {
                w.state.sched_local(&mut self.events, at, ev);
            } else {
                let ord = w.state.sched_deferred();
                w.pending.push((ord, at, ev));
            }
        } else {
            let wire = self.dematerialize(ev);
            let w = self.worker.as_mut().expect("worker mode");
            w.cur_scheds += 1;
            w.cut_events += 1;
            let ord = w.state.sched_deferred();
            w.cur_cuts.push(CutEvent {
                to: owner,
                ord,
                at,
                ev: wire,
            });
        }
    }

    /// Mode-aware relative scheduling (mirrors `EventQueue::schedule_in`).
    fn sched_in(&mut self, d: SimDuration, ev: Event) {
        if self.worker.is_none() {
            self.events.schedule_in(d, ev);
        } else {
            let at = self.events.now() + d;
            self.sched_at(at, ev);
        }
    }

    /// Mode-aware trace recording: direct to the ring on the oracle path,
    /// journaled for ordered replay on the master ring in worker mode.
    fn trace(&mut self, ev: TraceEvent) {
        match self.worker.as_mut() {
            None => self.tracer.record(ev),
            Some(w) => w.cur_ops.push(JournalOp::Trace(ev)),
        }
    }

    fn m_flow_started(&mut self, id: FlowId) {
        let now = self.events.now();
        match self.worker.as_mut() {
            None => self.metrics.flow_started(id, now),
            Some(w) => w
                .cur_ops
                .push(JournalOp::Metric(MetricOp::FlowStarted(id.0))),
        }
    }

    fn m_flow_completed(&mut self, id: FlowId) {
        let now = self.events.now();
        match self.worker.as_mut() {
            None => self.metrics.flow_completed(id, now),
            Some(w) => w
                .cur_ops
                .push(JournalOp::Metric(MetricOp::FlowCompleted(id.0))),
        }
    }

    fn m_first_packet_delivered(&mut self, id: FlowId) {
        let now = self.events.now();
        match self.worker.as_mut() {
            None => self.metrics.first_packet_delivered(id, now),
            Some(w) => w
                .cur_ops
                .push(JournalOp::Metric(MetricOp::FirstPacketDelivered(id.0))),
        }
    }

    fn m_delivery(&mut self, sent_ns: u64, hops: u16) {
        let now = self.events.now();
        match self.worker.as_mut() {
            None => {
                self.metrics
                    .record_delivery(SimTime::from_nanos(sent_ns), now, hops)
            }
            Some(w) => w
                .cur_ops
                .push(JournalOp::Metric(MetricOp::Delivery { sent_ns, hops })),
        }
    }

    /// Which shard executes `ev`, given the partition's node → shard map;
    /// `None` for global events the driver executes itself. Flow-driving
    /// events belong to the flow's source host, re-evaluated against the
    /// *current* placement each time: a broadcast migration updates every
    /// replica's placement at the migration instant, so later events route
    /// to the new owner shard (the transport state travels with them, see
    /// [`Self::extract_migrated_flows`]).
    pub(crate) fn owner_of_event(&self, ev: &Event, shard_map: &[u16]) -> Option<u16> {
        let node = match ev {
            Event::FlowStart(i)
            | Event::UdpSend { flow: i, .. }
            | Event::RtoTimer { flow: i, .. } => {
                self.placement.node_of(self.flows[*i].spec.src_vm)
            }
            Event::LinkFree(l) => self.topo.link(*l).from,
            Event::LinkArrival { link, .. } => self.topo.link(*link).to,
            Event::GatewayDone { node, .. }
            | Event::ReInject { node, .. }
            | Event::HostForward { node, .. } => *node,
            Event::Migrate(_)
            | Event::FaultStart(_)
            | Event::FaultEnd(_)
            | Event::ChurnMark(_)
            | Event::TelemetrySample => return None,
        };
        Some(shard_map[node.0 as usize])
    }

    fn take_pkt(&mut self, h: PacketRef) -> Packet {
        let p = self.arena.get(h).clone();
        self.arena.free(h);
        p
    }

    /// Converts an event to its wire form, pulling any packet body out of
    /// this simulation's arena. Global events never cross shards.
    pub(crate) fn dematerialize(&mut self, ev: Event) -> WireEvent {
        match ev {
            Event::FlowStart(i) => WireEvent::FlowStart(i),
            Event::UdpSend { flow, idx } => WireEvent::UdpSend { flow, idx },
            Event::LinkFree(l) => WireEvent::LinkFree(l),
            Event::LinkArrival { link, pkt } => WireEvent::LinkArrival {
                link,
                pkt: self.take_pkt(pkt),
            },
            Event::RtoTimer { flow, gen } => WireEvent::RtoTimer { flow, gen },
            Event::GatewayDone { node, pkt } => WireEvent::GatewayDone {
                node,
                pkt: self.take_pkt(pkt),
            },
            Event::ReInject { node, pkt } => WireEvent::ReInject {
                node,
                pkt: self.take_pkt(pkt),
            },
            Event::HostForward { node, pkt } => WireEvent::HostForward {
                node,
                pkt: self.take_pkt(pkt),
            },
            Event::Migrate(_)
            | Event::FaultStart(_)
            | Event::FaultEnd(_)
            | Event::ChurnMark(_)
            | Event::TelemetrySample => unreachable!("global events never cross shards"),
        }
    }

    /// Converts a wire event back to an event, allocating any packet body
    /// into this simulation's arena.
    pub(crate) fn materialize(&mut self, w: WireEvent) -> Event {
        match w {
            WireEvent::FlowStart(i) => Event::FlowStart(i),
            WireEvent::UdpSend { flow, idx } => Event::UdpSend { flow, idx },
            WireEvent::LinkFree(l) => Event::LinkFree(l),
            WireEvent::LinkArrival { link, pkt } => Event::LinkArrival {
                link,
                pkt: self.arena.alloc(pkt),
            },
            WireEvent::RtoTimer { flow, gen } => Event::RtoTimer { flow, gen },
            WireEvent::GatewayDone { node, pkt } => Event::GatewayDone {
                node,
                pkt: self.arena.alloc(pkt),
            },
            WireEvent::ReInject { node, pkt } => Event::ReInject {
                node,
                pkt: self.arena.alloc(pkt),
            },
            WireEvent::HostForward { node, pkt } => Event::HostForward {
                node,
                pkt: self.arena.alloc(pkt),
            },
        }
    }

    /// Turns this replica into shard `shard`'s worker. The construction
    /// calendar is discarded (only the driver pre-schedules global events;
    /// workload events are inserted per-owner at registration) and replaced
    /// with an empty *persistent* shard calendar that lives for the whole
    /// run — windows drain it up to each boundary, they never rebuild it.
    pub(crate) fn attach_worker(&mut self, shard: u16, shard_map: Vec<u16>) {
        debug_assert!(self.worker.is_none(), "already a worker");
        self.events = EventQueue::with_capacity(1 << 16);
        self.worker = Some(WorkerCtx::new(shard, shard_map));
    }

    /// Registers flows without scheduling their start events (worker
    /// replicas: the driver owns the calendar).
    pub(crate) fn register_flows(&mut self, specs: impl IntoIterator<Item = FlowSpec>) {
        for spec in specs {
            let idx = self.flows.len();
            self.flows.push(FlowState::new(FlowId(idx as u64), spec));
        }
    }

    /// Registers a fault plan's events without scheduling them (worker
    /// replicas need the plan table for broadcast `FaultStart`/`FaultEnd`
    /// indices to resolve).
    pub(crate) fn register_fault_events(&mut self, plan: &FaultPlan) {
        for ev in plan.events() {
            self.fault_plan.push(ev.clone());
        }
    }

    /// Registers migrations without scheduling their events (worker
    /// replicas: the driver owns the calendar; broadcast `Migrate` events
    /// carry table indices).
    pub(crate) fn register_migrations(&mut self, ms: impl IntoIterator<Item = Migration>) {
        self.migrations.extend(ms);
    }

    /// Extracts (and locally zeroes) the transport state of every flow
    /// whose endpoint VM `vm` just migrated off a node this shard owns.
    /// Zeroing matters: the end-of-run fold sums transport statistics
    /// (`reordered_segments`, `retransmits`) over *all* replicas, so a
    /// moved machine must not stay behind as a double-counted copy.
    pub(crate) fn extract_migrated_flows(&mut self, vm: usize) -> Vec<FlowXfer> {
        let mut out = Vec::new();
        for (i, f) in self.flows.iter_mut().enumerate() {
            let is_tcp = f.is_tcp();
            if f.spec.src_vm == vm && is_tcp {
                out.push(FlowXfer::Sender {
                    flow: i,
                    tcp_tx: f.tcp_tx.take(),
                    rto_gen: f.rto_gen,
                    completed: f.completed,
                });
            }
            if f.spec.dst_vm == vm {
                let xfer = FlowXfer::Receiver {
                    flow: i,
                    tcp_rx: std::mem::take(&mut f.tcp_rx),
                    udp_delivered: f.udp_delivered,
                    completed: f.completed,
                };
                f.udp_delivered = 0;
                out.push(xfer);
            }
        }
        out
    }

    /// Installs transport state extracted by another shard's
    /// [`Self::extract_migrated_flows`] after a migration moved the flows'
    /// endpoint VM onto a node this shard owns.
    pub(crate) fn inject_migrated_flows(&mut self, bundles: Vec<FlowXfer>) {
        for b in bundles {
            match b {
                FlowXfer::Sender {
                    flow,
                    tcp_tx,
                    rto_gen,
                    completed,
                } => {
                    let f = &mut self.flows[flow];
                    f.tcp_tx = tcp_tx;
                    f.rto_gen = rto_gen;
                    f.completed = completed;
                }
                FlowXfer::Receiver {
                    flow,
                    tcp_rx,
                    udp_delivered,
                    completed,
                } => {
                    let f = &mut self.flows[flow];
                    f.tcp_rx = tcp_rx;
                    f.udp_delivered = udp_delivered;
                    if !f.is_tcp() {
                        // TCP completion is authoritative on the sender side.
                        f.completed = completed;
                    }
                }
            }
        }
    }

    /// Flushes the window's parked events under their merge-granted global
    /// seqs (`grants` is indexed by window ordinal) and inserts incoming
    /// cross-shard events (cut packets, or a migrated VM's moved calendar
    /// events), all keyed so global `(time, seq)` order is preserved. Must
    /// run before the next window drains — and before any migration
    /// extraction at this boundary, so the pending buffer is empty
    /// whenever flow events move between shards.
    pub(crate) fn apply_boundary(&mut self, grants: &[u64], incoming: Vec<MovedEvent>) {
        let parked = {
            let w = self.worker.as_mut().expect("worker mode");
            std::mem::take(&mut w.pending)
        };
        for (ord, at, ev) in parked {
            self.events.schedule_at_seq(at, grants[ord as usize], ev);
        }
        for m in incoming {
            let ev = self.materialize(m.ev);
            self.events.schedule_at_seq(m.at, m.seq, ev);
        }
    }

    /// Extracts the still-pending calendar events of every flow whose
    /// source VM `vm` just migrated off a node this shard owns. Their
    /// global `(time, seq)` keys travel with them, so the new owner's
    /// calendar continues exactly where this one stopped. Flow-addressed
    /// events carry no packet bodies, so the arena is untouched.
    pub(crate) fn extract_migrated_events(&mut self, vm: usize) -> Vec<MovedEvent> {
        let flows = &self.flows;
        let moved = self.events.extract_if(|ev| match ev {
            Event::FlowStart(i)
            | Event::UdpSend { flow: i, .. }
            | Event::RtoTimer { flow: i, .. } => flows[*i].spec.src_vm == vm,
            _ => false,
        });
        moved
            .into_iter()
            .map(|e| {
                let ev = self.dematerialize(e.payload);
                MovedEvent {
                    at: e.time,
                    seq: e.seq,
                    ev,
                }
            })
            .collect()
    }

    /// Executes one window: drains the shard calendar up to the boundary
    /// key `(bt, bseq)` — every pending event strictly before it, plus any
    /// causal children that land inside the window — and returns the
    /// journal. Events that neither scheduled nor touched an observable
    /// leave no block (their execution is visible only in the report's
    /// scalar counters); the merge never needs them because only blocks
    /// with schedulings anchor child ordinals.
    pub(crate) fn run_window(&mut self, bt: SimTime, bseq: u64) -> WindowReport {
        {
            let w = self.worker.as_mut().expect("run_window on the driver");
            debug_assert!(w.pending.is_empty(), "boundary not applied");
            w.window_end = bt;
            w.state.open_window();
        }
        let mut blocks = Vec::new();
        let mut executed = 0u64;
        let mut last_time = None;
        while let Some(se) = self.events.pop_before(bt, bseq) {
            let seq_ref = ShardState::resolve(se.seq);
            let time = se.time;
            self.dispatch(se.payload);
            executed += 1;
            last_time = Some(time);
            let w = self.worker.as_mut().expect("worker mode");
            let scheds = std::mem::take(&mut w.cur_scheds);
            let cuts = std::mem::take(&mut w.cur_cuts);
            let ops = std::mem::take(&mut w.cur_ops);
            if scheds > 0 || !cuts.is_empty() || !ops.is_empty() {
                blocks.push(ExecBlock {
                    time,
                    seq_ref,
                    scheds,
                    cuts,
                    ops,
                });
            }
        }
        let w = self.worker.as_ref().expect("worker mode");
        let pending_min = w.pending.iter().map(|&(_, at, _)| at).min();
        WindowReport {
            blocks,
            executed,
            last_time,
            cal_next: self.events.peek_time(),
            pending_min,
            cal_len: (self.events.len() + w.pending.len()) as u64,
            arena_live: self.arena_live() as u64,
        }
    }

    /// Applies a driver-executed global event to this replica's mirrored
    /// state (placement, mapping database, blackouts, link health, loss
    /// rates). Runs *outside* `run_window`, so handlers reached from here
    /// must not journal trace/metric ops in worker mode (they would leak
    /// into the next window's first block); fault and migration handlers
    /// only touch replica-local state and commutative/master-only metrics.
    pub(crate) fn apply_global(&mut self, ev: GlobalEvent) {
        match ev {
            GlobalEvent::FaultStart(i) => self.on_fault_start(i),
            GlobalEvent::FaultEnd(i) => self.on_fault_end(i),
            GlobalEvent::Migrate(i) => self.on_migrate(i),
        }
    }

    /// This shard's contribution to a telemetry sample at window `widx`.
    /// Queue depths, occupancy and traffic counters are only non-zero for
    /// state this shard owns, so the driver can sum snapshots across
    /// shards to reproduce the oracle's sample exactly.
    pub(crate) fn shard_snapshot(&self, widx: usize) -> ShardSnapshot {
        let (mut q_total, mut q_max) = (0u64, 0u64);
        for l in &self.links {
            let q = l.queue_len() as u64;
            q_total += q;
            q_max = q_max.max(q);
        }
        let (mut occ_tor, mut occ_spine, mut occ_core) = (0u64, 0u64, 0u64);
        for sw in self.topo.switches() {
            let occ = self.agents[sw.id.0 as usize]
                .as_ref()
                .map_or(0, |a| a.occupancy()) as u64;
            match self.roles.role(sw.id).map(|r| r.layer()) {
                Some("ToR") => occ_tor += occ,
                Some("Spine") => occ_spine += occ,
                _ => occ_core += occ,
            }
        }
        let (win_data_sent, win_gateway) = self
            .metrics
            .windows
            .get(widx)
            .map_or((0, 0), |w| (w.data_sent, w.gateway));
        let pending = self.events.len() as u64
            + self.worker.as_ref().map_or(0, |w| w.pending.len() as u64);
        ShardSnapshot {
            q_total,
            q_max,
            occ_tor,
            occ_spine,
            occ_core,
            data_sent_cum: self.metrics.data_packets_sent,
            gateway_cum: self.metrics.gateway_packets,
            win_data_sent,
            win_gateway,
            pending,
        }
    }

    /// Merges this replica's traffic-matrix counts into `into` (the
    /// sharded engine reads the union across shards).
    pub(crate) fn merge_traffic_matrix_into(&self, into: &mut FxHashMap<(u32, u32), u64>) {
        for (&k, &v) in &self.traffic_matrix {
            *into.entry(k).or_insert(0) += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv2p_simcore::SimDuration;
    use sv2p_transport::UdpSchedule;
    use sv2p_topology::SwitchRole;
    use sv2p_vnet::agents::NoopSwitchAgent;

    /// The plain gateway design: no caching anywhere (the NoCache baseline
    /// lives in `sv2p-baselines`; this local twin keeps netsim's tests
    /// self-contained).
    struct TestNoCache;

    impl Strategy for TestNoCache {
        fn name(&self) -> &'static str {
            "TestNoCache"
        }
        fn caches_at(&self, _role: SwitchRole) -> bool {
            false
        }
        fn make_switch_agent(
            &self,
            _node: NodeId,
            _role: SwitchRole,
            _tag: SwitchTag,
            _lines: usize,
        ) -> Box<dyn SwitchAgent> {
            Box::new(NoopSwitchAgent)
        }
        fn misdelivery_policy(&self) -> MisdeliveryPolicy {
            MisdeliveryPolicy::FollowMe
        }
    }

    fn small_sim() -> Simulation {
        let ft = FatTreeConfig::scaled_ft8(2);
        Simulation::new(SimConfig::default(), &ft, &TestNoCache, 0, 4)
    }

    #[test]
    fn single_tcp_flow_completes_via_gateway() {
        let mut sim = small_sim();
        sim.add_flows([FlowSpec {
            src_vm: 0,
            dst_vm: sim.placement.len() - 1,
            start: SimTime::ZERO,
            kind: FlowKind::Tcp { bytes: 50_000 },
        }]);
        sim.run();
        let s = sim.summary();
        assert_eq!(s.flows_completed, 1, "{s:?}");
        assert_eq!(s.hit_rate, 0.0, "NoCache must have zero hit rate");
        assert!(s.gateway_packets > 0);
        // Every data packet goes through a gateway: first packet latency must
        // include the 40us processing.
        assert!(
            s.avg_first_packet_latency_us > 40.0,
            "first packet latency {} lacks the gateway detour",
            s.avg_first_packet_latency_us
        );
        assert_eq!(s.packets_dropped, 0);
    }

    #[test]
    fn first_packet_latency_matches_hand_computation() {
        // Same rack sender/receiver: path via gateway =
        // host->ToR->spine->core->spine->gwToR->GW (6 links in FT8-scaled(2))
        // ... depends on pod of gateway; just bound it: must be at least
        // 40us (gateway) + 2 * a few links, and below 100us in an idle net.
        let mut sim = small_sim();
        sim.add_flows([FlowSpec {
            src_vm: 0,
            dst_vm: 1,
            start: SimTime::ZERO,
            kind: FlowKind::Tcp { bytes: 1000 },
        }]);
        sim.run();
        let s = sim.summary();
        assert!(s.avg_first_packet_latency_us > 44.0);
        assert!(
            s.avg_first_packet_latency_us < 100.0,
            "{}",
            s.avg_first_packet_latency_us
        );
    }

    #[test]
    fn udp_flow_delivers_all_datagrams() {
        let mut sim = small_sim();
        let sched = UdpSchedule::cbr(
            SimTime::ZERO,
            SimDuration::from_micros(500),
            48_000_000,
            1000,
        );
        let n = sched.len() as u64;
        sim.add_flows([FlowSpec {
            src_vm: 3,
            dst_vm: 200,
            start: SimTime::ZERO,
            kind: FlowKind::Udp { schedule: sched },
        }]);
        sim.run();
        let s = sim.summary();
        assert_eq!(s.flows_completed, 1);
        assert_eq!(s.data_packets_delivered, n);
        assert_eq!(s.packets_dropped, 0);
    }

    #[test]
    fn many_flows_all_complete() {
        let mut sim = small_sim();
        let vms = sim.placement.len();
        let flows: Vec<FlowSpec> = (0..50)
            .map(|i| FlowSpec {
                src_vm: (i * 7) % vms,
                dst_vm: (i * 13 + 5) % vms,
                start: SimTime::from_micros(i as u64),
                kind: FlowKind::Tcp {
                    bytes: 2_000 + 997 * i as u64,
                },
            })
            .filter(|f| f.src_vm != f.dst_vm)
            .collect();
        let n = flows.len() as u64;
        sim.add_flows(flows);
        sim.run();
        let s = sim.summary();
        assert_eq!(s.flows_completed, n, "{s:?}");
        assert_eq!(s.hit_rate, 0.0);
        assert!(s.avg_stretch > 1.0);
    }

    #[test]
    fn migration_with_follow_me_redelivers() {
        let mut sim = small_sim();
        let dst_vm = 0usize;
        let vip = sim.placement.vips[dst_vm];
        // Pick a target server in the other pod.
        let target = sim
            .topology()
            .servers()
            .map(|n| (n.id, n.pip))
            .last()
            .unwrap();
        // A fast CBR flow (packet every ~1.6 us) so several packets are in
        // flight across the ~50 us gateway path when the migration fires.
        let sched = UdpSchedule::cbr(
            SimTime::ZERO,
            SimDuration::from_millis(1),
            5_000_000_000,
            1000,
        );
        let n = sched.len() as u64;
        sim.add_flows([FlowSpec {
            src_vm: sim.placement.len() - 1,
            dst_vm,
            start: SimTime::ZERO,
            kind: FlowKind::Udp { schedule: sched },
        }]);
        sim.add_migration(Migration::new(
            SimTime::from_micros(500),
            vip,
            target.0,
            target.1,
        ));
        sim.run();
        let s = sim.summary();
        assert!(
            s.misdelivered_packets > 0,
            "packets in flight at migration must misdeliver"
        );
        assert_eq!(
            s.data_packets_delivered, n,
            "follow-me must redeliver everything"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut sim = small_sim();
            let vms = sim.placement.len();
            sim.add_flows((0..20).map(|i| FlowSpec {
                src_vm: i % vms,
                dst_vm: (i + 37) % vms,
                start: SimTime::from_micros(i as u64 / 3),
                kind: FlowKind::Tcp {
                    bytes: 5_000 + i as u64,
                },
            }));
            sim.run();
            let s = sim.summary();
            (
                s.avg_fct_us,
                s.data_packets_sent,
                s.gateway_packets,
                s.total_switch_bytes,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn end_of_time_stops_the_run() {
        let mut sim = {
            let ft = FatTreeConfig::scaled_ft8(2);
            let cfg = SimConfig {
                end_of_time: Some(SimTime::from_micros(10)),
                ..SimConfig::default()
            };
            Simulation::new(cfg, &ft, &TestNoCache, 0, 4)
        };
        sim.add_flows([FlowSpec {
            src_vm: 0,
            dst_vm: 100,
            start: SimTime::ZERO,
            kind: FlowKind::Tcp { bytes: 10_000_000 },
        }]);
        sim.run();
        assert!(sim.now() <= SimTime::from_micros(10));
        let s = sim.summary();
        assert_eq!(s.flows_completed, 0);
    }

    #[test]
    fn heterogeneous_weights_split_the_budget() {
        // A strategy that gives ToRs 3x the core share.
        struct Weighted;
        impl Strategy for Weighted {
            fn name(&self) -> &'static str {
                "Weighted"
            }
            fn caches_at(&self, _role: SwitchRole) -> bool {
                true
            }
            fn cache_weight(&self, role: SwitchRole) -> f64 {
                match role {
                    SwitchRole::Tor | SwitchRole::GatewayTor => 3.0,
                    _ => 1.0,
                }
            }
            fn make_switch_agent(
                &self,
                _node: NodeId,
                role: SwitchRole,
                _tag: SwitchTag,
                lines: usize,
            ) -> Box<dyn SwitchAgent> {
                // Record the capacity through a probe agent.
                struct Probe(usize);
                impl SwitchAgent for Probe {
                    fn on_packet(
                        &mut self,
                        _ctx: &mut SwitchCtx<'_>,
                        _pkt: &mut Packet,
                    ) -> AgentOutput {
                        AgentOutput::forward()
                    }
                    fn occupancy(&self) -> usize {
                        self.0 // repurposed: report configured capacity
                    }
                }
                let _ = role;
                Box::new(Probe(lines))
            }
        }
        let ft = FatTreeConfig::scaled_ft8(2);
        let sim = Simulation::new(SimConfig::default(), &ft, &Weighted, 3200, 4);
        let mut tor_lines = None;
        let mut core_lines = None;
        for sw in sim.topology().switches() {
            let occ = sim.agents[sw.id.0 as usize].as_ref().unwrap().occupancy();
            match sim.roles().role(sw.id).unwrap() {
                SwitchRole::Tor => tor_lines = Some(occ),
                SwitchRole::Core => core_lines = Some(occ),
                _ => {}
            }
        }
        let (t, c) = (tor_lines.unwrap(), core_lines.unwrap());
        // 3:1 split up to integer truncation.
        assert!(
            (t as i64 - 3 * c as i64).abs() <= 3,
            "ToR {t} lines vs core {c}"
        );
    }

    #[test]
    fn telemetry_traces_lifecycle_and_samples() {
        let ft = FatTreeConfig::scaled_ft8(2);
        let cfg = SimConfig {
            telemetry: sv2p_telemetry::TelemetryConfig::enabled(),
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(cfg, &ft, &TestNoCache, 0, 4);
        sim.add_flows([FlowSpec {
            src_vm: 0,
            dst_vm: sim.placement.len() - 1,
            start: SimTime::ZERO,
            kind: FlowKind::Tcp { bytes: 20_000 },
        }]);
        sim.run();
        let tracer = sim.tracer();
        let count = |k: EventKind| tracer.events().filter(|e| e.kind == k).count();
        assert!(count(EventKind::PacketSent) > 0);
        assert!(count(EventKind::SwitchIngress) > 0);
        assert!(
            count(EventKind::GatewayIngress) > 0,
            "NoCache sends every first-sighting through a gateway"
        );
        assert_eq!(
            count(EventKind::GatewayIngress),
            count(EventKind::GatewayDone),
            "a healthy run finishes every gateway translation it starts"
        );
        assert!(count(EventKind::Delivery) > 0);
        assert_eq!(count(EventKind::Drop), 0);
        assert!(!tracer.samples.is_empty(), "sampler must have fired");
        assert_eq!(tracer.dropped(), 0);
        // Events come out in chronological order.
        let ts: Vec<u64> = tracer.events().map(|e| e.t_ns).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn telemetry_disabled_records_nothing() {
        let mut sim = small_sim();
        sim.add_flows([FlowSpec {
            src_vm: 0,
            dst_vm: 100,
            start: SimTime::ZERO,
            kind: FlowKind::Tcp { bytes: 5_000 },
        }]);
        sim.run();
        assert_eq!(sim.tracer().total_recorded(), 0);
        assert!(sim.tracer().samples.is_empty());
    }

    #[test]
    fn traffic_matrix_records_per_pair_counts() {
        let ft = FatTreeConfig::scaled_ft8(2);
        let cfg = SimConfig {
            record_traffic_matrix: true,
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(cfg, &ft, &TestNoCache, 0, 4);
        sim.add_flows([FlowSpec {
            src_vm: 2,
            dst_vm: 9,
            start: SimTime::ZERO,
            kind: FlowKind::Tcp { bytes: 10_000 },
        }]);
        sim.run();
        let tm = sim.traffic_matrix();
        assert!(tm[&(2, 9)] >= 10, "forward data packets recorded");
        assert!(tm.contains_key(&(9, 2)), "ACK direction recorded");
        sim.clear_traffic_matrix();
        assert!(sim.traffic_matrix().is_empty());
    }
}
